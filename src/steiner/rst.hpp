#pragma once
/// \file rst.hpp
/// \brief The paper's modified-Prim rectilinear Steiner tree heuristic (§3.3).
///
/// Classic Prim grows a spanning tree by repeatedly attaching the terminal
/// closest to any *terminal* already in the tree. The paper's modification
/// attaches the terminal closest to any point of the tree *including
/// Steiner points introduced by earlier attachments*; the attachment point
/// is materialized by splitting the nearest tree segment. The result is a
/// rectilinear Steiner topology whose length is never worse than the RMST.

#include <vector>

#include "geom/point.hpp"
#include "steiner/rmst.hpp"

namespace ocr::steiner {

/// A rectilinear Steiner topology: nodes are terminal points followed by
/// Steiner points; every edge is axis-aligned (horizontal or vertical).
struct SteinerTopology {
  std::vector<geom::Point> nodes;  ///< [0, num_terminals) are the terminals
  int num_terminals = 0;
  std::vector<TreeEdge> edges;     ///< indices into nodes; axis-aligned
  geom::Coord length = 0;          ///< sum of edge lengths

  bool is_steiner_node(int node) const { return node >= num_terminals; }
};

/// Builds a Steiner topology with the paper's modified Prim heuristic.
///
/// Each new terminal connects to the closest point on any existing tree
/// segment (L1 point-to-segment distance); the connection is realized as an
/// L-shaped pair of axis-aligned edges (or a single straight edge) through
/// a corner chosen to hug the remaining unattached terminals.
/// Requires >= 1 terminal. Duplicated terminal positions are legal.
SteinerTopology modified_prim_rst(const std::vector<geom::Point>& terminals);

/// Decomposes a topology into two-terminal point pairs, one per tree edge
/// (zero-length edges from coincident attachments are dropped) — the unit
/// of work the level-B router consumes ("all two-terminal partitions of a
/// multi-terminal net", §2).
std::vector<std::pair<geom::Point, geom::Point>> two_terminal_connections(
    const SteinerTopology& topology);

/// Validates the topology: axis-aligned edges, connected, spans all
/// terminals, length consistent. Returns problems (empty = valid).
std::vector<std::string> validate_topology(const SteinerTopology& topology);

}  // namespace ocr::steiner

#include "steiner/exact.hpp"

#include <algorithm>

#include "steiner/rmst.hpp"
#include "util/assert.hpp"

namespace ocr::steiner {
namespace {

/// MST length over an explicit point set (terminals + chosen Steiner pts).
geom::Coord mst_length(const std::vector<geom::Point>& points) {
  return rectilinear_mst(points).length;
}

/// Recursively tries adding up to \p budget more Hanan points starting at
/// candidate index \p from, tracking the best MST length seen.
void search(const std::vector<geom::Point>& hanan, std::size_t from,
            int budget, std::vector<geom::Point>& working,
            geom::Coord& best) {
  best = std::min(best, mst_length(working));
  if (budget == 0) return;
  for (std::size_t i = from; i < hanan.size(); ++i) {
    working.push_back(hanan[i]);
    search(hanan, i + 1, budget - 1, working, best);
    working.pop_back();
  }
}

}  // namespace

geom::Coord exact_rsmt_length(const std::vector<geom::Point>& terminals) {
  OCR_ASSERT(!terminals.empty(), "exact_rsmt_length requires >= 1 terminal");
  OCR_ASSERT(static_cast<int>(terminals.size()) <= kMaxExactTerminals,
             "exact RSMT is exponential; raise kMaxExactTerminals knowingly");
  if (terminals.size() <= 2) return mst_length(terminals);

  // Hanan grid: all (x_i, y_j) crossings that are not terminals.
  std::vector<geom::Coord> xs;
  std::vector<geom::Coord> ys;
  for (const geom::Point& p : terminals) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  std::vector<geom::Point> hanan;
  for (geom::Coord x : xs) {
    for (geom::Coord y : ys) {
      const geom::Point p{x, y};
      if (std::find(terminals.begin(), terminals.end(), p) ==
          terminals.end()) {
        hanan.push_back(p);
      }
    }
  }

  std::vector<geom::Point> working = terminals;
  geom::Coord best = mst_length(working);
  // An optimal RST needs at most n - 2 Steiner points (Hanan / Hwang).
  search(hanan, 0, static_cast<int>(terminals.size()) - 2, working, best);
  return best;
}

}  // namespace ocr::steiner

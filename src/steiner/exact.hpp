#pragma once
/// \file exact.hpp
/// \brief Exact rectilinear Steiner minimal tree for tiny terminal sets.
///
/// Used only by tests and the Steiner ablation bench as a quality
/// reference. Hanan's theorem guarantees an optimal RST using only Steiner
/// points on the Hanan grid, and at most n-2 of them; we enumerate Steiner
/// point subsets and evaluate each candidate set with an MST. Exponential —
/// guarded to n <= 6 terminals.

#include <vector>

#include "geom/point.hpp"

namespace ocr::steiner {

inline constexpr int kMaxExactTerminals = 6;

/// Length of the optimal rectilinear Steiner minimal tree of \p terminals.
/// Requires 1 <= |terminals| <= kMaxExactTerminals.
geom::Coord exact_rsmt_length(const std::vector<geom::Point>& terminals);

}  // namespace ocr::steiner

#include "steiner/rmst.hpp"

#include <limits>

#include "util/assert.hpp"

namespace ocr::steiner {

SpanningTree rectilinear_mst(const std::vector<geom::Point>& terminals) {
  OCR_ASSERT(!terminals.empty(), "rectilinear_mst requires >= 1 terminal");
  const int n = static_cast<int>(terminals.size());
  SpanningTree tree;
  if (n == 1) return tree;
  tree.edges.reserve(static_cast<std::size_t>(n) - 1);

  constexpr geom::Coord kInf = std::numeric_limits<geom::Coord>::max();
  std::vector<geom::Coord> best_dist(static_cast<std::size_t>(n), kInf);
  std::vector<int> best_parent(static_cast<std::size_t>(n), -1);
  std::vector<bool> in_tree(static_cast<std::size_t>(n), false);

  in_tree[0] = true;
  for (int v = 1; v < n; ++v) {
    best_dist[v] = geom::manhattan(terminals[0], terminals[v]);
    best_parent[v] = 0;
  }

  for (int added = 1; added < n; ++added) {
    int pick = -1;
    geom::Coord pick_dist = kInf;
    for (int v = 0; v < n; ++v) {
      if (!in_tree[v] && best_dist[v] < pick_dist) {
        pick = v;
        pick_dist = best_dist[v];
      }
    }
    OCR_ASSERT(pick >= 0, "MST frontier empty before spanning all vertices");
    in_tree[pick] = true;
    tree.edges.push_back(TreeEdge{best_parent[pick], pick});
    tree.length += pick_dist;
    for (int v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const geom::Coord d = geom::manhattan(terminals[pick], terminals[v]);
      if (d < best_dist[v]) {
        best_dist[v] = d;
        best_parent[v] = pick;
      }
    }
  }
  return tree;
}

}  // namespace ocr::steiner

#include "steiner/rst.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "util/assert.hpp"
#include "util/str.hpp"

namespace ocr::steiner {
namespace {

constexpr geom::Coord kInf = std::numeric_limits<geom::Coord>::max();

geom::Coord clamp(geom::Coord v, geom::Coord lo, geom::Coord hi) {
  return std::max(lo, std::min(hi, v));
}

/// L1 distance from \p t to the axis-aligned segment (a, b), and the
/// closest point on the segment.
struct SegmentHit {
  geom::Coord dist = kInf;
  geom::Point attach;
};

SegmentHit segment_distance(const geom::Point& t, const geom::Point& a,
                            const geom::Point& b) {
  SegmentHit hit;
  hit.attach.x = clamp(t.x, std::min(a.x, b.x), std::max(a.x, b.x));
  hit.attach.y = clamp(t.y, std::min(a.y, b.y), std::max(a.y, b.y));
  hit.dist = geom::manhattan(t, hit.attach);
  return hit;
}

bool axis_aligned(const geom::Point& a, const geom::Point& b) {
  return a.x == b.x || a.y == b.y;
}

}  // namespace

SteinerTopology modified_prim_rst(const std::vector<geom::Point>& terminals) {
  OCR_ASSERT(!terminals.empty(), "modified_prim_rst requires >= 1 terminal");
  SteinerTopology topo;
  topo.nodes = terminals;
  topo.num_terminals = static_cast<int>(terminals.size());
  if (topo.num_terminals == 1) return topo;

  std::vector<bool> attached(terminals.size(), false);
  attached[0] = true;
  int remaining = topo.num_terminals - 1;

  const auto add_edge = [&topo](int a, int b) {
    OCR_ASSERT(axis_aligned(topo.nodes[a], topo.nodes[b]),
               "tree edges must be axis-aligned");
    topo.edges.push_back(TreeEdge{a, b});
    topo.length += geom::manhattan(topo.nodes[a], topo.nodes[b]);
  };

  // Returns the index of a node at position p, splitting the tree edge
  // \p edge_index if p lies strictly inside it.
  const auto materialize = [&topo](int edge_index, const geom::Point& p) {
    const TreeEdge e = topo.edges[static_cast<std::size_t>(edge_index)];
    if (topo.nodes[e.a] == p) return e.a;
    if (topo.nodes[e.b] == p) return e.b;
    const int steiner = static_cast<int>(topo.nodes.size());
    topo.nodes.push_back(p);
    // Splitting preserves total length: |a-p| + |p-b| == |a-b| on an
    // axis-aligned segment containing p.
    topo.edges[static_cast<std::size_t>(edge_index)] = TreeEdge{e.a, steiner};
    topo.edges.push_back(TreeEdge{steiner, e.b});
    return steiner;
  };

  while (remaining > 0) {
    // Find the unattached terminal closest to the current tree.
    int best_terminal = -1;
    SegmentHit best_hit;
    int best_edge = -1;    // edge containing the attach point, -1 = a node
    int best_node = -1;    // node attach (used when best_edge == -1)
    for (int t = 0; t < topo.num_terminals; ++t) {
      if (attached[t]) continue;
      const geom::Point& tp = topo.nodes[t];
      // Distance to tree nodes (covers the edgeless initial tree).
      for (int v = 0; v < static_cast<int>(topo.nodes.size()); ++v) {
        const bool v_in_tree =
            (v < topo.num_terminals) ? attached[static_cast<std::size_t>(v)]
                                     : true;  // Steiner nodes are in-tree
        if (!v_in_tree || v == t) continue;
        const geom::Coord d = geom::manhattan(tp, topo.nodes[v]);
        if (d < best_hit.dist) {
          best_hit = SegmentHit{d, topo.nodes[v]};
          best_terminal = t;
          best_edge = -1;
          best_node = v;
        }
      }
      // Distance to tree segments (may beat every node).
      for (int e = 0; e < static_cast<int>(topo.edges.size()); ++e) {
        const TreeEdge& edge = topo.edges[static_cast<std::size_t>(e)];
        const SegmentHit hit =
            segment_distance(tp, topo.nodes[edge.a], topo.nodes[edge.b]);
        if (hit.dist < best_hit.dist) {
          best_hit = hit;
          best_terminal = t;
          best_edge = e;
          best_node = -1;
        }
      }
    }
    OCR_ASSERT(best_terminal >= 0, "no attachable terminal found");

    const int attach_node = (best_edge >= 0)
                                ? materialize(best_edge, best_hit.attach)
                                : best_node;
    const geom::Point tp = topo.nodes[best_terminal];
    const geom::Point ap = topo.nodes[attach_node];

    if (axis_aligned(tp, ap)) {
      add_edge(attach_node, best_terminal);
    } else {
      // L-shaped connection; pick the corner closer (in total Manhattan
      // distance) to the terminals still waiting to attach, so future
      // attachments find the tree nearby.
      const geom::Point corner_a{tp.x, ap.y};
      const geom::Point corner_b{ap.x, tp.y};
      geom::Coord pull_a = 0;
      geom::Coord pull_b = 0;
      for (int t = 0; t < topo.num_terminals; ++t) {
        if (attached[t] || t == best_terminal) continue;
        pull_a += geom::manhattan(corner_a, topo.nodes[t]);
        pull_b += geom::manhattan(corner_b, topo.nodes[t]);
      }
      const geom::Point corner = (pull_b < pull_a) ? corner_b : corner_a;
      const int corner_node = static_cast<int>(topo.nodes.size());
      topo.nodes.push_back(corner);
      add_edge(attach_node, corner_node);
      add_edge(corner_node, best_terminal);
    }
    attached[static_cast<std::size_t>(best_terminal)] = true;
    --remaining;
  }
  return topo;
}

std::vector<std::pair<geom::Point, geom::Point>> two_terminal_connections(
    const SteinerTopology& topology) {
  std::vector<std::pair<geom::Point, geom::Point>> pairs;
  pairs.reserve(topology.edges.size());
  for (const TreeEdge& e : topology.edges) {
    const geom::Point& a = topology.nodes[static_cast<std::size_t>(e.a)];
    const geom::Point& b = topology.nodes[static_cast<std::size_t>(e.b)];
    if (a == b) continue;
    pairs.emplace_back(a, b);
  }
  return pairs;
}

std::vector<std::string> validate_topology(const SteinerTopology& topology) {
  std::vector<std::string> problems;
  const int n = static_cast<int>(topology.nodes.size());
  if (topology.num_terminals < 1 || topology.num_terminals > n) {
    problems.push_back("terminal count out of range");
    return problems;
  }

  geom::Coord length = 0;
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const TreeEdge& e : topology.edges) {
    if (e.a < 0 || e.a >= n || e.b < 0 || e.b >= n) {
      problems.push_back("edge references a nonexistent node");
      continue;
    }
    const geom::Point& a = topology.nodes[static_cast<std::size_t>(e.a)];
    const geom::Point& b = topology.nodes[static_cast<std::size_t>(e.b)];
    if (a.x != b.x && a.y != b.y) {
      problems.push_back(util::format("edge %d-%d is not axis-aligned", e.a,
                                      e.b));
    }
    length += geom::manhattan(a, b);
    adj[static_cast<std::size_t>(e.a)].push_back(e.b);
    adj[static_cast<std::size_t>(e.b)].push_back(e.a);
  }
  if (length != topology.length) {
    problems.push_back(util::format(
        "recorded length %lld != computed %lld",
        static_cast<long long>(topology.length),
        static_cast<long long>(length)));
  }

  // Connectivity of all terminals (BFS from terminal 0).
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<int> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int w : adj[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        stack.push_back(w);
      }
    }
  }
  for (int t = 0; t < topology.num_terminals; ++t) {
    if (!seen[static_cast<std::size_t>(t)]) {
      problems.push_back(util::format("terminal %d is disconnected", t));
    }
  }
  return problems;
}

}  // namespace ocr::steiner

#pragma once
/// \file rmst.hpp
/// \brief Rectilinear minimum spanning trees (Prim).
///
/// The RMST is both the baseline of the paper's Steiner comparison (§3.3)
/// and the topology generator used to decompose multi-terminal nets into
/// two-terminal connections for routing.

#include <utility>
#include <vector>

#include "geom/point.hpp"

namespace ocr::steiner {

/// An edge of a spanning tree, as indices into the input terminal vector.
struct TreeEdge {
  int a = 0;
  int b = 0;
};

/// Spanning tree over terminals (no Steiner points).
struct SpanningTree {
  std::vector<TreeEdge> edges;
  geom::Coord length = 0;  ///< sum of Manhattan edge lengths
};

/// Prim's algorithm on the implicit complete graph under the Manhattan
/// metric. O(n^2) time, O(n) space — n is a net's pin count, which tops out
/// in the hundreds. Requires at least one terminal; a single terminal
/// yields an empty tree.
SpanningTree rectilinear_mst(const std::vector<geom::Point>& terminals);

}  // namespace ocr::steiner

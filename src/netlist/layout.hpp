#pragma once
/// \file layout.hpp
/// \brief Macro-cell layout model: cells, pins, nets, obstacles.
///
/// A Layout is the router's world: placed macro-cells inside a die
/// outline, pins on cell boundaries, nets connecting pins, and rectangular
/// over-cell obstacles on the level-B layers (metal3/metal4). The model is
/// deliberately flat (index-based entity arrays) — the routers are the hot
/// path and chase ids, not pointers.

#include <string>
#include <vector>

#include "geom/layers.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "netlist/ids.hpp"

namespace ocr::netlist {

/// Which boundary of its owner cell a pin sits on. Channel routing cares:
/// pins on kNorth/kSouth feed horizontal channels, kEast/kWest vertical.
enum class PinSide : std::uint8_t { kNorth, kSouth, kEast, kWest };

std::string_view pin_side_name(PinSide side);

/// A placed macro-cell.
struct Cell {
  CellId id;
  std::string name;
  geom::Rect outline;  ///< absolute placed outline in dbu
};

/// A net terminal. Pins live on a cell boundary (owner valid) or on the
/// die boundary as an I/O pad (owner invalid).
struct Pin {
  PinId id;
  NetId net;
  CellId owner;         ///< invalid for I/O pads
  geom::Point position; ///< absolute dbu position
  PinSide side = PinSide::kNorth;
};

/// Routing priority classes used by the §2 net-partitioning policies.
enum class NetClass : std::uint8_t {
  kSignal,   ///< ordinary signal net
  kCritical, ///< timing/critical net (paper routes these in level A)
  kClock,    ///< clock/timing distribution
  kPower,    ///< power or ground
};

std::string_view net_class_name(NetClass cls);

/// A net: two or more pins that must be electrically connected.
struct Net {
  NetId id;
  std::string name;
  NetClass net_class = NetClass::kSignal;
  std::vector<PinId> pins;

  int degree() const { return static_cast<int>(pins.size()); }
};

/// A rectangular region of the layout excluded from level-B routing on
/// specific layers (limited metal3/metal4 use inside a macro-cell, or a
/// user-declared keep-out over a sensitive circuit — §1, §3).
struct Obstacle {
  geom::Rect region;
  bool blocks_metal3 = true;
  bool blocks_metal4 = true;
  std::string reason;  ///< diagnostic label ("pwr-strap", "analog-keepout")
};

/// The complete routing problem instance.
class Layout {
 public:
  explicit Layout(std::string name, geom::DesignRules rules = {})
      : name_(std::move(name)), rules_(rules) {}

  const std::string& name() const { return name_; }
  const geom::DesignRules& rules() const { return rules_; }

  /// Die outline. Level-A flows may later enlarge it when channels widen;
  /// see floorplan::assemble.
  const geom::Rect& die() const { return die_; }
  void set_die(const geom::Rect& die) { die_ = die; }

  // ---- construction -------------------------------------------------

  /// Adds a placed cell; returns its id.
  CellId add_cell(std::string cell_name, const geom::Rect& outline);

  /// Adds a net with no pins yet; returns its id.
  NetId add_net(std::string net_name, NetClass cls = NetClass::kSignal);

  /// Adds a pin at absolute \p position on \p side of \p owner (invalid
  /// owner = I/O pad) and attaches it to \p net.
  PinId add_pin(NetId net, CellId owner, const geom::Point& position,
                PinSide side);

  void add_obstacle(Obstacle obstacle);

  // ---- access --------------------------------------------------------

  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<Pin>& pins() const { return pins_; }
  const std::vector<Obstacle>& obstacles() const { return obstacles_; }

  const Cell& cell(CellId id) const { return cells_[id.index()]; }
  const Net& net(NetId id) const { return nets_[id.index()]; }
  const Pin& pin(PinId id) const { return pins_[id.index()]; }
  Net& net(NetId id) { return nets_[id.index()]; }

  /// Absolute positions of all pins of \p id.
  std::vector<geom::Point> net_pin_positions(NetId id) const;

  /// Half-perimeter wirelength bound of the net's pin bounding box — the
  /// "longest distance" net-ordering key of §3.
  geom::Coord net_hpwl(NetId id) const;

  /// Sum of placed cell areas (the floor of any achievable layout area).
  geom::Coord total_cell_area() const;

  // ---- validation ----------------------------------------------------

  /// Checks structural invariants: pins inside the die, pins on their
  /// owner's boundary, nets with >= 2 pins, cells inside the die with
  /// disjoint interiors. Returns human-readable violations (empty = valid).
  std::vector<std::string> validate() const;

 private:
  std::string name_;
  geom::DesignRules rules_;
  geom::Rect die_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<Pin> pins_;
  std::vector<Obstacle> obstacles_;
};

}  // namespace ocr::netlist

#include "netlist/stats.hpp"

#include <algorithm>

namespace ocr::netlist {

LayoutStats compute_stats(const Layout& layout) {
  LayoutStats s;
  s.name = layout.name();
  s.num_cells = static_cast<int>(layout.cells().size());
  s.num_nets = static_cast<int>(layout.nets().size());
  s.num_pins = static_cast<int>(layout.pins().size());
  if (s.num_nets > 0) {
    s.avg_pins_per_net = static_cast<double>(s.num_pins) / s.num_nets;
  }
  for (const Net& n : layout.nets()) {
    s.max_net_degree = std::max(s.max_net_degree, n.degree());
  }
  s.die_area = layout.die().area();
  s.cell_area = layout.total_cell_area();
  if (s.die_area > 0) {
    s.cell_utilization =
        static_cast<double>(s.cell_area) / static_cast<double>(s.die_area);
  }
  return s;
}

SubsetStats compute_subset_stats(const Layout& layout,
                                 const std::vector<NetId>& subset) {
  SubsetStats s;
  s.num_nets = static_cast<int>(subset.size());
  for (NetId id : subset) {
    s.num_pins += layout.net(id).degree();
  }
  if (s.num_nets > 0) {
    s.avg_pins_per_net = static_cast<double>(s.num_pins) / s.num_nets;
  }
  return s;
}

}  // namespace ocr::netlist

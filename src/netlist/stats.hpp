#pragma once
/// \file stats.hpp
/// \brief Instance statistics — the quantities of the paper's Table 1.

#include <string>
#include <vector>

#include "netlist/layout.hpp"

namespace ocr::netlist {

/// Aggregate statistics of a layout instance.
struct LayoutStats {
  std::string name;
  int num_cells = 0;
  int num_nets = 0;
  int num_pins = 0;
  double avg_pins_per_net = 0.0;
  int max_net_degree = 0;
  geom::Coord die_area = 0;
  geom::Coord cell_area = 0;
  /// Fraction of the die covered by cells (placement density).
  double cell_utilization = 0.0;
};

/// Computes LayoutStats for \p layout.
LayoutStats compute_stats(const Layout& layout);

/// Statistics of a net subset (e.g. the level-A partition of Table 1).
struct SubsetStats {
  int num_nets = 0;
  int num_pins = 0;
  double avg_pins_per_net = 0.0;
};

SubsetStats compute_subset_stats(const Layout& layout,
                                 const std::vector<NetId>& subset);

}  // namespace ocr::netlist

#include "netlist/layout.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/str.hpp"

namespace ocr::netlist {

std::string_view pin_side_name(PinSide side) {
  switch (side) {
    case PinSide::kNorth:
      return "N";
    case PinSide::kSouth:
      return "S";
    case PinSide::kEast:
      return "E";
    case PinSide::kWest:
      return "W";
  }
  return "?";
}

std::string_view net_class_name(NetClass cls) {
  switch (cls) {
    case NetClass::kSignal:
      return "signal";
    case NetClass::kCritical:
      return "critical";
    case NetClass::kClock:
      return "clock";
    case NetClass::kPower:
      return "power";
  }
  return "?";
}

CellId Layout::add_cell(std::string cell_name, const geom::Rect& outline) {
  const CellId id(static_cast<std::uint32_t>(cells_.size()));
  cells_.push_back(Cell{id, std::move(cell_name), outline});
  return id;
}

NetId Layout::add_net(std::string net_name, NetClass cls) {
  const NetId id(static_cast<std::uint32_t>(nets_.size()));
  nets_.push_back(Net{id, std::move(net_name), cls, {}});
  return id;
}

PinId Layout::add_pin(NetId net_id, CellId owner, const geom::Point& position,
                      PinSide side) {
  OCR_ASSERT(net_id.valid() && net_id.index() < nets_.size(),
             "add_pin: net does not exist");
  const PinId id(static_cast<std::uint32_t>(pins_.size()));
  pins_.push_back(Pin{id, net_id, owner, position, side});
  nets_[net_id.index()].pins.push_back(id);
  return id;
}

void Layout::add_obstacle(Obstacle obstacle) {
  obstacles_.push_back(std::move(obstacle));
}

std::vector<geom::Point> Layout::net_pin_positions(NetId id) const {
  std::vector<geom::Point> positions;
  positions.reserve(net(id).pins.size());
  for (PinId pid : net(id).pins) positions.push_back(pin(pid).position);
  return positions;
}

geom::Coord Layout::net_hpwl(NetId id) const {
  const auto positions = net_pin_positions(id);
  if (positions.empty()) return 0;
  const geom::Rect box = geom::bounding_box(positions);
  return box.width() + box.height();
}

geom::Coord Layout::total_cell_area() const {
  geom::Coord total = 0;
  for (const Cell& c : cells_) total += c.outline.area();
  return total;
}

std::vector<std::string> Layout::validate() const {
  std::vector<std::string> problems;
  const auto complain = [&problems](std::string msg) {
    problems.push_back(std::move(msg));
  };

  for (const Cell& c : cells_) {
    if (!die_.contains(c.outline)) {
      complain(util::format("cell '%s' extends outside the die",
                            c.name.c_str()));
    }
    for (const Cell& other : cells_) {
      if (other.id.value <= c.id.value) continue;
      if (c.outline.interior_overlaps(other.outline)) {
        complain(util::format("cells '%s' and '%s' overlap", c.name.c_str(),
                              other.name.c_str()));
      }
    }
  }

  for (const Net& n : nets_) {
    if (n.degree() < 2) {
      complain(util::format("net '%s' has fewer than 2 pins",
                            n.name.c_str()));
    }
    for (PinId pid : n.pins) {
      if (!pid.valid() || pid.index() >= pins_.size()) {
        complain(util::format("net '%s' references a nonexistent pin",
                              n.name.c_str()));
      } else if (pins_[pid.index()].net != n.id) {
        complain(util::format("pin of net '%s' points at a different net",
                              n.name.c_str()));
      }
    }
  }

  for (const Pin& p : pins_) {
    if (!die_.contains(p.position)) {
      complain(util::format("pin #%u lies outside the die", p.id.value));
    }
    if (p.owner.valid()) {
      if (p.owner.index() >= cells_.size()) {
        complain(util::format("pin #%u has a nonexistent owner cell",
                              p.id.value));
        continue;
      }
      const geom::Rect& box = cells_[p.owner.index()].outline;
      const bool on_boundary =
          (p.position.x == box.xlo || p.position.x == box.xhi ||
           p.position.y == box.ylo || p.position.y == box.yhi) &&
          box.contains(p.position);
      if (!on_boundary) {
        complain(util::format("pin #%u is not on its owner cell boundary",
                              p.id.value));
      }
    }
  }

  for (const Obstacle& o : obstacles_) {
    if (!die_.contains(o.region)) {
      complain(util::format("obstacle '%s' extends outside the die",
                            o.reason.c_str()));
    }
  }
  return problems;
}

}  // namespace ocr::netlist

#pragma once
/// \file ids.hpp
/// \brief Strongly-typed indices for cells, pins and nets.
///
/// Routing code indexes three parallel entity arrays; strong ids make it a
/// compile error to use a pin index where a net index is expected.

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace ocr::netlist {

namespace detail {
/// CRTP-free tagged index. \p Tag distinguishes the id families.
template <typename Tag>
struct TaggedId {
  using value_type = std::uint32_t;
  static constexpr value_type kInvalid =
      std::numeric_limits<value_type>::max();

  value_type value = kInvalid;

  constexpr TaggedId() = default;
  constexpr explicit TaggedId(value_type v) : value(v) {}

  constexpr bool valid() const { return value != kInvalid; }
  constexpr std::size_t index() const { return value; }

  friend constexpr auto operator<=>(const TaggedId&, const TaggedId&) =
      default;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, const TaggedId<Tag>& id) {
  if (!id.valid()) return os << Tag::prefix() << "<invalid>";
  return os << Tag::prefix() << id.value;
}
}  // namespace detail

struct CellTag {
  static constexpr const char* prefix() { return "cell#"; }
};
struct PinTag {
  static constexpr const char* prefix() { return "pin#"; }
};
struct NetTag {
  static constexpr const char* prefix() { return "net#"; }
};

using CellId = detail::TaggedId<CellTag>;
using PinId = detail::TaggedId<PinTag>;
using NetId = detail::TaggedId<NetTag>;

}  // namespace ocr::netlist

template <typename Tag>
struct std::hash<ocr::netlist::detail::TaggedId<Tag>> {
  std::size_t operator()(
      const ocr::netlist::detail::TaggedId<Tag>& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

#include "global/global_router.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/assert.hpp"
#include "util/str.hpp"

namespace ocr::global {
namespace {

using floorplan::MacroLayout;
using floorplan::MacroPin;
using geom::Coord;

/// A pin landed in a channel, pre-collision-resolution.
struct ChannelLanding {
  int channel = 0;
  int column = 0;
  bool top = false;  ///< true = top boundary of the channel
};

}  // namespace

GlobalRouteResult global_route(const MacroLayout& ml,
                               const std::vector<int>& nets,
                               const GlobalOptions& options) {
  GlobalRouteResult result;
  result.column_pitch = options.column_pitch;
  OCR_ASSERT(options.column_pitch > 0, "column pitch must be positive");
  result.num_columns =
      static_cast<int>(ml.die_width() / options.column_pitch);
  OCR_ASSERT(result.num_columns > 0, "die too narrow for one column");

  const int num_channels = ml.num_channels();
  result.channels.resize(static_cast<std::size_t>(num_channels));
  for (auto& problem : result.channels) {
    problem.top.assign(static_cast<std::size_t>(result.num_columns), 0);
    problem.bot.assign(static_cast<std::size_t>(result.num_columns), 0);
  }

  const auto col_of_x = [&](Coord x) {
    const Coord raw = (x - options.column_pitch / 2) / options.column_pitch;
    return static_cast<int>(
        std::clamp<Coord>(raw, 0, result.num_columns - 1));
  };
  const auto col_x = [&](int col) {
    return static_cast<Coord>(col) * options.column_pitch +
           options.column_pitch / 2;
  };

  // Feedthrough slot usage: (row, column) pairs already reserved.
  std::set<std::pair<int, int>> used_feed_slots;

  // Landings per channel/boundary/column, resolved to the nearest free
  // column when nets collide.
  const auto place_landing = [&](int net, const ChannelLanding& landing)
      -> bool {
    auto& problem = result.channels[static_cast<std::size_t>(
        landing.channel)];
    auto& side = landing.top ? problem.top : problem.bot;
    // Search outward from the requested column for a slot that is free or
    // already ours (same net merges).
    for (int delta = 0; delta < result.num_columns; ++delta) {
      for (const int sign : {+1, -1}) {
        if (delta == 0 && sign < 0) continue;
        const int col = landing.column + sign * delta;
        if (col < 0 || col >= result.num_columns) continue;
        auto& slot = side[static_cast<std::size_t>(col)];
        if (slot == 0 || slot == net + 1) {
          slot = net + 1;
          return true;
        }
      }
    }
    return false;
  };

  // Pins grouped by net for the selected set.
  std::vector<std::vector<const MacroPin*>> net_pins(ml.nets().size());
  for (const MacroPin& pin : ml.pins()) {
    net_pins[static_cast<std::size_t>(pin.net)].push_back(&pin);
  }

  for (int net : nets) {
    const auto& pins = net_pins[static_cast<std::size_t>(net)];
    if (pins.size() < 2) continue;  // trivially done

    // Map pins into channel landings.
    std::vector<ChannelLanding> landings;
    Coord x_sum = 0;
    int c_min = num_channels;
    int c_max = -1;
    for (const MacroPin* pin : pins) {
      const int channel = ml.pin_channel(*pin);
      const Coord x = ml.pin_x(*pin);
      ChannelLanding landing;
      landing.channel = channel;
      landing.column = col_of_x(x);
      // A pin on a cell's north edge sits *below* its channel -> bottom
      // boundary; south edge sits above its channel -> top boundary.
      // Pads: bottom die edge is the bottom boundary of channel 0; top die
      // edge the top boundary of the last channel.
      if (pin->cell < 0) {
        landing.top = pin->north;
      } else {
        landing.top = !pin->north;
      }
      landings.push_back(landing);
      x_sum += x;
      c_min = std::min(c_min, channel);
      c_max = std::max(c_max, channel);
    }
    const Coord x_target = x_sum / static_cast<Coord>(pins.size());

    // Feedthroughs for the crossed rows: crossing row r connects channel r
    // and channel r+1.
    bool net_ok = true;
    for (int row = c_min; row < c_max; ++row) {
      const auto gaps = ml.row_gaps(row);
      // Candidate columns: free slots inside gaps, nearest to x_target.
      int best_col = -1;
      Coord best_dist = 0;
      for (const geom::Interval& gap : gaps) {
        // Keep half a pitch clear of the gap edges (cell boundaries).
        const Coord lo = gap.lo + options.column_pitch / 2;
        const Coord hi = gap.hi - options.column_pitch / 2;
        if (lo > hi) continue;
        const int col_lo = col_of_x(lo);
        const int col_hi = col_of_x(hi);
        for (int col = col_lo; col <= col_hi; ++col) {
          const Coord x = col_x(col);
          if (x < lo || x > hi) continue;
          if (used_feed_slots.count({row, col}) > 0) continue;
          const Coord dist = std::abs(x - x_target);
          if (best_col < 0 || dist < best_dist) {
            best_col = col;
            best_dist = dist;
          }
        }
      }
      if (best_col < 0) {
        result.problems.push_back(util::format(
            "net %d: no free feedthrough slot through row %d", net, row));
        net_ok = false;
        break;
      }
      used_feed_slots.insert({row, best_col});
      result.feedthroughs.push_back(Feedthrough{net, row, best_col});
      result.feedthrough_length += ml.row_height(row);
      result.feedthrough_vias += 2;
      // The feedthrough lands as a top-boundary pin of the lower channel
      // and a bottom-boundary pin of the upper channel.
      landings.push_back(ChannelLanding{row, best_col, true});
      landings.push_back(ChannelLanding{row + 1, best_col, false});
    }
    if (!net_ok) {
      result.success = false;
      continue;
    }

    // Commit landings, resolving column collisions.
    for (const ChannelLanding& landing : landings) {
      if (!place_landing(net, landing)) {
        result.problems.push_back(util::format(
            "net %d: channel %d boundary saturated", net,
            landing.channel));
        result.success = false;
      }
    }
  }

  return result;
}

}  // namespace ocr::global

#pragma once
/// \file global_router.hpp
/// \brief Level-A global routing: nets -> channels + feedthroughs.
///
/// The paper performs level-A "global and detailed routing using existing
/// channel routing packages" (§2). This module supplies the global half
/// for row-based macro layouts: each selected net's pins map into the
/// horizontal channels between rows; nets spanning several channels are
/// connected by vertical *feedthroughs* through the gaps between cells,
/// one reserved column per crossing. The output is one ChannelProblem per
/// channel (detail-routed by channel::route_greedy / route_left_edge) plus
/// feedthrough bookkeeping for wirelength/via metrics.

#include <string>
#include <vector>

#include "channel/problem.hpp"
#include "floorplan/macro_layout.hpp"

namespace ocr::global {

struct GlobalOptions {
  /// Column pitch in dbu; defaults to the metal1/metal2 channel pitch.
  geom::Coord column_pitch = 6;
};

/// A reserved feedthrough: net crossing a cell row at a column.
struct Feedthrough {
  int net = 0;   ///< MacroLayout net index
  int row = 0;   ///< row crossed
  int column = 0;
};

struct GlobalRouteResult {
  bool success = true;
  std::vector<std::string> problems;

  /// One problem per channel (index = channel id, 0 = below row 0).
  /// Channel net numbers are MacroLayout net index + 1.
  std::vector<channel::ChannelProblem> channels;
  int num_columns = 0;
  geom::Coord column_pitch = 0;

  std::vector<Feedthrough> feedthroughs;
  /// Total vertical wire spent crossing rows, in dbu.
  long long feedthrough_length = 0;
  /// Vias at feedthrough ends (2 per crossing: channel wire to
  /// feedthrough wire on each side).
  int feedthrough_vias = 0;
};

/// Globally routes \p nets (MacroLayout net indices) of \p ml.
GlobalRouteResult global_route(const floorplan::MacroLayout& ml,
                               const std::vector<int>& nets,
                               const GlobalOptions& options = {});

}  // namespace ocr::global

/// \file ocr_route.cpp
/// \brief Command-line driver for the over-cell routing flows.
///
/// Examples:
///   ocr_route --example ami33                      # proposed flow
///   ocr_route --example ex3 --flow 2layer          # baseline
///   ocr_route --input chip.oclay --svg routed.svg  # your own instance
///   ocr_route --example xerox --partition length=2000
///   ocr_route --example ami33 --save ami33.oclay   # export the instance

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>

#include "flow/flow.hpp"
#include "flow/check.hpp"
#include "flow/run.hpp"
#include "io/layout_io.hpp"
#include "io/route_io.hpp"
#include "partition/partition.hpp"
#include "service/job.hpp"
#include "report/tables.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/manifest.hpp"
#include "util/metrics.hpp"
#include "util/profile.hpp"
#include "util/str.hpp"
#include "util/trace.hpp"
#include "viz/svg.hpp"

namespace {

using namespace ocr;

void usage() {
  std::puts(
      "usage: ocr_route (--example ami33|xerox|ex3|random[:seed] | "
      "--input FILE)\n"
      "                 [--flow overcell|2layer|4layer|50pct]\n"
      "                 [--partition class|length=<dbu>|allb]\n"
      "                 [--svg FILE] [--save FILE] [--wiring FILE] [--check]\n"
      "                 [--threads N] [--engine-mode speculative|sharded|"
      "auto]\n"
      "                 [--engine-hint MANIFEST]\n"
      "                 [--trace FILE] [--verbose]\n"
      "                 [--profile FILE] [--metrics-json FILE]\n"
      "                 [--manifest FILE]\n"
      "                 [--deadline-ms N] [--net-effort N]\n"
      "                 [--fail-policy abort|degrade|partial] [--faults SPEC]\n"
      "\n"
      "Flows: overcell = the paper's two-level methodology (default);\n"
      "       2layer   = all nets channel-routed on metal1/2;\n"
      "       4layer   = all nets via the multilayer channel router;\n"
      "       50pct    = the paper's optimistic Table-3 area model.\n"
      "Partitions (overcell flow only): class = critical/clock/power nets\n"
      "to level A (default); length=<dbu> = nets with half-perimeter <=\n"
      "dbu to level A; allb = everything over-cell.\n"
      "--threads N routes level B with N engine workers (0 = one per\n"
      "hardware thread; results are identical for any N). --engine-mode\n"
      "picks the parallel dispatch: speculative (default) races workers\n"
      "and re-routes collisions; sharded batches geometrically disjoint\n"
      "nets with zero speculation; auto plans the shard schedule and\n"
      "falls back to speculative when batches are too short. Every mode\n"
      "is bit-identical to --threads 1. --engine-hint MANIFEST feeds\n"
      "auto mode the measured abort/escape rates from a prior run's\n"
      "--manifest file (unreadable or unrelated files fall back to the\n"
      "static heuristic). --trace FILE\n"
      "writes per-net engine trace events as JSON.\n"
      "\n"
      "Observability (docs/OBSERVABILITY.md): --profile FILE writes a\n"
      "Chrome trace-event JSON of stage and engine spans (open it at\n"
      "https://ui.perfetto.dev); --metrics-json FILE dumps the metrics\n"
      "registry snapshot; --manifest FILE writes the run manifest\n"
      "(config + provenance + stage times + metrics + outcome).\n"
      "\n"
      "Robustness: --deadline-ms N cancels the run after N wall-clock ms\n"
      "(cancelled nets are reported unrouted); --net-effort N caps each\n"
      "net's search at N vertex expansions; --fail-policy picks what a\n"
      "failure means: abort = any problem exits 1, degrade (default) =\n"
      "serial re-route -> rip-up -> mark unrouted, partial = mark\n"
      "unrouted immediately. --faults SPEC arms the fault-injection\n"
      "registry (see util/fault.hpp; also via OCR_FAULTS env).\n"
      "Exit codes: 0 = clean, 1 = failed, 2 = usage, 3 = partial.");
}

struct Args {
  std::string example;
  std::string input;
  std::string flow = "overcell";
  std::string partition = "class";
  std::string svg;
  std::string save;
  std::string wiring;
  std::string trace;
  std::string profile;
  std::string metrics_json;
  std::string manifest;
  int threads = 1;
  std::string engine_mode = "speculative";
  std::string engine_hint;
  bool verbose = false;
  bool check = false;
  long long deadline_ms = 0;
  long long net_effort = 0;
  flow::FailPolicy fail_policy = flow::FailPolicy::kDegrade;
  std::string faults;
};

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--example") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.example = v;
    } else if (arg == "--input") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.input = v;
    } else if (arg == "--flow") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.flow = v;
    } else if (arg == "--partition") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.partition = v;
    } else if (arg == "--svg") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.svg = v;
    } else if (arg == "--save") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.save = v;
    } else if (arg == "--wiring") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.wiring = v;
    } else if (arg == "--trace") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.trace = v;
    } else if (arg == "--profile") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.profile = v;
    } else if (arg == "--metrics-json") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.metrics_json = v;
    } else if (arg == "--manifest") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.manifest = v;
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.threads = std::atoi(v);
    } else if (arg == "--engine-mode") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      if (std::strcmp(v, "speculative") != 0 &&
          std::strcmp(v, "sharded") != 0 && std::strcmp(v, "auto") != 0) {
        std::fprintf(stderr, "unknown engine mode '%s'\n", v);
        return std::nullopt;
      }
      args.engine_mode = v;
    } else if (arg == "--engine-hint") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.engine_hint = v;
    } else if (arg == "--deadline-ms") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.deadline_ms = std::atoll(v);
    } else if (arg == "--net-effort") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.net_effort = std::atoll(v);
    } else if (arg == "--fail-policy") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      if (std::strcmp(v, "abort") == 0) {
        args.fail_policy = flow::FailPolicy::kAbort;
      } else if (std::strcmp(v, "degrade") == 0) {
        args.fail_policy = flow::FailPolicy::kDegrade;
      } else if (std::strcmp(v, "partial") == 0) {
        args.fail_policy = flow::FailPolicy::kPartial;
      } else {
        std::fprintf(stderr, "unknown fail policy '%s'\n", v);
        return std::nullopt;
      }
    } else if (arg == "--faults") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.faults = v;
    } else if (arg == "--verbose") {
      args.verbose = true;
    } else if (arg == "--check") {
      args.check = true;
    } else if (arg == "--help" || arg == "-h") {
      return std::nullopt;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (args.example.empty() == args.input.empty()) {
    std::fputs("exactly one of --example / --input is required\n", stderr);
    return std::nullopt;
  }
  return args;
}

/// The CLI's knobs as a service JobSpec, so instance construction and
/// partitioning go through the same code path as the daemon's jobs
/// (service/job.hpp). `faults` keeps the CLI-only "" = inherit-OCR_FAULTS
/// semantics; the flow kind is parsed separately to preserve the usage
/// (exit 2) contract for unknown names.
service::JobSpec spec_from_args(const Args& args) {
  service::JobSpec spec;
  spec.example = args.example;
  spec.input = args.input;
  spec.partition = args.partition;
  spec.threads = args.threads;
  spec.engine_mode = args.engine_mode;
  spec.fail_policy = args.fail_policy;
  spec.deadline_ms = args.deadline_ms;
  spec.net_effort = args.net_effort;
  spec.faults = args.faults;
  return spec;
}

void print_metrics(const flow::RunReport& report) {
  const flow::FlowMetrics& m = report.metrics;
  std::printf("flow:              %s\n", m.flow_name.c_str());
  std::printf("instance:          %s\n", m.example_name.c_str());
  std::printf("layout:            %lld x %lld  (area %s)\n",
              static_cast<long long>(m.die_width),
              static_cast<long long>(m.die_height),
              util::with_commas(m.layout_area).c_str());
  std::printf("wire length:       %s dbu\n",
              util::with_commas(m.wire_length).c_str());
  std::printf("vias:              %d\n", m.vias);
  std::printf("channel tracks:    %d\n", m.total_channel_tracks);
  if (m.levelb_nets > 0) {
    std::printf("level A / B nets:  %d / %d\n", m.levela_nets,
                m.levelb_nets);
    std::printf("level B complete:  %.1f%%\n",
                100.0 * m.levelb_completion);
    std::printf("engine threads:    %d (%s)\n", m.levelb_threads,
                m.levelb_engine_mode.c_str());
    if (!m.levelb_auto_source.empty() && m.levelb_auto_source != "none") {
      std::printf("engine auto:       decided from %s hint\n",
                  m.levelb_auto_source.c_str());
    }
    std::printf("engine vertices:   %s\n",
                util::with_commas(m.levelb_vertices).c_str());
    if (m.levelb_engine_mode == "sharded") {
      std::printf("engine batches:    %lld (%lld batch commits, "
                  "%lld boundary re-routes)\n",
                  m.levelb_batches, m.levelb_sharded_commits,
                  m.levelb_boundary_nets);
      std::printf("engine waste:      %s vertices, %.1f ms search "
                  "(boundary escapes)\n",
                  util::with_commas(m.levelb_sharded_wasted_vertices)
                      .c_str(),
                  m.levelb_sharded_wasted_search_us / 1000.0);
      std::printf("engine copies:     %lld snapshot grids\n",
                  m.levelb_grid_copies);
    } else if (m.levelb_threads > 1) {
      std::printf("engine commits:    %lld speculative, %lld re-routed\n",
                  m.levelb_speculative_commits, m.levelb_speculation_aborts);
      std::printf("engine waste:      %s vertices, %.1f ms search, "
                  "%.1f ms queued\n",
                  util::with_commas(m.levelb_wasted_vertices).c_str(),
                  m.levelb_wasted_search_us / 1000.0,
                  m.levelb_queue_wait_us / 1000.0);
      std::printf("engine copies:     %lld snapshot grids\n",
                  m.levelb_grid_copies);
    }
  }
  if (m.peak_rss_kb > 0 || m.tig_grid_bytes > 0) {
    std::printf("memory:            %s KB peak RSS, %s grid bytes\n",
                util::with_commas(m.peak_rss_kb).c_str(),
                util::with_commas(m.tig_grid_bytes).c_str());
  }
  if (m.degrade_fault_reroutes > 0 || m.degrade_ripup_recovered > 0 ||
      m.degrade_fault_drops > 0 || m.unrouted_nets > 0 ||
      m.cancelled_nets > 0 || m.budget_nets > 0 ||
      m.pool_task_failures > 0 || m.faults_injected > 0 ||
      report.deadline_fired) {
    std::printf("degradation:       %lld serial re-routes, %d recovered "
                "by rip-up, %lld dropped\n",
                m.degrade_fault_reroutes, m.degrade_ripup_recovered,
                m.degrade_fault_drops);
    std::printf("  unrouted nets:   %d (%d cancelled, %d out of budget)\n",
                m.unrouted_nets, m.cancelled_nets, m.budget_nets);
    if (m.faults_injected > 0) {
      std::printf("  faults injected: %lld\n", m.faults_injected);
    }
    if (m.pool_task_failures > 0) {
      std::printf("  task failures:   %lld\n", m.pool_task_failures);
    }
    if (report.deadline_fired) std::puts("  deadline:        fired");
  }
  if (!m.success) {
    std::printf("status:            INCOMPLETE (%zu problems)\n",
                m.problems.size());
    for (std::size_t i = 0; i < m.problems.size() && i < 5; ++i) {
      std::printf("  - %s\n", m.problems[i].c_str());
    }
  } else {
    std::printf("status:            %s\n",
                flow::run_status_name(report.status));
  }
  if (!report.error.ok()) {
    std::printf("error:             %s\n", report.error.to_string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) {
    usage();
    return 2;
  }
  if (args->verbose) util::set_log_level(util::LogLevel::kInfo);

  util::Profiler& profiler = util::Profiler::global();
  if (!args->profile.empty() || !args->manifest.empty()) {
    profiler.enable();
  }

  // Arm fault injection before the input parse so io.* sites fire too
  // (flow::run re-arms the same spec for the routing stages).
  {
    util::FaultRegistry& registry = util::FaultRegistry::global();
    const util::Status armed = args->faults == "-"
                                   ? (registry.clear(), util::Status())
                               : args->faults.empty()
                                   ? registry.configure_from_env()
                                   : registry.configure(args->faults);
    if (!armed.ok()) {
      std::fprintf(stderr, "error: %s\n", armed.to_string().c_str());
      return 1;
    }
  }

  const service::JobSpec spec = spec_from_args(*args);
  auto ml = [&] {
    OCR_SPAN("cli.parse");
    std::vector<std::string> warnings;
    auto instance = service::make_instance(spec, &warnings);
    for (const std::string& warning : warnings) {
      std::fprintf(stderr, "warning: %s\n", warning.c_str());
    }
    return instance;
  }();
  if (!ml.ok()) {
    std::fprintf(stderr, "error: %s\n", ml.status().to_string().c_str());
    return 1;
  }

  if (!args->save.empty()) {
    if (!io::save_layout(*ml, args->save)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   args->save.c_str());
      return 1;
    }
    std::printf("saved instance to %s\n", args->save.c_str());
  }

  util::TraceSink trace;
  trace.set_mirror(profiler.enabled() ? &profiler : nullptr);
  flow::FlowArtifacts artifacts;
  flow::RunOptions ropt;
  ropt.flow.levelb_threads = args->threads;
  ropt.flow.levelb_engine_mode = args->engine_mode;
  ropt.flow.levelb_engine_hint_manifest = args->engine_hint;
  ropt.fail_policy = args->fail_policy;
  ropt.deadline_ms = args->deadline_ms;
  ropt.net_effort = args->net_effort;
  ropt.faults = args->faults;
  ropt.artifacts = &artifacts;
  if (!args->trace.empty()) ropt.trace = &trace;

  partition::NetPartition part;
  if (args->flow == "overcell") {
    ropt.kind = flow::FlowKind::kOverCell;
    OCR_SPAN("cli.partition");
    const auto zero = ml->assemble(std::vector<geom::Coord>(
        static_cast<std::size_t>(ml->num_channels()), 0));
    auto made = service::make_partition(args->partition, zero);
    if (!made.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   made.status().to_string().c_str());
      return 1;
    }
    part = std::move(made).value();
  } else if (args->flow == "2layer") {
    ropt.kind = flow::FlowKind::kTwoLayer;
  } else if (args->flow == "4layer") {
    ropt.kind = flow::FlowKind::kFourLayer;
  } else if (args->flow == "50pct") {
    ropt.kind = flow::FlowKind::kFiftyPercent;
  } else {
    std::fprintf(stderr, "unknown flow '%s'\n", args->flow.c_str());
    return 2;
  }

  const flow::RunReport report = flow::run(*ml, part, ropt);

  // Reporting, checks and artifact writes are one "cli.report" stage. A
  // failure in here overrides the flow's exit code with 1; the
  // observability outputs below are still written so the manifest records
  // what actually happened.
  const std::optional<int> output_failure = [&]() -> std::optional<int> {
    OCR_SPAN("cli.report");
    print_metrics(report);
    if (args->verbose) {
      std::fputs(report::render_metrics_summary(
                     util::MetricsRegistry::global().snapshot())
                     .c_str(),
                 stdout);
    }

    if (!args->trace.empty()) {
      if (!trace.write_json_file(args->trace)) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     args->trace.c_str());
        return 1;
      }
      std::printf("wrote %s (%zu trace events)\n", args->trace.c_str(),
                  trace.size());
    }

    if (args->check && args->flow == "overcell") {
      const auto violations = flow::check_over_cell_result(artifacts);
      if (violations.empty()) {
        std::puts("check:             clean (no violations)");
      } else {
        std::printf("check:             %zu violations\n",
                    violations.size());
        for (std::size_t i = 0; i < violations.size() && i < 10; ++i) {
          std::printf("  - %s\n", violations[i].c_str());
        }
        return 1;
      }
    }

    if (!args->wiring.empty() && args->flow == "overcell") {
      if (!io::save_wiring(artifacts.levelb, args->wiring)) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     args->wiring.c_str());
        return 1;
      }
      std::printf("wrote %s (level-B wiring)\n", args->wiring.c_str());
    }

    if (!args->svg.empty()) {
      const std::string svg =
          args->flow == "overcell"
              ? viz::render_levelb_routing(artifacts)
              : viz::render_layout(artifacts.layout);
      if (!viz::write_file(args->svg, svg)) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     args->svg.c_str());
        return 1;
      }
      std::printf("wrote %s\n", args->svg.c_str());
    }
    return std::nullopt;
  }();
  const int exit_code = output_failure.value_or(report.exit_code());

  if (!args->metrics_json.empty()) {
    const util::MetricsSnapshot snapshot =
        util::MetricsRegistry::global().snapshot();
    if (!snapshot.write_json_file(args->metrics_json)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   args->metrics_json.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu counters, %zu gauges, %zu histograms)\n",
                args->metrics_json.c_str(), snapshot.counters.size(),
                snapshot.gauges.size(), snapshot.histograms.size());
  }

  if (!args->profile.empty()) {
    if (!profiler.write_chrome_json(args->profile)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   args->profile.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu profile records; open at "
                "https://ui.perfetto.dev)\n",
                args->profile.c_str(), profiler.records().size());
  }

  if (!args->manifest.empty()) {
    util::RunManifest manifest("ocr_route");
    manifest.add_config("flow", args->flow);
    manifest.add_config("partition", args->partition);
    manifest.add_config("threads", args->threads);
    manifest.add_config("engine_mode", args->engine_mode);
    if (!args->engine_hint.empty()) {
      manifest.add_config("engine_hint", args->engine_hint);
    }
    manifest.add_config("fail_policy",
                        flow::fail_policy_name(args->fail_policy));
    manifest.add_config("deadline_ms", args->deadline_ms);
    manifest.add_config("net_effort", args->net_effort);
    if (!args->faults.empty()) manifest.add_config("faults", args->faults);
    manifest.add_provenance(
        "instance", args->input.empty() ? args->example : args->input);
    manifest.add_outcome("status", flow::run_status_name(report.status));
    manifest.add_outcome("exit_code", exit_code);
    manifest.add_outcome("deadline_fired", report.deadline_fired);
    manifest.add_outcome(
        "problems", static_cast<long long>(report.metrics.problems.size()));
    manifest.capture_stages(profiler);
    manifest.capture_metrics(util::MetricsRegistry::global());
    if (!manifest.write_json_file(args->manifest)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   args->manifest.c_str());
      return 1;
    }
    std::printf("wrote %s (run manifest)\n", args->manifest.c_str());
  }

  return exit_code;
}

/// \file ocr_served.cpp
/// \brief The routing-service daemon: JSONL jobs in, JSONL results out.
///
/// Examples:
///   ocr_served < jobs.jsonl > results.jsonl       # batch over stdin
///   ocr_served --workers 4 --queue-limit 8
///   ocr_served --socket /tmp/ocr.sock             # serve connections
///
/// Every input line is one job request (io/job_io.hpp schema); every
/// line written back is one result. Responses are emitted as jobs
/// complete, so they may arrive out of submission order — correlate by
/// `id`. Every request produces exactly one response: malformed lines
/// and admission rejections answer immediately with exit_class 2, job
/// failures with exit_class 1. On EOF the daemon drains every accepted
/// job, then exits 0. See docs/SERVICE.md for the protocol contract.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "io/job_io.hpp"
#include "service/executor.hpp"
#include "service/job.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"

namespace {

using namespace ocr;

void usage() {
  std::puts(
      "usage: ocr_served [--workers N] [--queue-limit N]\n"
      "                  [--max-nets N] [--reject-congestion X]\n"
      "                  [--downtier-congestion X]\n"
      "                  [--downtier-net-effort N]\n"
      "                  [--socket PATH] [--metrics-json FILE] [--verbose]\n"
      "\n"
      "Routing-as-a-service daemon. Reads one JSON job request per line\n"
      "from stdin (or from connections on --socket PATH) and writes one\n"
      "JSON result per line to stdout (or back on the connection) as\n"
      "jobs complete. Results can arrive out of submission order;\n"
      "correlate by the request's \"id\". Request/response schemas are\n"
      "documented in docs/SERVICE.md.\n"
      "\n"
      "--workers N runs N jobs concurrently (default 1). --queue-limit N\n"
      "bounds the pending-job queue (default 16): submissions beyond the\n"
      "bound are rejected immediately (exit_class 2), never queued\n"
      "indefinitely. --max-nets / --reject-congestion reject oversized or\n"
      "hopeless instances before routing; --downtier-congestion admits\n"
      "congested instances with the per-net effort capped at\n"
      "--downtier-net-effort. On stdin EOF the daemon finishes every\n"
      "accepted job and exits 0.");
}

struct Args {
  int workers = 1;
  std::size_t queue_limit = 16;
  int max_nets = 0;
  double reject_congestion = 0.0;
  double downtier_congestion = 0.0;
  long long downtier_net_effort = 100000;
  std::string socket_path;
  std::string metrics_json;
  bool verbose = false;
};

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.workers = std::atoi(v);
    } else if (arg == "--queue-limit") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      const long long limit = std::atoll(v);
      if (limit < 1) {
        std::fputs("--queue-limit must be >= 1\n", stderr);
        return std::nullopt;
      }
      args.queue_limit = static_cast<std::size_t>(limit);
    } else if (arg == "--max-nets") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.max_nets = std::atoi(v);
    } else if (arg == "--reject-congestion") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.reject_congestion = std::atof(v);
    } else if (arg == "--downtier-congestion") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.downtier_congestion = std::atof(v);
    } else if (arg == "--downtier-net-effort") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.downtier_net_effort = std::atoll(v);
    } else if (arg == "--socket") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.socket_path = v;
    } else if (arg == "--metrics-json") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.metrics_json = v;
    } else if (arg == "--verbose") {
      args.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      return std::nullopt;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return std::nullopt;
    }
  }
  return args;
}

service::JobExecutor::Options executor_options(const Args& args) {
  service::JobExecutor::Options options;
  options.workers = args.workers;
  options.admission.queue_limit = args.queue_limit;
  options.admission.max_nets = args.max_nets;
  options.admission.reject_congestion = args.reject_congestion;
  options.admission.downtier_congestion = args.downtier_congestion;
  options.admission.downtier_net_effort = args.downtier_net_effort;
  return options;
}

io::JobResponse error_response(const std::string& id, const char* status,
                               int exit_class, const std::string& error) {
  io::JobResponse response;
  response.id = id;
  response.status = status;
  response.exit_class = exit_class;
  response.error = error;
  return response;
}

/// Serializes response lines from worker threads onto one output.
class ResponseWriter {
 public:
  virtual ~ResponseWriter() = default;
  void write(const io::JobResponse& response) {
    const std::string line = io::render_job_response(response);
    const std::lock_guard<std::mutex> lock(mu_);
    write_line(line);
    ++written_;
  }
  long long written() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return written_;
  }

 private:
  /// Called with mu_ held.
  virtual void write_line(const std::string& line) = 0;

  mutable std::mutex mu_;
  long long written_ = 0;
};

class StdoutWriter : public ResponseWriter {
 private:
  void write_line(const std::string& line) override {
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
};

class FdWriter : public ResponseWriter {
 public:
  explicit FdWriter(int fd) : fd_(fd) {}

 private:
  void write_line(const std::string& line) override {
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::write(fd_, out.data() + off, out.size() - off);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        OCR_WARN() << "ocr_served: dropped response for a closed connection";
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

  int fd_;
};

/// Decodes, validates, materializes and submits one request line.
/// Exactly one response is guaranteed: immediately on decode/materialize
/// failure or admission rejection, from a worker otherwise.
void handle_line(const std::string& line, service::JobExecutor& executor,
                 ResponseWriter& writer) {
  auto request = io::parse_job_request(line);
  if (!request.ok()) {
    writer.write(error_response("", "rejected", 2,
                                request.status().to_string()));
    return;
  }
  auto spec = service::spec_from_request(*request);
  if (!spec.ok()) {
    writer.write(error_response(request->id, "rejected", 2,
                                spec.status().to_string()));
    return;
  }
  auto job = service::materialize(*spec);
  if (!job.ok()) {
    // The instance itself is broken (unknown example, unreadable file):
    // that is a job failure, not an admission decision — same contract
    // as the CLI's exit 1.
    writer.write(
        error_response(spec->id, "failed", 1, job.status().to_string()));
    return;
  }
  executor.submit(std::move(job).value(), [&writer](service::JobResult r) {
    writer.write(service::to_response(r));
  });
}

/// Whitespace-only lines are skipped, not errors (trailing newlines).
bool blank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

/// Batch mode: stdin -> stdout, drain on EOF.
int serve_stdin(const Args& args) {
  service::JobExecutor executor(executor_options(args));
  StdoutWriter writer;
  long long requests = 0;
  std::string line;
  for (int c = std::getchar(); c != EOF; c = std::getchar()) {
    if (c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    if (!blank(line)) {
      ++requests;
      handle_line(line, executor, writer);
    }
    line.clear();
  }
  if (!blank(line)) {
    ++requests;
    handle_line(line, executor, writer);
  }
  executor.drain();
  if (args.verbose) {
    std::fprintf(stderr, "ocr_served: %lld requests, %lld responses\n",
                 requests, writer.written());
  }
  return writer.written() == requests ? 0 : 1;
}

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

/// Socket mode: one connection at a time; each connection is its own
/// batch (drained before the next accept). SIGINT/SIGTERM exit cleanly.
int serve_socket(const Args& args) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("ocr_served: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (args.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "ocr_served: socket path too long '%s'\n",
                 args.socket_path.c_str());
    ::close(listener);
    return 2;
  }
  std::strncpy(addr.sun_path, args.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(args.socket_path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 8) != 0) {
    std::perror("ocr_served: bind/listen");
    ::close(listener);
    return 1;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  service::JobExecutor executor(executor_options(args));
  while (g_stop == 0) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      std::perror("ocr_served: accept");
      break;
    }
    FdWriter writer(conn);
    std::string line;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(conn, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      for (ssize_t i = 0; i < n; ++i) {
        if (buf[i] != '\n') {
          line.push_back(buf[i]);
          continue;
        }
        if (!blank(line)) handle_line(line, executor, writer);
        line.clear();
      }
    }
    if (!blank(line)) handle_line(line, executor, writer);
    executor.drain();  // every response out before the connection closes
    ::close(conn);
  }
  ::close(listener);
  ::unlink(args.socket_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) {
    usage();
    return 2;
  }
  if (args->verbose) util::set_log_level(util::LogLevel::kInfo);

  const int code =
      args->socket_path.empty() ? serve_stdin(*args) : serve_socket(*args);

  if (!args->metrics_json.empty()) {
    const util::MetricsSnapshot snapshot =
        util::MetricsRegistry::global().snapshot();
    if (!snapshot.write_json_file(args->metrics_json)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   args->metrics_json.c_str());
      return 1;
    }
  }
  return code;
}

/// \file ocr_served.cpp
/// \brief The routing-service daemon: JSONL jobs in, JSONL results out.
///
/// Examples:
///   ocr_served < jobs.jsonl > results.jsonl       # batch over stdin
///   ocr_served --workers 4 --queue-limit 8
///   ocr_served --journal wal.jsonl --recover      # crash-safe serving
///   ocr_served --socket /tmp/ocr.sock             # serve connections
///
/// Every input line is one job request (io/job_io.hpp schema); every
/// line written back is one result. Responses are emitted as jobs
/// complete, so they may arrive out of submission order — correlate by
/// `id`. Every request produces exactly one response: malformed lines
/// and admission rejections answer immediately with exit_class 2, job
/// failures with exit_class 1. On EOF the daemon drains every accepted
/// job, then exits 0.
///
/// With `--journal PATH` every job-state transition is written ahead to
/// an append-only JSONL log; `--recover` replays it on startup —
/// re-running unfinished jobs, re-emitting responses whose delivery was
/// not recorded (flagged `"replayed":true`), and deduplicating resent
/// ids that already completed. SIGTERM/SIGINT switch to drain mode:
/// stop admitting, finish in-flight work within `--drain-deadline-ms`
/// (abandoned jobs stay journaled for the next `--recover`), and exit 0
/// on a clean drain. See docs/SERVICE.md for the full failure model.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "io/job_io.hpp"
#include "service/executor.hpp"
#include "service/job.hpp"
#include "service/journal.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/manifest.hpp"
#include "util/metrics.hpp"

namespace {

using namespace ocr;

void usage() {
  std::puts(
      "usage: ocr_served [--workers N] [--queue-limit N]\n"
      "                  [--max-nets N] [--reject-congestion X]\n"
      "                  [--downtier-congestion X]\n"
      "                  [--downtier-net-effort N]\n"
      "                  [--journal FILE] [--recover]\n"
      "                  [--drain-deadline-ms N]\n"
      "                  [--retry-max N] [--retry-base-ms N]\n"
      "                  [--retry-seed N] [--hang-ms N]\n"
      "                  [--service-faults SPEC] [--manifest FILE]\n"
      "                  [--socket PATH] [--metrics-json FILE] [--verbose]\n"
      "\n"
      "Routing-as-a-service daemon. Reads one JSON job request per line\n"
      "from stdin (or from connections on --socket PATH) and writes one\n"
      "JSON result per line to stdout (or back on the connection) as\n"
      "jobs complete. Results can arrive out of submission order;\n"
      "correlate by the request's \"id\". Request/response schemas are\n"
      "documented in docs/SERVICE.md.\n"
      "\n"
      "--workers N runs N jobs concurrently (default 1). --queue-limit N\n"
      "bounds the pending-job queue (default 16): submissions beyond the\n"
      "bound are rejected immediately (exit_class 2) unless retries are\n"
      "enabled. --max-nets / --reject-congestion reject oversized or\n"
      "hopeless instances before routing; --downtier-congestion admits\n"
      "congested instances with the per-net effort capped at\n"
      "--downtier-net-effort. On stdin EOF the daemon finishes every\n"
      "accepted job and exits 0.\n"
      "\n"
      "Crash safety (stdin mode): --journal FILE write-ahead-logs every\n"
      "job transition; --recover replays it on startup (exactly-once per\n"
      "id). --retry-max N re-runs transiently failed jobs up to N total\n"
      "attempts with exponential backoff from --retry-base-ms (jittered\n"
      "deterministically from --retry-seed). --hang-ms N supervises\n"
      "workers: a frozen job is cancelled and retried. SIGTERM/SIGINT\n"
      "drain within --drain-deadline-ms (default 5000). --service-faults\n"
      "arms service-layer chaos sites (also: OCR_SERVICE_FAULTS env).");
}

struct Args {
  int workers = 1;
  std::size_t queue_limit = 16;
  int max_nets = 0;
  double reject_congestion = 0.0;
  double downtier_congestion = 0.0;
  long long downtier_net_effort = 100000;
  std::string journal_path;
  bool recover = false;
  long long drain_deadline_ms = 5000;
  int retry_max = 1;
  long long retry_base_ms = 10;
  long long retry_seed = 1;
  long long hang_ms = 0;
  std::string service_faults;
  std::string manifest_path;
  std::string socket_path;
  std::string metrics_json;
  bool verbose = false;
};

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.workers = std::atoi(v);
    } else if (arg == "--queue-limit") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      const long long limit = std::atoll(v);
      if (limit < 1) {
        std::fputs("--queue-limit must be >= 1\n", stderr);
        return std::nullopt;
      }
      args.queue_limit = static_cast<std::size_t>(limit);
    } else if (arg == "--max-nets") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.max_nets = std::atoi(v);
    } else if (arg == "--reject-congestion") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.reject_congestion = std::atof(v);
    } else if (arg == "--downtier-congestion") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.downtier_congestion = std::atof(v);
    } else if (arg == "--downtier-net-effort") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.downtier_net_effort = std::atoll(v);
    } else if (arg == "--journal") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.journal_path = v;
    } else if (arg == "--recover") {
      args.recover = true;
    } else if (arg == "--drain-deadline-ms") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.drain_deadline_ms = std::atoll(v);
    } else if (arg == "--retry-max") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.retry_max = std::atoi(v);
      if (args.retry_max < 1) {
        std::fputs("--retry-max must be >= 1\n", stderr);
        return std::nullopt;
      }
    } else if (arg == "--retry-base-ms") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.retry_base_ms = std::atoll(v);
    } else if (arg == "--retry-seed") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.retry_seed = std::atoll(v);
    } else if (arg == "--hang-ms") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.hang_ms = std::atoll(v);
    } else if (arg == "--service-faults") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.service_faults = v;
    } else if (arg == "--manifest") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.manifest_path = v;
    } else if (arg == "--socket") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.socket_path = v;
    } else if (arg == "--metrics-json") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.metrics_json = v;
    } else if (arg == "--verbose") {
      args.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      return std::nullopt;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (!args.journal_path.empty() && !args.socket_path.empty()) {
    std::fputs("--journal requires stdin mode (no --socket)\n", stderr);
    return std::nullopt;
  }
  if (args.recover && args.journal_path.empty()) {
    std::fputs("--recover requires --journal\n", stderr);
    return std::nullopt;
  }
  return args;
}

service::JobExecutor::Options executor_options(const Args& args,
                                               service::Journal* journal) {
  service::JobExecutor::Options options;
  options.workers = args.workers;
  options.admission.queue_limit = args.queue_limit;
  options.admission.max_nets = args.max_nets;
  options.admission.reject_congestion = args.reject_congestion;
  options.admission.downtier_congestion = args.downtier_congestion;
  options.admission.downtier_net_effort = args.downtier_net_effort;
  options.retry.max_attempts = args.retry_max;
  options.retry.base_ms = args.retry_base_ms;
  options.retry.seed = static_cast<std::uint64_t>(args.retry_seed);
  options.journal = journal;
  options.hang_ms = args.hang_ms;
  return options;
}

io::JobResponse error_response(const std::string& id, const char* status,
                               int exit_class, const std::string& error) {
  io::JobResponse response;
  response.id = id;
  response.status = status;
  response.exit_class = exit_class;
  response.error = error;
  return response;
}

/// Serializes response lines from worker threads onto one output.
class ResponseWriter {
 public:
  virtual ~ResponseWriter() = default;
  void write(const io::JobResponse& response) {
    const std::string line = io::render_job_response(response);
    const std::lock_guard<std::mutex> lock(mu_);
    write_line(line);
    ++written_;
  }
  long long written() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return written_;
  }

 private:
  /// Called with mu_ held.
  virtual void write_line(const std::string& line) = 0;

  mutable std::mutex mu_;
  long long written_ = 0;
};

class StdoutWriter : public ResponseWriter {
 private:
  void write_line(const std::string& line) override {
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
};

class FdWriter : public ResponseWriter {
 public:
  explicit FdWriter(int fd) : fd_(fd) {}

 private:
  void write_line(const std::string& line) override {
    if (OCR_SERVICE_FAULT("service.socket.drop")) {
      // Chaos site: the connection died between completion and delivery.
      OCR_WARN() << "ocr_served: injected socket drop, response lost";
      return;
    }
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::write(fd_, out.data() + off, out.size() - off);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        OCR_WARN() << "ocr_served: dropped response for a closed connection";
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

  int fd_;
};

/// Shared serving state: the executor, the output, the journal, and the
/// per-id exactly-once bookkeeping (journal mode only).
struct ServeState {
  ServeState(service::JobExecutor& e, ResponseWriter& w) : executor(e), writer(w) {}

  service::JobExecutor& executor;
  ResponseWriter& writer;
  service::Journal* journal = nullptr;  ///< non-null in journal mode

  std::mutex mu;
  std::set<std::string> live;       ///< accepted, response not yet written
  std::set<std::string> responded;  ///< response written (dedupe resends)
  long long deduped = 0;
  long long replayed = 0;
  long long recovered = 0;

  bool journaling() const { return journal != nullptr; }
};

/// Writes \p response and (journal mode) records the delivery. The
/// `responded` journal record is appended *after* the response line is
/// flushed: a crash in between replays the response (flagged), never
/// loses it.
void respond(ServeState& state, const io::JobResponse& response) {
  state.writer.write(response);
  if (state.journaling() && !response.id.empty()) {
    {
      const std::lock_guard<std::mutex> lock(state.mu);
      state.live.erase(response.id);
      state.responded.insert(response.id);
    }
    io::JournalRecord record;
    record.event = io::JournalEvent::kResponded;
    record.id = response.id;
    const util::Status status = state.journal->append(std::move(record));
    if (!status.ok()) {
      OCR_WARN() << "journal responded append failed: " << status.to_string();
    }
  }
}

/// Decodes, validates, materializes and submits one request line.
/// Exactly one response per id is guaranteed: immediately on
/// decode/materialize failure or admission rejection, from a worker
/// otherwise; journal-mode resends of an already-answered or in-flight
/// id are deduplicated.
void handle_line(const std::string& line, ServeState& state) {
  auto request = io::parse_job_request(line);
  if (!request.ok()) {
    respond(state, error_response("", "rejected", 2,
                                  request.status().to_string()));
    return;
  }
  if (state.journaling() && !request->id.empty()) {
    const std::lock_guard<std::mutex> lock(state.mu);
    if (state.responded.count(request->id) != 0 ||
        state.live.count(request->id) != 0) {
      // Already answered (or in flight and about to be): exactly-once
      // per id means a resend is dropped, not double-executed.
      ++state.deduped;
      util::MetricsRegistry::global().counter("service.jobs_deduped").add();
      return;
    }
    state.live.insert(request->id);
  }
  auto spec = service::spec_from_request(*request);
  if (!spec.ok()) {
    respond(state, error_response(request->id, "rejected", 2,
                                  spec.status().to_string()));
    return;
  }
  auto job = service::materialize(*spec);
  if (!job.ok()) {
    // The instance itself is broken (unknown example, unreadable file):
    // that is a job failure, not an admission decision — same contract
    // as the CLI's exit 1.
    respond(state,
            error_response(spec->id, "failed", 1, job.status().to_string()));
    return;
  }
  job->request_line = line;
  state.executor.submit(std::move(job).value(),
                        [&state](service::JobResult r) {
                          respond(state, service::to_response(r));
                        });
}

/// Whitespace-only lines are skipped, not errors (trailing newlines).
bool blank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

/// SIGTERM/SIGINT without SA_RESTART, so a blocked ::read on stdin
/// returns EINTR and the serve loop can enter drain mode promptly.
void install_drain_signals() {
  struct sigaction action {};
  action.sa_handler = on_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately not SA_RESTART
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

/// Replays the journal on startup: completed-but-unresponded jobs get
/// their response synthesized from the terminal digest (no re-routing),
/// responded ids are remembered for dedupe, unfinished jobs re-enter
/// the executor through the normal submission path.
void replay_recovery(const service::RecoveryPlan& plan, ServeState& state) {
  util::MetricsRegistry& global = util::MetricsRegistry::global();
  for (const service::RecoveredJob& job : plan.jobs) {
    if (job.has_terminal && job.responded) {
      const std::lock_guard<std::mutex> lock(state.mu);
      state.responded.insert(job.id);
      continue;
    }
    if (job.has_terminal) {
      // The outcome is durable but its delivery was not recorded: emit
      // it again from the digest, flagged so clients can tell a replay
      // from a fresh execution.
      io::JobResponse response;
      response.id = job.id;
      response.status = job.terminal.status;
      response.exit_class = job.terminal.exit_class;
      response.run_ms = job.terminal.run_ms;
      response.wire_length = job.terminal.wire_length;
      response.vias = job.terminal.vias;
      response.unrouted_nets = job.terminal.unrouted_nets;
      response.cancelled_nets = job.terminal.cancelled_nets;
      response.attempts = job.terminal.attempt + 1;
      response.replayed = true;
      response.error = job.terminal.error;
      ++state.replayed;
      global.counter("service.jobs_replayed").add();
      respond(state, response);
      continue;
    }
    if (job.request.empty()) {
      OCR_WARN() << "recovery: job '" << job.id
                 << "' has no request record, cannot replay";
      continue;
    }
    ++state.recovered;
    global.counter("service.jobs_recovered").add();
    handle_line(job.request, state);
  }
}

/// Batch mode: stdin -> stdout; drain on EOF, bounded drain on signal.
int serve_stdin(const Args& args) {
  service::Journal journal;
  service::RecoveryPlan plan;
  if (!args.journal_path.empty()) {
    if (args.recover) {
      auto recovered = service::recover_journal(args.journal_path);
      if (!recovered.ok()) {
        std::fprintf(stderr, "ocr_served: %s\n",
                     recovered.status().to_string().c_str());
        return 2;
      }
      plan = std::move(recovered).value();
    }
    const util::Status status = journal.open(args.journal_path);
    if (!status.ok()) {
      std::fprintf(stderr, "ocr_served: %s\n", status.to_string().c_str());
      return 2;
    }
    journal.set_next_seq(plan.last_seq);
  }

  service::JobExecutor executor(
      executor_options(args, journal.is_open() ? &journal : nullptr));
  StdoutWriter writer;
  ServeState state{executor, writer};
  state.journal = journal.is_open() ? &journal : nullptr;

  if (args.recover) replay_recovery(plan, state);

  install_drain_signals();
  long long requests = 0;
  std::string line;
  bool eof = false;
  char buf[4096];
  std::size_t buf_len = 0, buf_pos = 0;
  while (g_stop == 0) {
    if (buf_pos == buf_len) {
      const ssize_t n = ::read(STDIN_FILENO, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;  // signal: loop re-checks g_stop
        std::perror("ocr_served: read");
        break;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      buf_len = static_cast<std::size_t>(n);
      buf_pos = 0;
    }
    while (buf_pos < buf_len) {
      const char c = buf[buf_pos++];
      if (c != '\n') {
        line.push_back(c);
        continue;
      }
      if (!blank(line)) {
        ++requests;
        handle_line(line, state);
      }
      line.clear();
    }
  }
  if (eof && !blank(line)) {
    ++requests;
    handle_line(line, state);
  }

  // Drain: complete on EOF, bounded when a signal asked us to stop.
  int unfinished = 0;
  if (g_stop != 0) {
    unfinished = executor.drain_within(args.drain_deadline_ms);
  } else {
    executor.drain();
  }
  if (journal.is_open()) {
    io::JournalRecord record;
    record.event = io::JournalEvent::kDrain;
    record.unfinished = unfinished;
    const util::Status status = journal.append(std::move(record));
    if (!status.ok()) {
      OCR_WARN() << "journal drain append failed: " << status.to_string();
    }
    journal.close();
  }

  if (args.verbose || state.deduped > 0 || state.replayed > 0 ||
      state.recovered > 0) {
    std::fprintf(stderr,
                 "ocr_served: %lld requests, %lld responses, %lld recovered, "
                 "%lld replayed, %lld deduped, %d unfinished\n",
                 requests, writer.written(), state.recovered, state.replayed,
                 state.deduped, unfinished);
  }

  if (!args.manifest_path.empty()) {
    util::RunManifest manifest("ocr_served");
    manifest.add_config("workers", args.workers);
    manifest.add_config("queue_limit",
                        static_cast<long long>(args.queue_limit));
    manifest.add_config("journal", args.journal_path);
    manifest.add_config("recover", args.recover);
    manifest.add_config("retry_max", args.retry_max);
    manifest.add_config("retry_base_ms", args.retry_base_ms);
    manifest.add_config("retry_seed", args.retry_seed);
    manifest.add_config("hang_ms", args.hang_ms);
    manifest.add_config("drain_deadline_ms", args.drain_deadline_ms);
    manifest.add_provenance("journal_lines", plan.lines_total);
    manifest.add_provenance("journal_corrupt_lines", plan.lines_corrupt);
    if (!plan.first_corrupt_error.empty()) {
      manifest.add_provenance("journal_first_corrupt",
                              plan.first_corrupt_error);
    }
    manifest.add_provenance("recovered_jobs", state.recovered);
    manifest.add_provenance("replayed_responses", state.replayed);
    manifest.add_outcome("requests", requests);
    manifest.add_outcome("responses", writer.written());
    manifest.add_outcome("deduped", state.deduped);
    manifest.add_outcome("drained_unfinished", unfinished);
    manifest.add_outcome("signalled", g_stop != 0);
    manifest.capture_metrics(util::MetricsRegistry::global());
    if (!manifest.write_json_file(args.manifest_path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   args.manifest_path.c_str());
    }
  }

  if (g_stop != 0) return unfinished == 0 ? 0 : 3;
  // EOF: every request must have been answered (or deduplicated);
  // replayed and re-executed recovery responses are extra lines on top
  // of `requests`.
  const long long expected =
      requests - state.deduped + state.replayed + state.recovered;
  return writer.written() == expected ? 0 : 1;
}

/// Socket mode: one connection at a time; each connection is its own
/// batch (drained before the next accept). SIGINT/SIGTERM exit cleanly.
/// Journaling is a stdin-mode feature — see parse_args.
int serve_socket(const Args& args) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("ocr_served: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (args.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "ocr_served: socket path too long '%s'\n",
                 args.socket_path.c_str());
    ::close(listener);
    return 2;
  }
  std::strncpy(addr.sun_path, args.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(args.socket_path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 8) != 0) {
    std::perror("ocr_served: bind/listen");
    ::close(listener);
    return 1;
  }

  install_drain_signals();

  service::JobExecutor executor(executor_options(args, nullptr));
  while (g_stop == 0) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      std::perror("ocr_served: accept");
      break;
    }
    FdWriter writer(conn);
    ServeState state{executor, writer};
    std::string line;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(conn, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      for (ssize_t i = 0; i < n; ++i) {
        if (buf[i] != '\n') {
          line.push_back(buf[i]);
          continue;
        }
        if (!blank(line)) handle_line(line, state);
        line.clear();
      }
    }
    if (!blank(line)) handle_line(line, state);
    executor.drain();  // every response out before the connection closes
    ::close(conn);
  }
  ::close(listener);
  ::unlink(args.socket_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) {
    usage();
    return 2;
  }
  if (args->verbose) util::set_log_level(util::LogLevel::kInfo);

  // Arm the service-layer chaos plan once at startup; per-job fault
  // arming (FaultRegistry::global()) never touches this registry.
  {
    util::FaultRegistry& chaos = util::FaultRegistry::service();
    const util::Status status =
        args->service_faults.empty()
            ? (std::getenv("OCR_SERVICE_FAULTS") != nullptr
                   ? chaos.configure(std::getenv("OCR_SERVICE_FAULTS"))
                   : util::Status())
            : chaos.configure(args->service_faults);
    if (!status.ok()) {
      std::fprintf(stderr, "ocr_served: %s\n", status.to_string().c_str());
      return 2;
    }
  }

  const int code =
      args->socket_path.empty() ? serve_stdin(*args) : serve_socket(*args);

  if (!args->metrics_json.empty()) {
    const util::MetricsSnapshot snapshot =
        util::MetricsRegistry::global().snapshot();
    if (!snapshot.write_json_file(args->metrics_json)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   args->metrics_json.c_str());
      return 1;
    }
  }
  return code;
}

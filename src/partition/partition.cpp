#include "partition/partition.hpp"

#include <algorithm>

namespace ocr::partition {

using netlist::Layout;
using netlist::Net;
using netlist::NetClass;
using netlist::NetId;

NetPartition partition_by_class(const Layout& layout) {
  NetPartition p;
  for (const Net& net : layout.nets()) {
    if (net.net_class == NetClass::kCritical ||
        net.net_class == NetClass::kClock ||
        net.net_class == NetClass::kPower) {
      p.set_a.push_back(net.id);
    } else {
      p.set_b.push_back(net.id);
    }
  }
  return p;
}

NetPartition partition_by_length(const Layout& layout,
                                 geom::Coord threshold) {
  NetPartition p;
  for (const Net& net : layout.nets()) {
    if (layout.net_hpwl(net.id) <= threshold) {
      p.set_a.push_back(net.id);
    } else {
      p.set_b.push_back(net.id);
    }
  }
  return p;
}

NetPartition partition_all_b(const Layout& layout) {
  NetPartition p;
  for (const Net& net : layout.nets()) p.set_b.push_back(net.id);
  return p;
}

NetPartition partition_all_a(const Layout& layout) {
  NetPartition p;
  for (const Net& net : layout.nets()) p.set_a.push_back(net.id);
  return p;
}

bool partition_is_exact(const Layout& layout, const NetPartition& partition) {
  std::vector<int> seen(layout.nets().size(), 0);
  for (NetId id : partition.set_a) {
    if (id.index() >= seen.size()) return false;
    ++seen[id.index()];
  }
  for (NetId id : partition.set_b) {
    if (id.index() >= seen.size()) return false;
    ++seen[id.index()];
  }
  return std::all_of(seen.begin(), seen.end(),
                     [](int count) { return count == 1; });
}

}  // namespace ocr::partition

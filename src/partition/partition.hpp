#pragma once
/// \file partition.hpp
/// \brief Net partitioning into level-A and level-B sets (paper §2).
///
/// "The set of network interconnections is initially partitioned into two
/// sets, A and B. Nets in set A will be routed in channel areas between
/// macro-cells and nets in set B will be routed over the entire layout
/// area." Entire nets are assigned to one set — multi-terminal nets are
/// never split across sets — and the choice of policy is the user's main
/// lever on layout area vs. delay (§2, §5).

#include <vector>

#include "netlist/layout.hpp"

namespace ocr::partition {

/// The outcome: set A routes in channels (metal1/2), set B over the cells
/// (metal3/4).
struct NetPartition {
  std::vector<netlist::NetId> set_a;
  std::vector<netlist::NetId> set_b;
};

/// The paper's experimental policy: "critical nets and timing nets were
/// routed in level A, while all other nets were routed in level B."
NetPartition partition_by_class(const netlist::Layout& layout);

/// Delay-control policy from §2: local interconnections (half-perimeter
/// below \p threshold) go to set A; long-distance nets go to level B where
/// wider lines yield shorter propagation delays.
NetPartition partition_by_length(const netlist::Layout& layout,
                                 geom::Coord threshold);

/// Area-priority policy from §5: "channel areas can be eliminated and the
/// entire set of interconnections can be routed in level B."
NetPartition partition_all_b(const netlist::Layout& layout);

/// Degenerate policy used by the baseline flows: everything in channels.
NetPartition partition_all_a(const netlist::Layout& layout);

/// Sanity checks: every net appears exactly once across both sets.
bool partition_is_exact(const netlist::Layout& layout,
                        const NetPartition& partition);

}  // namespace ocr::partition

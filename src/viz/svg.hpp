#pragma once
/// \file svg.hpp
/// \brief SVG rendering of layouts and level-B routing (Figures 1 and 3).

#include <string>

#include "flow/flow.hpp"
#include "levelb/path.hpp"
#include "netlist/layout.hpp"

namespace ocr::viz {

/// A minimal SVG document builder (y axis flipped so layout coordinates
/// render with y increasing upward, as layout plots conventionally do).
class SvgCanvas {
 public:
  SvgCanvas(geom::Rect world, double scale = 1.0);

  void rect(const geom::Rect& r, const std::string& fill,
            const std::string& stroke, double stroke_width = 1.0,
            double opacity = 1.0);
  void line(const geom::Point& a, const geom::Point& b,
            const std::string& stroke, double width);
  void circle(const geom::Point& center, double radius,
              const std::string& fill);
  void text(const geom::Point& at, const std::string& label,
            double size = 10.0);
  /// Draws a routed path as a polyline with via dots at its corners.
  void path(const levelb::Path& p, const std::string& stroke, double width);

  std::string finish() const;

 private:
  double sx(geom::Coord x) const;
  double sy(geom::Coord y) const;

  geom::Rect world_;
  double scale_;
  std::string body_;
};

/// Renders the over-cell flow's artifacts — cells, obstacles, and every
/// level-B path — in the style of the paper's Figure 3. Returns the SVG
/// text; write it to disk with write_file.
std::string render_levelb_routing(const flow::FlowArtifacts& artifacts);

/// Renders a bare layout (cells + pins), for the examples.
std::string render_layout(const netlist::Layout& layout);

/// Writes \p content to \p path; returns false on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace ocr::viz

#include "viz/svg.hpp"

#include <cstdio>

#include "util/str.hpp"

namespace ocr::viz {

using util::format;

SvgCanvas::SvgCanvas(geom::Rect world, double scale)
    : world_(world), scale_(scale) {}

double SvgCanvas::sx(geom::Coord x) const {
  return static_cast<double>(x - world_.xlo) * scale_;
}

double SvgCanvas::sy(geom::Coord y) const {
  // Flip: SVG y grows downward, layouts upward.
  return static_cast<double>(world_.yhi - y) * scale_;
}

void SvgCanvas::rect(const geom::Rect& r, const std::string& fill,
                     const std::string& stroke, double stroke_width,
                     double opacity) {
  body_ += format(
      "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
      "fill=\"%s\" stroke=\"%s\" stroke-width=\"%.1f\" "
      "fill-opacity=\"%.2f\"/>\n",
      sx(r.xlo), sy(r.yhi), static_cast<double>(r.width()) * scale_,
      static_cast<double>(r.height()) * scale_, fill.c_str(),
      stroke.c_str(), stroke_width, opacity);
}

void SvgCanvas::line(const geom::Point& a, const geom::Point& b,
                     const std::string& stroke, double width) {
  body_ += format(
      "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
      "stroke=\"%s\" stroke-width=\"%.1f\" stroke-linecap=\"round\"/>\n",
      sx(a.x), sy(a.y), sx(b.x), sy(b.y), stroke.c_str(), width);
}

void SvgCanvas::circle(const geom::Point& center, double radius,
                       const std::string& fill) {
  body_ += format(
      "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\"/>\n",
      sx(center.x), sy(center.y), radius, fill.c_str());
}

void SvgCanvas::text(const geom::Point& at, const std::string& label,
                     double size) {
  body_ += format(
      "<text x=\"%.1f\" y=\"%.1f\" font-size=\"%.1f\" "
      "font-family=\"monospace\">%s</text>\n",
      sx(at.x), sy(at.y), size, label.c_str());
}

void SvgCanvas::path(const levelb::Path& p, const std::string& stroke,
                     double width) {
  for (std::size_t i = 0; i + 1 < p.points.size(); ++i) {
    line(p.points[i], p.points[i + 1], stroke, width);
  }
  for (std::size_t i = 1; i + 1 < p.points.size(); ++i) {
    circle(p.points[i], width * 1.2, "#222222");  // vias at corners
  }
}

std::string SvgCanvas::finish() const {
  const double w = static_cast<double>(world_.width()) * scale_;
  const double h = static_cast<double>(world_.height()) * scale_;
  std::string out = format(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
      "height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n"
      "<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n",
      w, h, w, h);
  out += body_;
  out += "</svg>\n";
  return out;
}

namespace {

/// A small qualitative palette for nets; cycled by net id.
const char* net_color(int id) {
  static const char* kPalette[] = {"#c03030", "#3060c0", "#2f8f4e",
                                   "#b07020", "#7040a0", "#108090",
                                   "#c04080", "#607020"};
  return kPalette[static_cast<std::size_t>(id) % 8];
}

}  // namespace

std::string render_layout(const netlist::Layout& layout) {
  const double scale = 900.0 / std::max<geom::Coord>(
                                   1, std::max(layout.die().width(),
                                               layout.die().height()));
  SvgCanvas canvas(layout.die(), scale);
  canvas.rect(layout.die(), "none", "#000000", 1.5);
  for (const netlist::Cell& cell : layout.cells()) {
    canvas.rect(cell.outline, "#d9d9d9", "#555555", 1.0);
    canvas.text(geom::Point{cell.outline.xlo + 4, cell.outline.yhi - 4},
                cell.name, 8.0);
  }
  for (const netlist::Obstacle& o : layout.obstacles()) {
    canvas.rect(o.region, "#f2b0b0", "#a04040", 0.8, 0.7);
  }
  for (const netlist::Pin& pin : layout.pins()) {
    canvas.circle(pin.position, 2.0, "#000000");
  }
  return canvas.finish();
}

std::string render_levelb_routing(const flow::FlowArtifacts& artifacts) {
  const netlist::Layout& layout = artifacts.layout;
  const double scale = 1200.0 / std::max<geom::Coord>(
                                    1, std::max(layout.die().width(),
                                                layout.die().height()));
  SvgCanvas canvas(layout.die(), scale);
  canvas.rect(layout.die(), "none", "#000000", 1.5);
  for (const netlist::Cell& cell : layout.cells()) {
    canvas.rect(cell.outline, "#e8e8e8", "#888888", 0.8);
  }
  for (const geom::Rect& o : artifacts.levelb_obstacles) {
    canvas.rect(o, "#f2b0b0", "#a04040", 0.8, 0.7);
  }
  for (const levelb::NetResult& net : artifacts.levelb.nets) {
    const std::string color = net_color(net.id);
    for (const levelb::Path& path : net.paths) {
      canvas.path(path, color, std::max(1.0, 1.8 * scale));
    }
  }
  return canvas.finish();
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return written == content.size();
}

}  // namespace ocr::viz

#include "floorplan/macro_layout.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/str.hpp"

namespace ocr::floorplan {

int MacroLayout::add_row(geom::Coord height) {
  OCR_ASSERT(height > 0, "row height must be positive");
  row_heights_.push_back(height);
  return num_rows() - 1;
}

int MacroLayout::add_cell(MacroCell cell) {
  OCR_ASSERT(cell.row >= 0 && cell.row < num_rows(),
             "cell assigned to a nonexistent row");
  OCR_ASSERT(cell.width > 0 && cell.height > 0,
             "cell footprint must be positive");
  OCR_ASSERT(cell.height <= row_height(cell.row),
             "cell taller than its row");
  cells_.push_back(std::move(cell));
  return static_cast<int>(cells_.size()) - 1;
}

int MacroLayout::add_net(MacroNet net) {
  nets_.push_back(std::move(net));
  return static_cast<int>(nets_.size()) - 1;
}

int MacroLayout::add_pin(MacroPin pin) {
  OCR_ASSERT(pin.net >= 0 && pin.net < static_cast<int>(nets_.size()),
             "pin references a nonexistent net");
  OCR_ASSERT(pin.cell < static_cast<int>(cells_.size()),
             "pin references a nonexistent cell");
  pins_.push_back(pin);
  return static_cast<int>(pins_.size()) - 1;
}

void MacroLayout::add_obstacle(MacroObstacle obstacle) {
  OCR_ASSERT(obstacle.cell >= 0 &&
                 obstacle.cell < static_cast<int>(cells_.size()),
             "obstacle references a nonexistent cell");
  obstacles_.push_back(std::move(obstacle));
}

std::vector<int> MacroLayout::row_cells(int row) const {
  std::vector<int> out;
  for (int c = 0; c < static_cast<int>(cells_.size()); ++c) {
    if (cells_[static_cast<std::size_t>(c)].row == row) out.push_back(c);
  }
  std::sort(out.begin(), out.end(), [this](int a, int b) {
    return cells_[static_cast<std::size_t>(a)].x <
           cells_[static_cast<std::size_t>(b)].x;
  });
  return out;
}

std::vector<geom::Interval> MacroLayout::row_gaps(int row) const {
  std::vector<geom::Interval> gaps;
  geom::Coord cursor = 0;
  for (int c : row_cells(row)) {
    const MacroCell& cell = cells_[static_cast<std::size_t>(c)];
    if (cell.x > cursor) gaps.emplace_back(cursor, cell.x);
    cursor = cell.x + cell.width;
  }
  if (cursor < die_width_) gaps.emplace_back(cursor, die_width_);
  return gaps;
}

int MacroLayout::pin_channel(const MacroPin& pin) const {
  if (pin.cell < 0) return pin.north ? num_rows() : 0;
  const int row = cells_[static_cast<std::size_t>(pin.cell)].row;
  return pin.north ? row + 1 : row;
}

geom::Coord MacroLayout::pin_x(const MacroPin& pin) const {
  if (pin.cell < 0) return pin.x;
  return cells_[static_cast<std::size_t>(pin.cell)].x + pin.x;
}

geom::Coord MacroLayout::row_base(
    int row, const std::vector<geom::Coord>& channel_heights) const {
  OCR_ASSERT(static_cast<int>(channel_heights.size()) == num_channels(),
             "one channel height per channel required");
  geom::Coord y = 0;
  for (int r = 0; r <= row; ++r) {
    y += channel_heights[static_cast<std::size_t>(r)];
    if (r < row) y += row_height(r);
  }
  return y;
}

geom::Coord MacroLayout::die_height(
    const std::vector<geom::Coord>& channel_heights) const {
  OCR_ASSERT(static_cast<int>(channel_heights.size()) == num_channels(),
             "one channel height per channel required");
  geom::Coord h = 0;
  for (geom::Coord c : channel_heights) h += c;
  for (geom::Coord r : row_heights_) h += r;
  return h;
}

netlist::Layout MacroLayout::assemble(
    const std::vector<geom::Coord>& channel_heights) const {
  netlist::Layout layout(name_, rules_);
  layout.set_die(geom::Rect(0, 0, die_width_,
                            die_height(channel_heights)));

  std::vector<netlist::CellId> cell_ids;
  cell_ids.reserve(cells_.size());
  for (const MacroCell& cell : cells_) {
    const geom::Coord y = row_base(cell.row, channel_heights);
    cell_ids.push_back(layout.add_cell(
        cell.name,
        geom::Rect(cell.x, y, cell.x + cell.width, y + cell.height)));
  }

  std::vector<netlist::NetId> net_ids;
  net_ids.reserve(nets_.size());
  for (const MacroNet& net : nets_) {
    net_ids.push_back(layout.add_net(net.name, net.net_class));
  }

  for (const MacroPin& pin : pins_) {
    geom::Point pos;
    netlist::PinSide side;
    netlist::CellId owner;
    if (pin.cell < 0) {
      pos = geom::Point{pin.x, pin.north ? layout.die().yhi : 0};
      side = pin.north ? netlist::PinSide::kNorth : netlist::PinSide::kSouth;
    } else {
      const MacroCell& cell = cells_[static_cast<std::size_t>(pin.cell)];
      const geom::Coord base = row_base(cell.row, channel_heights);
      pos = geom::Point{cell.x + pin.x,
                        pin.north ? base + cell.height : base};
      side = pin.north ? netlist::PinSide::kNorth : netlist::PinSide::kSouth;
      owner = cell_ids[static_cast<std::size_t>(pin.cell)];
    }
    layout.add_pin(net_ids[static_cast<std::size_t>(pin.net)], owner, pos,
                   side);
  }

  for (const MacroObstacle& obstacle : obstacles_) {
    const MacroCell& cell =
        cells_[static_cast<std::size_t>(obstacle.cell)];
    const geom::Coord base = row_base(cell.row, channel_heights);
    layout.add_obstacle(netlist::Obstacle{
        geom::Rect(cell.x + obstacle.x_lo, base + obstacle.y_lo,
                   cell.x + obstacle.x_hi, base + obstacle.y_hi),
        obstacle.blocks_metal3, obstacle.blocks_metal4, obstacle.reason});
  }
  return layout;
}

std::vector<std::string> MacroLayout::validate() const {
  std::vector<std::string> problems;
  for (int row = 0; row < num_rows(); ++row) {
    geom::Coord cursor = -1;
    for (int c : row_cells(row)) {
      const MacroCell& cell = cells_[static_cast<std::size_t>(c)];
      if (cell.x <= cursor) {
        problems.push_back(util::format("cells overlap in row %d", row));
      }
      cursor = cell.x + cell.width;
      if (cursor > die_width_) {
        problems.push_back(
            util::format("cell '%s' exceeds the die width",
                         cell.name.c_str()));
      }
    }
  }
  for (const MacroPin& pin : pins_) {
    if (pin.cell >= 0) {
      const MacroCell& cell = cells_[static_cast<std::size_t>(pin.cell)];
      if (pin.x < 0 || pin.x > cell.width) {
        problems.push_back(
            util::format("pin off its cell '%s'", cell.name.c_str()));
      }
    } else if (pin.x < 0 || pin.x > die_width_) {
      problems.push_back("pad outside the die width");
    }
  }
  // Every net needs >= 2 pins.
  std::vector<int> degree(nets_.size(), 0);
  for (const MacroPin& pin : pins_) {
    ++degree[static_cast<std::size_t>(pin.net)];
  }
  for (std::size_t n = 0; n < nets_.size(); ++n) {
    if (degree[n] < 2) {
      problems.push_back(
          util::format("net '%s' has fewer than 2 pins",
                       nets_[n].name.c_str()));
    }
  }
  return problems;
}

}  // namespace ocr::floorplan

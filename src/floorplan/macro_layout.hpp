#pragma once
/// \file macro_layout.hpp
/// \brief Row-based macro-cell floorplans with parametric channel heights.
///
/// The level-A/baseline flows route in channels whose heights are only
/// known *after* channel routing; everything else — cell x positions, row
/// order, pin offsets — is fixed beforehand. MacroLayout captures exactly
/// that: rows of cells (bottom to top) with feedthrough gaps between
/// adjacent cells, nets whose pins sit at fixed x offsets on cell north or
/// south edges (or on the die boundary as pads), and an `assemble` method
/// that instantiates a concrete netlist::Layout for any vector of channel
/// heights. Channel c sits below row c (channel R is above the top row),
/// so there are R+1 channels for R rows.

#include <string>
#include <vector>

#include "geom/layers.hpp"
#include "geom/point.hpp"
#include "netlist/layout.hpp"

namespace ocr::floorplan {

/// A macro-cell: fixed footprint, assigned row, fixed x position.
struct MacroCell {
  std::string name;
  geom::Coord width = 0;
  geom::Coord height = 0;
  int row = 0;
  geom::Coord x = 0;  ///< left edge, absolute
};

/// A net terminal at a fixed x, on a cell edge or the die boundary.
struct MacroPin {
  int net = 0;        ///< index into MacroLayout::nets
  int cell = -1;      ///< index into cells; -1 = I/O pad on the die edge
  bool north = true;  ///< cell: north/south edge; pad: top/bottom die edge
  geom::Coord x = 0;  ///< cell pins: offset from cell left edge; pads:
                      ///< absolute die x
};

struct MacroNet {
  std::string name;
  netlist::NetClass net_class = netlist::NetClass::kSignal;
};

/// An over-cell keep-out defined relative to a cell (it moves with the
/// row when channels resize).
struct MacroObstacle {
  int cell = 0;               ///< owner cell index
  geom::Coord x_lo = 0;       ///< offsets within the cell footprint
  geom::Coord x_hi = 0;
  geom::Coord y_lo = 0;
  geom::Coord y_hi = 0;
  bool blocks_metal3 = true;
  bool blocks_metal4 = true;
  std::string reason;
};

/// The floorplan. Invariants (checked by validate()):
///  * cells in a row are disjoint in x and ordered left to right,
///  * every row fits inside the die width,
///  * pins lie within their cell's width (or the die width for pads).
class MacroLayout {
 public:
  MacroLayout(std::string name, geom::Coord die_width,
              geom::DesignRules rules = {})
      : name_(std::move(name)), die_width_(die_width), rules_(rules) {}

  const std::string& name() const { return name_; }
  geom::Coord die_width() const { return die_width_; }
  const geom::DesignRules& rules() const { return rules_; }

  int add_row(geom::Coord height);
  int add_cell(MacroCell cell);
  int add_net(MacroNet net);
  int add_pin(MacroPin pin);
  void add_obstacle(MacroObstacle obstacle);

  const std::vector<MacroCell>& cells() const { return cells_; }
  const std::vector<MacroNet>& nets() const { return nets_; }
  const std::vector<MacroPin>& pins() const { return pins_; }
  const std::vector<MacroObstacle>& obstacles() const { return obstacles_; }

  int num_rows() const { return static_cast<int>(row_heights_.size()); }
  int num_channels() const { return num_rows() + 1; }
  geom::Coord row_height(int row) const {
    return row_heights_[static_cast<std::size_t>(row)];
  }

  /// Cells of \p row ordered by x.
  std::vector<int> row_cells(int row) const;

  /// Feedthrough gaps of \p row: maximal free x intervals between/around
  /// the row's cells (within the die width).
  std::vector<geom::Interval> row_gaps(int row) const;

  /// Channel index a pin feeds: a pin on a cell's south edge feeds the
  /// channel below its row; north feeds the channel above. Pads feed
  /// channel 0 (bottom) or num_rows() (top).
  int pin_channel(const MacroPin& pin) const;

  /// Absolute x of a pin.
  geom::Coord pin_x(const MacroPin& pin) const;

  /// Instantiates the floorplan with concrete channel heights
  /// (size num_channels()). Returns a fully-placed netlist::Layout with
  /// absolute pin positions and translated obstacles.
  netlist::Layout assemble(
      const std::vector<geom::Coord>& channel_heights) const;

  /// Die height for the given channel heights.
  geom::Coord die_height(
      const std::vector<geom::Coord>& channel_heights) const;

  /// y coordinate of the bottom of \p row for the given channel heights.
  geom::Coord row_base(int row,
                       const std::vector<geom::Coord>& channel_heights) const;

  /// Structural validation; returns problems (empty = valid).
  std::vector<std::string> validate() const;

 private:
  std::string name_;
  geom::Coord die_width_;
  geom::DesignRules rules_;
  std::vector<geom::Coord> row_heights_;
  std::vector<MacroCell> cells_;
  std::vector<MacroNet> nets_;
  std::vector<MacroPin> pins_;
  std::vector<MacroObstacle> obstacles_;
};

}  // namespace ocr::floorplan

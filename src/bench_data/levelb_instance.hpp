#pragma once
/// \file levelb_instance.hpp
/// \brief Deterministic synthetic level-B routing instances (grid + nets),
/// sized for the engine's scaling benchmarks.
///
/// The macro-cell generators (synthetic.hpp) exercise the full flow; this
/// module builds bare TrackGrid instances for harnesses that benchmark the
/// level-B engine in isolation (bench_mbfs, bench_scaling). The key knob
/// is *locality*: terminals of one net cluster within a window around a
/// random center, so a large die carries many geometrically independent
/// nets — the workload where the sharded engine mode's conflict-graph
/// batches get wide enough to beat one thread.

#include <cstdint>
#include <string>
#include <vector>

#include "levelb/net_core.hpp"
#include "tig/track_grid.hpp"

namespace ocr::bench_data {

/// Parameters of the generator. All randomness flows from `seed`.
struct LevelBSpec {
  std::string name = "levelb";
  std::uint64_t seed = 1;
  /// Square die edge in dbu.
  geom::Coord size = 1000;
  /// Uniform track pitches (metal3 horizontal / metal4 vertical).
  geom::Coord h_pitch = 9;
  geom::Coord v_pitch = 11;
  int num_nets = 100;
  /// Terminals land within [center - locality, center + locality] of a
  /// uniformly random per-net center. 0 disables clustering (terminals
  /// uniform over the die, the dense fully-conflicting regime).
  geom::Coord locality = 0;
  /// Net degree is uniform in [degree_min, degree_max].
  int degree_min = 2;
  int degree_max = 4;
  /// Every k-th net is marked sensitive when > 0 (0 = none).
  int sensitive_every = 0;
};

/// A pristine level-B instance: grid + nets, never mutated in place.
struct LevelBInstance {
  std::string name;
  tig::TrackGrid grid;
  std::vector<levelb::BNet> nets;
};

/// Generates the instance for \p spec. Deterministic in the spec.
LevelBInstance generate_levelb_instance(const LevelBSpec& spec);

/// `sparse-5000`: ~1.2k local nets scattered over a 5000-dbu die — wide
/// shard batches, the parallel engine's headline scaling instance.
LevelBSpec sparse5000_spec();

/// `sparse-100k`: 100k local nets over a 200k-dbu die (~22k horizontal +
/// ~18k vertical tracks). The chunked-storage workload: a dense grid at
/// this size carries ~40k IntervalSets and gap entries per copy, while
/// the routed area touches a small fraction of them. Routes to completion
/// serially in minutes — bench_scaling gates it behind --large.
LevelBSpec sparse100k_spec();

/// `sparse-100k-ci`: the same 200k-dbu die and locality, truncated to
/// 4000 nets so CI's bench-smoke can afford a large-*grid* datapoint (the
/// storage costs scale with the die, not the net count).
LevelBSpec sparse100k_ci_spec();

}  // namespace ocr::bench_data

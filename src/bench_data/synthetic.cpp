#include "bench_data/synthetic.hpp"

#include <algorithm>
#include <array>
#include <set>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"

namespace ocr::bench_data {
namespace {

using floorplan::MacroCell;
using floorplan::MacroLayout;
using floorplan::MacroNet;
using floorplan::MacroObstacle;
using floorplan::MacroPin;
using geom::Coord;
using util::Rng;

struct CellPlan {
  Coord width = 0;
  Coord height = 0;
  int row = 0;
};

/// Balances cells across rows: widest first, each into the currently
/// shortest row (LPT scheduling keeps row widths within one cell of each
/// other, which keeps the die square-ish).
std::vector<CellPlan> plan_cells(const SyntheticSpec& spec, Rng& rng) {
  std::vector<CellPlan> cells(static_cast<std::size_t>(spec.num_cells));
  for (auto& cell : cells) {
    cell.width = rng.uniform_int(spec.cell_w_min, spec.cell_w_max);
    cell.height = rng.uniform_int(spec.cell_h_min, spec.cell_h_max);
  }
  std::vector<std::size_t> order(cells.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&cells](std::size_t a,
                                                 std::size_t b) {
    return cells[a].width > cells[b].width;
  });
  std::vector<Coord> row_width(static_cast<std::size_t>(spec.num_rows), 0);
  for (std::size_t i : order) {
    const auto row = static_cast<std::size_t>(
        std::min_element(row_width.begin(), row_width.end()) -
        row_width.begin());
    cells[i].row = static_cast<int>(row);
    row_width[row] += cells[i].width + spec.gap;
  }
  return cells;
}

/// Picks a free pin slot on a cell edge; slots sit on multiples of
/// pin_slot inside the cell width. Falls back to a shared slot if the edge
/// is saturated (the global router resolves column collisions).
Coord pick_pin_offset(const SyntheticSpec& spec, Rng& rng, Coord width,
                      std::set<Coord>& used) {
  const Coord slots = std::max<Coord>(1, width / spec.pin_slot - 1);
  for (int attempt = 0; attempt < 30; ++attempt) {
    const Coord offset = (1 + rng.uniform_int(0, slots - 1)) * spec.pin_slot;
    if (offset >= width) continue;
    if (used.insert(offset).second) return offset;
  }
  return (1 + rng.uniform_int(0, slots - 1)) * spec.pin_slot;
}

}  // namespace

MacroLayout generate_macro_layout(const SyntheticSpec& spec) {
  OCR_ASSERT(spec.num_rows > 0 && spec.num_cells >= spec.num_rows,
             "need at least one cell per row");
  Rng rng(spec.seed);
  const auto cells = plan_cells(spec, rng);

  // Die width: widest row incl. gaps at both ends.
  std::vector<Coord> row_width(static_cast<std::size_t>(spec.num_rows),
                               spec.gap);
  for (const CellPlan& cell : cells) {
    row_width[static_cast<std::size_t>(cell.row)] += cell.width + spec.gap;
  }
  const Coord die_width =
      *std::max_element(row_width.begin(), row_width.end());

  MacroLayout ml(spec.name, die_width);
  std::vector<Coord> row_max_height(static_cast<std::size_t>(spec.num_rows),
                                    0);
  for (const CellPlan& cell : cells) {
    auto& h = row_max_height[static_cast<std::size_t>(cell.row)];
    h = std::max(h, cell.height);
  }
  for (int r = 0; r < spec.num_rows; ++r) {
    ml.add_row(row_max_height[static_cast<std::size_t>(r)]);
  }

  // Place cells left to right per row.
  std::vector<Coord> cursor(static_cast<std::size_t>(spec.num_rows),
                            spec.gap);
  std::vector<int> cell_index;  // generator index -> MacroLayout index
  cell_index.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const CellPlan& plan = cells[c];
    auto& x = cursor[static_cast<std::size_t>(plan.row)];
    cell_index.push_back(ml.add_cell(
        MacroCell{util::format("cell_%zu", c), plan.width, plan.height,
                  plan.row, x}));
    x += plan.width + spec.gap;
  }

  // Per-edge used pin slots: [cell][north?1:0].
  std::vector<std::array<std::set<Coord>, 2>> used_slots(cells.size());

  const auto add_cell_pin = [&](int net, std::size_t cell, bool north) {
    const Coord offset = pick_pin_offset(
        spec, rng, cells[cell].width,
        used_slots[cell][north ? 1 : 0]);
    ml.add_pin(MacroPin{net, cell_index[cell], north, offset});
  };
  const auto random_cell = [&rng, &cells]() {
    return rng.index(cells.size());
  };

  // Critical / timing nets (the paper's level-A set).
  if (spec.num_critical_nets > 0) {
    const int base = spec.critical_total_pins / spec.num_critical_nets;
    int remainder = spec.critical_total_pins % spec.num_critical_nets;
    for (int n = 0; n < spec.num_critical_nets; ++n) {
      int pins = base + (remainder > 0 ? 1 : 0);
      if (remainder > 0) --remainder;
      pins = std::max(pins, 2);
      const int net = ml.add_net(MacroNet{util::format("crit_%d", n),
                                          netlist::NetClass::kCritical});
      for (int p = 0; p < pins; ++p) {
        add_cell_pin(net, random_cell(), rng.chance(0.5));
      }
    }
  }

  // Ordinary signal nets (the paper's level-B set).
  for (int n = 0; n < spec.num_signal_nets; ++n) {
    const double draw = rng.uniform01();
    int degree = 5;
    if (draw < spec.p2) {
      degree = 2;
    } else if (draw < spec.p2 + spec.p3) {
      degree = 3;
    } else if (draw < spec.p2 + spec.p3 + spec.p4) {
      degree = 4;
    }
    const int net = ml.add_net(MacroNet{util::format("net_%d", n),
                                        netlist::NetClass::kSignal});
    const bool has_pad = rng.chance(spec.pad_fraction);
    const int cell_pins = degree - (has_pad ? 1 : 0);
    for (int p = 0; p < cell_pins; ++p) {
      add_cell_pin(net, random_cell(), rng.chance(0.5));
    }
    if (has_pad) {
      const Coord x = rng.uniform_int(spec.gap, die_width - spec.gap);
      ml.add_pin(MacroPin{net, -1, rng.chance(0.5), x});
    }
  }

  // Over-cell keep-outs: a power strap across the middle of some cells
  // blocks metal3 there; a few also block metal4 (sensitive circuits).
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (!rng.chance(spec.obstacle_fraction)) continue;
    const CellPlan& plan = cells[c];
    const Coord strap = std::max<Coord>(8, plan.height / 8);
    const Coord mid = plan.height / 2;
    const bool sensitive = rng.chance(0.3);
    ml.add_obstacle(MacroObstacle{
        cell_index[c], 0, plan.width, mid - strap / 2, mid + strap / 2,
        true, sensitive, sensitive ? "analog-keepout" : "pwr-strap"});
  }

  return ml;
}

SyntheticSpec ami33_spec() {
  SyntheticSpec spec;
  spec.name = "ami33";
  spec.seed = 0xA331;
  spec.num_rows = 5;
  spec.num_cells = 33;
  spec.num_signal_nets = 119;    // + 4 critical = 123 nets
  spec.num_critical_nets = 4;
  spec.critical_total_pins = 177;  // 44.25 pins/net, as Table 1 reports
  return spec;
}

SyntheticSpec xerox_spec() {
  SyntheticSpec spec;
  spec.name = "Xerox";
  spec.seed = 0x0E50;
  spec.num_rows = 3;
  spec.num_cells = 10;
  spec.cell_w_min = 900;
  spec.cell_w_max = 1860;
  spec.cell_h_min = 540;
  spec.cell_h_max = 900;
  spec.gap = 220;
  spec.num_signal_nets = 182;    // + 21 critical = 203 nets
  spec.num_critical_nets = 21;
  spec.critical_total_pins = 193;  // 9.19 pins/net
  return spec;
}

SyntheticSpec ex3_spec() {
  SyntheticSpec spec;
  spec.name = "ex3";
  spec.seed = 0x0E03;
  spec.num_rows = 6;
  spec.num_cells = 49;
  spec.num_signal_nets = 250;    // + 56 critical = 306 nets
  spec.num_critical_nets = 56;
  spec.critical_total_pins = 181;  // 3.23 pins/net
  return spec;
}

SyntheticSpec random_spec(std::uint64_t seed, double scale) {
  SyntheticSpec spec;
  spec.name = util::format("random_%llu",
                           static_cast<unsigned long long>(seed));
  spec.seed = seed;
  spec.num_rows = std::max(2, static_cast<int>(4 * scale));
  spec.num_cells = std::max(spec.num_rows,
                            static_cast<int>(30 * scale));
  spec.num_signal_nets = std::max(4, static_cast<int>(110 * scale));
  spec.num_critical_nets = std::max(1, static_cast<int>(5 * scale));
  spec.critical_total_pins = std::max(2 * spec.num_critical_nets,
                                      static_cast<int>(60 * scale));
  return spec;
}

}  // namespace ocr::bench_data

#pragma once
/// \file synthetic.hpp
/// \brief Deterministic synthetic macro-cell benchmark generation.
///
/// The paper evaluates on the MCNC macro-cell benchmarks ami33 and Xerox
/// (Reas, DAC'87) plus an industrial chip "ex3". Those layouts are not
/// redistributable, so this module generates synthetic instances whose
/// *published statistics* match Table 1: cell counts, net counts, the
/// level-A partition sizes (4 / 21 / 56 critical+timing nets) and their
/// average pins per net (44.25 / 9.19 / 3.23). The routers only see cells,
/// pins and nets, so matched statistics exercise the same code paths and
/// preserve the shape of the paper's comparisons (see DESIGN.md §2).

#include <cstdint>

#include "floorplan/macro_layout.hpp"

namespace ocr::bench_data {

/// Parameters of the generator. All randomness flows from `seed`.
struct SyntheticSpec {
  std::string name = "synthetic";
  std::uint64_t seed = 1;

  int num_rows = 4;
  int num_cells = 33;
  /// Cell footprints are sized so pins (one per pin_slot) stay a few
  /// metal3/4 pitches apart — matching 1990-era macro cells, which were
  /// hundreds of routing pitches wide. Undersized cells overcrowd the
  /// over-cell grid and starve level-B completion.
  geom::Coord cell_w_min = 270;
  geom::Coord cell_w_max = 720;
  geom::Coord cell_h_min = 210;
  geom::Coord cell_h_max = 420;
  /// Feedthrough gap left between adjacent cells in a row and at row ends.
  /// Sized for the all-nets baseline's feedthrough demand.
  geom::Coord gap = 160;

  /// Ordinary signal nets (level B in the paper's experiments).
  int num_signal_nets = 119;
  /// Signal-net degree distribution: P(2), P(3), P(4); remainder is 5.
  double p2 = 0.60;
  double p3 = 0.25;
  double p4 = 0.10;
  /// Fraction of signal nets that get one I/O pad terminal.
  double pad_fraction = 0.10;

  /// Critical/timing nets (level A in the paper's experiments).
  int num_critical_nets = 4;
  /// Total pins across all critical nets (sets the Table-1 average).
  int critical_total_pins = 177;

  /// Fraction of cells carrying an over-cell keep-out (power strap or
  /// sensitive circuit, §1/§3): these block metal3/metal4 over the cell.
  double obstacle_fraction = 0.10;

  /// Pin slot pitch along cell edges (matches the channel column pitch).
  geom::Coord pin_slot = 6;
};

/// Generates the floorplan + netlist for \p spec. Deterministic in seed.
floorplan::MacroLayout generate_macro_layout(const SyntheticSpec& spec);

/// The three instances of the paper's Table 1.
/// ami33: 33 cells, 123 nets; level A = 4 nets averaging 44.25 pins.
SyntheticSpec ami33_spec();
/// Xerox: 10 large cells, 203 nets; level A = 21 nets averaging 9.19 pins.
SyntheticSpec xerox_spec();
/// ex3 (industrial): level A = 56 nets averaging 3.23 pins.
SyntheticSpec ex3_spec();

/// A scaled random instance for property tests and sweeps. \p scale ~ 1.0
/// matches ami33's size.
SyntheticSpec random_spec(std::uint64_t seed, double scale = 1.0);

}  // namespace ocr::bench_data

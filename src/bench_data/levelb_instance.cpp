#include "bench_data/levelb_instance.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace ocr::bench_data {

using geom::Coord;
using geom::Point;

LevelBInstance generate_levelb_instance(const LevelBSpec& spec) {
  util::Rng rng(spec.seed);
  LevelBInstance inst{
      spec.name,
      tig::TrackGrid::uniform(geom::Rect(0, 0, spec.size, spec.size),
                              spec.h_pitch, spec.v_pitch),
      {}};
  for (int n = 0; n < spec.num_nets; ++n) {
    levelb::BNet net{n, {}, false};
    const Point center{rng.uniform_int(0, spec.size - 1),
                       rng.uniform_int(0, spec.size - 1)};
    const int degree = static_cast<int>(
        rng.uniform_int(spec.degree_min, spec.degree_max));
    for (int t = 0; t < degree; ++t) {
      Point p;
      if (spec.locality > 0) {
        p.x = std::clamp<Coord>(
            center.x + rng.uniform_int(0, 2 * spec.locality) - spec.locality,
            0, spec.size - 1);
        p.y = std::clamp<Coord>(
            center.y + rng.uniform_int(0, 2 * spec.locality) - spec.locality,
            0, spec.size - 1);
      } else {
        p = Point{rng.uniform_int(0, spec.size - 1),
                  rng.uniform_int(0, spec.size - 1)};
      }
      net.terminals.push_back(p);
    }
    net.sensitive = spec.sensitive_every > 0 &&
                    n % spec.sensitive_every == spec.sensitive_every / 2;
    inst.nets.push_back(std::move(net));
  }
  return inst;
}

LevelBSpec sparse5000_spec() {
  LevelBSpec spec;
  spec.name = "sparse-5000";
  spec.seed = 17;
  spec.size = 5000;
  spec.num_nets = 1200;
  spec.locality = 150;
  return spec;
}

LevelBSpec sparse100k_spec() {
  LevelBSpec spec;
  spec.name = "sparse-100k";
  spec.seed = 23;
  spec.size = 200000;
  spec.num_nets = 100000;
  spec.locality = 150;
  return spec;
}

LevelBSpec sparse100k_ci_spec() {
  LevelBSpec spec = sparse100k_spec();
  spec.name = "sparse-100k-ci";
  spec.num_nets = 4000;
  return spec;
}

}  // namespace ocr::bench_data

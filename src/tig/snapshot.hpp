#pragma once
/// \file snapshot.hpp
/// \brief Epoch-versioned occupancy over a TrackGrid: immutable snapshots
/// for concurrent readers, a commit log for a single writer.
///
/// The level-B engine splits the classic mutable track grid into
///
/// * `GridSnapshot` — a frozen copy of the grid at some epoch. Worker
///   threads run path searches against snapshots, never the live grid.
/// * `CommitLog` — the ordered record of every commit batch applied to the
///   live grid. Each record lists the track extents it blocked/unblocked,
///   so a speculative search result can be checked for conflicts: a search
///   that examined none of the tracks touched between its snapshot epoch
///   and commit time would have produced the same answer on the live grid.
/// * `VersionedGrid` — the single-writer wrapper tying the two together:
///   `apply()` mutates the underlying grid and advances the epoch;
///   `snapshot()` returns a cached immutable copy that is allowed to lag
///   the live epoch by up to the refresh interval (readers catch up by
///   replaying commit-log ops through a GridOverlay).
///
/// Snapshot publication is *incremental*: a stale cached snapshot is
/// refreshed by copying the previous snapshot's grid (whose free-gap cache
/// is already warm) and replaying the missing commit batches onto it —
/// the gap cache patches in place — rather than deep-copying the live grid
/// and re-deriving every gap list. With a refresh interval of N, a run of
/// E commits performs ~E/N grid copies instead of E.
///
/// Thread contract: any number of threads may call snapshot()/epoch()
/// concurrently; apply() must come from one thread at a time (the engine's
/// committer). CommitLog::record_at/size are lock-free and safe from any
/// thread for epochs at or below a value the writer has published —
/// PROVIDED the log's capacity was reserved up front (VersionedGrid's
/// expected_commits) so append never reallocates; otherwise they are safe
/// only from the writer thread or after the writer quiesces.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "tig/track_grid.hpp"

namespace ocr::tig {

/// An immutable copy of the routing surface at a fixed epoch. Readers may
/// share one snapshot across threads; nothing mutates it after publication.
struct GridSnapshot {
  TrackGrid grid;
  std::uint64_t epoch = 0;

  GridSnapshot(TrackGrid grid_in, std::uint64_t epoch_in)
      : grid(std::move(grid_in)), epoch(epoch_in) {
    // Freeze the free-gap cache: materialize every entry now so the
    // concurrent readers this snapshot is published to only ever perform
    // pure reads (no lazy back-fill races).
    grid.warm_gap_cache();
  }
};

/// One track-extent mutation of a commit batch.
struct CommitOp {
  TrackRef track;
  geom::Interval span;
  bool block = true;  ///< false = unblock (rip-up)
};

/// One atomic batch of mutations (typically: all extents of one net).
struct CommitRecord {
  std::uint64_t epoch = 0;  ///< epoch the batch was applied AT (pre-bump)
  std::vector<CommitOp> ops;
  /// Whether the batch registered sensitive wiring (changes path costs
  /// beyond the touched tracks, so speculation across it is never valid).
  bool sensitive = false;
};

/// Applies one commit op to a mutable grid (the single switch shared by
/// VersionedGrid::apply and incremental snapshot refresh).
inline void apply_commit_op(TrackGrid& grid, const CommitOp& op) {
  if (op.track.orient == geom::Orientation::kHorizontal) {
    if (op.block) {
      grid.block_h(op.track.index, op.span);
    } else {
      grid.unblock_h(op.track.index, op.span);
    }
  } else {
    if (op.block) {
      grid.block_v(op.track.index, op.span);
    } else {
      grid.unblock_v(op.track.index, op.span);
    }
  }
}

/// Ordered history of applied commit batches.
///
/// Reader contract: record_at()/size() are lock-free. A reader thread may
/// access any record whose epoch is below a bound the writer published
/// *after* appending it (the engine's committed-epoch counter): append's
/// release store on the size pairs with record_at's acquire load. This
/// relies on the backing vector never reallocating — reserve() must be
/// called with the run's total batch count before concurrent readers
/// start. Without the reservation, only the writer thread (or quiesced
/// readers) may touch the log.
class CommitLog {
 public:
  void reserve(std::size_t expected) { records_.reserve(expected); }

  void append(CommitRecord record) {
    records_.push_back(std::move(record));
    size_.store(records_.size(), std::memory_order_release);
  }

  /// Whole-history access: writer thread or quiesced readers only.
  const std::vector<CommitRecord>& records() const { return records_; }

  /// Records applied at epochs in [from, to).
  /// Since exactly one record is applied per epoch, this is the slice
  /// records_[from..to).
  const CommitRecord* record_at(std::uint64_t epoch) const {
    return epoch < size_.load(std::memory_order_acquire) ? &records_[epoch]
                                                         : nullptr;
  }

  std::uint64_t size() const {
    return size_.load(std::memory_order_acquire);
  }

 private:
  std::vector<CommitRecord> records_;
  std::atomic<std::uint64_t> size_{0};
};

/// Single-writer, many-reader versioned view over a caller-owned grid.
class VersionedGrid {
 public:
  /// Wraps \p grid (must outlive this object). The grid's current contents
  /// become epoch 0. \p expected_commits pre-reserves the commit log so
  /// concurrent readers may use CommitLog::record_at lock-free (see the
  /// CommitLog contract). \p snapshot_refresh_interval bounds how many
  /// epochs the cached snapshot may lag the live grid before snapshot()
  /// refreshes it; 1 keeps snapshots exact (the serial-friendly default),
  /// larger values amortize grid copies across commits — readers bridge
  /// the lag with commit-log replay through a GridOverlay.
  explicit VersionedGrid(TrackGrid& grid, std::size_t expected_commits = 0,
                         std::uint64_t snapshot_refresh_interval = 1)
      : grid_(grid),
        refresh_interval_(snapshot_refresh_interval == 0
                              ? 1
                              : snapshot_refresh_interval) {
    log_.reserve(expected_commits);
  }

  std::uint64_t epoch() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return epoch_;
  }

  /// The live grid. Only safe while no apply() is running (writer thread,
  /// or after workers quiesce).
  const TrackGrid& grid() const { return grid_; }

  /// Direct mutable access for single-threaded phases (setup, rip-up).
  /// Invalidates the snapshot cache; the epoch is NOT advanced and the
  /// mutation is NOT logged — callers must not have speculation in flight.
  /// (Unlogged mutations make incremental refresh impossible, hence the
  /// cache drop: the next snapshot() performs a full copy.)
  TrackGrid& exclusive_grid() {
    const std::lock_guard<std::mutex> lock(mu_);
    cache_.reset();
    return grid_;
  }

  /// Applies one commit batch: mutates the grid, logs the record at the
  /// current epoch, and advances the epoch. Writer thread only. The cached
  /// snapshot is kept — it simply lags until the refresh interval expires.
  void apply(std::vector<CommitOp> ops, bool sensitive = false);

  /// Immutable snapshot no older than refresh_interval-1 epochs behind the
  /// current one (copy-on-demand, cached; refreshed incrementally from the
  /// previous snapshot plus the commit log).
  std::shared_ptr<const GridSnapshot> snapshot() const;

  /// Grid deep copies performed by snapshot() so far (full or incremental
  /// refresh — each is one TrackGrid copy). The engine's scaling metric:
  /// per-epoch copying shows up here as copies ~= epochs.
  std::uint64_t snapshot_copies() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return copies_;
  }

  /// Writer-side log access (see CommitLog for the thread contract).
  const CommitLog& log() const { return log_; }

 private:
  TrackGrid& grid_;
  CommitLog log_;
  const std::uint64_t refresh_interval_;
  mutable std::mutex mu_;
  std::uint64_t epoch_ = 0;
  mutable std::uint64_t copies_ = 0;
  mutable std::shared_ptr<const GridSnapshot> cache_;
};

}  // namespace ocr::tig

#pragma once
/// \file snapshot.hpp
/// \brief Epoch-versioned occupancy over a TrackGrid: immutable snapshots
/// for concurrent readers, a commit log for a single writer.
///
/// The level-B engine splits the classic mutable track grid into
///
/// * `GridSnapshot` — a frozen copy of the grid at some epoch. Worker
///   threads run path searches against snapshots, never the live grid.
/// * `CommitLog` — the ordered record of every commit batch applied to the
///   live grid. Each record lists the track extents it blocked/unblocked,
///   so a speculative search result can be checked for conflicts: a search
///   that examined none of the tracks touched between its snapshot epoch
///   and commit time would have produced the same answer on the live grid.
/// * `VersionedGrid` — the single-writer wrapper tying the two together:
///   `apply()` mutates the underlying grid and advances the epoch;
///   `snapshot()` returns a cached immutable copy for the current epoch.
///
/// Thread contract: any number of threads may call snapshot()/epoch()
/// concurrently; apply() must come from one thread at a time (the engine's
/// committer). The CommitLog accessor is safe from the writer thread or
/// after the writer quiesces.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "tig/track_grid.hpp"

namespace ocr::tig {

/// An immutable copy of the routing surface at a fixed epoch. Readers may
/// share one snapshot across threads; nothing mutates it after publication.
struct GridSnapshot {
  TrackGrid grid;
  std::uint64_t epoch = 0;

  GridSnapshot(TrackGrid grid_in, std::uint64_t epoch_in)
      : grid(std::move(grid_in)), epoch(epoch_in) {
    // Freeze the free-gap cache: materialize every entry now so the
    // concurrent readers this snapshot is published to only ever perform
    // pure reads (no lazy back-fill races).
    grid.warm_gap_cache();
  }
};

/// One track-extent mutation of a commit batch.
struct CommitOp {
  TrackRef track;
  geom::Interval span;
  bool block = true;  ///< false = unblock (rip-up)
};

/// One atomic batch of mutations (typically: all extents of one net).
struct CommitRecord {
  std::uint64_t epoch = 0;  ///< epoch the batch was applied AT (pre-bump)
  std::vector<CommitOp> ops;
  /// Whether the batch registered sensitive wiring (changes path costs
  /// beyond the touched tracks, so speculation across it is never valid).
  bool sensitive = false;
};

/// Ordered history of applied commit batches.
class CommitLog {
 public:
  void append(CommitRecord record) { records_.push_back(std::move(record)); }

  const std::vector<CommitRecord>& records() const { return records_; }

  /// Records applied at epochs in [from, to).
  /// Since exactly one record is applied per epoch, this is the slice
  /// records_[from..to).
  const CommitRecord* record_at(std::uint64_t epoch) const {
    return epoch < records_.size() ? &records_[epoch] : nullptr;
  }

  std::uint64_t size() const { return records_.size(); }

 private:
  std::vector<CommitRecord> records_;
};

/// Single-writer, many-reader versioned view over a caller-owned grid.
class VersionedGrid {
 public:
  /// Wraps \p grid (must outlive this object). The grid's current contents
  /// become epoch 0.
  explicit VersionedGrid(TrackGrid& grid) : grid_(grid) {}

  std::uint64_t epoch() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return epoch_;
  }

  /// The live grid. Only safe while no apply() is running (writer thread,
  /// or after workers quiesce).
  const TrackGrid& grid() const { return grid_; }

  /// Direct mutable access for single-threaded phases (setup, rip-up).
  /// Invalidates the snapshot cache; the epoch is NOT advanced and the
  /// mutation is NOT logged — callers must not have speculation in flight.
  TrackGrid& exclusive_grid() {
    const std::lock_guard<std::mutex> lock(mu_);
    cache_.reset();
    return grid_;
  }

  /// Applies one commit batch: mutates the grid, logs the record at the
  /// current epoch, and advances the epoch. Writer thread only.
  void apply(std::vector<CommitOp> ops, bool sensitive = false);

  /// Immutable snapshot of the current epoch (copy-on-demand, cached).
  std::shared_ptr<const GridSnapshot> snapshot() const;

  /// Writer-side log access (see class comment for the thread contract).
  const CommitLog& log() const { return log_; }

 private:
  TrackGrid& grid_;
  CommitLog log_;
  mutable std::mutex mu_;
  std::uint64_t epoch_ = 0;
  mutable std::shared_ptr<const GridSnapshot> cache_;
};

}  // namespace ocr::tig

#pragma once
/// \file congestion.hpp
/// \brief Track-utilization analysis of a level-B grid.
///
/// Quantifies how much of the over-cell fabric a routed design consumes —
/// the quantity behind the paper's §5 caveat that eliminating channels
/// "assumes the solution space for level B routing guarantees 100% routing
/// completion". High regional utilization predicts completion failures.

#include <string>
#include <vector>

#include "tig/track_grid.hpp"

namespace ocr::tig {

/// Utilization summary of one orientation's tracks.
struct OrientationUsage {
  double mean_utilization = 0.0;  ///< blocked length / track length
  double max_utilization = 0.0;
  int full_tracks = 0;  ///< tracks blocked over 95% of their length
  int tracks = 0;
};

/// Whole-grid congestion report.
struct CongestionReport {
  OrientationUsage horizontal;
  OrientationUsage vertical;
  /// Per-region utilization on a bins x bins overlay (row-major, bottom
  /// row first): fraction of track length blocked within the region.
  int bins = 0;
  std::vector<double> region_utilization;

  double peak_region() const;

  /// Multi-line human-readable rendering with a coarse heat map.
  std::string to_string() const;
};

/// Analyzes \p grid's current blocked state.
CongestionReport analyze_congestion(const TrackGrid& grid, int bins = 8);

}  // namespace ocr::tig

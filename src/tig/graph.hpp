#pragma once
/// \file graph.hpp
/// \brief The explicit Track Intersection Graph (paper §3.1, Figure 1).
///
/// G = (V, E) is bipartite: V = V_v (vertical tracks) U V_h (horizontal
/// tracks); an edge (v_i, h_j) exists iff the crossing of the two tracks
/// can be used for routing (free on both tracks). The level-B router
/// searches this graph implicitly through TrackGrid for speed; this
/// explicit form backs analysis, tests and the Figure-1 reproduction.

#include <string>
#include <vector>

#include "tig/track_grid.hpp"

namespace ocr::tig {

/// Explicit bipartite track-intersection graph.
struct TrackIntersectionGraph {
  int num_h = 0;
  int num_v = 0;
  /// adjacency_h[i] = vertical track indices j with a usable crossing.
  std::vector<std::vector<int>> adjacency_h;
  /// adjacency_v[j] = horizontal track indices i with a usable crossing.
  std::vector<std::vector<int>> adjacency_v;

  std::size_t num_vertices() const {
    return static_cast<std::size_t>(num_h) + static_cast<std::size_t>(num_v);
  }
  std::size_t num_edges() const;

  /// True if every pair of tracks that should intersect does (no
  /// obstacles anywhere).
  bool complete() const { return num_edges() == static_cast<std::size_t>(num_h) * static_cast<std::size_t>(num_v); }

  /// Renders the graph as an adjacency listing ("h0: v1 v2 ...") for the
  /// Figure-1 bench output.
  std::string to_string() const;
};

/// Builds the explicit TIG from the grid's current blocked state.
TrackIntersectionGraph build_tig(const TrackGrid& grid);

}  // namespace ocr::tig

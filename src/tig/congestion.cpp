#include "tig/congestion.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/str.hpp"

namespace ocr::tig {

double CongestionReport::peak_region() const {
  double peak = 0.0;
  for (double u : region_utilization) peak = std::max(peak, u);
  return peak;
}

std::string CongestionReport::to_string() const {
  std::string out;
  out += util::format(
      "horizontal tracks: mean %.1f%%, max %.1f%%, %d/%d full\n",
      100.0 * horizontal.mean_utilization, 100.0 * horizontal.max_utilization,
      horizontal.full_tracks, horizontal.tracks);
  out += util::format(
      "vertical tracks:   mean %.1f%%, max %.1f%%, %d/%d full\n",
      100.0 * vertical.mean_utilization, 100.0 * vertical.max_utilization,
      vertical.full_tracks, vertical.tracks);
  out += util::format("peak region utilization: %.1f%%\n",
                      100.0 * peak_region());
  // Heat map, top row first; '.' < 'o' < 'O' < '#'.
  for (int row = bins - 1; row >= 0; --row) {
    out += "  ";
    for (int col = 0; col < bins; ++col) {
      const double u = region_utilization[static_cast<std::size_t>(
          row * bins + col)];
      out += u < 0.25 ? '.' : u < 0.5 ? 'o' : u < 0.75 ? 'O' : '#';
    }
    out += "\n";
  }
  return out;
}

CongestionReport analyze_congestion(const TrackGrid& grid, int bins) {
  OCR_ASSERT(bins > 0, "need at least one congestion bin");
  CongestionReport report;
  report.bins = bins;
  report.region_utilization.assign(
      static_cast<std::size_t>(bins) * static_cast<std::size_t>(bins), 0.0);

  const geom::Interval x_span = grid.h_span();
  const geom::Interval y_span = grid.v_span();
  const double bin_w = static_cast<double>(x_span.length()) / bins;
  const double bin_h = static_cast<double>(y_span.length()) / bins;

  // Region accumulators: blocked and total track length per bin.
  std::vector<double> blocked(report.region_utilization.size(), 0.0);
  std::vector<double> total(report.region_utilization.size(), 0.0);

  const auto bin_interval = [&](int index) {
    return geom::Interval(
        x_span.lo + static_cast<geom::Coord>(index * bin_w),
        x_span.lo + static_cast<geom::Coord>((index + 1) * bin_w));
  };
  const auto bin_interval_y = [&](int index) {
    return geom::Interval(
        y_span.lo + static_cast<geom::Coord>(index * bin_h),
        y_span.lo + static_cast<geom::Coord>((index + 1) * bin_h));
  };

  report.horizontal.tracks = grid.num_h();
  double h_sum = 0.0;
  for (int i = 0; i < grid.num_h(); ++i) {
    const double track_util = grid.h_blocked_fraction(i, x_span);
    h_sum += track_util;
    report.horizontal.max_utilization =
        std::max(report.horizontal.max_utilization, track_util);
    if (track_util > 0.95) ++report.horizontal.full_tracks;
    const int row = std::min(
        bins - 1,
        static_cast<int>((grid.h_y(i) - y_span.lo) /
                         std::max(1.0, bin_h)));
    for (int col = 0; col < bins; ++col) {
      const geom::Interval window = bin_interval(col);
      if (window.lo > window.hi) continue;
      const auto index = static_cast<std::size_t>(row * bins + col);
      blocked[index] += grid.h_blocked_fraction(i, window) *
                        static_cast<double>(window.length());
      total[index] += static_cast<double>(window.length());
    }
  }
  if (grid.num_h() > 0) {
    report.horizontal.mean_utilization = h_sum / grid.num_h();
  }

  report.vertical.tracks = grid.num_v();
  double v_sum = 0.0;
  for (int j = 0; j < grid.num_v(); ++j) {
    const double track_util = grid.v_blocked_fraction(j, y_span);
    v_sum += track_util;
    report.vertical.max_utilization =
        std::max(report.vertical.max_utilization, track_util);
    if (track_util > 0.95) ++report.vertical.full_tracks;
    const int col = std::min(
        bins - 1,
        static_cast<int>((grid.v_x(j) - x_span.lo) /
                         std::max(1.0, bin_w)));
    for (int row = 0; row < bins; ++row) {
      const geom::Interval window = bin_interval_y(row);
      if (window.lo > window.hi) continue;
      const auto index = static_cast<std::size_t>(row * bins + col);
      blocked[index] += grid.v_blocked_fraction(j, window) *
                        static_cast<double>(window.length());
      total[index] += static_cast<double>(window.length());
    }
  }
  if (grid.num_v() > 0) {
    report.vertical.mean_utilization = v_sum / grid.num_v();
  }

  for (std::size_t k = 0; k < blocked.size(); ++k) {
    report.region_utilization[k] =
        total[k] > 0.0 ? blocked[k] / total[k] : 0.0;
  }
  return report;
}

}  // namespace ocr::tig

#include "tig/graph.hpp"

#include "util/str.hpp"

namespace ocr::tig {

std::size_t TrackIntersectionGraph::num_edges() const {
  std::size_t edges = 0;
  for (const auto& adj : adjacency_h) edges += adj.size();
  return edges;
}

std::string TrackIntersectionGraph::to_string() const {
  std::string out;
  for (int i = 0; i < num_h; ++i) {
    out += util::format("h%d:", i + 1);
    for (int j : adjacency_h[static_cast<std::size_t>(i)]) {
      out += util::format(" v%d", j + 1);
    }
    out += "\n";
  }
  return out;
}

TrackIntersectionGraph build_tig(const TrackGrid& grid) {
  TrackIntersectionGraph g;
  g.num_h = grid.num_h();
  g.num_v = grid.num_v();
  g.adjacency_h.resize(static_cast<std::size_t>(g.num_h));
  g.adjacency_v.resize(static_cast<std::size_t>(g.num_v));
  for (int i = 0; i < g.num_h; ++i) {
    for (int j = 0; j < g.num_v; ++j) {
      if (grid.crossing_free(i, j)) {
        g.adjacency_h[static_cast<std::size_t>(i)].push_back(j);
        g.adjacency_v[static_cast<std::size_t>(j)].push_back(i);
      }
    }
  }
  return g;
}

}  // namespace ocr::tig

#pragma once
/// \file grid_view.hpp
/// \brief GridView: a two-pointer value type giving the level-B search a
/// single read surface over either a plain TrackGrid or a TrackGrid seen
/// through a GridOverlay.
///
/// The serial router searches a mutable grid; an engine worker searches an
/// immutable snapshot plus its private overlay (commit deltas + terminal
/// braces). Both call the same MBFS/cost code, so that code takes a
/// GridView: geometry queries always come from the base grid (overlays
/// never change geometry), occupancy queries branch once on the overlay
/// pointer. GridView converts implicitly from `const TrackGrid&`, so every
/// pre-overlay call site compiles unchanged.
///
/// A view is two pointers — pass it by value. It does not own anything;
/// both targets must outlive it.

#include <optional>

#include "tig/overlay.hpp"
#include "tig/track_grid.hpp"

namespace ocr::tig {

class GridView {
 public:
  // Implicit by design: serial callers keep passing a TrackGrid.
  GridView(const TrackGrid& grid) : grid_(&grid) {}
  GridView(const GridOverlay& overlay)
      : grid_(&overlay.base()), overlay_(&overlay) {}

  /// The base grid (geometry source; occupancy of untouched tracks).
  const TrackGrid& base() const { return *grid_; }
  bool has_overlay() const { return overlay_ != nullptr; }

  // ---- geometry (overlay-independent) ---------------------------------

  int num_h() const { return grid_->num_h(); }
  int num_v() const { return grid_->num_v(); }
  const geom::Rect& extent() const { return grid_->extent(); }
  geom::Coord h_y(int i) const { return grid_->h_y(i); }
  geom::Coord v_x(int j) const { return grid_->v_x(j); }
  int nearest_h(geom::Coord y) const { return grid_->nearest_h(y); }
  int nearest_v(geom::Coord x) const { return grid_->nearest_v(x); }
  int first_h_at_or_above(geom::Coord y) const {
    return grid_->first_h_at_or_above(y);
  }
  int first_v_at_or_above(geom::Coord x) const {
    return grid_->first_v_at_or_above(x);
  }
  int last_h_at_or_below(geom::Coord y) const {
    return grid_->last_h_at_or_below(y);
  }
  int last_v_at_or_below(geom::Coord x) const {
    return grid_->last_v_at_or_below(x);
  }
  geom::Point crossing(int i, int j) const { return grid_->crossing(i, j); }
  geom::Interval h_span() const { return grid_->h_span(); }
  geom::Interval v_span() const { return grid_->v_span(); }

  // ---- occupancy (dispatched to the overlay when present) -------------

  bool h_is_free(int i, const geom::Interval& span) const {
    return overlay_ != nullptr ? overlay_->h_is_free(i, span)
                               : grid_->h_is_free(i, span);
  }
  bool v_is_free(int j, const geom::Interval& span) const {
    return overlay_ != nullptr ? overlay_->v_is_free(j, span)
                               : grid_->v_is_free(j, span);
  }

  std::optional<geom::Interval> h_free_segment(int i, geom::Coord x) const {
    return overlay_ != nullptr ? overlay_->h_free_segment(i, x)
                               : grid_->h_free_segment(i, x);
  }
  std::optional<geom::Interval> v_free_segment(int j, geom::Coord y) const {
    return overlay_ != nullptr ? overlay_->v_free_segment(j, y)
                               : grid_->v_free_segment(j, y);
  }

  std::optional<geom::Interval> h_free_segment_span(int i, geom::Coord x,
                                                    int* j_first,
                                                    int* j_last) const {
    return overlay_ != nullptr
               ? overlay_->h_free_segment_span(i, x, j_first, j_last)
               : grid_->h_free_segment_span(i, x, j_first, j_last);
  }
  std::optional<geom::Interval> v_free_segment_span(int j, geom::Coord y,
                                                    int* i_first,
                                                    int* i_last) const {
    return overlay_ != nullptr
               ? overlay_->v_free_segment_span(j, y, i_first, i_last)
               : grid_->v_free_segment_span(j, y, i_first, i_last);
  }

  bool crossing_free(int i, int j) const {
    return overlay_ != nullptr ? overlay_->crossing_free(i, j)
                               : grid_->crossing_free(i, j);
  }

  std::optional<geom::Coord> h_distance_to_blocked(int i,
                                                   geom::Coord x) const {
    return overlay_ != nullptr ? overlay_->h_distance_to_blocked(i, x)
                               : grid_->h_distance_to_blocked(i, x);
  }
  std::optional<geom::Coord> v_distance_to_blocked(int j,
                                                   geom::Coord y) const {
    return overlay_ != nullptr ? overlay_->v_distance_to_blocked(j, y)
                               : grid_->v_distance_to_blocked(j, y);
  }

  double h_blocked_fraction(int i, const geom::Interval& span) const {
    return overlay_ != nullptr ? overlay_->h_blocked_fraction(i, span)
                               : grid_->h_blocked_fraction(i, span);
  }
  double v_blocked_fraction(int j, const geom::Interval& span) const {
    return overlay_ != nullptr ? overlay_->v_blocked_fraction(j, span)
                               : grid_->v_blocked_fraction(j, span);
  }

 private:
  const TrackGrid* grid_;
  const GridOverlay* overlay_ = nullptr;
};

}  // namespace ocr::tig

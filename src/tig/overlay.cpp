#include "tig/overlay.hpp"

#include "util/assert.hpp"

namespace ocr::tig {

void GridOverlay::rebase(const TrackGrid* base) {
  OCR_ASSERT(base != nullptr, "GridOverlay needs a base grid");
  if (base_ != base || h_slot_.size() != static_cast<std::size_t>(
                                             base->num_h()) ||
      v_slot_.size() != static_cast<std::size_t>(base->num_v())) {
    base_ = base;
    h_slot_.reset(static_cast<std::size_t>(base->num_h()));
    v_slot_.reset(static_cast<std::size_t>(base->num_v()));
  } else {
    // Same grid shape: clear only the touched slots (their chunks are
    // present by construction), keeping the directory chunks warm.
    for (const std::int32_t i : touched_h_) {
      *h_slot_.find(static_cast<std::size_t>(i)) = -1;
    }
    for (const std::int32_t j : touched_v_) {
      *v_slot_.find(static_cast<std::size_t>(j)) = -1;
    }
  }
  // Retire the pool instead of destroying it: the sets keep their run
  // capacity for the next epoch's materializations.
  entries_used_ = 0;
  touched_h_.clear();
  touched_v_.clear();
}

std::int32_t GridOverlay::acquire_entry(const geom::IntervalSet& src) {
  const std::size_t idx = entries_used_++;
  if (idx == entries_.size()) {
    entries_.push_back(src);
  } else {
    entries_[idx] = src;
  }
  return static_cast<std::int32_t>(idx);
}

geom::IntervalSet& GridOverlay::materialize_h(int i) {
  std::int32_t& slot = h_slot_.touch(static_cast<std::size_t>(i));
  if (slot < 0) {
    slot = acquire_entry(base_->h_blocked(i));
    touched_h_.push_back(static_cast<std::int32_t>(i));
  }
  return entries_[static_cast<std::size_t>(slot)];
}

geom::IntervalSet& GridOverlay::materialize_v(int j) {
  std::int32_t& slot = v_slot_.touch(static_cast<std::size_t>(j));
  if (slot < 0) {
    slot = acquire_entry(base_->v_blocked(j));
    touched_v_.push_back(static_cast<std::int32_t>(j));
  }
  return entries_[static_cast<std::size_t>(slot)];
}

void GridOverlay::block_h(int i, const geom::Interval& span) {
  materialize_h(i).add(span);
}

void GridOverlay::block_v(int j, const geom::Interval& span) {
  materialize_v(j).add(span);
}

void GridOverlay::unblock_h(int i, const geom::Interval& span) {
  materialize_h(i).remove(span);
}

void GridOverlay::unblock_v(int j, const geom::Interval& span) {
  materialize_v(j).remove(span);
}

void GridOverlay::apply(const TrackRef& track, const geom::Interval& span,
                        bool block) {
  if (track.orient == geom::Orientation::kHorizontal) {
    if (block) {
      block_h(track.index, span);
    } else {
      unblock_h(track.index, span);
    }
  } else {
    if (block) {
      block_v(track.index, span);
    } else {
      unblock_v(track.index, span);
    }
  }
}

const geom::IntervalSet& GridOverlay::h_blocked(int i) const {
  const std::int32_t slot = h_slot_.at(static_cast<std::size_t>(i));
  return slot < 0 ? base_->h_blocked(i)
                  : entries_[static_cast<std::size_t>(slot)];
}

const geom::IntervalSet& GridOverlay::v_blocked(int j) const {
  const std::int32_t slot = v_slot_.at(static_cast<std::size_t>(j));
  return slot < 0 ? base_->v_blocked(j)
                  : entries_[static_cast<std::size_t>(slot)];
}

bool GridOverlay::h_is_free(int i, const geom::Interval& span) const {
  const std::int32_t slot = h_slot_.at(static_cast<std::size_t>(i));
  if (slot < 0) return base_->h_is_free(i, span);
  return entries_[static_cast<std::size_t>(slot)].is_free(span);
}

bool GridOverlay::v_is_free(int j, const geom::Interval& span) const {
  const std::int32_t slot = v_slot_.at(static_cast<std::size_t>(j));
  if (slot < 0) return base_->v_is_free(j, span);
  return entries_[static_cast<std::size_t>(slot)].is_free(span);
}

std::optional<geom::Interval> GridOverlay::h_free_segment(
    int i, geom::Coord x) const {
  const std::int32_t slot = h_slot_.at(static_cast<std::size_t>(i));
  if (slot < 0) return base_->h_free_segment(i, x);
  return entries_[static_cast<std::size_t>(slot)].free_gap_containing(
      base_->h_span(), x);
}

std::optional<geom::Interval> GridOverlay::v_free_segment(
    int j, geom::Coord y) const {
  const std::int32_t slot = v_slot_.at(static_cast<std::size_t>(j));
  if (slot < 0) return base_->v_free_segment(j, y);
  return entries_[static_cast<std::size_t>(slot)].free_gap_containing(
      base_->v_span(), y);
}

std::optional<geom::Interval> GridOverlay::h_free_segment_span(
    int i, geom::Coord x, int* j_first, int* j_last) const {
  const std::int32_t slot = h_slot_.at(static_cast<std::size_t>(i));
  if (slot < 0) return base_->h_free_segment_span(i, x, j_first, j_last);
  const auto gap =
      entries_[static_cast<std::size_t>(slot)].free_gap_containing(
          base_->h_span(), x);
  if (gap) {
    *j_first = base_->first_v_at_or_above(gap->lo);
    *j_last = base_->last_v_at_or_below(gap->hi);
  }
  return gap;
}

std::optional<geom::Interval> GridOverlay::v_free_segment_span(
    int j, geom::Coord y, int* i_first, int* i_last) const {
  const std::int32_t slot = v_slot_.at(static_cast<std::size_t>(j));
  if (slot < 0) return base_->v_free_segment_span(j, y, i_first, i_last);
  const auto gap =
      entries_[static_cast<std::size_t>(slot)].free_gap_containing(
          base_->v_span(), y);
  if (gap) {
    *i_first = base_->first_h_at_or_above(gap->lo);
    *i_last = base_->last_h_at_or_below(gap->hi);
  }
  return gap;
}

bool GridOverlay::crossing_free(int i, int j) const {
  return !h_blocked(i).contains(base_->v_x(j)) &&
         !v_blocked(j).contains(base_->h_y(i));
}

std::optional<geom::Coord> GridOverlay::h_distance_to_blocked(
    int i, geom::Coord x) const {
  const std::int32_t slot = h_slot_.at(static_cast<std::size_t>(i));
  if (slot < 0) return base_->h_distance_to_blocked(i, x);
  return entries_[static_cast<std::size_t>(slot)]
      .distance_to_nearest_blocked(x);
}

std::optional<geom::Coord> GridOverlay::v_distance_to_blocked(
    int j, geom::Coord y) const {
  const std::int32_t slot = v_slot_.at(static_cast<std::size_t>(j));
  if (slot < 0) return base_->v_distance_to_blocked(j, y);
  return entries_[static_cast<std::size_t>(slot)]
      .distance_to_nearest_blocked(y);
}

double GridOverlay::h_blocked_fraction(int i,
                                       const geom::Interval& span) const {
  const std::int32_t slot = h_slot_.at(static_cast<std::size_t>(i));
  if (slot < 0) return base_->h_blocked_fraction(i, span);
  return blocked_fraction_of(entries_[static_cast<std::size_t>(slot)],
                             span);
}

double GridOverlay::v_blocked_fraction(int j,
                                       const geom::Interval& span) const {
  const std::int32_t slot = v_slot_.at(static_cast<std::size_t>(j));
  if (slot < 0) return base_->v_blocked_fraction(j, span);
  return blocked_fraction_of(entries_[static_cast<std::size_t>(slot)],
                             span);
}

}  // namespace ocr::tig

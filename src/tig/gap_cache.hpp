#pragma once
/// \file gap_cache.hpp
/// \brief Memoized per-track free-gap lists for TrackGrid queries.
///
/// `h_free_segment`/`v_free_segment` is the single hottest occupancy query
/// of the MBFS inner loop (one per crossing examined). The underlying
/// `IntervalSet::free_gap_containing` is already O(log k), but it derives
/// the gap boundaries from the *blocked* runs on every call. The GapCache
/// materializes each track's maximal free gaps once — a flat, sorted
/// `(lo, hi)` array — and answers the query with one binary search over
/// that array, returning the gap itself rather than re-deriving it.
///
/// Storage is chunked (util::ChunkedVector, 64 tracks per chunk): a 100k-
/// track grid whose nets only ever search a few hundred tracks carries
/// cache entries for exactly those chunks. A track whose blocked set is
/// *empty* never materializes an entry at all — its free structure is the
/// whole universe, and the fast path below answers both the gap and its
/// crossing span directly from the universe, bit-identically to what a
/// materialized `free_gaps(universe) == [universe]` entry would say.
///
/// Consistency: each track's entry is invalidated whenever that track is
/// mutated (block/unblock), and rebuilt lazily on the next query — so a
/// cache entry is always either absent or exactly
/// `IntervalSet::free_gaps(universe)` for the track's current occupancy.
/// Invalidation runs even while the global toggle is off, which makes the
/// toggle safe to flip between routing runs (A/B benchmarking).
///
/// Thread contract: lazy rebuilds mutate the cache under a const grid
/// query, so they follow the grid's own single-writer rules. Before a grid
/// is shared read-only across threads (GridSnapshot publication), call
/// `TrackGrid::warm_gap_cache()` — it materializes every *blocked* track's
/// entry (empty tracks use the pure-read fast path) so concurrent readers
/// perform pure reads.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "geom/interval.hpp"
#include "geom/interval_set.hpp"
#include "util/chunked.hpp"

namespace ocr::tig {

/// Free-gap memo for one grid (one entry per track and orientation).
class GapCache {
 public:
  /// Process-wide enable toggle (default on). Flip only between routing
  /// runs — entries stay consistent either way, but a run should see one
  /// setting throughout so its cost probes are comparable.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Sizes the cache for a grid with the given track counts; all entries
  /// start invalid (and unmaterialized).
  void reset(std::size_t h_tracks, std::size_t v_tracks) {
    h_.reset(h_tracks);
    v_.reset(v_tracks);
  }

  void invalidate_h(std::size_t i) {
    if (Entry* e = h_.find(i)) e->valid = false;
  }
  void invalidate_v(std::size_t j) {
    if (Entry* e = v_.find(j)) e->valid = false;
  }

  /// Incremental maintenance: patches a valid entry to reflect blocking
  /// (IntervalSet::add) or unblocking (IntervalSet::remove) of \p span on
  /// the track, in place and without re-deriving the whole gap list. The
  /// patched list is exactly `free_gaps(universe)` of the new occupancy;
  /// spans of untouched gaps survive. A stale or absent entry stays so
  /// (nothing to patch). The hot callers are the terminal unblock/block
  /// braces around every net search — full rebuilds there would throw
  /// away the whole track state to change one crossing.
  void on_block_h(std::size_t i, const geom::Interval& span) {
    if (Entry* e = h_.find(i)) patch_block(*e, span);
  }
  void on_block_v(std::size_t j, const geom::Interval& span) {
    if (Entry* e = v_.find(j)) patch_block(*e, span);
  }
  void on_unblock_h(std::size_t i, const geom::Interval& span,
                    const geom::Interval& universe) {
    if (Entry* e = h_.find(i)) patch_unblock(*e, span, universe);
  }
  void on_unblock_v(std::size_t j, const geom::Interval& span,
                    const geom::Interval& universe) {
    if (Entry* e = v_.find(j)) patch_unblock(*e, span, universe);
  }

  /// The maximal free gap of \p universe containing \p v on horizontal
  /// track \p i, exactly as `blocked.free_gap_containing(universe, v)`
  /// would answer. Rebuilds the track's entry if stale; an empty blocked
  /// set is answered from the universe without materializing anything.
  std::optional<geom::Interval> h_gap(std::size_t i,
                                      const geom::IntervalSet& blocked,
                                      const geom::Interval& universe,
                                      geom::Coord v) {
    if (blocked.empty()) return free_track_gap(universe, v);
    return lookup(h_.touch(i), blocked, universe, v);
  }
  std::optional<geom::Interval> v_gap(std::size_t j,
                                      const geom::IntervalSet& blocked,
                                      const geom::Interval& universe,
                                      geom::Coord v) {
    if (blocked.empty()) return free_track_gap(universe, v);
    return lookup(v_.touch(j), blocked, universe, v);
  }

  /// h_gap, additionally reporting the gap's crossing-track index span
  /// over the perpendicular coordinate array \p perp: on a hit,
  /// [*first, *last] are the indices whose coordinate lies inside the
  /// gap (empty when first > last). Spans are memoized per gap, so the
  /// binary searches amortize across every search that re-enters the
  /// same gap.
  std::optional<geom::Interval> h_gap_span(
      std::size_t i, const geom::IntervalSet& blocked,
      const geom::Interval& universe, const std::vector<geom::Coord>& perp,
      geom::Coord v, int* first, int* last) {
    if (blocked.empty()) {
      return free_track_gap_span(universe, perp, v, first, last);
    }
    return lookup_span(h_.touch(i), blocked, universe, perp, v, first, last);
  }
  std::optional<geom::Interval> v_gap_span(
      std::size_t j, const geom::IntervalSet& blocked,
      const geom::Interval& universe, const std::vector<geom::Coord>& perp,
      geom::Coord v, int* first, int* last) {
    if (blocked.empty()) {
      return free_track_gap_span(universe, perp, v, first, last);
    }
    return lookup_span(v_.touch(j), blocked, universe, perp, v, first, last);
  }

  /// Materializes the entry for horizontal track \p i (resp. vertical
  /// \p j) — gaps and crossing spans — so later queries are pure reads.
  /// Callers skip empty-blocked tracks: their queries take the universe
  /// fast path, which never touches the entry array.
  void warm_h(std::size_t i, const geom::IntervalSet& blocked,
              const geom::Interval& universe,
              const std::vector<geom::Coord>& perp) {
    warm(h_.touch(i), blocked, universe, perp);
  }
  void warm_v(std::size_t j, const geom::IntervalSet& blocked,
              const geom::Interval& universe,
              const std::vector<geom::Coord>& perp) {
    warm(v_.touch(j), blocked, universe, perp);
  }

  bool h_valid(std::size_t i) const {
    const Entry* e = h_.find(i);
    return e != nullptr && e->valid;
  }
  bool v_valid(std::size_t j) const {
    const Entry* e = v_.find(j);
    return e != nullptr && e->valid;
  }

  /// Heap footprint: chunk directories, materialized entry chunks, and
  /// the gap/span arrays inside them (observability).
  std::size_t storage_bytes() const {
    std::size_t bytes = h_.storage_bytes() + v_.storage_bytes();
    const auto add_entry = [&bytes](std::size_t, const Entry& e) {
      bytes += e.gaps.capacity() * sizeof(geom::Interval) +
               e.spans.capacity() * sizeof(std::pair<int, int>);
    };
    h_.for_each_present(add_entry);
    v_.for_each_present(add_entry);
    return bytes;
  }

 private:
  struct Entry {
    bool valid = false;
    bool spans_valid = false;  ///< spans filled for the current gaps
    std::vector<geom::Interval> gaps;  ///< sorted, disjoint free gaps
    std::vector<std::pair<int, int>> spans;  ///< perp index range per gap
  };

  /// What a materialized entry for a fully-free track would answer: the
  /// single gap [universe] when it contains \p v, otherwise a miss.
  static std::optional<geom::Interval> free_track_gap(
      const geom::Interval& universe, geom::Coord v) {
    if (v < universe.lo || v > universe.hi) return std::nullopt;
    return universe;
  }

  /// Span variant of the fast path — the same lower_bound derivation
  /// span_of() memoizes, applied to the universe gap. Two binary searches
  /// per query instead of a memo: free tracks have exactly one gap, so
  /// there is no list to search first and the searches are the whole cost.
  static std::optional<geom::Interval> free_track_gap_span(
      const geom::Interval& universe, const std::vector<geom::Coord>& perp,
      geom::Coord v, int* first, int* last) {
    if (v < universe.lo || v > universe.hi) return std::nullopt;
    const auto lo = std::lower_bound(perp.begin(), perp.end(), universe.lo);
    const auto hi = std::lower_bound(lo, perp.end(), universe.hi + 1);
    *first = static_cast<int>(lo - perp.begin());
    *last = static_cast<int>(hi - perp.begin()) - 1;
    return universe;
  }

  /// Fully materializes an entry — gaps and every span — so later
  /// lookups are pure reads (the GridSnapshot freeze path).
  static void warm(Entry& e, const geom::IntervalSet& blocked,
                   const geom::Interval& universe,
                   const std::vector<geom::Coord>& perp) {
    ensure(e, blocked, universe);
    ensure_spans_sized(e);
    for (std::size_t g = 0; g < e.gaps.size(); ++g) span_of(e, g, perp);
  }

  static void ensure(Entry& e, const geom::IntervalSet& blocked,
                     const geom::Interval& universe) {
    if (!e.valid) {
      // Rebuild in place: invalidation is frequent on terminal tracks
      // (block/unblock braces every search), so keep the capacity.
      blocked.free_gaps_into(universe, e.gaps);
      e.valid = true;
      e.spans_valid = false;
    }
  }

  /// Sentinel for a span slot not yet derived (see span_of).
  static constexpr int kSpanUncomputed = -2;

  /// Sizes the span array (all slots uncomputed). Spans are derived one
  /// gap at a time on first use — a track rebuild after invalidation must
  /// not pay one binary-search pair per gap up front, only per gap the
  /// searches actually enter.
  static void ensure_spans_sized(Entry& e) {
    if (e.spans_valid) return;
    e.spans.assign(e.gaps.size(), {kSpanUncomputed, kSpanUncomputed});
    e.spans_valid = true;
  }

  /// The crossing-index span of gap \p g: the indices of \p perp
  /// coordinates inside it (lower_bound both ends — the same derivation
  /// as TrackGrid::first_*_at_or_above/last_*_at_or_below). Memoized.
  static const std::pair<int, int>& span_of(
      Entry& e, std::size_t g, const std::vector<geom::Coord>& perp) {
    std::pair<int, int>& s = e.spans[g];
    if (s.first == kSpanUncomputed) {
      const auto lo =
          std::lower_bound(perp.begin(), perp.end(), e.gaps[g].lo);
      const auto hi = std::lower_bound(lo, perp.end(), e.gaps[g].hi + 1);
      s = {static_cast<int>(lo - perp.begin()),
           static_cast<int>(hi - perp.begin()) - 1};
    }
    return s;
  }

  static std::optional<geom::Interval> lookup(
      Entry& e, const geom::IntervalSet& blocked,
      const geom::Interval& universe, geom::Coord v) {
    ensure(e, blocked, universe);
    // First gap that could contain v; gaps are sorted and disjoint, so
    // the containment test on that single gap decides the query.
    const auto it = std::lower_bound(
        e.gaps.begin(), e.gaps.end(), v,
        [](const geom::Interval& gap, geom::Coord value) {
          return gap.hi < value;
        });
    if (it == e.gaps.end() || it->lo > v) return std::nullopt;
    return *it;
  }

  /// Replaces gaps[fi, li) with \p pieces (np <= 2), keeping the span
  /// array parallel; replaced slots become uncomputed.
  static void splice(Entry& e, std::size_t fi, std::size_t li,
                     const geom::Interval* pieces, std::size_t np) {
    const std::size_t overwrite = std::min(np, li - fi);
    std::copy(pieces, pieces + overwrite,
              e.gaps.begin() + static_cast<std::ptrdiff_t>(fi));
    if (np < li - fi) {
      e.gaps.erase(e.gaps.begin() + static_cast<std::ptrdiff_t>(fi + np),
                   e.gaps.begin() + static_cast<std::ptrdiff_t>(li));
    } else if (np > li - fi) {
      e.gaps.insert(e.gaps.begin() + static_cast<std::ptrdiff_t>(li),
                    pieces + overwrite, pieces + np);
    }
    if (!e.spans_valid) return;
    const std::pair<int, int> u{kSpanUncomputed, kSpanUncomputed};
    std::fill_n(e.spans.begin() + static_cast<std::ptrdiff_t>(fi), overwrite,
                u);
    if (np < li - fi) {
      e.spans.erase(e.spans.begin() + static_cast<std::ptrdiff_t>(fi + np),
                    e.spans.begin() + static_cast<std::ptrdiff_t>(li));
    } else if (np > li - fi) {
      e.spans.insert(e.spans.begin() + static_cast<std::ptrdiff_t>(li),
                     np - overwrite, u);
    }
  }

  /// Gap-list effect of blocking \p span: gaps intersecting it lose the
  /// blocked part — the first may keep a left remainder, the last a right
  /// remainder, wholly-covered gaps vanish.
  static void patch_block(Entry& e, const geom::Interval& span) {
    if (!e.valid) return;
    auto& g = e.gaps;
    const auto first = std::lower_bound(
        g.begin(), g.end(), span.lo,
        [](const geom::Interval& gap, geom::Coord v) { return gap.hi < v; });
    if (first == g.end() || first->lo > span.hi) return;  // all blocked
    auto last = first;
    while (last != g.end() && last->lo <= span.hi) ++last;
    geom::Interval pieces[2];
    std::size_t np = 0;
    if (first->lo < span.lo) {
      pieces[np++] = geom::Interval(first->lo, span.lo - 1);
    }
    const geom::Interval& right_src = *std::prev(last);
    if (right_src.hi > span.hi) {
      pieces[np++] = geom::Interval(span.hi + 1, right_src.hi);
    }
    splice(e, static_cast<std::size_t>(first - g.begin()),
           static_cast<std::size_t>(last - g.begin()), pieces, np);
  }

  /// Gap-list effect of unblocking \p span: the freed range (clamped to
  /// the universe) merges with every gap it touches or abuts into one.
  static void patch_unblock(Entry& e, const geom::Interval& span,
                            const geom::Interval& universe) {
    if (!e.valid) return;
    const geom::Coord s_lo = std::max(span.lo, universe.lo);
    const geom::Coord s_hi = std::min(span.hi, universe.hi);
    if (s_lo > s_hi) return;  // entirely outside the universe
    auto& g = e.gaps;
    const auto first = std::lower_bound(
        g.begin(), g.end(), s_lo - 1,
        [](const geom::Interval& gap, geom::Coord v) { return gap.hi < v; });
    geom::Coord m_lo = s_lo;
    geom::Coord m_hi = s_hi;
    auto last = first;
    while (last != g.end() && last->lo <= s_hi + 1) {
      m_lo = std::min(m_lo, last->lo);
      m_hi = std::max(m_hi, last->hi);
      ++last;
    }
    if (last - first == 1 && first->lo == m_lo && first->hi == m_hi) {
      return;  // span was already free inside this gap: no change
    }
    const geom::Interval pieces[1] = {geom::Interval(m_lo, m_hi)};
    splice(e, static_cast<std::size_t>(first - g.begin()),
           static_cast<std::size_t>(last - g.begin()), pieces, 1);
  }

  static std::optional<geom::Interval> lookup_span(
      Entry& e, const geom::IntervalSet& blocked,
      const geom::Interval& universe, const std::vector<geom::Coord>& perp,
      geom::Coord v, int* first, int* last) {
    ensure(e, blocked, universe);
    const auto it = std::lower_bound(
        e.gaps.begin(), e.gaps.end(), v,
        [](const geom::Interval& gap, geom::Coord value) {
          return gap.hi < value;
        });
    if (it == e.gaps.end() || it->lo > v) return std::nullopt;
    ensure_spans_sized(e);
    const std::pair<int, int>& s =
        span_of(e, static_cast<std::size_t>(it - e.gaps.begin()), perp);
    *first = s.first;
    *last = s.second;
    return *it;
  }

  static std::atomic<bool> enabled_;

  util::ChunkedVector<Entry> h_;
  util::ChunkedVector<Entry> v_;
};

}  // namespace ocr::tig

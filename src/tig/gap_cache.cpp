#include "tig/gap_cache.hpp"

namespace ocr::tig {

std::atomic<bool> GapCache::enabled_{true};

}  // namespace ocr::tig

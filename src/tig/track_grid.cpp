#include "tig/track_grid.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ocr::tig {
namespace {

bool ascending_unique(const std::vector<geom::Coord>& v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] <= v[i - 1]) return false;
  }
  return true;
}

int nearest_index(const std::vector<geom::Coord>& coords, geom::Coord v) {
  OCR_ASSERT(!coords.empty(), "grid has no tracks in this orientation");
  const auto it = std::lower_bound(coords.begin(), coords.end(), v);
  if (it == coords.begin()) return 0;
  if (it == coords.end()) return static_cast<int>(coords.size()) - 1;
  const auto prev = std::prev(it);
  // Ties go to the lower track.
  if (v - *prev <= *it - v) return static_cast<int>(prev - coords.begin());
  return static_cast<int>(it - coords.begin());
}

}  // namespace

TrackGrid::TrackGrid(std::vector<geom::Coord> h_ys,
                     std::vector<geom::Coord> v_xs, const geom::Rect& extent)
    : h_ys_(std::move(h_ys)), v_xs_(std::move(v_xs)), extent_(extent) {
  OCR_ASSERT(!h_ys_.empty() && !v_xs_.empty(),
             "grid needs at least one track per orientation");
  OCR_ASSERT(ascending_unique(h_ys_) && ascending_unique(v_xs_),
             "track coordinates must be ascending and unique");
  OCR_ASSERT(h_ys_.front() >= extent_.ylo && h_ys_.back() <= extent_.yhi,
             "horizontal tracks must lie inside the extent");
  OCR_ASSERT(v_xs_.front() >= extent_.xlo && v_xs_.back() <= extent_.xhi,
             "vertical tracks must lie inside the extent");
  h_blocked_.reset(h_ys_.size());
  v_blocked_.reset(v_xs_.size());
  gap_cache_.reset(h_ys_.size(), v_xs_.size());
}

TrackGrid TrackGrid::uniform(const geom::Rect& extent, geom::Coord h_pitch,
                             geom::Coord v_pitch) {
  OCR_ASSERT(h_pitch > 0 && v_pitch > 0, "pitches must be positive");
  std::vector<geom::Coord> ys;
  for (geom::Coord y = extent.ylo + h_pitch / 2; y <= extent.yhi;
       y += h_pitch) {
    ys.push_back(y);
  }
  std::vector<geom::Coord> xs;
  for (geom::Coord x = extent.xlo + v_pitch / 2; x <= extent.xhi;
       x += v_pitch) {
    xs.push_back(x);
  }
  OCR_ASSERT(!ys.empty() && !xs.empty(), "extent too small for the pitches");
  return TrackGrid(std::move(ys), std::move(xs), extent);
}

int TrackGrid::nearest_h(geom::Coord y) const {
  return nearest_index(h_ys_, y);
}

int TrackGrid::nearest_v(geom::Coord x) const {
  return nearest_index(v_xs_, x);
}

namespace {
int lower_index(const std::vector<geom::Coord>& coords, geom::Coord v) {
  return static_cast<int>(
      std::lower_bound(coords.begin(), coords.end(), v) - coords.begin());
}
}  // namespace

int TrackGrid::first_h_at_or_above(geom::Coord y) const {
  return lower_index(h_ys_, y);
}

int TrackGrid::first_v_at_or_above(geom::Coord x) const {
  return lower_index(v_xs_, x);
}

int TrackGrid::last_h_at_or_below(geom::Coord y) const {
  return lower_index(h_ys_, y + 1) - 1;
}

int TrackGrid::last_v_at_or_below(geom::Coord x) const {
  return lower_index(v_xs_, x + 1) - 1;
}

void TrackGrid::block_h(int i, const geom::Interval& span) {
  h_blocked_.touch(static_cast<std::size_t>(i)).add(span);
  gap_cache_.on_block_h(static_cast<std::size_t>(i), span);
}

void TrackGrid::block_v(int j, const geom::Interval& span) {
  v_blocked_.touch(static_cast<std::size_t>(j)).add(span);
  gap_cache_.on_block_v(static_cast<std::size_t>(j), span);
}

void TrackGrid::unblock_h(int i, const geom::Interval& span) {
  // An absent chunk means the track was never blocked — removing from an
  // empty set is a no-op, so skip the materialization entirely.
  if (auto* s = h_blocked_.find(static_cast<std::size_t>(i))) s->remove(span);
  gap_cache_.on_unblock_h(static_cast<std::size_t>(i), span, h_span());
}

void TrackGrid::unblock_v(int j, const geom::Interval& span) {
  if (auto* s = v_blocked_.find(static_cast<std::size_t>(j))) s->remove(span);
  gap_cache_.on_unblock_v(static_cast<std::size_t>(j), span, v_span());
}

void TrackGrid::block_region_h(const geom::Rect& region) {
  // Only the tracks whose coordinate falls inside the region can change;
  // binary-search the index range instead of scanning every track (a
  // 100k-track grid with thousands of obstacles cannot afford the scan).
  const int first = first_h_at_or_above(region.ylo);
  const int last = last_h_at_or_below(region.yhi);
  for (int i = first; i <= last; ++i) block_h(i, region.x_span());
}

void TrackGrid::block_region_v(const geom::Rect& region) {
  const int first = first_v_at_or_above(region.xlo);
  const int last = last_v_at_or_below(region.xhi);
  for (int j = first; j <= last; ++j) block_v(j, region.y_span());
}

bool TrackGrid::h_is_free(int i, const geom::Interval& span) const {
  return h_blocked_.at(static_cast<std::size_t>(i)).is_free(span);
}

bool TrackGrid::v_is_free(int j, const geom::Interval& span) const {
  return v_blocked_.at(static_cast<std::size_t>(j)).is_free(span);
}

std::optional<geom::Interval> TrackGrid::h_free_segment(
    int i, geom::Coord x) const {
  const auto idx = static_cast<std::size_t>(i);
  if (GapCache::enabled()) {
    return gap_cache_.h_gap(idx, h_blocked_.at(idx), h_span(), x);
  }
  return h_blocked_.at(idx).free_gap_containing(h_span(), x);
}

std::optional<geom::Interval> TrackGrid::v_free_segment(
    int j, geom::Coord y) const {
  const auto idx = static_cast<std::size_t>(j);
  if (GapCache::enabled()) {
    return gap_cache_.v_gap(idx, v_blocked_.at(idx), v_span(), y);
  }
  return v_blocked_.at(idx).free_gap_containing(v_span(), y);
}

std::optional<geom::Interval> TrackGrid::h_free_segment_span(
    int i, geom::Coord x, int* j_first, int* j_last) const {
  const auto idx = static_cast<std::size_t>(i);
  if (GapCache::enabled()) {
    return gap_cache_.h_gap_span(idx, h_blocked_.at(idx), h_span(), v_xs_, x,
                                 j_first, j_last);
  }
  const auto gap = h_blocked_.at(idx).free_gap_containing(h_span(), x);
  if (gap) {
    *j_first = first_v_at_or_above(gap->lo);
    *j_last = last_v_at_or_below(gap->hi);
  }
  return gap;
}

std::optional<geom::Interval> TrackGrid::v_free_segment_span(
    int j, geom::Coord y, int* i_first, int* i_last) const {
  const auto idx = static_cast<std::size_t>(j);
  if (GapCache::enabled()) {
    return gap_cache_.v_gap_span(idx, v_blocked_.at(idx), v_span(), h_ys_, y,
                                 i_first, i_last);
  }
  const auto gap = v_blocked_.at(idx).free_gap_containing(v_span(), y);
  if (gap) {
    *i_first = first_h_at_or_above(gap->lo);
    *i_last = last_h_at_or_below(gap->hi);
  }
  return gap;
}

void TrackGrid::warm_gap_cache() const {
  if (!GapCache::enabled()) return;
  // Only blocked tracks need a materialized entry: queries on empty
  // tracks take the cache's universe fast path, which is already a pure
  // read. Walking present chunks keeps warming O(touched), not O(grid).
  h_blocked_.for_each_present([this](std::size_t i,
                                     const geom::IntervalSet& blocked) {
    if (!blocked.empty()) gap_cache_.warm_h(i, blocked, h_span(), v_xs_);
  });
  v_blocked_.for_each_present([this](std::size_t j,
                                     const geom::IntervalSet& blocked) {
    if (!blocked.empty()) gap_cache_.warm_v(j, blocked, v_span(), h_ys_);
  });
}

std::size_t TrackGrid::grid_bytes() const {
  std::size_t bytes = (h_ys_.capacity() + v_xs_.capacity()) *
                      sizeof(geom::Coord);
  bytes += h_blocked_.storage_bytes() + v_blocked_.storage_bytes();
  const auto add_runs = [&bytes](std::size_t, const geom::IntervalSet& s) {
    bytes += s.runs().capacity() * sizeof(geom::Interval);
  };
  h_blocked_.for_each_present(add_runs);
  v_blocked_.for_each_present(add_runs);
  return bytes + gap_cache_.storage_bytes();
}

bool TrackGrid::crossing_free(int i, int j) const {
  return !h_blocked_.at(static_cast<std::size_t>(i)).contains(v_x(j)) &&
         !v_blocked_.at(static_cast<std::size_t>(j)).contains(h_y(i));
}

std::optional<geom::Coord> TrackGrid::h_distance_to_blocked(
    int i, geom::Coord x) const {
  return h_blocked_.at(static_cast<std::size_t>(i))
      .distance_to_nearest_blocked(x);
}

std::optional<geom::Coord> TrackGrid::v_distance_to_blocked(
    int j, geom::Coord y) const {
  return v_blocked_.at(static_cast<std::size_t>(j))
      .distance_to_nearest_blocked(y);
}

double blocked_fraction_of(const geom::IntervalSet& blocked,
                           const geom::Interval& span) {
  if (span.length() == 0) return blocked.contains(span.lo) ? 1.0 : 0.0;
  geom::Coord covered = 0;
  const std::vector<geom::Interval>& runs = blocked.runs();
  // Binary-search the first run reaching span.lo; runs before it cannot
  // overlap, so congested tracks don't degrade to a full scan.
  auto it = std::lower_bound(runs.begin(), runs.end(), span.lo,
                             [](const geom::Interval& run, geom::Coord v) {
                               return run.hi < v;
                             });
  for (; it != runs.end() && it->lo <= span.hi; ++it) {
    covered += std::min(it->hi, span.hi) - std::max(it->lo, span.lo);
  }
  return static_cast<double>(covered) / static_cast<double>(span.length());
}

double TrackGrid::h_blocked_fraction(int i,
                                     const geom::Interval& span) const {
  return blocked_fraction_of(h_blocked_.at(static_cast<std::size_t>(i)),
                             span);
}

double TrackGrid::v_blocked_fraction(int j,
                                     const geom::Interval& span) const {
  return blocked_fraction_of(v_blocked_.at(static_cast<std::size_t>(j)),
                             span);
}

}  // namespace ocr::tig

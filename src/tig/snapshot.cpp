#include "tig/snapshot.hpp"

#include <utility>

namespace ocr::tig {

void VersionedGrid::apply(std::vector<CommitOp> ops, bool sensitive) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const CommitOp& op : ops) {
    apply_commit_op(grid_, op);
  }
  CommitRecord record;
  record.epoch = epoch_;
  record.ops = std::move(ops);
  record.sensitive = sensitive;
  log_.append(std::move(record));
  ++epoch_;
  // The cached snapshot is deliberately NOT dropped: it stays valid for
  // its own (older) epoch, and snapshot() refreshes it incrementally once
  // the lag exceeds the refresh interval.
}

std::shared_ptr<const GridSnapshot> VersionedGrid::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (cache_ != nullptr && epoch_ - cache_->epoch < refresh_interval_) {
    return cache_;
  }
  ++copies_;
  if (cache_ == nullptr) {
    // First publication (or post-exclusive_grid): full copy of the live
    // grid; the GridSnapshot constructor warms the whole gap cache.
    cache_ = std::make_shared<const GridSnapshot>(grid_, epoch_);
    return cache_;
  }
  // Incremental refresh: copy the previous snapshot (its gap cache rides
  // along, already warm) and replay the commit batches it is missing. The
  // replay patches the gap cache in place, so the constructor's warm pass
  // only re-derives crossing spans on the touched tracks. Replaying the
  // logged ops yields exactly the live grid's occupancy at epoch_: the
  // IntervalSets are canonical, so equal op sequences from equal states
  // produce equal sets.
  TrackGrid patched = cache_->grid;
  for (std::uint64_t e = cache_->epoch; e < epoch_; ++e) {
    const CommitRecord* record = log_.record_at(e);
    for (const CommitOp& op : record->ops) {
      apply_commit_op(patched, op);
    }
  }
  cache_ = std::make_shared<const GridSnapshot>(std::move(patched), epoch_);
  return cache_;
}

}  // namespace ocr::tig

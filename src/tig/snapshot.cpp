#include "tig/snapshot.hpp"

namespace ocr::tig {

void VersionedGrid::apply(std::vector<CommitOp> ops, bool sensitive) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const CommitOp& op : ops) {
    if (op.track.orient == geom::Orientation::kHorizontal) {
      if (op.block) {
        grid_.block_h(op.track.index, op.span);
      } else {
        grid_.unblock_h(op.track.index, op.span);
      }
    } else {
      if (op.block) {
        grid_.block_v(op.track.index, op.span);
      } else {
        grid_.unblock_v(op.track.index, op.span);
      }
    }
  }
  CommitRecord record;
  record.epoch = epoch_;
  record.ops = std::move(ops);
  record.sensitive = sensitive;
  log_.append(std::move(record));
  ++epoch_;
  cache_.reset();
}

std::shared_ptr<const GridSnapshot> VersionedGrid::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (cache_ == nullptr || cache_->epoch != epoch_) {
    cache_ = std::make_shared<const GridSnapshot>(grid_, epoch_);
  }
  return cache_;
}

}  // namespace ocr::tig

#pragma once
/// \file overlay.hpp
/// \brief GridOverlay: a sparse, copy-on-touch occupancy delta over an
/// immutable base TrackGrid.
///
/// The parallel engine's workers used to deep-copy the whole TrackGrid
/// once per epoch just to unblock two terminal crossings and absorb a
/// handful of commit ops. The overlay replaces that copy: it answers the
/// occupancy queries the MBFS search makes (free segments, distance to
/// blockage, blocked fraction) from a small set of *touched* tracks — each
/// a private IntervalSet copied from the base on first mutation — and
/// delegates every untouched track to the base grid, whose warmed GapCache
/// entries are pure reads safe to share across threads.
///
/// Identity argument: a touched track's IntervalSet is the base set with
/// the same block/unblock ops a full grid copy would have applied, and the
/// overlay computes its queries with the same IntervalSet primitives the
/// TrackGrid uses when its gap cache is off — a path the gap-cache tests
/// prove equivalent to the cached one. So (base + overlay) answers every
/// query exactly as the mutated deep copy did, bit for bit.
///
/// Thread contract: an overlay belongs to one thread. The base grid must
/// be immutable (e.g. a published GridSnapshot) with a warmed gap cache
/// while any overlay references it.
///
/// Storage: the track→slot directories are chunked (64 tracks per chunk,
/// default slot -1), so an overlay over a 100k-track snapshot allocates
/// directory chunks only around the tracks it actually touches instead of
/// two dense int32 arrays sized to the whole grid per rebase. The private
/// IntervalSets live in a pool that survives rebase — steady-state epochs
/// recycle both the sets' run capacity and the directory chunks.

#include <cstdint>
#include <optional>
#include <vector>

#include "tig/snapshot.hpp"
#include "tig/track_grid.hpp"
#include "util/chunked.hpp"

namespace ocr::tig {

class GridOverlay {
 public:
  GridOverlay() = default;
  explicit GridOverlay(const TrackGrid* base) { rebase(base); }

  /// Drops every touched track and re-targets \p base (may be the same
  /// grid). O(touched tracks), not O(grid).
  void rebase(const TrackGrid* base);

  bool has_base() const { return base_ != nullptr; }
  const TrackGrid& base() const { return *base_; }

  /// Number of tracks with a private delta (observability/tests).
  std::size_t touched_tracks() const {
    return touched_h_.size() + touched_v_.size();
  }

  // ---- mutations (mirror TrackGrid's) ---------------------------------

  void block_h(int i, const geom::Interval& span);
  void block_v(int j, const geom::Interval& span);
  void unblock_h(int i, const geom::Interval& span);
  void unblock_v(int j, const geom::Interval& span);

  /// One commit-log op: block/unblock \p span on \p track.
  void apply(const TrackRef& track, const geom::Interval& span, bool block);
  /// Same, straight from a CommitRecord — the log-replay idiom every
  /// catch-up loop (worker rebase, serial fallback) shares.
  void apply(const CommitOp& op) { apply(op.track, op.span, op.block); }

  // ---- occupancy queries (same semantics as TrackGrid's) --------------

  bool h_is_free(int i, const geom::Interval& span) const;
  bool v_is_free(int j, const geom::Interval& span) const;

  std::optional<geom::Interval> h_free_segment(int i, geom::Coord x) const;
  std::optional<geom::Interval> v_free_segment(int j, geom::Coord y) const;

  std::optional<geom::Interval> h_free_segment_span(int i, geom::Coord x,
                                                    int* j_first,
                                                    int* j_last) const;
  std::optional<geom::Interval> v_free_segment_span(int j, geom::Coord y,
                                                    int* i_first,
                                                    int* i_last) const;

  bool crossing_free(int i, int j) const;

  std::optional<geom::Coord> h_distance_to_blocked(int i,
                                                   geom::Coord x) const;
  std::optional<geom::Coord> v_distance_to_blocked(int j,
                                                   geom::Coord y) const;

  double h_blocked_fraction(int i, const geom::Interval& span) const;
  double v_blocked_fraction(int j, const geom::Interval& span) const;

  /// The effective blocked set of a track: the private delta when touched,
  /// the base's otherwise (tests and diagnostics).
  const geom::IntervalSet& h_blocked(int i) const;
  const geom::IntervalSet& v_blocked(int j) const;

 private:
  /// Index of track \p i's private set in entries_, materializing a copy
  /// of the base set on first touch.
  geom::IntervalSet& materialize_h(int i);
  geom::IntervalSet& materialize_v(int j);

  /// Pool slot holding a copy of \p src: recycles a set retired by an
  /// earlier rebase (keeping its run capacity) or grows the pool.
  std::int32_t acquire_entry(const geom::IntervalSet& src);

  const TrackGrid* base_ = nullptr;
  // track index -> entries_ index, -1 = untouched. Chunked: only the
  // directory chunks around touched tracks materialize.
  util::ChunkedVector<std::int32_t> h_slot_{-1};
  util::ChunkedVector<std::int32_t> v_slot_{-1};
  // Pool of private sets; [0, entries_used_) are live this epoch, the
  // rest are retired sets kept for their capacity.
  std::vector<geom::IntervalSet> entries_;
  std::size_t entries_used_ = 0;
  std::vector<std::int32_t> touched_h_;  // for O(touched) rebase
  std::vector<std::int32_t> touched_v_;
};

}  // namespace ocr::tig

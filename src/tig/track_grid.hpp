#pragma once
/// \file track_grid.hpp
/// \brief The level-B routing surface: horizontal and vertical tracks with
/// blocked extents.
///
/// The paper models the over-cell routing surface as "an array of
/// rectangular cells defined by horizontal and vertical routing tracks
/// that can have different spacing" (§3). Horizontal tracks carry metal3,
/// vertical tracks metal4. Obstacles (power straps, keep-outs, committed
/// wires) block extents of tracks; the free structure of each track is an
/// IntervalSet queried by the router.

#include <cstddef>
#include <optional>
#include <vector>

#include "geom/interval_set.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "tig/gap_cache.hpp"
#include "util/chunked.hpp"

namespace ocr::tig {

/// Identifies one track: its orientation and index in that orientation's
/// coordinate-sorted track list.
struct TrackRef {
  geom::Orientation orient = geom::Orientation::kHorizontal;
  int index = 0;

  friend constexpr auto operator<=>(const TrackRef&, const TrackRef&) =
      default;
};

/// The level-B track grid.
class TrackGrid {
 public:
  /// Builds a grid from explicit track coordinates (ascending, unique).
  /// \p h_ys are the y positions of horizontal tracks; \p v_xs the x
  /// positions of vertical tracks; \p extent the routable area.
  TrackGrid(std::vector<geom::Coord> h_ys, std::vector<geom::Coord> v_xs,
            const geom::Rect& extent);

  /// Builds a uniform grid covering \p extent with the given pitches.
  /// Tracks are inset by half a pitch from the extent boundary.
  static TrackGrid uniform(const geom::Rect& extent, geom::Coord h_pitch,
                           geom::Coord v_pitch);

  int num_h() const { return static_cast<int>(h_ys_.size()); }
  int num_v() const { return static_cast<int>(v_xs_.size()); }
  const geom::Rect& extent() const { return extent_; }

  geom::Coord h_y(int i) const { return h_ys_[static_cast<std::size_t>(i)]; }
  geom::Coord v_x(int j) const { return v_xs_[static_cast<std::size_t>(j)]; }

  /// Index of the track nearest to the given coordinate (ties -> lower).
  int nearest_h(geom::Coord y) const;
  int nearest_v(geom::Coord x) const;

  /// First horizontal-track index whose y >= \p y (num_h() when none) —
  /// with first_*_at_or_below, the index range of tracks inside a span.
  int first_h_at_or_above(geom::Coord y) const;
  int first_v_at_or_above(geom::Coord x) const;
  /// Last horizontal-track index whose y <= \p y (-1 when none).
  int last_h_at_or_below(geom::Coord y) const;
  int last_v_at_or_below(geom::Coord x) const;

  /// Grid crossing point of horizontal track \p i and vertical track \p j.
  geom::Point crossing(int i, int j) const {
    return geom::Point{v_x(j), h_y(i)};
  }

  /// Snaps an arbitrary point to its nearest grid crossing.
  geom::Point snap(const geom::Point& p) const {
    return crossing(nearest_h(p.y), nearest_v(p.x));
  }

  // ---- blocking --------------------------------------------------------

  /// Blocks the x-extent \p span on horizontal track \p i.
  void block_h(int i, const geom::Interval& span);
  /// Blocks the y-extent \p span on vertical track \p j.
  void block_v(int j, const geom::Interval& span);
  /// Unblocks (rip-up support).
  void unblock_h(int i, const geom::Interval& span);
  void unblock_v(int j, const geom::Interval& span);

  /// Blocks every horizontal-track extent covered by \p region (used for
  /// metal3 obstacles) — tracks whose y lies inside the region lose the
  /// region's x span.
  void block_region_h(const geom::Rect& region);
  /// Same for vertical tracks (metal4 obstacles).
  void block_region_v(const geom::Rect& region);

  // ---- queries ----------------------------------------------------------

  bool h_is_free(int i, const geom::Interval& span) const;
  bool v_is_free(int j, const geom::Interval& span) const;

  /// Maximal free extent of track \p i containing x (nullopt: blocked).
  std::optional<geom::Interval> h_free_segment(int i, geom::Coord x) const;
  std::optional<geom::Interval> v_free_segment(int j, geom::Coord y) const;

  /// h_free_segment, additionally reporting the index range of the
  /// crossing (perpendicular) tracks whose coordinate lies inside the
  /// gap: [*j_first, *j_last], empty when j_first > j_last. Untouched on
  /// a miss. Exactly first_v_at_or_above(gap.lo) / last_v_at_or_below(
  /// gap.hi), but memoized per gap when the gap cache is on — the MBFS
  /// expansion loop's iteration bounds without per-node binary searches.
  std::optional<geom::Interval> h_free_segment_span(int i, geom::Coord x,
                                                    int* j_first,
                                                    int* j_last) const;
  std::optional<geom::Interval> v_free_segment_span(int j, geom::Coord y,
                                                    int* i_first,
                                                    int* i_last) const;

  /// Whether the crossing of tracks (i, j) is free on both tracks.
  bool crossing_free(int i, int j) const;

  /// Distance along track \p i from x to the nearest blocked coordinate
  /// (nullopt if the track is completely free).
  std::optional<geom::Coord> h_distance_to_blocked(int i,
                                                   geom::Coord x) const;
  std::optional<geom::Coord> v_distance_to_blocked(int j,
                                                   geom::Coord y) const;

  /// Fraction of blocked length on track \p i within the x-window \p span
  /// (0 = fully free, 1 = fully blocked). Congestion estimation.
  double h_blocked_fraction(int i, const geom::Interval& span) const;
  double v_blocked_fraction(int j, const geom::Interval& span) const;

  /// The blocked set of track \p i. Never-touched tracks answer with a
  /// shared empty set (chunked storage materializes on first block).
  const geom::IntervalSet& h_blocked(int i) const {
    return h_blocked_.at(static_cast<std::size_t>(i));
  }
  const geom::IntervalSet& v_blocked(int j) const {
    return v_blocked_.at(static_cast<std::size_t>(j));
  }

  geom::Interval h_span() const { return extent_.x_span(); }
  geom::Interval v_span() const { return extent_.y_span(); }

  /// Materializes the free-gap cache entry of every *blocked* track so
  /// subsequent free-segment queries are pure reads (untouched tracks are
  /// answered by the cache's universe fast path, also a pure read).
  /// Required before sharing a const grid across threads (GridSnapshot
  /// publication); a no-op when the cache is globally disabled.
  void warm_gap_cache() const;

  /// Heap bytes of the occupancy state: blocked-set chunk storage, the
  /// IntervalSet runs inside it, the gap cache, and the track coordinate
  /// arrays. The `tig.grid_bytes` observability gauge.
  std::size_t grid_bytes() const;

  /// Materialized 64-track chunks across both blocked-set directories
  /// (observability/tests: how sparse the occupancy really is).
  std::size_t blocked_chunks() const {
    return h_blocked_.materialized_chunks() + v_blocked_.materialized_chunks();
  }

 private:
  std::vector<geom::Coord> h_ys_;
  std::vector<geom::Coord> v_xs_;
  geom::Rect extent_;
  util::ChunkedVector<geom::IntervalSet> h_blocked_;
  util::ChunkedVector<geom::IntervalSet> v_blocked_;
  /// Free-gap memo, one entry per track; mutable because it back-fills
  /// under const queries (see GapCache's thread contract). Copies carry
  /// their warm entries with them, so worker-local grid copies start hot.
  mutable GapCache gap_cache_;
};

/// Fraction of \p span covered by the blocked runs of \p blocked — the
/// exact computation behind TrackGrid::h/v_blocked_fraction, shared with
/// GridOverlay so both answer bit-identically.
double blocked_fraction_of(const geom::IntervalSet& blocked,
                           const geom::Interval& span);

}  // namespace ocr::tig

#pragma once
/// \file tables.hpp
/// \brief Renders the paper's tables from flow metrics.

#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "netlist/stats.hpp"
#include "util/metrics.hpp"

namespace ocr::report {

/// One benchmark example's inputs for Table 1.
struct Table1Row {
  netlist::LayoutStats stats;
  netlist::SubsetStats level_a;  ///< the paper's level-A partition
};

/// Table 1: information about the layout examples (cells, nets, pins,
/// level-A nets and their average pins per net).
std::string render_table1(const std::vector<Table1Row>& rows);

/// Table 2: percent reductions of the over-cell flow vs the two-layer
/// channel flow in layout area, wire length and vias.
struct Table2Row {
  flow::FlowMetrics baseline;  ///< two-layer channel flow
  flow::FlowMetrics proposed;  ///< over-cell flow
};
std::string render_table2(const std::vector<Table2Row>& rows);

/// Table 3: absolute layout areas — 4-layer channel router (both the
/// paper's 50% model and the real layer-pair router) vs the over-cell
/// router, with the further percent reduction.
struct Table3Row {
  flow::FlowMetrics fifty_percent_model;
  flow::FlowMetrics four_layer_channel;
  flow::FlowMetrics over_cell;
};
std::string render_table3(const std::vector<Table3Row>& rows);

/// Engine summary: level-B routing-engine effort per flow run (worker
/// threads, MBFS vertices, speculation accepted/re-routed, completion).
/// Rows without level-B nets are skipped.
std::string render_engine_summary(const std::vector<flow::FlowMetrics>& rows);

/// Human-readable dump of a metrics snapshot: counters and gauges as
/// name/value rows, histograms as name/count/sum plus a compact
/// per-bucket breakdown. `ocr_route --verbose` prints this after a run.
std::string render_metrics_summary(const util::MetricsSnapshot& snapshot);

}  // namespace ocr::report

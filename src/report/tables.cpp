#include "report/tables.hpp"

#include "util/str.hpp"
#include "util/table.hpp"

namespace ocr::report {

using util::format;
using util::TextTable;
using util::with_commas;

std::string render_table1(const std::vector<Table1Row>& rows) {
  TextTable t;
  t.set_header({"Example", "Cells", "Nets", "Pins", "Avg pins/net",
                "Level A nets", "Level A avg pins"});
  for (const Table1Row& row : rows) {
    t.add_row({row.stats.name, format("%d", row.stats.num_cells),
               format("%d", row.stats.num_nets),
               format("%d", row.stats.num_pins),
               format("%.2f", row.stats.avg_pins_per_net),
               format("%d", row.level_a.num_nets),
               format("%.2f", row.level_a.avg_pins_per_net)});
  }
  return "Table 1: Information about the layout examples\n" + t.render();
}

std::string render_table2(const std::vector<Table2Row>& rows) {
  TextTable t;
  t.set_header({"Example", "Layout Area %", "Wire Length %", "Vias %"});
  for (const Table2Row& row : rows) {
    t.add_row({row.baseline.example_name,
               format("%.1f", flow::percent_reduction(
                                  static_cast<double>(
                                      row.baseline.layout_area),
                                  static_cast<double>(
                                      row.proposed.layout_area))),
               format("%.1f", flow::percent_reduction(
                                  static_cast<double>(
                                      row.baseline.wire_length),
                                  static_cast<double>(
                                      row.proposed.wire_length))),
               format("%.1f", flow::percent_reduction(
                                  static_cast<double>(row.baseline.vias),
                                  static_cast<double>(
                                      row.proposed.vias)))});
  }
  return "Table 2: Percent reductions of the proposed 4-layer over-cell "
         "router\nover a two-layer channel router\n" +
         t.render();
}

std::string render_table3(const std::vector<Table3Row>& rows) {
  TextTable t;
  t.set_header({"Example", "4L channel (50% model)", "4L channel (real)",
                "4L over-cell", "Reduction vs model %"});
  for (const Table3Row& row : rows) {
    t.add_row(
        {row.over_cell.example_name,
         with_commas(row.fifty_percent_model.layout_area),
         with_commas(row.four_layer_channel.layout_area),
         with_commas(row.over_cell.layout_area),
         format("%.1f",
                flow::percent_reduction(
                    static_cast<double>(
                        row.fifty_percent_model.layout_area),
                    static_cast<double>(row.over_cell.layout_area)))});
  }
  return "Table 3: Layout area, 4-layer channel routing vs over-cell "
         "routing\n" +
         t.render();
}

std::string render_engine_summary(const std::vector<flow::FlowMetrics>& rows) {
  TextTable t;
  t.set_header({"Example", "Threads", "Mode", "Vertices", "Committed",
                "Re-routed", "Wasted vtx", "B completion %"});
  for (const flow::FlowMetrics& m : rows) {
    if (m.levelb_nets == 0) continue;
    // One "committed as searched / re-routed serially" split per mode:
    // speculative counts aborts, sharded counts boundary escapes.
    const bool sharded = m.levelb_engine_mode == "sharded";
    t.add_row({m.example_name, format("%d", m.levelb_threads),
               m.levelb_engine_mode, with_commas(m.levelb_vertices),
               format("%lld", sharded ? m.levelb_sharded_commits
                                      : m.levelb_speculative_commits),
               format("%lld", sharded ? m.levelb_boundary_nets
                                      : m.levelb_speculation_aborts),
               with_commas(sharded ? m.levelb_sharded_wasted_vertices
                                   : m.levelb_wasted_vertices),
               format("%.1f", 100.0 * m.levelb_completion)});
  }
  return "Engine summary: level-B routing effort and speculation\n" +
         t.render();
}

std::string render_metrics_summary(const util::MetricsSnapshot& snapshot) {
  std::string out = "Metrics registry snapshot\n";
  {
    TextTable t;
    t.set_header({"Counter", "Total"});
    for (const auto& [name, value] : snapshot.counters) {
      t.add_row({name, with_commas(value)});
    }
    out += t.render();
  }
  {
    TextTable t;
    t.set_header({"Gauge", "Value"});
    for (const auto& [name, value] : snapshot.gauges) {
      t.add_row({name, with_commas(value)});
    }
    out += t.render();
  }
  if (!snapshot.histograms.empty()) {
    TextTable t;
    t.set_header({"Histogram", "Count", "Sum", "Buckets (<=bound:count)"});
    for (const auto& h : snapshot.histograms) {
      std::string buckets;
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        if (h.counts[i] == 0) continue;
        if (!buckets.empty()) buckets += ' ';
        buckets += i < h.bounds.size()
                       ? format("%lld:%lld", h.bounds[i], h.counts[i])
                       : format("inf:%lld", h.counts[i]);
      }
      t.add_row({h.name, with_commas(h.count), with_commas(h.sum),
                 buckets.empty() ? "-" : buckets});
    }
    out += t.render();
  }
  return out;
}

}  // namespace ocr::report

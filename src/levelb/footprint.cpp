#include "levelb/footprint.hpp"

namespace ocr::levelb {

void SearchFootprint::add(const tig::TrackRef& track,
                          const geom::Interval& iv) {
  if (track.orient == geom::Orientation::kHorizontal) {
    add_h(track.index, iv);
  } else {
    add_v(track.index, iv);
  }
}

bool SearchFootprint::intersects(const tig::TrackRef& track,
                                 const geom::Interval& iv) const {
  const auto& per_track =
      track.orient == geom::Orientation::kHorizontal ? h_ : v_;
  const auto it = per_track.find(track.index);
  return it != per_track.end() && it->second.intersects(iv);
}

}  // namespace ocr::levelb

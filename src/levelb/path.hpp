#pragma once
/// \file path.hpp
/// \brief Routed level-B paths: rectilinear polylines riding grid tracks.

#include <string>
#include <vector>

#include "geom/point.hpp"
#include "tig/track_grid.hpp"

namespace ocr::levelb {

/// A two-terminal connection realized on the level-B grid. The polyline
/// runs from the connection's first endpoint to its second; every leg is
/// axis-aligned and rides one grid track (horizontal legs on metal3,
/// vertical legs on metal4).
struct Path {
  /// Corner points including both endpoints (size >= 2, or empty for a
  /// degenerate zero-length connection).
  std::vector<geom::Point> points;
  /// Track carrying each leg; tracks.size() == points.size() - 1.
  std::vector<tig::TrackRef> tracks;

  bool empty() const { return points.size() < 2; }
  std::size_t num_legs() const {
    return points.empty() ? 0 : points.size() - 1;
  }

  /// Total Manhattan length.
  geom::Coord length() const;

  /// Number of direction changes (metal3<->metal4 vias).
  int corners() const;

  /// Drops zero-length legs and merges collinear consecutive legs,
  /// preserving endpoints. Produces the canonical form used for
  /// deduplication and corner counting.
  void canonicalize();

  /// "(x,y) -> (x,y) -> ..." for diagnostics.
  std::string to_string() const;

  friend bool operator==(const Path& a, const Path& b) {
    return a.points == b.points;
  }
};

/// Checks that \p path is rectilinear, rides its claimed tracks (each leg's
/// fixed coordinate equals the track's position), and starts/ends at the
/// given endpoints. Returns problems (empty = valid).
std::vector<std::string> validate_path(const tig::TrackGrid& grid,
                                       const Path& path,
                                       const geom::Point& a,
                                       const geom::Point& b);

}  // namespace ocr::levelb

#pragma once
/// \file cost.hpp
/// \brief The paper's path-selection cost function (§3.2).
///
///   C = w1·wl + Σ_j ( w21·drg_j + w22·dup_j + w23·acf_j )
///
/// * `wl`   — wire length of the candidate path, measured in pitch units
///            so it is commensurate with the dimensionless corner terms;
/// * `drg`  — proximity of corner j to routed grid points (blocked track
///            extents): 1 / (1 + d / pitch), d = distance to nearest
///            blockage along the corner's two tracks;
/// * `dup`  — proximity of corner j to unrouted net terminals: sum of
///            (1 - manhattan / R) over terminals within radius R;
/// * `acf`  — area congestion factor: mean blocked fraction of the two
///            tracks within a window around the corner.
///
/// The paper's recommendation — w1 = 1, w21 = w22 = w23 = 1/2 for sparse
/// problems, heavier w2x for dense ones — is the default here.

#include <map>
#include <vector>

#include "geom/interval_set.hpp"
#include "geom/point.hpp"
#include "levelb/footprint.hpp"
#include "tig/grid_view.hpp"
#include "tig/track_grid.hpp"

namespace ocr::levelb {

struct CostWeights {
  double w1 = 1.0;    ///< wire length
  double w21 = 0.5;   ///< corner proximity to routed grid points
  double w22 = 0.5;   ///< corner proximity to unrouted terminals
  double w23 = 0.5;   ///< area congestion factor
  /// Extension term (§3.2: "additional terms can be included in the cost
  /// function, for example, to prevent parallel routing of sensitive
  /// nets"): penalty per pitch of running parallel to a sensitive wire on
  /// an adjacent track. 0 disables.
  double w24 = 0.0;
};

/// Registry of committed wiring that new paths should not run alongside
/// (capacitive-coupling victims, §1). Extents are keyed by track.
class SensitiveRuns {
 public:
  void add_h(int track, const geom::Interval& extent) {
    h_[track].add(extent);
  }
  void add_v(int track, const geom::Interval& extent) {
    v_[track].add(extent);
  }

  /// Total length of \p span that runs parallel to a sensitive extent on
  /// horizontal track \p track.
  geom::Coord h_overlap(int track, const geom::Interval& span) const;
  geom::Coord v_overlap(int track, const geom::Interval& span) const;

  bool empty() const { return h_.empty() && v_.empty(); }

 private:
  std::map<int, geom::IntervalSet> h_;
  std::map<int, geom::IntervalSet> v_;
};

/// Context shared by all corner evaluations of one connection.
struct CostContext {
  /// Terminals of nets not yet routed (plus remaining terminals of the
  /// current net); the dup term steers corners away from them.
  const std::vector<geom::Point>* unrouted_terminals = nullptr;
  /// Radius of the dup term, in dbu.
  geom::Coord dup_radius = 0;
  /// Half-width of the acf congestion window around a corner, in dbu.
  geom::Coord acf_window = 0;
  /// Normalization pitch (average of the grid's h/v pitches), in dbu.
  geom::Coord pitch = 1;
  /// Committed sensitive wiring for the w24 parallel-run term (optional).
  const SensitiveRuns* sensitive = nullptr;
  /// When set, every occupancy read the cost terms make is recorded here
  /// as a (track, interval) dependency. The engine validates speculative
  /// searches against it; serial callers leave it null.
  SearchFootprint* footprint = nullptr;
};

/// Builds a CostContext with radii derived from the grid's mean pitch.
CostContext make_cost_context(const tig::GridView& grid,
                              const std::vector<geom::Point>* unrouted,
                              double dup_radius_pitches = 8.0,
                              double acf_window_pitches = 4.0);

/// drg_j for a corner at \p p joining horizontal track \p h and vertical
/// track \p v (indices into the grid).
double corner_drg(const tig::GridView& grid, const CostContext& ctx,
                  const geom::Point& p, int h, int v);

/// dup_j for a corner at \p p.
double corner_dup(const CostContext& ctx, const geom::Point& p);

/// acf_j for a corner at \p p on tracks (h, v).
double corner_acf(const tig::GridView& grid, const CostContext& ctx,
                  const geom::Point& p, int h, int v);

/// Full corner penalty w21·drg + w22·dup + w23·acf.
double corner_cost(const tig::GridView& grid, const CostWeights& weights,
                   const CostContext& ctx, const geom::Point& p, int h,
                   int v);

/// w24 penalty of one path leg: overlap (in pitches) with sensitive runs
/// on the leg's own and adjacent tracks. Zero when ctx.sensitive is null.
double leg_parallel_cost(const tig::GridView& grid,
                         const CostWeights& weights, const CostContext& ctx,
                         const tig::TrackRef& track,
                         const geom::Interval& span);

}  // namespace ocr::levelb

#pragma once
/// \file path_finder.hpp
/// \brief Modified breadth-first search over the Track Intersection Graph
/// (paper §3.1) and cost-based path selection (§3.2).
///
/// For a two-terminal connection (a, b) the finder runs two MBFS passes —
/// one rooted at a's vertical track, one at a's horizontal track — each
/// with two targets (b's vertical and horizontal tracks). Every vertex
/// (maximal free track segment) is examined at most once per pass, which
/// excludes paths with more than one corner on the same track; target
/// vertices are exempt, so all distinct minimum-corner arrivals are
/// collected. The expansion order records two Path Selection Trees; the
/// best candidate is chosen by the §3.2 cost function with bounding.

#include <string>
#include <vector>

#include "levelb/cost.hpp"
#include "levelb/path.hpp"
#include "tig/grid_view.hpp"
#include "tig/track_grid.hpp"
#include "util/cancel.hpp"

namespace ocr::levelb {

struct SearchWorkspace;  // workspace.hpp: caller-owned scratch buffers

/// One vertex of a Path Selection Tree: a free track segment entered at a
/// specific crossing.
struct TreeNode {
  tig::TrackRef track;
  geom::Interval extent;  ///< maximal free extent containing the entry
  geom::Point entry;      ///< corner where the path turned onto this track
  int parent = -1;        ///< tree parent index (-1 = root)
  int depth = 0;          ///< corners so far (root = 0)
  /// Index range of the perpendicular tracks crossing the extent
  /// (cross_lo > cross_hi = none). Captured from the gap cache at node
  /// creation so expansion needs no per-node binary searches.
  int cross_lo = 0;
  int cross_hi = -1;
};

/// The expansion tree of one MBFS pass (paper Figure 2).
struct PathSelectionTree {
  std::vector<TreeNode> nodes;  ///< nodes[0] is the root when non-empty

  /// Pretty-prints the tree with "v<i>/h<i>" track labels (1-based, as in
  /// the paper's figures).
  std::string to_string() const;
};

/// Search-effort statistics, used by the scaling bench.
struct SearchStats {
  int vertices_examined = 0;
  int candidates = 0;
  int window_growths = 0;
};

/// Inclusive track-index rectangle covering every track a search examined
/// (horizontal tracks [i_lo, i_hi], vertical tracks [j_lo, j_hi]). The
/// engine validates speculative results with it: a commit that touches
/// none of the examined tracks cannot change the search outcome, because
/// reachability and every cost term read only those tracks' occupancy.
/// Default-constructed windows are empty.
struct SearchWindow {
  int i_lo = 0;
  int i_hi = -1;
  int j_lo = 0;
  int j_hi = -1;

  bool empty() const { return i_hi < i_lo && j_hi < j_lo; }
  bool contains_h(int i) const { return i_lo <= i && i <= i_hi; }
  bool contains_v(int j) const { return j_lo <= j && j <= j_hi; }
};

/// Options for PathFinder (top-level so its defaults are usable as a
/// default constructor argument).
struct PathFinderOptions {
  CostWeights weights;
  /// Initial search-window margin beyond the terminals' bounding box, in
  /// tracks.
  int window_margin = 3;
  /// Window-growth retries (margin x4 each step) before falling back to
  /// the full grid.
  int max_window_steps = 2;
  /// Populate Result::tree_v / tree_h (costs memory; used by the Figure
  /// 1/2 reproduction and by tests).
  bool keep_trees = false;
  /// Cooperative cancellation, observed every few vertex expansions. A
  /// connect() that sees the token fire returns found = false with
  /// Result::cancelled set. A token that never fires leaves results
  /// bit-identical to an untokened run.
  util::CancelToken cancel;
  /// Vertex budget for one connect() call (both MBFS passes plus window
  /// growths); 0 = unlimited. Exceeding it fails the search with
  /// Result::budget_exhausted — deterministically, since vertex
  /// expansion order is fixed.
  long long vertex_budget = 0;
};

/// Finds minimum-corner paths between grid crossings.
class PathFinder {
 public:
  using Options = PathFinderOptions;

  struct Result {
    bool found = false;
    bool cancelled = false;         ///< the cancel token fired mid-search
    bool budget_exhausted = false;  ///< vertex_budget spent before found
    Path path;             ///< best path (canonical form)
    int corners = 0;       ///< corners of the best path
    SearchStats stats;
    /// Largest track window examined (the final growth step; the full
    /// grid after fallback). Covers every track whose occupancy could
    /// have influenced this result.
    SearchWindow window;
    /// Expansion trees of the two passes; populated only when
    /// Options::keep_trees is set (they are copied out of the workspace).
    PathSelectionTree tree_v;  ///< pass rooted at a's vertical track
    PathSelectionTree tree_h;  ///< pass rooted at a's horizontal track
  };

  /// \p grid is captured as a view; serial callers pass their TrackGrid
  /// (implicitly converted) and mutate it between connect() calls as nets
  /// commit, engine workers pass a GridOverlay over an immutable snapshot.
  /// Whatever the view references must outlive the finder.
  explicit PathFinder(tig::GridView grid,
                      Options options = PathFinderOptions());

  /// Connects grid crossings \p a and \p b (both must lie exactly on a
  /// horizontal and a vertical track). \p ctx supplies the cost terms'
  /// context. \p ws supplies the search's scratch buffers — pass the same
  /// workspace across connects to keep steady-state searches allocation-
  /// free (results never depend on the workspace's history). Returns
  /// found = false when no path exists even on the full grid.
  Result connect(const geom::Point& a, const geom::Point& b,
                 const CostContext& ctx, SearchWorkspace& ws) const;

  /// Convenience overload owning a throwaway workspace (tests, one-shot
  /// callers). Hot paths should hold a workspace and use the overload.
  Result connect(const geom::Point& a, const geom::Point& b,
                 const CostContext& ctx) const;

  const Options& options() const { return options_; }

 private:
  tig::GridView grid_;
  Options options_;
};

}  // namespace ocr::levelb

#include "levelb/path_finder.hpp"

#include <algorithm>
#include <optional>

#include "levelb/workspace.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace ocr::levelb {
namespace {

using geom::Coord;
using geom::Interval;
using geom::Orientation;
using geom::Point;
using tig::TrackRef;

/// Inclusive track-index window restricting one search pass (§3.1: "the
/// solution space for each MBFS is defined by the locations of the two net
/// terminals within a rectangular region").
struct Window {
  int i_lo = 0;
  int i_hi = 0;
  int j_lo = 0;
  int j_hi = 0;
};

Window make_window(const tig::GridView& grid, const Point& a,
                   const Point& b, int margin) {
  Window w;
  const int ia = grid.nearest_h(a.y);
  const int ib = grid.nearest_h(b.y);
  const int ja = grid.nearest_v(a.x);
  const int jb = grid.nearest_v(b.x);
  w.i_lo = std::max(0, std::min(ia, ib) - margin);
  w.i_hi = std::min(grid.num_h() - 1, std::max(ia, ib) + margin);
  w.j_lo = std::max(0, std::min(ja, jb) - margin);
  w.j_hi = std::min(grid.num_v() - 1, std::max(ja, jb) + margin);
  return w;
}

bool window_is_full_grid(const tig::GridView& grid, const Window& w) {
  return w.i_lo == 0 && w.j_lo == 0 && w.i_hi == grid.num_h() - 1 &&
         w.j_hi == grid.num_v() - 1;
}

/// Cancellation / budget state threaded through the MBFS passes of one
/// connect() call. The flags record why a pass stopped early.
struct SearchLimits {
  const util::CancelToken* cancel = nullptr;
  long long vertex_budget = 0;  ///< 0 = unlimited
  bool hit_cancel = false;
  bool hit_budget = false;

  /// Called per vertex expansion with the cumulative count; true = stop.
  bool should_stop(int vertices_examined) {
    if (vertex_budget > 0 && vertices_examined >= vertex_budget) {
      hit_budget = true;
      return true;
    }
    if (cancel != nullptr && (vertices_examined & 63) == 0) {
      cancel->note_progress(64);
      if (cancel->cancelled()) {
        hit_cancel = true;
        return true;
      }
    }
    return false;
  }
};

/// True when \p v lies inside a free segment of this track that the pass
/// already visited. A track's free segments are disjoint, so containment
/// of the crossing coordinate is exactly the (orientation, track,
/// segment.lo) visited-set test of the paper's single-examination rule —
/// and it runs *before* the free-segment lookup, so re-probed crossings
/// (the common case: every later node crossing the same track) skip the
/// occupancy query entirely. Revalidates the slot's generation stamp.
inline bool visited_contains(SearchWorkspace::VisitSlot& slot,
                             std::uint64_t generation, Coord v) {
  if (slot.gen != generation) {
    slot.gen = generation;
    slot.count = 0;
    return false;
  }
  if (slot.count == 0) return false;
  if (slot.first.contains(v)) return true;
  for (int s = 0; s + 1 < slot.count; ++s) {
    if (slot.overflow[static_cast<std::size_t>(s)].contains(v)) return true;
  }
  return false;
}

/// Records \p seg visited. Callers have already established v ∉ any
/// visited segment for some v ∈ seg, which (disjointness again) implies
/// seg itself is new — no membership scan needed. The slot's stamp must
/// already be current (visited_contains revalidates it).
///
/// Overflow storage comes from the workspace arena. A slot whose
/// arena_epoch predates the current connect holds a dangling pointer; its
/// count is necessarily <= 1 then (generations are monotonic, so a stale
/// epoch implies the gen check above already zeroed the count), which
/// makes "drop the capacity and allocate fresh" safe — nothing live is
/// copied out of the dead storage.
inline void visit(SearchWorkspace::VisitSlot& slot, util::Arena& arena,
                  std::uint64_t generation, const Interval& seg) {
  if (slot.gen != generation) {
    slot.gen = generation;
    slot.count = 0;
  }
  if (slot.count == 0) {
    slot.first = seg;
  } else {
    const int have = slot.count - 1;
    if (slot.arena_epoch != arena.epoch()) {
      slot.overflow_cap = 0;
      slot.arena_epoch = arena.epoch();
    }
    if (have >= slot.overflow_cap) {
      const int new_cap = slot.overflow_cap == 0 ? 4 : slot.overflow_cap * 2;
      slot.overflow = arena.grow_array(
          slot.overflow, static_cast<std::size_t>(have),
          static_cast<std::size_t>(new_cap));
      slot.overflow_cap = new_cap;
    }
    slot.overflow[have] = seg;
  }
  ++slot.count;
}

/// One modified BFS pass. Fills \p tree (expansion order) and \p arrivals
/// (all target attachments at the minimum depth at which any occurs).
/// All scratch state lives in \p ws.
void run_mbfs(const tig::GridView& grid, const Point& a, const Point& b,
              Orientation source_orient, const Window& w,
              SearchWorkspace& ws, PathSelectionTree& tree,
              std::vector<SearchArrival>& arrivals, SearchStats& stats,
              SearchFootprint* footprint, SearchLimits& limits) {
  tree.nodes.clear();
  arrivals.clear();
  ++ws.generation;  // invalidates every visited slot in O(1)

  const int i_a = grid.nearest_h(a.y);
  const int j_a = grid.nearest_v(a.x);
  const int i_b = grid.nearest_h(b.y);
  const int j_b = grid.nearest_v(b.x);

  // Free-segment reads depend on exactly the gap returned: with block-only
  // commits a blockage landing inside it changes the answer, one outside
  // cannot (and a blocked probe point can never become free).
  const auto note_h = [footprint](int i, const std::optional<Interval>& g) {
    if (footprint != nullptr && g) footprint->add_h(i, *g);
  };
  const auto note_v = [footprint](int j, const std::optional<Interval>& g) {
    if (footprint != nullptr && g) footprint->add_v(j, *g);
  };

  // Root: the source track with its free segment containing the terminal.
  TreeNode root;
  int cross_lo = 0;
  int cross_hi = -1;
  if (source_orient == Orientation::kVertical) {
    const auto seg = grid.v_free_segment_span(j_a, a.y, &cross_lo, &cross_hi);
    note_v(j_a, seg);
    if (!seg) return;  // terminal buried under an obstacle on this layer
    root = TreeNode{TrackRef{Orientation::kVertical, j_a}, *seg, a, -1, 0,
                    cross_lo, cross_hi};
  } else {
    const auto seg = grid.h_free_segment_span(i_a, a.x, &cross_lo, &cross_hi);
    note_h(i_a, seg);
    if (!seg) return;
    root = TreeNode{TrackRef{Orientation::kHorizontal, i_a}, *seg, a, -1, 0,
                    cross_lo, cross_hi};
  }
  tree.nodes.push_back(root);
  {
    SearchWorkspace::VisitSlot& slot =
        source_orient == Orientation::kVertical
            ? ws.visited_v[static_cast<std::size_t>(j_a)]
            : ws.visited_h[static_cast<std::size_t>(i_a)];
    visit(slot, ws.arena, ws.generation, root.extent);
  }

  ws.queue.clear();
  ws.queue.push_back(0);
  std::size_t queue_head = 0;
  int arrival_depth = -1;

  // Target attachment test, hoisted out of the expansion loop: a crossing
  // p on the target track completes the connection iff the free gap
  // containing p also contains b — and since a track's gaps are disjoint,
  // that is exactly "p lies inside the gap containing b". Computing that
  // gap once per pass replaces one occupancy query per target-track
  // crossing with an interval containment test. The pass's arrival
  // decisions depend on no other read of the target track, so this single
  // read is also the only footprint entry they need.
  const auto target_gap_h = grid.h_free_segment(i_b, b.x);
  note_h(i_b, target_gap_h);
  const auto target_gap_v = grid.v_free_segment(j_b, b.y);
  note_v(j_b, target_gap_v);

  const auto try_target_h = [&](int node, const Point& p) {
    if (target_gap_h && target_gap_h->contains(p.x)) {
      arrivals.push_back(
          SearchArrival{node, p, TrackRef{Orientation::kHorizontal, i_b}});
      return true;
    }
    return false;
  };
  const auto try_target_v = [&](int node, const Point& p) {
    if (target_gap_v && target_gap_v->contains(p.y)) {
      arrivals.push_back(
          SearchArrival{node, p, TrackRef{Orientation::kVertical, j_b}});
      return true;
    }
    return false;
  };

  while (queue_head < ws.queue.size()) {
    const int n = ws.queue[queue_head++];
    const TreeNode node = tree.nodes[static_cast<std::size_t>(n)];
    // Once a depth has produced arrivals, the rest of that depth is still
    // drained (it can hold sibling arrivals at the same corner count) but
    // nothing deeper is expanded.
    if (arrival_depth >= 0 && node.depth > arrival_depth) continue;
    ++stats.vertices_examined;
    if (limits.should_stop(stats.vertices_examined)) return;
    const bool collect_only = arrival_depth >= 0;  // no deeper enqueues

    if (node.track.orient == Orientation::kVertical) {
      const int j = node.track.index;
      const Coord x = grid.v_x(j);
      // Only tracks whose coordinate lies inside the node's free extent
      // can be crossed; the index range came with the gap at node
      // creation (ascending visit order preserved).
      const int i_first = std::max(w.i_lo, node.cross_lo);
      const int i_last = std::min(w.i_hi, node.cross_hi);
      for (int i = i_first; i <= i_last; ++i) {
        const Coord y = grid.h_y(i);
        // Skip the root's degenerate turn at the terminal itself: that
        // path family belongs to the other MBFS pass.
        if (node.parent == -1 && y == a.y) continue;
        const Point p{x, y};
        if (i == i_b && try_target_h(n, p)) {
          if (arrival_depth < 0) arrival_depth = node.depth;
          continue;
        }
        if (collect_only) continue;
        SearchWorkspace::VisitSlot& slot =
            ws.visited_h[static_cast<std::size_t>(i)];
        if (visited_contains(slot, ws.generation, x)) continue;
        int cl = 0;
        int ch = -1;
        const auto gap = grid.h_free_segment_span(i, x, &cl, &ch);
        note_h(i, gap);
        if (!gap) continue;
        visit(slot, ws.arena, ws.generation, *gap);  // x ∉ visited ⇒ *gap is new
        const TrackRef t{Orientation::kHorizontal, i};
        tree.nodes.push_back(TreeNode{t, *gap, p, n, node.depth + 1, cl, ch});
        ws.queue.push_back(static_cast<int>(tree.nodes.size()) - 1);
      }
    } else {
      const int i = node.track.index;
      const Coord y = grid.h_y(i);
      const int j_first = std::max(w.j_lo, node.cross_lo);
      const int j_last = std::min(w.j_hi, node.cross_hi);
      for (int j = j_first; j <= j_last; ++j) {
        const Coord x = grid.v_x(j);
        if (node.parent == -1 && x == a.x) continue;
        const Point p{x, y};
        if (j == j_b && try_target_v(n, p)) {
          if (arrival_depth < 0) arrival_depth = node.depth;
          continue;
        }
        if (collect_only) continue;
        SearchWorkspace::VisitSlot& slot =
            ws.visited_v[static_cast<std::size_t>(j)];
        if (visited_contains(slot, ws.generation, y)) continue;
        int cl = 0;
        int ch = -1;
        const auto gap = grid.v_free_segment_span(j, y, &cl, &ch);
        note_v(j, gap);
        if (!gap) continue;
        visit(slot, ws.arena, ws.generation, *gap);  // y ∉ visited ⇒ *gap is new
        const TrackRef t{Orientation::kVertical, j};
        tree.nodes.push_back(TreeNode{t, *gap, p, n, node.depth + 1, cl, ch});
        ws.queue.push_back(static_cast<int>(tree.nodes.size()) - 1);
      }
    }
  }
}

/// Reconstructs the candidate path of an arrival by walking tree parents.
/// Writes into \p out (cleared first) so its buffers are reused.
void build_path_into(const PathSelectionTree& tree,
                     const SearchArrival& arrival, const Point& a,
                     const Point& b, std::vector<int>& chain, Path& out) {
  chain.clear();  // root .. arrival.parent
  for (int n = arrival.parent; n >= 0;
       n = tree.nodes[static_cast<std::size_t>(n)].parent) {
    chain.push_back(n);
  }
  std::reverse(chain.begin(), chain.end());

  out.points.clear();
  out.tracks.clear();
  out.points.push_back(a);
  for (std::size_t k = 1; k < chain.size(); ++k) {
    const TreeNode& node = tree.nodes[static_cast<std::size_t>(chain[k])];
    out.points.push_back(node.entry);
    out.tracks.push_back(
        tree.nodes[static_cast<std::size_t>(chain[k - 1])].track);
  }
  // Leg along the arrival's parent track to the final corner, then along
  // the target track to b.
  out.points.push_back(arrival.corner);
  out.tracks.push_back(
      tree.nodes[static_cast<std::size_t>(arrival.parent)].track);
  out.points.push_back(b);
  out.tracks.push_back(arrival.target);
  out.canonicalize();
}

/// Order- and collision-stable polyline hash (paths compare by points).
std::uint64_t path_hash(const Path& p) {
  std::uint64_t h = util::kFnv1aOffset;
  for (const Point& pt : p.points) {
    h = util::fnv1a_value(pt.x, h);
    h = util::fnv1a_value(pt.y, h);
  }
  return h;
}

}  // namespace

std::string PathSelectionTree::to_string() const {
  std::string out;
  // Depth-first print with indentation; children in creation order.
  std::vector<std::vector<int>> children(nodes.size());
  for (std::size_t n = 1; n < nodes.size(); ++n) {
    children[static_cast<std::size_t>(nodes[n].parent)].push_back(
        static_cast<int>(n));
  }
  const auto label = [this](int n) {
    const TreeNode& node = nodes[static_cast<std::size_t>(n)];
    const char tag =
        node.track.orient == Orientation::kHorizontal ? 'h' : 'v';
    return std::string(1, tag) + std::to_string(node.track.index + 1);
  };
  std::vector<std::pair<int, int>> stack;  // (node, indent)
  if (!nodes.empty()) stack.emplace_back(0, 0);
  while (!stack.empty()) {
    const auto [n, indent] = stack.back();
    stack.pop_back();
    out.append(static_cast<std::size_t>(indent) * 2, ' ');
    out += label(n);
    out += "\n";
    const auto& kids = children[static_cast<std::size_t>(n)];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, indent + 1);
    }
  }
  return out;
}

PathFinder::PathFinder(tig::GridView grid, Options options)
    : grid_(grid), options_(options) {}

PathFinder::Result PathFinder::connect(const geom::Point& a,
                                       const geom::Point& b,
                                       const CostContext& ctx) const {
  SearchWorkspace ws;
  return connect(a, b, ctx, ws);
}

PathFinder::Result PathFinder::connect(const geom::Point& a,
                                       const geom::Point& b,
                                       const CostContext& ctx,
                                       SearchWorkspace& ws) const {
  Result result;
  if (a == b) {
    result.found = true;
    return result;
  }
  const int i_a = grid_.nearest_h(a.y);
  const int j_a = grid_.nearest_v(a.x);
  const int i_b = grid_.nearest_h(b.y);
  const int j_b = grid_.nearest_v(b.x);
  OCR_ASSERT(grid_.h_y(i_a) == a.y && grid_.v_x(j_a) == a.x,
             "connect: endpoint a is not a grid crossing");
  OCR_ASSERT(grid_.h_y(i_b) == b.y && grid_.v_x(j_b) == b.x,
             "connect: endpoint b is not a grid crossing");

  // Every occupancy read below happens on tracks inside the initial
  // window (grown versions replace it before any further reads).
  {
    const Window w0 = make_window(grid_, a, b, options_.window_margin);
    result.window = SearchWindow{w0.i_lo, w0.i_hi, w0.j_lo, w0.j_hi};
  }

  // Straight (zero-corner) connections short-circuit the search.
  if (a.x == b.x) {
    const auto seg = grid_.v_free_segment(j_a, a.y);
    if (ctx.footprint != nullptr && seg) ctx.footprint->add_v(j_a, *seg);
    if (seg && seg->contains(b.y)) {
      result.found = true;
      result.path.points = {a, b};
      result.path.tracks = {TrackRef{Orientation::kVertical, j_a}};
      result.corners = 0;
      return result;
    }
  }
  if (a.y == b.y) {
    const auto seg = grid_.h_free_segment(i_a, a.x);
    if (ctx.footprint != nullptr && seg) ctx.footprint->add_h(i_a, *seg);
    if (seg && seg->contains(b.x)) {
      result.found = true;
      result.path.points = {a, b};
      result.path.tracks = {TrackRef{Orientation::kHorizontal, i_a}};
      result.corners = 0;
      return result;
    }
  }

  ws.prepare(grid_);
  // One connect = one arena lifetime: reclaim every overflow list from
  // the previous connect in O(1) (blocks are kept, so steady state does
  // no heap work here).
  ws.arena.reset();

  SearchLimits limits;
  if (options_.cancel.valid()) limits.cancel = &options_.cancel;
  limits.vertex_budget = options_.vertex_budget;

  int margin = options_.window_margin;
  for (int step = 0;; ++step) {
    const bool final_step = step >= options_.max_window_steps;
    Window w = final_step
                   ? Window{0, grid_.num_h() - 1, 0, grid_.num_v() - 1}
                   : make_window(grid_, a, b, margin);
    result.window = SearchWindow{w.i_lo, w.i_hi, w.j_lo, w.j_hi};

    run_mbfs(grid_, a, b, Orientation::kVertical, w, ws, ws.tree_v,
             ws.arrivals_v, result.stats, ctx.footprint, limits);
    if (!limits.hit_cancel && !limits.hit_budget) {
      run_mbfs(grid_, a, b, Orientation::kHorizontal, w, ws, ws.tree_h,
               ws.arrivals_h, result.stats, ctx.footprint, limits);
    }
    if (limits.hit_cancel || limits.hit_budget) {
      // Abort the whole connect: a partial pass could miss arrivals, and
      // acting on an incomplete tree would make results depend on where
      // the limit landed. Both stop points are deterministic for budgets.
      result.found = false;
      result.cancelled = limits.hit_cancel;
      result.budget_exhausted = limits.hit_budget;
      if (options_.keep_trees) {
        result.tree_v = ws.tree_v;
        result.tree_h = ws.tree_h;
      }
      return result;
    }

    // Materialize candidates from both trees into reused buffers.
    const std::size_t total =
        ws.arrivals_v.size() + ws.arrivals_h.size();
    if (ws.candidates.size() < total) ws.candidates.resize(total);
    std::size_t count = 0;
    for (const SearchArrival& arr : ws.arrivals_v) {
      build_path_into(ws.tree_v, arr, a, b, ws.chain,
                      ws.candidates[count++]);
    }
    for (const SearchArrival& arr : ws.arrivals_h) {
      build_path_into(ws.tree_h, arr, a, b, ws.chain,
                      ws.candidates[count++]);
    }
    // Deduplicate identical polylines (degenerate legs can collapse
    // distinct track sequences onto the same wire): hash probe with a
    // verify compare, first occurrence kept — byte-identical to the
    // former linear find, collisions included (equal hash but unequal
    // polyline stays a distinct candidate).
    ws.unique.clear();
    ws.unique_hashes.clear();
    for (std::size_t k = 0; k < count; ++k) {
      const Path& c = ws.candidates[k];
      if (c.empty()) continue;
      const std::uint64_t h = path_hash(c);
      bool duplicate = false;
      for (std::size_t u = 0; u < ws.unique.size(); ++u) {
        if (ws.unique_hashes[u] == h &&
            ws.candidates[static_cast<std::size_t>(ws.unique[u])] == c) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        ws.unique.push_back(static_cast<int>(k));
        ws.unique_hashes.push_back(h);
      }
    }

    if (!ws.unique.empty()) {
      // Keep only globally minimum-corner candidates, then select by the
      // weighted cost with bounding (§3.2).
      int min_corners =
          ws.candidates[static_cast<std::size_t>(ws.unique.front())]
              .corners();
      for (const int u : ws.unique) {
        min_corners = std::min(
            min_corners,
            ws.candidates[static_cast<std::size_t>(u)].corners());
      }
      double best_cost = 0.0;
      int best = -1;
      for (const int u : ws.unique) {
        const Path& c = ws.candidates[static_cast<std::size_t>(u)];
        if (c.corners() != min_corners) continue;
        double cost = options_.weights.w1 * static_cast<double>(c.length()) /
                      static_cast<double>(ctx.pitch);
        bool pruned = best >= 0 && cost >= best_cost;
        if (!pruned && ctx.sensitive != nullptr) {
          // Extension term: parallel-run penalty per leg (§3.2).
          for (std::size_t leg = 0; leg + 1 < c.points.size(); ++leg) {
            const Point& p = c.points[leg];
            const Point& q = c.points[leg + 1];
            const bool horizontal =
                c.tracks[leg].orient == Orientation::kHorizontal;
            const Interval span =
                horizontal
                    ? Interval(std::min(p.x, q.x), std::max(p.x, q.x))
                    : Interval(std::min(p.y, q.y), std::max(p.y, q.y));
            cost += leg_parallel_cost(grid_, options_.weights, ctx,
                                      c.tracks[leg], span);
            if (best >= 0 && cost >= best_cost) {
              pruned = true;
              break;
            }
          }
        }
        if (!pruned) {
          for (std::size_t leg = 1; leg + 1 < c.points.size(); ++leg) {
            const Point& p = c.points[leg];
            const TrackRef& t_in = c.tracks[leg - 1];
            const TrackRef& t_out = c.tracks[leg];
            const int h = t_in.orient == Orientation::kHorizontal
                              ? t_in.index
                              : t_out.index;
            const int v = t_in.orient == Orientation::kVertical
                              ? t_in.index
                              : t_out.index;
            cost += corner_cost(grid_, options_.weights, ctx, p, h, v);
            if (best >= 0 && cost >= best_cost) {
              pruned = true;  // bounding: partial cost already loses
              break;
            }
          }
        }
        if (!pruned && (best < 0 || cost < best_cost)) {
          best = u;
          best_cost = cost;
        }
      }
      OCR_ASSERT(best >= 0, "no candidate survived selection");
      result.found = true;
      result.path = ws.candidates[static_cast<std::size_t>(best)];
      result.corners = min_corners;
      result.stats.candidates = static_cast<int>(ws.unique.size());
      if (options_.keep_trees) {
        result.tree_v = ws.tree_v;
        result.tree_h = ws.tree_h;
      }
      return result;
    }

    if (final_step || window_is_full_grid(grid_, w)) break;
    margin *= 4;
    ++result.stats.window_growths;
  }
  result.found = false;
  if (options_.keep_trees) {
    result.tree_v = ws.tree_v;
    result.tree_h = ws.tree_h;
  }
  return result;
}

}  // namespace ocr::levelb

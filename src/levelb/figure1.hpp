#pragma once
/// \file figure1.hpp
/// \brief The paper's Figure-1 level-B instance, reconstructed.
///
/// Four horizontal tracks (h1..h4, bottom to top) and six vertical tracks
/// (v1..v6, left to right). Net B connects terminal B1 on edge (h2, v2) to
/// terminal B2 on edge (h4, v6). Nets A and C are already routed and the
/// obstacle O1 blocks part of v4, arranged so the minimum-corner search
/// reproduces the paper's outcome exactly: the MBFS rooted at v2 finds the
/// single one-corner path (v2, h4, v6) and the MBFS rooted at h2 finds the
/// two two-corner paths (h2, v3, h4, v6) and (h2, v5, h4, v6).

#include "geom/point.hpp"
#include "tig/track_grid.hpp"

namespace ocr::levelb {

struct Figure1Instance {
  tig::TrackGrid grid;
  geom::Point b1;  ///< terminal of net B on (h2, v2)
  geom::Point b2;  ///< terminal of net B on (h4, v6)
};

/// Builds the instance. Track coordinates: v_k at x = 10k, h_k at y = 10k.
Figure1Instance make_figure1_instance();

}  // namespace ocr::levelb

#include "levelb/cost.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ocr::levelb {

CostContext make_cost_context(const tig::GridView& grid,
                              const std::vector<geom::Point>* unrouted,
                              double dup_radius_pitches,
                              double acf_window_pitches) {
  CostContext ctx;
  ctx.unrouted_terminals = unrouted;
  geom::Coord h_pitch = 1;
  geom::Coord v_pitch = 1;
  if (grid.num_h() > 1) {
    h_pitch = (grid.h_y(grid.num_h() - 1) - grid.h_y(0)) / (grid.num_h() - 1);
  }
  if (grid.num_v() > 1) {
    v_pitch = (grid.v_x(grid.num_v() - 1) - grid.v_x(0)) / (grid.num_v() - 1);
  }
  ctx.pitch = std::max<geom::Coord>(1, (h_pitch + v_pitch) / 2);
  ctx.dup_radius = static_cast<geom::Coord>(
      dup_radius_pitches * static_cast<double>(ctx.pitch));
  ctx.acf_window = static_cast<geom::Coord>(
      acf_window_pitches * static_cast<double>(ctx.pitch));
  return ctx;
}

double corner_drg(const tig::GridView& grid, const CostContext& ctx,
                  const geom::Point& p, int h, int v) {
  const auto dh = grid.h_distance_to_blocked(h, p.x);
  const auto dv = grid.v_distance_to_blocked(v, p.y);
  if (ctx.footprint != nullptr) {
    // "Nearest blockage at distance d" stays true unless something new
    // lands within d of the probe; with no blockage at all, any new block
    // on the track changes the answer.
    ctx.footprint->add_h(h, dh ? geom::Interval(p.x - *dh, p.x + *dh)
                               : grid.h_span());
    ctx.footprint->add_v(v, dv ? geom::Interval(p.y - *dv, p.y + *dv)
                               : grid.v_span());
  }
  geom::Coord d = -1;
  if (dh) d = *dh;
  if (dv) d = d < 0 ? *dv : std::min(d, *dv);
  if (d < 0) return 0.0;  // nothing routed anywhere near
  return 1.0 / (1.0 + static_cast<double>(d) /
                          static_cast<double>(ctx.pitch));
}

double corner_dup(const CostContext& ctx, const geom::Point& p) {
  if (ctx.unrouted_terminals == nullptr || ctx.dup_radius <= 0) return 0.0;
  double total = 0.0;
  for (const geom::Point& u : *ctx.unrouted_terminals) {
    const geom::Coord d = geom::manhattan(p, u);
    if (d < ctx.dup_radius) {
      total += 1.0 - static_cast<double>(d) /
                         static_cast<double>(ctx.dup_radius);
    }
  }
  return std::min(total, 4.0);  // cap so one hub cannot dominate wl
}

double corner_acf(const tig::GridView& grid, const CostContext& ctx,
                  const geom::Point& p, int h, int v) {
  const geom::Interval hw(
      std::max(grid.h_span().lo, p.x - ctx.acf_window),
      std::min(grid.h_span().hi, p.x + ctx.acf_window));
  const geom::Interval vw(
      std::max(grid.v_span().lo, p.y - ctx.acf_window),
      std::min(grid.v_span().hi, p.y + ctx.acf_window));
  if (ctx.footprint != nullptr) {
    ctx.footprint->add_h(h, hw);
    ctx.footprint->add_v(v, vw);
  }
  return 0.5 * (grid.h_blocked_fraction(h, hw) +
                grid.v_blocked_fraction(v, vw));
}

double corner_cost(const tig::GridView& grid, const CostWeights& weights,
                   const CostContext& ctx, const geom::Point& p, int h,
                   int v) {
  return weights.w21 * corner_drg(grid, ctx, p, h, v) +
         weights.w22 * corner_dup(ctx, p) +
         weights.w23 * corner_acf(grid, ctx, p, h, v);
}

namespace {
/// Total overlap of \p span with the blocked runs of \p set, starting from
/// the first run that can reach span (binary search, not a front scan).
geom::Coord overlap_length(const geom::IntervalSet& set,
                           const geom::Interval& span) {
  const std::vector<geom::Interval>& runs = set.runs();
  auto it = std::lower_bound(runs.begin(), runs.end(), span.lo,
                             [](const geom::Interval& run, geom::Coord v) {
                               return run.hi < v;
                             });
  geom::Coord total = 0;
  for (; it != runs.end() && it->lo <= span.hi; ++it) {
    total += std::min(it->hi, span.hi) - std::max(it->lo, span.lo);
  }
  return total;
}
}  // namespace

geom::Coord SensitiveRuns::h_overlap(int track,
                                     const geom::Interval& span) const {
  const auto it = h_.find(track);
  return it == h_.end() ? 0 : overlap_length(it->second, span);
}

geom::Coord SensitiveRuns::v_overlap(int track,
                                     const geom::Interval& span) const {
  const auto it = v_.find(track);
  return it == v_.end() ? 0 : overlap_length(it->second, span);
}

double leg_parallel_cost(const tig::GridView& grid,
                         const CostWeights& weights, const CostContext& ctx,
                         const tig::TrackRef& track,
                         const geom::Interval& span) {
  if (weights.w24 == 0.0 || ctx.sensitive == nullptr ||
      ctx.sensitive->empty()) {
    return 0.0;
  }
  geom::Coord overlap = 0;
  if (track.orient == geom::Orientation::kHorizontal) {
    for (int i = track.index - 1; i <= track.index + 1; ++i) {
      if (i < 0 || i >= grid.num_h()) continue;
      overlap += ctx.sensitive->h_overlap(i, span);
    }
  } else {
    for (int j = track.index - 1; j <= track.index + 1; ++j) {
      if (j < 0 || j >= grid.num_v()) continue;
      overlap += ctx.sensitive->v_overlap(j, span);
    }
  }
  return weights.w24 * static_cast<double>(overlap) /
         static_cast<double>(ctx.pitch);
}

}  // namespace ocr::levelb

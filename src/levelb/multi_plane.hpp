#pragma once
/// \file multi_plane.hpp
/// \brief Two-plane over-cell routing (extension beyond the paper).
///
/// The paper dedicates one HV plane (metal3/metal4) to level B. Processes
/// kept adding layers; the natural extension is a second over-cell plane
/// (metal5/metal6). Nets are distributed across the planes by a
/// load-balancing heuristic (largest extents first onto the lighter
/// plane), each plane is routed independently with the §3 serial router,
/// and nets that fail their assigned plane retry on the other. Inter-plane
/// crossings need no new machinery: each net lives entirely on one plane,
/// exactly the way the paper keeps set-A and set-B nets on disjoint layer
/// pairs (§2).

#include <vector>

#include "levelb/router.hpp"
#include "tig/track_grid.hpp"

namespace ocr::levelb {

struct MultiPlaneOptions {
  LevelBOptions router;
};

struct MultiPlaneResult {
  /// Per-net results from both planes, in plane-0-then-plane-1 order.
  LevelBResult combined;
  /// plane_of_net[i] = plane that ended up carrying nets[i] (0 or 1);
  /// -1 if it failed on both.
  std::vector<int> plane_of_net;
  /// Nets that failed their first plane and completed on the other.
  int rescued = 0;

  double completion_rate() const { return combined.completion_rate(); }
};

/// Routes \p nets across two independent HV planes. Both grids must cover
/// the same extent; they are mutated (committed wiring) like in the
/// single-plane router.
MultiPlaneResult route_two_planes(tig::TrackGrid& plane0,
                                  tig::TrackGrid& plane1,
                                  const std::vector<BNet>& nets,
                                  const MultiPlaneOptions& options = {});

}  // namespace ocr::levelb

#include "levelb/net_core.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>

#include "geom/rect.hpp"
#include "levelb/workspace.hpp"
#include "util/assert.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace ocr::levelb {
namespace {

using geom::Coord;
using geom::Interval;
using geom::Orientation;
using geom::Point;

/// Half-perimeter of a net's terminal bounding box — the paper's
/// "longest distance" ordering key.
Coord net_extent(const BNet& net) {
  if (net.terminals.empty()) return 0;
  const geom::Rect box = geom::bounding_box(net.terminals);
  return box.width() + box.height();
}

/// A routed leg of the current net, used for closest-point attachment.
struct GeomLeg {
  tig::TrackRef track;
  Coord fixed = 0;      ///< the track's coordinate (y for H, x for V)
  Interval extent;      ///< varying-coordinate extent
};

Coord leg_distance(const GeomLeg& leg, const Point& p) {
  if (leg.track.orient == Orientation::kHorizontal) {
    const Coord x = std::clamp(p.x, leg.extent.lo, leg.extent.hi);
    return geom::manhattan(p, Point{x, leg.fixed});
  }
  const Coord y = std::clamp(p.y, leg.extent.lo, leg.extent.hi);
  return geom::manhattan(p, Point{leg.fixed, y});
}

/// Closest grid crossing on \p leg to \p p. Legs start and end at
/// crossings, so a valid crossing always exists within the extent.
Point leg_closest_crossing(const tig::GridView& grid, const GeomLeg& leg,
                           const Point& p) {
  if (leg.track.orient == Orientation::kHorizontal) {
    const Coord clamped = std::clamp(p.x, leg.extent.lo, leg.extent.hi);
    Coord x = grid.v_x(grid.nearest_v(clamped));
    if (x < leg.extent.lo || x > leg.extent.hi) {
      // Snapped off the leg (short leg): fall back to the nearer endpoint.
      x = (std::abs(p.x - leg.extent.lo) <= std::abs(p.x - leg.extent.hi))
              ? leg.extent.lo
              : leg.extent.hi;
    }
    return Point{x, leg.fixed};
  }
  const Coord clamped = std::clamp(p.y, leg.extent.lo, leg.extent.hi);
  Coord y = grid.h_y(grid.nearest_h(clamped));
  if (y < leg.extent.lo || y > leg.extent.hi) {
    y = (std::abs(p.y - leg.extent.lo) <= std::abs(p.y - leg.extent.hi))
            ? leg.extent.lo
            : leg.extent.hi;
  }
  return Point{leg.fixed, y};
}

void block_terminals(tig::TrackGrid& grid, const std::vector<Point>& pts) {
  for (const Point& p : pts) block_terminal(grid, p);
}

void unblock_terminals(tig::TrackGrid& grid, const std::vector<Point>& pts) {
  for (const Point& p : pts) unblock_terminal(grid, p);
}

/// One rip-up round over the failed nets; returns the number of failed
/// nets it completed. See LevelBOptions::ripup_rounds.
int ripup_round(tig::TrackGrid& grid, const LevelBOptions& options,
                const std::vector<BNet>& nets,
                const std::vector<std::vector<Point>>& snapped,
                std::vector<NetResult>& results,
                std::vector<std::vector<Committed>>& committed,
                SearchStats& stats, SearchWorkspace* workspace) {
  const std::vector<Point> no_unrouted;

  int recovered = 0;
  for (std::size_t f = 0; f < results.size(); ++f) {
    if (results[f].complete || snapped[f].size() < 2) continue;
    if (options.finder.cancel.cancelled()) break;
    const geom::Rect window =
        geom::bounding_box(snapped[f]).inflated(8 * 10);

    // Victim candidates: complete nets with wiring inside the failed
    // net's window, cheapest wiring first.
    std::vector<std::size_t> victims;
    for (std::size_t v = 0; v < results.size(); ++v) {
      if (v == f || !results[v].complete || committed[v].empty()) continue;
      if (nets[v].sensitive) continue;  // never rip up sensitive wiring
      bool overlaps_window = false;
      for (const Committed& c : committed[v]) {
        const geom::Rect leg_box =
            c.track.orient == Orientation::kHorizontal
                ? geom::Rect(c.extent.lo, grid.h_y(c.track.index),
                             c.extent.hi, grid.h_y(c.track.index))
                : geom::Rect(grid.v_x(c.track.index), c.extent.lo,
                             grid.v_x(c.track.index), c.extent.hi);
        if (leg_box.overlaps(window)) {
          overlaps_window = true;
          break;
        }
      }
      if (overlaps_window) victims.push_back(v);
    }
    std::stable_sort(victims.begin(), victims.end(),
                     [&results](std::size_t a, std::size_t b) {
                       return results[a].wire_length <
                              results[b].wire_length;
                     });

    constexpr std::size_t kMaxVictims = 4;
    for (std::size_t vi = 0;
         vi < victims.size() && vi < kMaxVictims && !results[f].complete;
         ++vi) {
      const std::size_t v = victims[vi];
      // Rip up the victim and the failed net's stale partial wiring, then
      // retry the failed net. The victim's terminal via sites stay
      // reserved so the retry cannot bury them.
      uncommit_extents(grid, committed[v]);
      uncommit_extents(grid, committed[f]);
      block_terminals(grid, snapped[v]);
      unblock_terminals(grid, snapped[f]);
      std::vector<Committed> f_new;
      NetResult f_result = route_single_net(
          grid, options,
          NetRouteRequest{nets[f].id, &snapped[f],
                          std::span<const Point>(no_unrouted), nullptr},
          f_new, stats, nullptr, workspace);
      block_terminals(grid, snapped[f]);

      if (!f_result.complete) {
        // No help; restore both untouched.
        commit_extents(grid, committed[f]);
        commit_extents(grid, committed[v]);
        continue;
      }
      commit_extents(grid, f_new);
      // Reroute the victim around the new wiring.
      unblock_terminals(grid, snapped[v]);
      std::vector<Committed> v_new;
      NetResult v_result = route_single_net(
          grid, options,
          NetRouteRequest{nets[v].id, &snapped[v],
                          std::span<const Point>(no_unrouted), nullptr},
          v_new, stats, nullptr, workspace);
      block_terminals(grid, snapped[v]);
      if (v_result.complete) {
        commit_extents(grid, v_new);
        committed[f] = std::move(f_new);
        committed[v] = std::move(v_new);
        results[f] = std::move(f_result);
        results[v] = std::move(v_result);
        ++recovered;
      } else {
        // Swap failed: undo everything, restore both nets' old wiring.
        uncommit_extents(grid, f_new);
        commit_extents(grid, committed[f]);
        commit_extents(grid, committed[v]);
      }
    }
  }
  return recovered;
}

}  // namespace

std::vector<std::size_t> order_nets(const std::vector<BNet>& nets,
                                    NetOrdering ordering) {
  std::vector<std::size_t> order(nets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  switch (ordering) {
    case NetOrdering::kAsGiven:
      break;
    case NetOrdering::kLongestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&nets](std::size_t a, std::size_t b) {
                         return net_extent(nets[a]) > net_extent(nets[b]);
                       });
      break;
    case NetOrdering::kShortestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&nets](std::size_t a, std::size_t b) {
                         return net_extent(nets[a]) < net_extent(nets[b]);
                       });
      break;
  }
  return order;
}

std::vector<std::vector<Point>> snap_and_reserve_terminals(
    tig::TrackGrid& grid, const std::vector<BNet>& nets) {
  // Snap every terminal to a grid crossing, collision-aware: the routing
  // grid is coarser than the pin pitch (metal3/4 rules), so distinct
  // terminals of *different* nets can land on the same crossing. Probe the
  // neighbouring crossings for a free one before accepting a collision.
  std::map<std::pair<Coord, Coord>, std::size_t> taken;  // crossing -> net
  std::vector<std::vector<Point>> snapped(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    for (const Point& t : nets[i].terminals) {
      const int ci = grid.nearest_h(t.y);
      const int cj = grid.nearest_v(t.x);
      // Nearest crossing in the 3x3 neighbourhood not taken by a
      // *different* net; fall back to the nearest crossing when the whole
      // neighbourhood is contested.
      Point chosen = grid.crossing(ci, cj);
      Coord chosen_dist = std::numeric_limits<Coord>::max();
      for (int di = -1; di <= 1; ++di) {
        for (int dj = -1; dj <= 1; ++dj) {
          const int ni = ci + di;
          const int nj = cj + dj;
          if (ni < 0 || ni >= grid.num_h() || nj < 0 ||
              nj >= grid.num_v()) {
            continue;
          }
          const Point p = grid.crossing(ni, nj);
          const auto it = taken.find({p.x, p.y});
          if (it != taken.end() && it->second != i) continue;
          // Crossings already blocked in the grid (obstacles, or via sites
          // committed by a previous route() call) are not usable either.
          if (it == taken.end() && !grid.crossing_free(ni, nj)) continue;
          const Coord d = geom::manhattan(p, t);
          if (d < chosen_dist) {
            chosen = p;
            chosen_dist = d;
          }
        }
      }
      taken.emplace(std::make_pair(chosen.x, chosen.y), i);
      snapped[i].push_back(chosen);
    }
  }

  // Reserve every terminal crossing up front: terminals are the only legal
  // inter-layer connection sites (§2), so no net may wire across another
  // net's future via site. Each net's own terminals are released while it
  // routes and restored afterwards.
  for (const auto& pts : snapped) {
    for (const Point& p : pts) block_terminal(grid, p);
  }
  return snapped;
}

void block_terminal(tig::TrackGrid& grid, const Point& p) {
  grid.block_h(grid.nearest_h(p.y), Interval(p.x, p.x));
  grid.block_v(grid.nearest_v(p.x), Interval(p.y, p.y));
}

void unblock_terminal(tig::TrackGrid& grid, const Point& p) {
  grid.unblock_h(grid.nearest_h(p.y), Interval(p.x, p.x));
  grid.unblock_v(grid.nearest_v(p.x), Interval(p.y, p.y));
}

void block_terminal(tig::GridOverlay& overlay, const Point& p) {
  const tig::TrackGrid& base = overlay.base();
  overlay.block_h(base.nearest_h(p.y), Interval(p.x, p.x));
  overlay.block_v(base.nearest_v(p.x), Interval(p.y, p.y));
}

void unblock_terminal(tig::GridOverlay& overlay, const Point& p) {
  const tig::TrackGrid& base = overlay.base();
  overlay.unblock_h(base.nearest_h(p.y), Interval(p.x, p.x));
  overlay.unblock_v(base.nearest_v(p.x), Interval(p.y, p.y));
}

void commit_extents(tig::TrackGrid& grid,
                    const std::vector<Committed>& extents) {
  for (const Committed& c : extents) {
    if (c.track.orient == Orientation::kHorizontal) {
      grid.block_h(c.track.index, c.extent);
    } else {
      grid.block_v(c.track.index, c.extent);
    }
  }
}

void uncommit_extents(tig::TrackGrid& grid,
                      const std::vector<Committed>& extents) {
  for (const Committed& c : extents) {
    if (c.track.orient == Orientation::kHorizontal) {
      grid.unblock_h(c.track.index, c.extent);
    } else {
      grid.unblock_v(c.track.index, c.extent);
    }
  }
}

NetResult route_single_net(tig::GridView grid,
                           const LevelBOptions& options,
                           const NetRouteRequest& request,
                           std::vector<Committed>& committed,
                           SearchStats& stats,
                           SearchFootprint* footprint,
                           SearchWorkspace* workspace) {
  SearchWorkspace local_ws;  // empty until a search actually runs
  SearchWorkspace& ws = workspace != nullptr ? *workspace : local_ws;

  NetResult result;
  result.id = request.net_id;

  // Drop duplicate terminals (coincident after snapping).
  std::vector<Point> terminals;
  for (const Point& snapped : *request.terminals) {
    if (std::find(terminals.begin(), terminals.end(), snapped) ==
        terminals.end()) {
      terminals.push_back(snapped);
    }
  }
  if (terminals.size() < 2) {
    result.complete = true;
    return result;
  }

  // Test-harness fault: fail every connection of a targeted net. Keyed by
  // net id so it fires identically in speculative, serial-recompute and
  // rip-up routing of the same net at any thread count.
  if (OCR_FAULT_KEY("levelb.connect", request.net_id)) {
    result.complete = false;
    result.outcome = util::StatusKind::kFaultInjected;
    result.failed_connections = static_cast<int>(terminals.size()) - 1;
    return result;
  }

  PathFinder finder(grid, options.finder);
  long long net_vertices = 0;  // spent against net_vertex_budget

  std::vector<bool> attached(terminals.size(), false);
  attached[0] = true;
  std::vector<GeomLeg> legs;        // routed geometry of this net
  std::vector<Point> anchor{terminals[0]};  // attached terminal points
  std::size_t remaining = terminals.size() - 1;
  bool aborted = false;  // cancel or budget: stop routing this net

  while (remaining > 0 && !aborted) {
    if (options.finder.cancel.cancelled()) {
      result.outcome = util::StatusKind::kCancelled;
      break;
    }
    if (options.net_vertex_budget > 0 &&
        net_vertices >= options.net_vertex_budget) {
      result.outcome = util::StatusKind::kBudgetExhausted;
      break;
    }
    // Modified Prim (§3.3): the next terminal is the unattached one
    // closest to the net's routed geometry (terminals or Steiner points).
    std::size_t pick = terminals.size();
    Coord pick_dist = std::numeric_limits<Coord>::max();
    for (std::size_t t = 0; t < terminals.size(); ++t) {
      if (attached[t]) continue;
      Coord d = std::numeric_limits<Coord>::max();
      for (const Point& p : anchor) {
        d = std::min(d, geom::manhattan(terminals[t], p));
      }
      for (const GeomLeg& leg : legs) {
        d = std::min(d, leg_distance(leg, terminals[t]));
      }
      if (d < pick_dist) {
        pick_dist = d;
        pick = t;
      }
    }
    OCR_ASSERT(pick < terminals.size(), "no unattached terminal found");
    const Point source = terminals[pick];

    // Attachment targets, nearest first: closest crossing on each routed
    // leg, then attached terminals.
    std::vector<Point>& targets = ws.targets;
    targets.clear();
    for (const GeomLeg& leg : legs) {
      targets.push_back(leg_closest_crossing(grid, leg, source));
    }
    for (const Point& p : anchor) targets.push_back(p);
    std::stable_sort(targets.begin(), targets.end(),
                     [&source](const Point& a, const Point& b) {
                       return geom::manhattan(source, a) <
                              geom::manhattan(source, b);
                     });
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());

    // The dup cost term sees other nets' unrouted terminals plus this
    // net's still-unattached ones.
    std::vector<Point>& dup_points = ws.dup_points;
    dup_points.assign(request.unrouted.begin(), request.unrouted.end());
    for (std::size_t t = 0; t < terminals.size(); ++t) {
      if (!attached[t] && t != pick) dup_points.push_back(terminals[t]);
    }
    CostContext ctx =
        make_cost_context(grid, &dup_points, options.dup_radius_pitches,
                          options.acf_window_pitches);
    ctx.sensitive = request.sensitive;
    ctx.footprint = footprint;

    bool connected = false;
    for (const Point& target : targets) {
      PathFinder::Result found;
      if (options.net_vertex_budget > 0) {
        // Cap this connect at the net's remaining budget (tightened by any
        // per-connect budget already configured). Remaining budget is a
        // pure function of the expansions so far, so the stop point is the
        // same at any thread count.
        const long long left = options.net_vertex_budget - net_vertices;
        PathFinderOptions capped = options.finder;
        capped.vertex_budget = capped.vertex_budget > 0
                                   ? std::min(capped.vertex_budget, left)
                                   : left;
        found = PathFinder(grid, capped).connect(source, target, ctx, ws);
      } else {
        found = finder.connect(source, target, ctx, ws);
      }
      stats.vertices_examined += found.stats.vertices_examined;
      stats.window_growths += found.stats.window_growths;
      stats.candidates += found.stats.candidates;
      net_vertices += found.stats.vertices_examined;
      if (found.cancelled) {
        result.outcome = util::StatusKind::kCancelled;
        aborted = true;
        break;
      }
      if (found.budget_exhausted && options.net_vertex_budget > 0 &&
          net_vertices >= options.net_vertex_budget) {
        result.outcome = util::StatusKind::kBudgetExhausted;
        aborted = true;
        break;
      }
      if (!found.found) continue;
      connected = true;
      if (!found.path.empty()) {
        for (std::size_t leg = 0; leg + 1 < found.path.points.size();
             ++leg) {
          const Point& p = found.path.points[leg];
          const Point& q = found.path.points[leg + 1];
          const tig::TrackRef& track = found.path.tracks[leg];
          GeomLeg g;
          g.track = track;
          if (track.orient == Orientation::kHorizontal) {
            g.fixed = p.y;
            g.extent = Interval(std::min(p.x, q.x), std::max(p.x, q.x));
          } else {
            g.fixed = p.x;
            g.extent = Interval(std::min(p.y, q.y), std::max(p.y, q.y));
          }
          legs.push_back(g);
        }
        result.wire_length += found.path.length();
        result.corners += found.path.corners();
        result.paths.push_back(found.path);
      }
      break;
    }
    if (!connected) {
      ++result.failed_connections;
      if (util::log_level() <= util::LogLevel::kDebug) {
        const int si = grid.nearest_h(source.y);
        const int sj = grid.nearest_v(source.x);
        const auto hgap = grid.h_free_segment(si, source.x);
        const auto vgap = grid.v_free_segment(sj, source.y);
        std::ostringstream diag;
        diag << "level B: net " << request.net_id << " failed at ("
             << source.x << "," << source.y
             << ") targets=" << targets.size() << " hgap=";
        if (hgap) {
          diag << "[" << hgap->lo << "," << hgap->hi << "]";
        } else {
          diag << "none";
        }
        diag << " vgap=";
        if (vgap) {
          diag << "[" << vgap->lo << "," << vgap->hi << "]";
        } else {
          diag << "none";
        }
        if (!targets.empty()) {
          diag << " t0=(" << targets[0].x << "," << targets[0].y << ")";
        }
        OCR_DEBUG() << diag.str();
      }
    } else {
      // Only successfully attached terminals join the tree; a failed
      // terminal must not become an (electrically floating) target.
      anchor.push_back(source);
    }
    attached[pick] = true;  // do not retry; count the failure
    --remaining;
  }

  // Connections never attempted (cancel/budget stop) count as failed.
  result.failed_connections += static_cast<int>(remaining);
  result.complete = result.failed_connections == 0;
  if (!result.complete && result.outcome == util::StatusKind::kOk) {
    result.outcome = util::StatusKind::kUnroutable;
  }
  for (const GeomLeg& leg : legs) {
    committed.push_back(Committed{leg.track, leg.extent});
  }
  return result;
}

int run_ripup_rounds(tig::TrackGrid& grid, const LevelBOptions& options,
                     const std::vector<BNet>& nets_in_order,
                     const std::vector<std::vector<Point>>& snapped,
                     std::vector<NetResult>& results,
                     std::vector<std::vector<Committed>>& committed,
                     SearchStats& stats, SearchWorkspace* workspace) {
  int recovered = 0;
  for (int round = 0; round < options.ripup_rounds; ++round) {
    if (options.finder.cancel.cancelled()) break;
    const int round_recovered =
        ripup_round(grid, options, nets_in_order, snapped, results,
                    committed, stats, workspace);
    if (round_recovered == 0) break;
    recovered += round_recovered;
  }
  return recovered;
}

LevelBResult assemble_result(std::vector<NetResult> results,
                             const SearchStats& stats) {
  LevelBResult result;
  result.vertices_examined += stats.vertices_examined;
  for (NetResult& net_result : results) {
    result.total_wire_length += net_result.wire_length;
    result.total_corners += net_result.corners;
    if (net_result.complete) {
      ++result.routed_nets;
    } else {
      ++result.failed_nets;
      if (net_result.outcome == util::StatusKind::kCancelled) {
        ++result.cancelled_nets;
      } else if (net_result.outcome == util::StatusKind::kBudgetExhausted) {
        ++result.budget_nets;
      }
    }
    result.nets.push_back(std::move(net_result));
  }
  return result;
}

UnroutedSuffix::UnroutedSuffix(
    const std::vector<std::vector<Point>>& snapped,
    const std::vector<std::size_t>& order) {
  offset_.resize(order.size() + 1, 0);
  for (std::size_t k = 0; k < order.size(); ++k) {
    offset_[k] = flat_.size();
    const auto& pts = snapped[order[k]];
    flat_.insert(flat_.end(), pts.begin(), pts.end());
  }
  offset_[order.size()] = flat_.size();
}

}  // namespace ocr::levelb

#include "levelb/figure1.hpp"

namespace ocr::levelb {

Figure1Instance make_figure1_instance() {
  tig::TrackGrid grid({10, 20, 30, 40},              // h1..h4
                      {10, 20, 30, 40, 50, 60},      // v1..v6
                      geom::Rect(0, 0, 70, 50));
  // Net A: a committed wire on h4 between v1 and v2 — keeps the MBFS from
  // completing along h4 when entered left of v2.
  grid.block_h(3, geom::Interval(12, 18));
  // Net C: a committed wire on v6 between h2 and h4 — blocks the direct
  // (h2, v6) completion from terminal B1's horizontal track.
  grid.block_v(5, geom::Interval(25, 35));
  // Obstacle O1: blocks v4 around h2, so the MBFS rooted at h2 cannot turn
  // onto v4.
  grid.block_v(3, geom::Interval(15, 25));

  return Figure1Instance{std::move(grid), geom::Point{20, 20},
                         geom::Point{60, 40}};
}

}  // namespace ocr::levelb

#pragma once
/// \file workspace.hpp
/// \brief Caller-owned scratch state for PathFinder::connect.
///
/// One MBFS expansion is the router's innermost hot path; the workspace
/// removes its steady-state heap traffic by letting the *caller* own every
/// buffer the search needs and reuse it across connects:
///
/// * **Visited marks** — one slot per (orientation, track), stamped with a
///   generation counter. Starting a pass bumps the generation instead of
///   clearing; a slot's content is live only when its stamp matches. Each
///   slot holds the free segments already visited on that track (almost
///   always one). Because a track's free segments are disjoint, "crossing
///   coordinate inside a visited segment" is exactly the
///   (orientation, track, segment.lo) visited-set test of the original
///   `std::set` — and it runs *before* the free-segment lookup, so
///   re-probed crossings skip the occupancy query entirely.
/// * **Index-based BFS queue** — a vector with a head cursor; no deque
///   chunk churn.
/// * **Tree / arrival / candidate buffers** — node storage for both Path
///   Selection Trees, the arrival lists, the materialized candidate
///   polylines and their dedup hashes, all cleared-with-capacity between
///   passes.
/// * **Net-level buffers** — the per-Prim-iteration target and dup-term
///   vectors of route_single_net.
///
/// Thread contract: a workspace belongs to exactly one thread at a time
/// (the serial router, one engine worker, or the committer's fallback
/// path). It never influences routing *results* — only where the
/// intermediate state lives — so runs with fresh, reused, or shared-
/// across-nets workspaces are bit-identical.

#include <cstdint>
#include <vector>

#include "levelb/path_finder.hpp"
#include "util/arena.hpp"
#include "util/metrics.hpp"

namespace ocr::levelb {

/// One target attachment found by an MBFS pass (internal to connect).
struct SearchArrival {
  int parent = 0;       ///< tree node the target was reached from
  geom::Point corner;   ///< crossing onto the target track
  tig::TrackRef target; ///< which target track was reached
};

/// Reusable scratch state for PathFinder::connect. Default-constructed
/// empty; sized lazily against the grid on first use.
struct SearchWorkspace {
  /// Generation-stamped visited marks for one track. The first visited
  /// segment is stored inline — almost every track sees exactly one per
  /// pass, so the hot-path membership test touches only this slot (one
  /// contiguous array element), not a heap-allocated vector.
  /// Overflow segments (the rare >1-per-track case) live in the
  /// workspace arena: a raw pointer + capacity, stamped with the arena
  /// epoch they were allocated under. `connect` resets the arena, which
  /// reclaims every overflow list at once; a stale epoch stamp tells
  /// `visit` the pointer is from a previous connect and must be
  /// re-allocated, never dereferenced.
  struct VisitSlot {
    std::uint64_t gen = 0;            ///< stamp; live iff == generation
    geom::Interval first{0, 0};       ///< first visited segment (count>=1)
    int count = 0;                    ///< visited segments this pass
    geom::Interval* overflow = nullptr;  ///< segments beyond the first
    int overflow_cap = 0;             ///< arena elements at `overflow`
    std::uint64_t arena_epoch = 0;    ///< arena.epoch() at allocation
  };

  std::vector<VisitSlot> visited_h;   ///< one per horizontal track
  std::vector<VisitSlot> visited_v;   ///< one per vertical track
  std::uint64_t generation = 0;       ///< bumped per MBFS pass

  std::vector<int> queue;             ///< BFS FIFO (head is a cursor)

  PathSelectionTree tree_v;           ///< vertical-rooted pass nodes
  PathSelectionTree tree_h;           ///< horizontal-rooted pass nodes
  std::vector<SearchArrival> arrivals_v;
  std::vector<SearchArrival> arrivals_h;

  std::vector<Path> candidates;       ///< materialized candidate polylines
  std::vector<int> unique;            ///< indices of deduped candidates
  std::vector<std::uint64_t> unique_hashes;  ///< parallel to `unique`
  std::vector<int> chain;             ///< build_path parent walk

  std::vector<geom::Point> targets;     ///< route_single_net attachment list
  std::vector<geom::Point> dup_points;  ///< route_single_net dup-term list

  /// Bump storage for the per-connect scratch (visited overflow lists).
  /// Reset at every connect entry: O(1), keeps its blocks, and bumps the
  /// epoch that invalidates the VisitSlot overflow pointers above.
  util::Arena arena;

  /// Sizes the visited arrays for \p grid (no-op when already sized).
  /// connect() calls this itself; exposed for tests. Accepts any view
  /// (overlays never change track counts).
  void prepare(const tig::GridView& grid) {
    if (visited_h.size() != static_cast<std::size_t>(grid.num_h())) {
      visited_h.assign(static_cast<std::size_t>(grid.num_h()), VisitSlot{});
    }
    if (visited_v.size() != static_cast<std::size_t>(grid.num_v())) {
      visited_v.assign(static_cast<std::size_t>(grid.num_v()), VisitSlot{});
    }
  }

  /// Folds this workspace's arena high-water marks into the global
  /// registry (`levelb.arena_*` gauges, atomic-max across every workspace
  /// that reports — serial router, engine workers, committer fallback).
  /// Called once when the owner finishes a run, never per connect.
  void publish_arena_metrics() const {
    util::MetricsRegistry& reg = util::MetricsRegistry::global();
    reg.gauge("levelb.arena_high_water_bytes")
        .set_max(static_cast<long long>(arena.high_water_bytes()));
    reg.gauge("levelb.arena_reserved_bytes")
        .set_max(static_cast<long long>(arena.reserved_bytes()));
  }
};

}  // namespace ocr::levelb

#pragma once
/// \file optimize.hpp
/// \brief Post-route corner (via) minimization for level-B wiring.
///
/// The paper measures quality in "total number of net directional changes
/// and total wire length" (§3). The serial router already minimizes
/// corners per connection, but congestion at route time can force Z- and
/// U-shaped detours whose blockers have since moved. This pass re-visits
/// every routed net and flattens two-corner staircases into single-corner
/// Ls (and shortens U-turns) wherever the freed-up fabric allows, keeping
/// the grid consistent throughout.

#include "levelb/router.hpp"
#include "tig/track_grid.hpp"

namespace ocr::levelb {

struct OptimizeStats {
  int corners_removed = 0;
  geom::Coord length_saved = 0;  ///< positive = wiring got shorter
  int paths_touched = 0;
  int passes = 0;
};

struct OptimizeOptions {
  /// Full sweeps over all nets; each sweep revisits paths changed by the
  /// previous one.
  int max_passes = 3;
};

/// Straightens the paths in \p result against \p grid. The grid must be
/// the one the result was routed on (committed extents present); it is
/// updated in place so the result and grid stay consistent.
OptimizeStats straighten_corners(tig::TrackGrid& grid, LevelBResult& result,
                                 const OptimizeOptions& options = {});

}  // namespace ocr::levelb

#include "levelb/multi_plane.hpp"

#include <algorithm>
#include <array>

#include "geom/rect.hpp"
#include "util/assert.hpp"

namespace ocr::levelb {
namespace {

geom::Coord net_extent(const BNet& net) {
  if (net.terminals.empty()) return 0;
  const geom::Rect box = geom::bounding_box(net.terminals);
  return box.width() + box.height();
}

}  // namespace

MultiPlaneResult route_two_planes(tig::TrackGrid& plane0,
                                  tig::TrackGrid& plane1,
                                  const std::vector<BNet>& nets,
                                  const MultiPlaneOptions& options) {
  MultiPlaneResult result;
  result.plane_of_net.assign(nets.size(), -1);

  // Plane assignment: largest nets first, each onto the plane with the
  // lighter accumulated wire demand (LPT balancing on half-perimeters).
  std::vector<std::size_t> order(nets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&nets](std::size_t a, std::size_t b) {
                     return net_extent(nets[a]) > net_extent(nets[b]);
                   });
  std::array<long long, 2> load{0, 0};
  std::array<std::vector<std::size_t>, 2> assigned;
  for (std::size_t i : order) {
    const int plane = load[0] <= load[1] ? 0 : 1;
    assigned[static_cast<std::size_t>(plane)].push_back(i);
    load[static_cast<std::size_t>(plane)] += net_extent(nets[i]);
  }

  // Route each plane; collect failures for the cross-plane retry.
  std::array<tig::TrackGrid*, 2> grids{&plane0, &plane1};
  std::array<std::vector<std::size_t>, 2> failed_on;
  for (int plane = 0; plane < 2; ++plane) {
    std::vector<BNet> subset;
    for (std::size_t i : assigned[static_cast<std::size_t>(plane)]) {
      subset.push_back(nets[i]);
    }
    LevelBRouter router(*grids[static_cast<std::size_t>(plane)],
                        options.router);
    LevelBResult plane_result = router.route(subset);
    // Map results back to input indices.
    for (NetResult& net : plane_result.nets) {
      const auto it =
          std::find_if(assigned[static_cast<std::size_t>(plane)].begin(),
                       assigned[static_cast<std::size_t>(plane)].end(),
                       [&nets, &net](std::size_t i) {
                         return nets[i].id == net.id;
                       });
      OCR_ASSERT(it != assigned[static_cast<std::size_t>(plane)].end(),
                 "plane result for an unassigned net");
      if (net.complete) {
        result.plane_of_net[*it] = plane;
        result.combined.nets.push_back(std::move(net));
      } else {
        failed_on[static_cast<std::size_t>(plane)].push_back(*it);
      }
    }
    result.combined.vertices_examined += plane_result.vertices_examined;
  }

  // Cross-plane retry: what failed on plane p gets one shot on 1-p.
  // (The failed attempt's partial wiring stays committed on its original
  // plane — conservative: it wastes a little capacity there but can never
  // corrupt the other plane.)
  for (int plane = 0; plane < 2; ++plane) {
    const int other = 1 - plane;
    if (failed_on[static_cast<std::size_t>(plane)].empty()) continue;
    std::vector<BNet> retry;
    for (std::size_t i : failed_on[static_cast<std::size_t>(plane)]) {
      retry.push_back(nets[i]);
    }
    LevelBRouter router(*grids[static_cast<std::size_t>(other)],
                        options.router);
    LevelBResult retry_result = router.route(retry);
    for (NetResult& net : retry_result.nets) {
      const auto it = std::find_if(
          failed_on[static_cast<std::size_t>(plane)].begin(),
          failed_on[static_cast<std::size_t>(plane)].end(),
          [&nets, &net](std::size_t i) { return nets[i].id == net.id; });
      OCR_ASSERT(it != failed_on[static_cast<std::size_t>(plane)].end(),
                 "retry result for an unexpected net");
      if (net.complete) {
        result.plane_of_net[*it] = other;
        ++result.rescued;
      }
      result.combined.nets.push_back(std::move(net));
    }
    result.combined.vertices_examined += retry_result.vertices_examined;
  }

  // Aggregate totals.
  for (const NetResult& net : result.combined.nets) {
    result.combined.total_wire_length += net.wire_length;
    result.combined.total_corners += net.corners;
    if (net.complete) {
      ++result.combined.routed_nets;
    } else {
      ++result.combined.failed_nets;
    }
  }
  return result;
}

}  // namespace ocr::levelb

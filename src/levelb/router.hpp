#pragma once
/// \file router.hpp
/// \brief The level-B over-cell router: serial net processing over the
/// whole layout area (paper §3).
///
/// Nets are routed one at a time in longest-distance-first order (§3,
/// user-overridable). Two-terminal nets are a single path search;
/// multi-terminal nets follow the §3.3 modified-Prim scheme: repeatedly
/// attach the terminal closest to the net's already-routed geometry,
/// connecting it to the nearest point of that geometry (terminals and
/// Steiner attachment points alike). A net's own wire never blocks its own
/// later connections (same electrical node); the completed net's extents
/// are committed to the grid before the next net starts, which is the
/// paper's O(t) per-connection array update.

#include <vector>

#include "levelb/path_finder.hpp"
#include "tig/track_grid.hpp"

namespace ocr::levelb {

/// Net-ordering criteria (§3: "net ordering is accomplished using a
/// longest distance criterion. The option of a user specified ordering
/// criterion ... can be exercised").
enum class NetOrdering {
  kLongestFirst,   ///< descending half-perimeter (paper default)
  kShortestFirst,  ///< ascending half-perimeter (ablation)
  kAsGiven,        ///< caller-supplied order (e.g. criticality)
};

/// A net handed to the level-B router: an opaque id for reporting plus its
/// terminal positions in layout coordinates (snapped to grid crossings
/// internally).
struct BNet {
  int id = 0;
  std::vector<geom::Point> terminals;
  /// Sensitive nets register their committed wiring in the router's
  /// SensitiveRuns registry; later nets pay the w24 parallel-run penalty
  /// for hugging them (§3.2 extension). Sensitive nets are also never
  /// chosen as rip-up victims.
  bool sensitive = false;
};

struct LevelBOptions {
  PathFinder::Options finder;
  NetOrdering ordering = NetOrdering::kLongestFirst;
  /// dup-term radius in pitches (see cost.hpp).
  double dup_radius_pitches = 8.0;
  /// acf congestion-window half-width in pitches.
  double acf_window_pitches = 4.0;
  /// Rip-up-and-reroute rounds after the first pass: each round tries to
  /// complete every failed net by ripping up one nearby committed net,
  /// rerouting the failed net, then rerouting the victim; the swap is
  /// kept only if both complete. Mitigates the serial order dependency
  /// the paper's §3.2 edge weighting addresses. 0 disables.
  int ripup_rounds = 1;
};

/// Routing outcome of one net.
struct NetResult {
  int id = 0;
  bool complete = false;
  std::vector<Path> paths;        ///< one per two-terminal connection
  geom::Coord wire_length = 0;    ///< sum of path lengths (dbu)
  int corners = 0;                ///< metal3<->metal4 vias
  int failed_connections = 0;
};

/// Aggregate result of a level-B run.
struct LevelBResult {
  std::vector<NetResult> nets;
  int routed_nets = 0;
  int failed_nets = 0;
  geom::Coord total_wire_length = 0;
  int total_corners = 0;
  long long vertices_examined = 0;  ///< MBFS effort (scaling bench)

  double completion_rate() const {
    const int total = routed_nets + failed_nets;
    return total == 0 ? 1.0 : static_cast<double>(routed_nets) / total;
  }
};

/// Serial level-B router over a TrackGrid.
class LevelBRouter {
 public:
  /// \p grid must outlive the router; committed nets block its tracks.
  LevelBRouter(tig::TrackGrid& grid, LevelBOptions options = {});

  /// Routes \p nets (order adjusted per options). Nets with < 2 distinct
  /// snapped terminals are trivially complete.
  LevelBResult route(const std::vector<BNet>& nets);

 private:
  struct Committed {
    tig::TrackRef track;
    geom::Interval extent;
  };

  /// Orders net indices per the configured criterion.
  std::vector<std::size_t> order_nets(const std::vector<BNet>& nets) const;

  /// Routes one net from its pre-snapped terminals; returns its result
  /// and, on (partial) success, the extents to commit.
  NetResult route_net(int net_id, const std::vector<geom::Point>& terminals,
                      const std::vector<geom::Point>& unrouted_terminals,
                      const SensitiveRuns* sensitive,
                      std::vector<Committed>& committed,
                      SearchStats& stats);

  void commit(const std::vector<Committed>& extents);
  void uncommit(const std::vector<Committed>& extents);

  /// One rip-up round over the failed nets; returns true if anything
  /// improved. See LevelBOptions::ripup_rounds.
  bool ripup_round(const std::vector<BNet>& nets,
                   const std::vector<std::vector<geom::Point>>& snapped,
                   std::vector<NetResult>& results,
                   std::vector<std::vector<Committed>>& committed,
                   SearchStats& stats);

  tig::TrackGrid& grid_;
  LevelBOptions options_;
};

}  // namespace ocr::levelb

#pragma once
/// \file router.hpp
/// \brief The level-B over-cell router: serial net processing over the
/// whole layout area (paper §3).
///
/// Nets are routed one at a time in longest-distance-first order (§3,
/// user-overridable). Two-terminal nets are a single path search;
/// multi-terminal nets follow the §3.3 modified-Prim scheme: repeatedly
/// attach the terminal closest to the net's already-routed geometry,
/// connecting it to the nearest point of that geometry (terminals and
/// Steiner attachment points alike). A net's own wire never blocks its own
/// later connections (same electrical node); the completed net's extents
/// are committed to the grid before the next net starts, which is the
/// paper's O(t) per-connection array update.
///
/// The per-net search and commit machinery lives in net_core.hpp (shared
/// with the parallel engine in src/engine/, which must reproduce this
/// router's results bit-for-bit for a fixed ordering).

#include <vector>

#include "levelb/net_core.hpp"
#include "tig/track_grid.hpp"

namespace ocr::levelb {

/// Serial level-B router over a TrackGrid.
class LevelBRouter {
 public:
  /// \p grid must outlive the router; committed nets block its tracks.
  LevelBRouter(tig::TrackGrid& grid, LevelBOptions options = {});

  /// Routes \p nets (order adjusted per options). Nets with < 2 distinct
  /// snapped terminals are trivially complete.
  LevelBResult route(const std::vector<BNet>& nets);

 private:
  tig::TrackGrid& grid_;
  LevelBOptions options_;
};

}  // namespace ocr::levelb

#include "levelb/router.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "geom/rect.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace ocr::levelb {
namespace {

using geom::Coord;
using geom::Interval;
using geom::Orientation;
using geom::Point;

/// Half-perimeter of a net's terminal bounding box — the paper's
/// "longest distance" ordering key.
Coord net_extent(const BNet& net) {
  if (net.terminals.empty()) return 0;
  const geom::Rect box = geom::bounding_box(net.terminals);
  return box.width() + box.height();
}

/// A routed leg of the current net, used for closest-point attachment.
struct GeomLeg {
  tig::TrackRef track;
  Coord fixed = 0;      ///< the track's coordinate (y for H, x for V)
  Interval extent;      ///< varying-coordinate extent
};

Coord leg_distance(const GeomLeg& leg, const Point& p) {
  if (leg.track.orient == Orientation::kHorizontal) {
    const Coord x = std::clamp(p.x, leg.extent.lo, leg.extent.hi);
    return geom::manhattan(p, Point{x, leg.fixed});
  }
  const Coord y = std::clamp(p.y, leg.extent.lo, leg.extent.hi);
  return geom::manhattan(p, Point{leg.fixed, y});
}

/// Closest grid crossing on \p leg to \p p. Legs start and end at
/// crossings, so a valid crossing always exists within the extent.
Point leg_closest_crossing(const tig::TrackGrid& grid, const GeomLeg& leg,
                           const Point& p) {
  if (leg.track.orient == Orientation::kHorizontal) {
    const Coord clamped = std::clamp(p.x, leg.extent.lo, leg.extent.hi);
    Coord x = grid.v_x(grid.nearest_v(clamped));
    if (x < leg.extent.lo || x > leg.extent.hi) {
      // Snapped off the leg (short leg): fall back to the nearer endpoint.
      x = (std::abs(p.x - leg.extent.lo) <= std::abs(p.x - leg.extent.hi))
              ? leg.extent.lo
              : leg.extent.hi;
    }
    return Point{x, leg.fixed};
  }
  const Coord clamped = std::clamp(p.y, leg.extent.lo, leg.extent.hi);
  Coord y = grid.h_y(grid.nearest_h(clamped));
  if (y < leg.extent.lo || y > leg.extent.hi) {
    y = (std::abs(p.y - leg.extent.lo) <= std::abs(p.y - leg.extent.hi))
            ? leg.extent.lo
            : leg.extent.hi;
  }
  return Point{leg.fixed, y};
}

}  // namespace

LevelBRouter::LevelBRouter(tig::TrackGrid& grid, LevelBOptions options)
    : grid_(grid), options_(options) {}

std::vector<std::size_t> LevelBRouter::order_nets(
    const std::vector<BNet>& nets) const {
  std::vector<std::size_t> order(nets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  switch (options_.ordering) {
    case NetOrdering::kAsGiven:
      break;
    case NetOrdering::kLongestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&nets](std::size_t a, std::size_t b) {
                         return net_extent(nets[a]) > net_extent(nets[b]);
                       });
      break;
    case NetOrdering::kShortestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&nets](std::size_t a, std::size_t b) {
                         return net_extent(nets[a]) < net_extent(nets[b]);
                       });
      break;
  }
  return order;
}

NetResult LevelBRouter::route_net(
    int net_id, const std::vector<Point>& snapped_terminals,
    const std::vector<Point>& unrouted_terminals,
    const SensitiveRuns* sensitive, std::vector<Committed>& committed,
    SearchStats& stats) {
  NetResult result;
  result.id = net_id;

  // Drop duplicate terminals (coincident after snapping).
  std::vector<Point> terminals;
  for (const Point& snapped : snapped_terminals) {
    if (std::find(terminals.begin(), terminals.end(), snapped) ==
        terminals.end()) {
      terminals.push_back(snapped);
    }
  }
  if (terminals.size() < 2) {
    result.complete = true;
    return result;
  }

  PathFinder finder(grid_, options_.finder);

  std::vector<bool> attached(terminals.size(), false);
  attached[0] = true;
  std::vector<GeomLeg> legs;        // routed geometry of this net
  std::vector<Point> anchor{terminals[0]};  // attached terminal points
  std::size_t remaining = terminals.size() - 1;

  while (remaining > 0) {
    // Modified Prim (§3.3): the next terminal is the unattached one
    // closest to the net's routed geometry (terminals or Steiner points).
    std::size_t pick = terminals.size();
    Coord pick_dist = std::numeric_limits<Coord>::max();
    for (std::size_t t = 0; t < terminals.size(); ++t) {
      if (attached[t]) continue;
      Coord d = std::numeric_limits<Coord>::max();
      for (const Point& p : anchor) {
        d = std::min(d, geom::manhattan(terminals[t], p));
      }
      for (const GeomLeg& leg : legs) {
        d = std::min(d, leg_distance(leg, terminals[t]));
      }
      if (d < pick_dist) {
        pick_dist = d;
        pick = t;
      }
    }
    OCR_ASSERT(pick < terminals.size(), "no unattached terminal found");
    const Point source = terminals[pick];

    // Attachment targets, nearest first: closest crossing on each routed
    // leg, then attached terminals.
    std::vector<Point> targets;
    for (const GeomLeg& leg : legs) {
      targets.push_back(leg_closest_crossing(grid_, leg, source));
    }
    for (const Point& p : anchor) targets.push_back(p);
    std::stable_sort(targets.begin(), targets.end(),
                     [&source](const Point& a, const Point& b) {
                       return geom::manhattan(source, a) <
                              geom::manhattan(source, b);
                     });
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());

    // The dup cost term sees other nets' unrouted terminals plus this
    // net's still-unattached ones.
    std::vector<Point> dup_points = unrouted_terminals;
    for (std::size_t t = 0; t < terminals.size(); ++t) {
      if (!attached[t] && t != pick) dup_points.push_back(terminals[t]);
    }
    CostContext ctx =
        make_cost_context(grid_, &dup_points, options_.dup_radius_pitches,
                          options_.acf_window_pitches);
    ctx.sensitive = sensitive;

    bool connected = false;
    for (const Point& target : targets) {
      const PathFinder::Result found = finder.connect(source, target, ctx);
      stats.vertices_examined += found.stats.vertices_examined;
      if (!found.found) continue;
      connected = true;
      if (!found.path.empty()) {
        for (std::size_t leg = 0; leg + 1 < found.path.points.size();
             ++leg) {
          const Point& p = found.path.points[leg];
          const Point& q = found.path.points[leg + 1];
          const tig::TrackRef& track = found.path.tracks[leg];
          GeomLeg g;
          g.track = track;
          if (track.orient == Orientation::kHorizontal) {
            g.fixed = p.y;
            g.extent = Interval(std::min(p.x, q.x), std::max(p.x, q.x));
          } else {
            g.fixed = p.x;
            g.extent = Interval(std::min(p.y, q.y), std::max(p.y, q.y));
          }
          legs.push_back(g);
        }
        result.wire_length += found.path.length();
        result.corners += found.path.corners();
        result.paths.push_back(found.path);
      }
      break;
    }
    if (!connected) {
      ++result.failed_connections;
      if (util::log_level() <= util::LogLevel::kDebug) {
        const int si = grid_.nearest_h(source.y);
        const int sj = grid_.nearest_v(source.x);
        const auto hgap = grid_.h_free_segment(si, source.x);
        const auto vgap = grid_.v_free_segment(sj, source.y);
        std::ostringstream diag;
        diag << "level B: net " << net_id << " failed at (" << source.x
             << "," << source.y << ") targets=" << targets.size()
             << " hgap=";
        if (hgap) {
          diag << "[" << hgap->lo << "," << hgap->hi << "]";
        } else {
          diag << "none";
        }
        diag << " vgap=";
        if (vgap) {
          diag << "[" << vgap->lo << "," << vgap->hi << "]";
        } else {
          diag << "none";
        }
        if (!targets.empty()) {
          diag << " t0=(" << targets[0].x << "," << targets[0].y << ")";
        }
        OCR_DEBUG() << diag.str();
      }
    } else {
      // Only successfully attached terminals join the tree; a failed
      // terminal must not become an (electrically floating) target.
      anchor.push_back(source);
    }
    attached[pick] = true;  // do not retry; count the failure
    --remaining;
  }

  result.complete = result.failed_connections == 0;
  for (const GeomLeg& leg : legs) {
    committed.push_back(Committed{leg.track, leg.extent});
  }
  return result;
}

LevelBResult LevelBRouter::route(const std::vector<BNet>& nets) {
  LevelBResult result;
  const std::vector<std::size_t> order = order_nets(nets);

  // Snap every terminal to a grid crossing, collision-aware: the routing
  // grid is coarser than the pin pitch (metal3/4 rules), so distinct
  // terminals of *different* nets can land on the same crossing. Probe the
  // neighbouring crossings for a free one before accepting a collision.
  std::map<std::pair<Coord, Coord>, std::size_t> taken;  // crossing -> net
  std::vector<std::vector<Point>> snapped(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    for (const Point& t : nets[i].terminals) {
      const int ci = grid_.nearest_h(t.y);
      const int cj = grid_.nearest_v(t.x);
      // Nearest crossing in the 3x3 neighbourhood not taken by a
      // *different* net; fall back to the nearest crossing when the whole
      // neighbourhood is contested.
      Point chosen = grid_.crossing(ci, cj);
      Coord chosen_dist = std::numeric_limits<Coord>::max();
      for (int di = -1; di <= 1; ++di) {
        for (int dj = -1; dj <= 1; ++dj) {
          const int ni = ci + di;
          const int nj = cj + dj;
          if (ni < 0 || ni >= grid_.num_h() || nj < 0 ||
              nj >= grid_.num_v()) {
            continue;
          }
          const Point p = grid_.crossing(ni, nj);
          const auto it = taken.find({p.x, p.y});
          if (it != taken.end() && it->second != i) continue;
          // Crossings already blocked in the grid (obstacles, or via sites
          // committed by a previous route() call) are not usable either.
          if (it == taken.end() && !grid_.crossing_free(ni, nj)) continue;
          const Coord d = geom::manhattan(p, t);
          if (d < chosen_dist) {
            chosen = p;
            chosen_dist = d;
          }
        }
      }
      taken.emplace(std::make_pair(chosen.x, chosen.y), i);
      snapped[i].push_back(chosen);
    }
  }

  // Reserve every terminal crossing up front: terminals are the only legal
  // inter-layer connection sites (§2), so no net may wire across another
  // net's future via site. Each net's own terminals are released while it
  // routes and restored afterwards.
  const auto block_terminal = [this](const Point& p) {
    grid_.block_h(grid_.nearest_h(p.y), Interval(p.x, p.x));
    grid_.block_v(grid_.nearest_v(p.x), Interval(p.y, p.y));
  };
  const auto unblock_terminal = [this](const Point& p) {
    grid_.unblock_h(grid_.nearest_h(p.y), Interval(p.x, p.x));
    grid_.unblock_v(grid_.nearest_v(p.x), Interval(p.y, p.y));
  };
  for (const auto& pts : snapped) {
    for (const Point& p : pts) block_terminal(p);
  }

  // First pass, in the configured order. Results and committed extents are
  // kept per net (order position) so rip-up rounds can revisit them.
  std::vector<NetResult> results(order.size());
  std::vector<std::vector<Committed>> net_committed(order.size());
  SearchStats stats;
  SensitiveRuns sensitive;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const BNet& net = nets[order[k]];
    std::vector<Point> unrouted;
    for (std::size_t later = k + 1; later < order.size(); ++later) {
      const auto& pts = snapped[order[later]];
      unrouted.insert(unrouted.end(), pts.begin(), pts.end());
    }

    for (const Point& p : snapped[order[k]]) unblock_terminal(p);
    results[k] = route_net(net.id, snapped[order[k]], unrouted, &sensitive,
                           net_committed[k], stats);
    for (const Point& p : snapped[order[k]]) block_terminal(p);

    // Commit the finished net: its extents become obstacles for the nets
    // that follow (the paper's per-connection array update).
    commit(net_committed[k]);
    if (net.sensitive) {
      for (const Committed& c : net_committed[k]) {
        if (c.track.orient == Orientation::kHorizontal) {
          sensitive.add_h(c.track.index, c.extent);
        } else {
          sensitive.add_v(c.track.index, c.extent);
        }
      }
    }
  }

  // Rip-up and reroute rounds (extension; see LevelBOptions).
  std::vector<std::vector<Point>> snapped_by_order(order.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    snapped_by_order[k] = snapped[order[k]];
  }
  std::vector<BNet> nets_by_order(order.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    nets_by_order[k] = nets[order[k]];
  }
  for (int round = 0; round < options_.ripup_rounds; ++round) {
    if (!ripup_round(nets_by_order, snapped_by_order, results,
                     net_committed, stats)) {
      break;
    }
  }

  result.vertices_examined += stats.vertices_examined;
  for (NetResult& net_result : results) {
    result.total_wire_length += net_result.wire_length;
    result.total_corners += net_result.corners;
    if (net_result.complete) {
      ++result.routed_nets;
    } else {
      ++result.failed_nets;
    }
    result.nets.push_back(std::move(net_result));
  }
  return result;
}

void LevelBRouter::commit(const std::vector<Committed>& extents) {
  for (const Committed& c : extents) {
    if (c.track.orient == Orientation::kHorizontal) {
      grid_.block_h(c.track.index, c.extent);
    } else {
      grid_.block_v(c.track.index, c.extent);
    }
  }
}

void LevelBRouter::uncommit(const std::vector<Committed>& extents) {
  for (const Committed& c : extents) {
    if (c.track.orient == Orientation::kHorizontal) {
      grid_.unblock_h(c.track.index, c.extent);
    } else {
      grid_.unblock_v(c.track.index, c.extent);
    }
  }
}

bool LevelBRouter::ripup_round(
    const std::vector<BNet>& nets,
    const std::vector<std::vector<Point>>& snapped,
    std::vector<NetResult>& results,
    std::vector<std::vector<Committed>>& committed, SearchStats& stats) {
  const auto block_terminals = [this](const std::vector<Point>& pts) {
    for (const Point& p : pts) {
      grid_.block_h(grid_.nearest_h(p.y), Interval(p.x, p.x));
      grid_.block_v(grid_.nearest_v(p.x), Interval(p.y, p.y));
    }
  };
  const auto unblock_terminals = [this](const std::vector<Point>& pts) {
    for (const Point& p : pts) {
      grid_.unblock_h(grid_.nearest_h(p.y), Interval(p.x, p.x));
      grid_.unblock_v(grid_.nearest_v(p.x), Interval(p.y, p.y));
    }
  };
  const std::vector<Point> no_unrouted;

  bool improved = false;
  for (std::size_t f = 0; f < results.size(); ++f) {
    if (results[f].complete || snapped[f].size() < 2) continue;
    const geom::Rect window =
        geom::bounding_box(snapped[f]).inflated(8 * 10);

    // Victim candidates: complete nets with wiring inside the failed
    // net's window, cheapest wiring first.
    std::vector<std::size_t> victims;
    for (std::size_t v = 0; v < results.size(); ++v) {
      if (v == f || !results[v].complete || committed[v].empty()) continue;
      if (nets[v].sensitive) continue;  // never rip up sensitive wiring
      bool overlaps_window = false;
      for (const Committed& c : committed[v]) {
        const geom::Rect leg_box =
            c.track.orient == Orientation::kHorizontal
                ? geom::Rect(c.extent.lo, grid_.h_y(c.track.index),
                             c.extent.hi, grid_.h_y(c.track.index))
                : geom::Rect(grid_.v_x(c.track.index), c.extent.lo,
                             grid_.v_x(c.track.index), c.extent.hi);
        if (leg_box.overlaps(window)) {
          overlaps_window = true;
          break;
        }
      }
      if (overlaps_window) victims.push_back(v);
    }
    std::stable_sort(victims.begin(), victims.end(),
                     [&results](std::size_t a, std::size_t b) {
                       return results[a].wire_length <
                              results[b].wire_length;
                     });

    constexpr std::size_t kMaxVictims = 4;
    for (std::size_t vi = 0;
         vi < victims.size() && vi < kMaxVictims && !results[f].complete;
         ++vi) {
      const std::size_t v = victims[vi];
      // Rip up the victim and the failed net's stale partial wiring, then
      // retry the failed net. The victim's terminal via sites stay
      // reserved so the retry cannot bury them.
      uncommit(committed[v]);
      uncommit(committed[f]);
      block_terminals(snapped[v]);
      unblock_terminals(snapped[f]);
      std::vector<Committed> f_new;
      NetResult f_result = route_net(nets[f].id, snapped[f], no_unrouted,
                                     nullptr, f_new, stats);
      block_terminals(snapped[f]);

      if (!f_result.complete) {
        // No help; restore both untouched.
        commit(committed[f]);
        commit(committed[v]);
        continue;
      }
      commit(f_new);
      // Reroute the victim around the new wiring.
      unblock_terminals(snapped[v]);
      std::vector<Committed> v_new;
      NetResult v_result = route_net(nets[v].id, snapped[v], no_unrouted,
                                     nullptr, v_new, stats);
      block_terminals(snapped[v]);
      if (v_result.complete) {
        commit(v_new);
        committed[f] = std::move(f_new);
        committed[v] = std::move(v_new);
        results[f] = std::move(f_result);
        results[v] = std::move(v_result);
        improved = true;
      } else {
        // Swap failed: undo everything, restore both nets' old wiring.
        uncommit(f_new);
        commit(committed[f]);
        commit(committed[v]);
      }
    }
  }
  return improved;
}

}  // namespace ocr::levelb

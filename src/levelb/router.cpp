#include "levelb/router.hpp"

#include <chrono>

#include "levelb/net_core.hpp"
#include "levelb/workspace.hpp"
#include "util/metrics.hpp"
#include "util/profile.hpp"

namespace ocr::levelb {
namespace {

using geom::Orientation;
using geom::Point;

long long micros_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

LevelBRouter::LevelBRouter(tig::TrackGrid& grid, LevelBOptions options)
    : grid_(grid), options_(options) {}

LevelBResult LevelBRouter::route(const std::vector<BNet>& nets) {
  const std::vector<std::size_t> order = order_nets(nets, options_.ordering);
  const std::vector<std::vector<Point>> snapped =
      snap_and_reserve_terminals(grid_, nets);
  const UnroutedSuffix unrouted(snapped, order);

  // First pass, in the configured order. Results and committed extents are
  // kept per net (order position) so rip-up rounds can revisit them.
  std::vector<NetResult> results(order.size());
  std::vector<std::vector<Committed>> net_committed(order.size());
  SearchStats stats;
  SensitiveRuns sensitive;
  SearchWorkspace workspace;  // reused by every search of this run
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  util::Histogram& search_us_hist = metrics.histogram(
      "levelb.net_search_us",
      {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 100000});
  util::Histogram& vertices_hist = metrics.histogram(
      "levelb.net_vertices",
      {16, 64, 256, 1024, 4096, 16384, 65536, 262144});
  for (std::size_t k = 0; k < order.size(); ++k) {
    OCR_SPAN("levelb.net");
    const BNet& net = nets[order[k]];
    const SearchStats before = stats;
    const auto start = std::chrono::steady_clock::now();

    for (const Point& p : snapped[order[k]]) unblock_terminal(grid_, p);
    results[k] = route_single_net(
        grid_, options_,
        NetRouteRequest{net.id, &snapped[order[k]], unrouted.suffix(k),
                        &sensitive},
        net_committed[k], stats, nullptr, &workspace);
    for (const Point& p : snapped[order[k]]) block_terminal(grid_, p);

    // Commit the finished net: its extents become obstacles for the nets
    // that follow (the paper's per-connection array update).
    commit_extents(grid_, net_committed[k]);
    if (net.sensitive) {
      for (const Committed& c : net_committed[k]) {
        if (c.track.orient == Orientation::kHorizontal) {
          sensitive.add_h(c.track.index, c.extent);
        } else {
          sensitive.add_v(c.track.index, c.extent);
        }
      }
    }

    search_us_hist.observe(micros_since(start));
    vertices_hist.observe(stats.vertices_examined -
                          before.vertices_examined);
    if (options_.trace != nullptr) {
      util::TraceEvent ev("net");
      ev.add("net", net.id)
          .add("order", static_cast<long long>(k))
          .add("mode", "serial")
          .add("complete", results[k].complete)
          .add("wire_length",
               static_cast<long long>(results[k].wire_length))
          .add("corners", results[k].corners)
          .add("vertices_examined",
               stats.vertices_examined - before.vertices_examined)
          .add("window_growths",
               stats.window_growths - before.window_growths)
          .add("candidates", stats.candidates - before.candidates)
          .add("search_us", micros_since(start));
      options_.trace->record(std::move(ev));
    }
  }

  // Rip-up and reroute rounds (extension; see LevelBOptions).
  std::vector<std::vector<Point>> snapped_by_order(order.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    snapped_by_order[k] = snapped[order[k]];
  }
  std::vector<BNet> nets_by_order(order.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    nets_by_order[k] = nets[order[k]];
  }
  const int recovered = [&] {
    OCR_SPAN("levelb.ripup");
    return run_ripup_rounds(grid_, options_, nets_by_order,
                            snapped_by_order, results, net_committed, stats,
                            &workspace);
  }();

  workspace.publish_arena_metrics();
  LevelBResult result = assemble_result(std::move(results), stats);
  result.ripup_recovered = recovered;
  return result;
}

}  // namespace ocr::levelb

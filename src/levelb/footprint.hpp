#pragma once
/// \file footprint.hpp
/// \brief SearchFootprint: the exact occupancy-read set of a path search.
///
/// Every occupancy query a level-B search makes — free-segment lookups
/// during the MBFS, blockage distances for the drg cost term, blocked
/// fractions for the acf term — depends on the blocked state of one track
/// interval. The footprint is the union of those intervals, per track.
///
/// The engine validates speculative results with it: a block-only commit
/// whose extents intersect no footprint interval cannot change the value
/// of any read the search performed, and therefore cannot change the
/// search's (deterministic) outcome. This is the segment-level refinement
/// of the coarser SearchWindow check — a die-crossing wire only conflicts
/// with the searches that actually looked at the track intervals it
/// blocks.

#include <cstddef>
#include <map>

#include "geom/interval_set.hpp"
#include "tig/track_grid.hpp"

namespace ocr::levelb {

class SearchFootprint {
 public:
  /// Records that the search read the blocked state of [iv.lo, iv.hi] on
  /// the given track. Overlapping and adjacent reads merge.
  void add_h(int track, const geom::Interval& iv) { h_[track].add(iv); }
  void add_v(int track, const geom::Interval& iv) { v_[track].add(iv); }
  void add(const tig::TrackRef& track, const geom::Interval& iv);

  /// True if blocking [iv.lo, iv.hi] on \p track could change a read.
  bool intersects(const tig::TrackRef& track, const geom::Interval& iv) const;

  bool empty() const { return h_.empty() && v_.empty(); }
  /// Number of distinct tracks read (observability).
  std::size_t tracks() const { return h_.size() + v_.size(); }
  void clear() {
    h_.clear();
    v_.clear();
  }

 private:
  std::map<int, geom::IntervalSet> h_;
  std::map<int, geom::IntervalSet> v_;
};

}  // namespace ocr::levelb

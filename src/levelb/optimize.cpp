#include "levelb/optimize.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ocr::levelb {
namespace {

using geom::Coord;
using geom::Interval;
using geom::Orientation;
using geom::Point;
using tig::TrackRef;

Interval leg_span(const Point& p, const Point& q, bool horizontal) {
  return horizontal ? Interval(std::min(p.x, q.x), std::max(p.x, q.x))
                    : Interval(std::min(p.y, q.y), std::max(p.y, q.y));
}

void block_path(tig::TrackGrid& grid, const Path& path) {
  for (std::size_t leg = 0; leg + 1 < path.points.size(); ++leg) {
    const TrackRef& t = path.tracks[leg];
    const bool horizontal = t.orient == Orientation::kHorizontal;
    const Interval span =
        leg_span(path.points[leg], path.points[leg + 1], horizontal);
    if (horizontal) {
      grid.block_h(t.index, span);
    } else {
      grid.block_v(t.index, span);
    }
  }
}

void unblock_path(tig::TrackGrid& grid, const Path& path) {
  for (std::size_t leg = 0; leg + 1 < path.points.size(); ++leg) {
    const TrackRef& t = path.tracks[leg];
    const bool horizontal = t.orient == Orientation::kHorizontal;
    const Interval span =
        leg_span(path.points[leg], path.points[leg + 1], horizontal);
    if (horizontal) {
      grid.unblock_h(t.index, span);
    } else {
      grid.unblock_v(t.index, span);
    }
  }
}

bool point_on_leg(const Point& p, const Point& a, const Point& b) {
  if (a.y == b.y) {
    return p.y == a.y && std::min(a.x, b.x) <= p.x &&
           p.x <= std::max(a.x, b.x);
  }
  return p.x == a.x && std::min(a.y, b.y) <= p.y &&
         p.y <= std::max(a.y, b.y);
}

/// Attempts to replace the three legs points[i..i+3] (an HVH or VHV
/// staircase) with a single L through one of the two alternative corners.
/// \p junctions are same-net attachment points that must stay covered.
/// Returns true (and rewrites \p path) on success. The grid must NOT
/// contain this net's wiring while this runs.
bool flatten_staircase(const tig::TrackGrid& grid, Path& path,
                       std::size_t i,
                       const std::vector<Point>& junctions) {
  const Point& p0 = path.points[i];
  const Point& p3 = path.points[i + 3];
  // Junctions on the legs being removed (excluding the kept endpoints)
  // veto the rewrite.
  for (const Point& j : junctions) {
    if (j == p0 || j == p3) continue;
    if (point_on_leg(j, path.points[i], path.points[i + 1]) ||
        point_on_leg(j, path.points[i + 1], path.points[i + 2]) ||
        point_on_leg(j, path.points[i + 2], path.points[i + 3])) {
      return false;
    }
  }

  // Collinear endpoints: the staircase collapses to one straight leg.
  if (p0.x == p3.x || p0.y == p3.y) {
    const bool horizontal = p0.y == p3.y;
    const int track =
        horizontal ? grid.nearest_h(p0.y) : grid.nearest_v(p0.x);
    const Coord track_coord =
        horizontal ? grid.h_y(track) : grid.v_x(track);
    if (track_coord != (horizontal ? p0.y : p0.x)) return false;
    const Interval span = leg_span(p0, p3, horizontal);
    const bool free =
        horizontal ? grid.h_is_free(track, span)
                   : grid.v_is_free(track, span);
    if (!free) return false;
    std::vector<Point> points(path.points.begin(),
                              path.points.begin() + static_cast<long>(i) +
                                  1);
    std::vector<TrackRef> tracks(path.tracks.begin(),
                                 path.tracks.begin() +
                                     static_cast<long>(i));
    points.push_back(p3);
    tracks.push_back(horizontal
                         ? TrackRef{Orientation::kHorizontal, track}
                         : TrackRef{Orientation::kVertical, track});
    points.insert(points.end(),
                  path.points.begin() + static_cast<long>(i) + 4,
                  path.points.end());
    tracks.insert(tracks.end(),
                  path.tracks.begin() + static_cast<long>(i) + 3,
                  path.tracks.end());
    path.points = std::move(points);
    path.tracks = std::move(tracks);
    path.canonicalize();
    return true;
  }

  const Point corner_a{p3.x, p0.y};
  const Point corner_b{p0.x, p3.y};
  for (const Point& corner : {corner_a, corner_b}) {
    if (corner == p0 || corner == p3) continue;  // degenerate
    // Leg p0 -> corner, corner -> p3; both must ride real tracks.
    const bool first_horizontal = corner.y == p0.y;
    const int h_track = grid.nearest_h(first_horizontal ? p0.y : p3.y);
    const int v_track = grid.nearest_v(first_horizontal ? p3.x : p0.x);
    if (grid.h_y(h_track) != (first_horizontal ? p0.y : p3.y)) continue;
    if (grid.v_x(v_track) != (first_horizontal ? p3.x : p0.x)) continue;
    const Interval h_span = leg_span(first_horizontal ? p0 : corner,
                                     first_horizontal ? corner : p3, true);
    const Interval v_span = leg_span(first_horizontal ? corner : p0,
                                     first_horizontal ? p3 : corner, false);
    if (!grid.h_is_free(h_track, h_span) ||
        !grid.v_is_free(v_track, v_span)) {
      continue;
    }
    // Rewrite.
    std::vector<Point> points(path.points.begin(),
                              path.points.begin() + static_cast<long>(i) +
                                  1);
    std::vector<TrackRef> tracks(path.tracks.begin(),
                                 path.tracks.begin() +
                                     static_cast<long>(i));
    points.push_back(corner);
    tracks.push_back(first_horizontal
                         ? TrackRef{Orientation::kHorizontal, h_track}
                         : TrackRef{Orientation::kVertical, v_track});
    points.push_back(p3);
    tracks.push_back(first_horizontal
                         ? TrackRef{Orientation::kVertical, v_track}
                         : TrackRef{Orientation::kHorizontal, h_track});
    points.insert(points.end(),
                  path.points.begin() + static_cast<long>(i) + 4,
                  path.points.end());
    tracks.insert(tracks.end(),
                  path.tracks.begin() + static_cast<long>(i) + 3,
                  path.tracks.end());
    path.points = std::move(points);
    path.tracks = std::move(tracks);
    path.canonicalize();
    return true;
  }
  return false;
}

}  // namespace

OptimizeStats straighten_corners(tig::TrackGrid& grid, LevelBResult& result,
                                 const OptimizeOptions& options) {
  OptimizeStats stats;
  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool changed = false;
    for (NetResult& net : result.nets) {
      if (net.paths.empty()) continue;
      // Lift the whole net off the grid; its own wiring must not block
      // its rewrites (same electrical node).
      for (const Path& path : net.paths) unblock_path(grid, path);

      // Same-net attachment points: endpoints of every path (later paths
      // attach to points on earlier paths' legs).
      std::vector<Point> junctions;
      for (const Path& path : net.paths) {
        if (path.points.empty()) continue;
        junctions.push_back(path.points.front());
        junctions.push_back(path.points.back());
      }
      // The router reserves terminal via sites as point blocks on both
      // tracks; those are this net's own and must not veto its rewrites.
      for (const Point& j : junctions) {
        grid.unblock_h(grid.nearest_h(j.y), Interval(j.x, j.x));
        grid.unblock_v(grid.nearest_v(j.x), Interval(j.y, j.y));
      }

      for (Path& path : net.paths) {
        bool touched = false;
        bool local_change = true;
        while (local_change) {
          local_change = false;
          for (std::size_t i = 0; i + 3 < path.points.size(); ++i) {
            const int corners_before = path.corners();
            const Coord length_before = path.length();
            Path trial = path;
            if (!flatten_staircase(grid, trial, i, junctions)) continue;
            const int corners_after = trial.corners();
            const Coord length_after = trial.length();
            const bool better =
                corners_after < corners_before ||
                (corners_after == corners_before &&
                 length_after < length_before);
            if (!better) continue;
            stats.corners_removed += corners_before - corners_after;
            stats.length_saved += length_before - length_after;
            net.corners -= corners_before - corners_after;
            net.wire_length -= length_before - length_after;
            result.total_corners -= corners_before - corners_after;
            result.total_wire_length -= length_before - length_after;
            path = std::move(trial);
            local_change = true;
            touched = true;
            changed = true;
            break;
          }
        }
        if (touched) ++stats.paths_touched;
      }

      for (const Path& path : net.paths) block_path(grid, path);
      for (const Point& j : junctions) {
        grid.block_h(grid.nearest_h(j.y), Interval(j.x, j.x));
        grid.block_v(grid.nearest_v(j.x), Interval(j.y, j.y));
      }
    }
    ++stats.passes;
    if (!changed) break;
  }
  return stats;
}

}  // namespace ocr::levelb

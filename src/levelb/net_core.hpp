#pragma once
/// \file net_core.hpp
/// \brief Level-B routing types plus the order-independent core of net
/// routing, shared by the serial LevelBRouter and the parallel engine
/// (src/engine/).
///
/// Everything here is a pure function of its inputs: given the same grid
/// occupancy, options and terminal lists, each function produces the same
/// answer. That property is what lets the engine speculate — a worker can
/// run route_single_net() against a snapshot of the grid, and the result
/// is byte-identical to the serial router's as long as no intervening
/// commit overlapped a track interval the search actually read (see
/// SearchFootprint and DESIGN.md "Engine architecture").

#include <cstddef>
#include <span>
#include <vector>

#include "levelb/path_finder.hpp"
#include "tig/track_grid.hpp"
#include "util/status.hpp"
#include "util/trace.hpp"

namespace ocr::levelb {

/// Net-ordering criteria (§3: "net ordering is accomplished using a
/// longest distance criterion. The option of a user specified ordering
/// criterion ... can be exercised").
enum class NetOrdering {
  kLongestFirst,   ///< descending half-perimeter (paper default)
  kShortestFirst,  ///< ascending half-perimeter (ablation)
  kAsGiven,        ///< caller-supplied order (e.g. criticality)
};

/// A net handed to the level-B router: an opaque id for reporting plus its
/// terminal positions in layout coordinates (snapped to grid crossings
/// internally).
struct BNet {
  int id = 0;
  std::vector<geom::Point> terminals;
  /// Sensitive nets register their committed wiring in the router's
  /// SensitiveRuns registry; later nets pay the w24 parallel-run penalty
  /// for hugging them (§3.2 extension). Sensitive nets are also never
  /// chosen as rip-up victims.
  bool sensitive = false;
};

struct LevelBOptions {
  PathFinderOptions finder;
  NetOrdering ordering = NetOrdering::kLongestFirst;
  /// dup-term radius in pitches (see cost.hpp).
  double dup_radius_pitches = 8.0;
  /// acf congestion-window half-width in pitches.
  double acf_window_pitches = 4.0;
  /// Rip-up-and-reroute rounds after the first pass: each round tries to
  /// complete every failed net by ripping up one nearby committed net,
  /// rerouting the failed net, then rerouting the victim; the swap is
  /// kept only if both complete. Mitigates the serial order dependency
  /// the paper's §3.2 edge weighting addresses. 0 disables.
  int ripup_rounds = 1;
  /// When set, the router records one "net" trace event per routed net
  /// (search effort, timings; engine runs add speculation fields).
  /// Tracing never changes routing results.
  util::TraceSink* trace = nullptr;
  /// Vertex-expansion budget for one whole net (all its connections and
  /// retry targets combined); 0 = unlimited. A net that exhausts it stops
  /// routing with NetResult::outcome = kBudgetExhausted. Deterministic:
  /// vertex order is fixed, so the same budget always stops at the same
  /// point regardless of thread count. The cancel token rides in
  /// finder.cancel.
  long long net_vertex_budget = 0;
};

/// Routing outcome of one net.
struct NetResult {
  int id = 0;
  bool complete = false;
  std::vector<Path> paths;        ///< one per two-terminal connection
  geom::Coord wire_length = 0;    ///< sum of path lengths (dbu)
  int corners = 0;                ///< metal3<->metal4 vias
  int failed_connections = 0;
  /// Why the net is incomplete (kOk while complete): kUnroutable = no
  /// path existed, kCancelled = deadline/cancel fired mid-net,
  /// kBudgetExhausted = net_vertex_budget spent, kFaultInjected = an
  /// injected fault failed it (test harness only).
  util::StatusKind outcome = util::StatusKind::kOk;

  /// Wire-geometry equality (paths compare by their polylines).
  friend bool operator==(const NetResult&, const NetResult&) = default;
};

/// Aggregate result of a level-B run.
struct LevelBResult {
  std::vector<NetResult> nets;
  int routed_nets = 0;
  int failed_nets = 0;
  geom::Coord total_wire_length = 0;
  int total_corners = 0;
  long long vertices_examined = 0;  ///< MBFS effort (scaling bench)
  int cancelled_nets = 0;   ///< failed nets stopped by cancel/deadline
  int budget_nets = 0;      ///< failed nets that ran out of vertex budget
  int ripup_recovered = 0;  ///< nets completed by rip-up rounds

  double completion_rate() const {
    const int total = routed_nets + failed_nets;
    return total == 0 ? 1.0 : static_cast<double>(routed_nets) / total;
  }

  friend bool operator==(const LevelBResult&, const LevelBResult&) = default;
};

/// One committed track extent of a routed net (becomes a blocked extent
/// when the net commits; removed again on rip-up).
struct Committed {
  tig::TrackRef track;
  geom::Interval extent;

  friend constexpr auto operator<=>(const Committed&, const Committed&) =
      default;
};

/// Orders net indices per the configured criterion (§3 longest-distance
/// default; stable, so kAsGiven and equal extents keep input order).
std::vector<std::size_t> order_nets(const std::vector<BNet>& nets,
                                    NetOrdering ordering);

/// Snaps every terminal to a free grid crossing, collision-aware (distinct
/// nets never share a crossing while a free neighbour exists), and
/// reserves every snapped crossing by blocking it on both tracks —
/// terminals are the only legal inter-layer connection sites (§2).
/// Returns the snapped terminal list per net, parallel to \p nets.
std::vector<std::vector<geom::Point>> snap_and_reserve_terminals(
    tig::TrackGrid& grid, const std::vector<BNet>& nets);

/// Blocks / unblocks a terminal's crossing on both of its tracks.
void block_terminal(tig::TrackGrid& grid, const geom::Point& p);
void unblock_terminal(tig::TrackGrid& grid, const geom::Point& p);

/// Overlay variants: the engine's terminal braces, applied to a worker's
/// GridOverlay instead of a private grid copy. Track resolution uses the
/// overlay's base geometry, so the touched tracks are exactly the ones the
/// TrackGrid variants would mutate.
void block_terminal(tig::GridOverlay& overlay, const geom::Point& p);
void unblock_terminal(tig::GridOverlay& overlay, const geom::Point& p);

/// Blocks committed extents into the grid (the paper's per-connection
/// array update) or removes them again (rip-up support).
void commit_extents(tig::TrackGrid& grid,
                    const std::vector<Committed>& extents);
void uncommit_extents(tig::TrackGrid& grid,
                      const std::vector<Committed>& extents);

/// Inputs of one net's routing step.
struct NetRouteRequest {
  int net_id = 0;
  /// This net's snapped terminals. The net's own terminal crossings must
  /// already be unblocked in the grid when routing.
  const std::vector<geom::Point>* terminals = nullptr;
  /// Snapped terminals of all not-yet-routed nets (dup cost term). Order
  /// matters for floating-point determinism; callers must present the
  /// serial router's order (later nets in ordering sequence).
  std::span<const geom::Point> unrouted;
  /// Committed sensitive wiring (w24 term), or null.
  const SensitiveRuns* sensitive = nullptr;
};

/// Routes one net against \p grid without mutating it: the §3.3 modified
/// Prim attachment loop over PathFinder::connect. Appends the extents to
/// commit to \p committed, accumulates effort into \p stats, and — when
/// \p footprint is non-null — records every occupancy read the searches
/// made as (track, interval) dependencies (the engine's speculation-
/// validity footprint). \p workspace supplies the searches' scratch
/// buffers; long-lived callers (the serial router, engine workers) pass
/// their own so steady-state routing does not allocate. Null falls back
/// to a throwaway workspace; results are identical either way.
/// \p grid is a view: serial callers pass their TrackGrid, engine workers
/// a snapshot + GridOverlay — results are bit-identical for equal
/// effective occupancy.
NetResult route_single_net(tig::GridView grid,
                           const LevelBOptions& options,
                           const NetRouteRequest& request,
                           std::vector<Committed>& committed,
                           SearchStats& stats,
                           SearchFootprint* footprint = nullptr,
                           SearchWorkspace* workspace = nullptr);

/// Rip-up-and-reroute rounds over the failed nets (LevelBOptions::
/// ripup_rounds). All vectors are indexed by ordering position. Mutates
/// the grid through the trial-and-restore sequence; on return the grid
/// holds exactly the surviving wiring. Returns the number of previously
/// failed nets the rounds completed (the degradation ladder's recovery
/// counter). Stops early when the options' cancel token fires.
int run_ripup_rounds(tig::TrackGrid& grid, const LevelBOptions& options,
                     const std::vector<BNet>& nets_in_order,
                     const std::vector<std::vector<geom::Point>>& snapped,
                     std::vector<NetResult>& results,
                     std::vector<std::vector<Committed>>& committed,
                     SearchStats& stats,
                     SearchWorkspace* workspace = nullptr);

/// Folds per-position results + aggregate stats into a LevelBResult
/// (result.nets in ordering-position order, exactly like the serial
/// router).
LevelBResult assemble_result(std::vector<NetResult> results,
                             const SearchStats& stats);

/// Flattened "terminals of nets after position k" views. suffix(k) is the
/// concatenation of snapped terminals of ordering positions k+1..N-1 — the
/// exact vector the serial router builds for the dup cost term.
class UnroutedSuffix {
 public:
  UnroutedSuffix(const std::vector<std::vector<geom::Point>>& snapped,
                 const std::vector<std::size_t>& order);

  std::span<const geom::Point> suffix(std::size_t position) const {
    return std::span<const geom::Point>(flat_).subspan(
        offset_[position + 1]);
  }

 private:
  std::vector<geom::Point> flat_;     // terminals in ordering sequence
  std::vector<std::size_t> offset_;   // offset_[k] = start of position k
};

}  // namespace ocr::levelb

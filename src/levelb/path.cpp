#include "levelb/path.hpp"

#include "util/assert.hpp"
#include "util/str.hpp"

namespace ocr::levelb {

geom::Coord Path::length() const {
  geom::Coord total = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    total += geom::manhattan(points[i - 1], points[i]);
  }
  return total;
}

int Path::corners() const {
  int count = 0;
  for (std::size_t i = 1; i + 1 < points.size(); ++i) {
    const geom::Point& prev = points[i - 1];
    const geom::Point& cur = points[i];
    const geom::Point& next = points[i + 1];
    const bool in_horizontal = prev.y == cur.y && prev.x != cur.x;
    const bool out_horizontal = cur.y == next.y && cur.x != next.x;
    if (in_horizontal != out_horizontal) ++count;
  }
  return count;
}

void Path::canonicalize() {
  if (points.size() < 2) return;
  OCR_ASSERT(tracks.size() + 1 == points.size(),
             "path has inconsistent leg/track counts");
  std::vector<geom::Point> pts{points.front()};
  std::vector<tig::TrackRef> trk;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i] == pts.back()) continue;  // zero-length leg
    const bool collinear =
        !trk.empty() && trk.back() == tracks[i - 1] &&
        ((pts.back().y == points[i].y &&
          trk.back().orient == geom::Orientation::kHorizontal) ||
         (pts.back().x == points[i].x &&
          trk.back().orient == geom::Orientation::kVertical)) &&
        pts.size() >= 2;
    if (collinear) {
      pts.back() = points[i];  // extend the previous leg
    } else {
      pts.push_back(points[i]);
      trk.push_back(tracks[i - 1]);
    }
  }
  if (pts.size() < 2) {
    points.clear();
    tracks.clear();
    return;
  }
  points = std::move(pts);
  tracks = std::move(trk);
}

std::string Path::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i > 0) out += " -> ";
    out += util::format("(%lld,%lld)", static_cast<long long>(points[i].x),
                        static_cast<long long>(points[i].y));
  }
  return out;
}

std::vector<std::string> validate_path(const tig::TrackGrid& grid,
                                       const Path& path,
                                       const geom::Point& a,
                                       const geom::Point& b) {
  std::vector<std::string> problems;
  if (path.empty()) {
    if (a != b) problems.push_back("empty path between distinct endpoints");
    return problems;
  }
  if (path.points.front() != a) problems.push_back("path does not start at a");
  if (path.points.back() != b) problems.push_back("path does not end at b");
  if (path.tracks.size() + 1 != path.points.size()) {
    problems.push_back("leg/track count mismatch");
    return problems;
  }
  for (std::size_t i = 0; i + 1 < path.points.size(); ++i) {
    const geom::Point& p = path.points[i];
    const geom::Point& q = path.points[i + 1];
    const tig::TrackRef& t = path.tracks[i];
    if (p.x != q.x && p.y != q.y) {
      problems.push_back(util::format("leg %zu is not axis-aligned", i));
      continue;
    }
    if (t.orient == geom::Orientation::kHorizontal) {
      if (p.y != q.y) {
        problems.push_back(
            util::format("leg %zu claims a horizontal track but moves in y",
                         i));
      } else if (grid.h_y(t.index) != p.y) {
        problems.push_back(
            util::format("leg %zu is off its horizontal track", i));
      }
    } else {
      if (p.x != q.x) {
        problems.push_back(
            util::format("leg %zu claims a vertical track but moves in x",
                         i));
      } else if (grid.v_x(t.index) != p.x) {
        problems.push_back(
            util::format("leg %zu is off its vertical track", i));
      }
    }
  }
  return problems;
}

}  // namespace ocr::levelb

#pragma once
/// \file left_edge.hpp
/// \brief Constrained left-edge channel router with optional doglegs.
///
/// The classic track-by-track algorithm: nets (or, with doglegs enabled,
/// net pieces split at internal pin columns) are assigned to tracks from
/// the top of the channel downward. A piece may enter the current track
/// only if every piece that must lie above it (vertical constraint graph)
/// is already placed on an earlier track, and pieces sharing a track may
/// not overlap horizontally. Without doglegs the router fails on cyclic
/// vertical constraints; dogleg splitting breaks most cycles, matching the
/// behaviour of the routers the paper cites for level A.

#include "channel/route.hpp"

namespace ocr::channel {

struct LeftEdgeOptions {
  /// Split multi-pin nets at internal pin columns (dogleg router).
  bool allow_doglegs = true;
};

/// Routes \p problem; on failure (cyclic constraints) the returned route
/// has success = false and a diagnostic reason.
ChannelRoute route_left_edge(const ChannelProblem& problem,
                             const LeftEdgeOptions& options = {});

}  // namespace ocr::channel

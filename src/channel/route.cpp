#include "channel/route.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/str.hpp"

namespace ocr::channel {

long long ChannelRoute::wire_length() const {
  long long total = 0;
  for (const HSeg& h : hsegs) total += h.col_hi - h.col_lo;
  for (const VSeg& v : vsegs) total += v.row_hi - v.row_lo;
  return total;
}

int ChannelRoute::via_count() const {
  int vias = 0;
  for (const VSeg& v : vsegs) {
    for (const HSeg& h : hsegs) {
      if (h.net != v.net) continue;
      if (h.track < v.row_lo || h.track > v.row_hi) continue;
      if (v.column < h.col_lo || v.column > h.col_hi) continue;
      ++vias;
    }
  }
  return vias;
}

namespace {

/// Union-find over small dense int keys.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    parent_[static_cast<std::size_t>(find(a))] = find(b);
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

std::vector<std::string> validate_route(const ChannelProblem& problem,
                                        const ChannelRoute& route) {
  std::vector<std::string> problems;
  const auto complain = [&problems](std::string msg) {
    problems.push_back(std::move(msg));
  };
  if (!route.success) {
    complain("route is marked unsuccessful");
    return problems;
  }
  const int bottom_row = route.num_tracks + 1;
  const int columns_used =
      std::max(route.num_columns_used, problem.num_columns());

  // Segment sanity.
  for (const HSeg& h : route.hsegs) {
    if (h.track < 1 || h.track > route.num_tracks) {
      complain(util::format("hseg of net %d on out-of-range track %d", h.net,
                            h.track));
    }
    if (h.col_lo > h.col_hi || h.col_lo < 0 || h.col_hi >= columns_used) {
      complain(util::format("hseg of net %d has bad column span", h.net));
    }
  }
  for (const VSeg& v : route.vsegs) {
    if (v.row_lo > v.row_hi || v.row_lo < 0 || v.row_hi > bottom_row) {
      complain(util::format("vseg of net %d has bad row span", v.net));
    }
    if (v.column < 0 || v.column >= columns_used) {
      complain(util::format("vseg of net %d in bad column %d", v.net,
                            v.column));
    }
  }
  if (!problems.empty()) return problems;

  // Horizontal overlap between different nets on the same track.
  std::map<int, std::vector<const HSeg*>> by_track;
  for (const HSeg& h : route.hsegs) by_track[h.track].push_back(&h);
  for (auto& [track, segs] : by_track) {
    std::sort(segs.begin(), segs.end(),
              [](const HSeg* a, const HSeg* b) {
                return a->col_lo < b->col_lo;
              });
    for (std::size_t i = 1; i < segs.size(); ++i) {
      const HSeg* prev = segs[i - 1];
      const HSeg* cur = segs[i];
      if (cur->col_lo <= prev->col_hi && cur->net != prev->net) {
        complain(util::format("nets %d and %d overlap on track %d",
                              prev->net, cur->net, track));
      }
    }
  }

  // Vertical overlap between different nets in the same column.
  std::map<int, std::vector<const VSeg*>> by_column;
  for (const VSeg& v : route.vsegs) by_column[v.column].push_back(&v);
  for (auto& [column, segs] : by_column) {
    std::sort(segs.begin(), segs.end(),
              [](const VSeg* a, const VSeg* b) {
                return a->row_lo < b->row_lo;
              });
    for (std::size_t i = 1; i < segs.size(); ++i) {
      const VSeg* prev = segs[i - 1];
      const VSeg* cur = segs[i];
      if (cur->row_lo <= prev->row_hi && cur->net != prev->net) {
        complain(util::format("nets %d and %d overlap in column %d",
                              prev->net, cur->net, column));
      }
    }
  }

  // Pin coverage: a pin at (column, boundary) needs a vertical segment of
  // its net touching that boundary row in that column.
  for (int c = 0; c < problem.num_columns(); ++c) {
    const int t = problem.top[static_cast<std::size_t>(c)];
    const int b = problem.bot[static_cast<std::size_t>(c)];
    const auto touches = [&](int net, int row) {
      for (const VSeg& v : route.vsegs) {
        if (v.net == net && v.column == c && v.row_lo <= row &&
            row <= v.row_hi) {
          return true;
        }
      }
      return false;
    };
    if (t != 0 && !touches(t, 0)) {
      complain(util::format("top pin of net %d at column %d unconnected", t,
                            c));
    }
    if (b != 0 && !touches(b, bottom_row)) {
      complain(util::format("bottom pin of net %d at column %d unconnected",
                            b, c));
    }
  }

  // Per-net connectivity: model each segment as a node; segments of the
  // same net that touch are united; all pieces must end in one component.
  const auto spans = net_spans(problem);
  for (const NetSpan& span : spans) {
    if (!span.present()) continue;
    const int net = span.net;
    std::vector<const HSeg*> hs;
    std::vector<const VSeg*> vs;
    for (const HSeg& h : route.hsegs) {
      if (h.net == net) hs.push_back(&h);
    }
    for (const VSeg& v : route.vsegs) {
      if (v.net == net) vs.push_back(&v);
    }
    if (hs.empty() && vs.empty()) {
      complain(util::format("net %d has no wiring", net));
      continue;
    }
    DisjointSet dsu(hs.size() + vs.size());
    for (std::size_t i = 0; i < hs.size(); ++i) {
      for (std::size_t j = 0; j < vs.size(); ++j) {
        const bool meet = vs[j]->row_lo <= hs[i]->track &&
                          hs[i]->track <= vs[j]->row_hi &&
                          hs[i]->col_lo <= vs[j]->column &&
                          vs[j]->column <= hs[i]->col_hi;
        if (meet) {
          dsu.unite(static_cast<int>(i),
                    static_cast<int>(hs.size() + j));
        }
      }
    }
    // Horizontal segments of one net on the same track that share a column
    // also touch (abutting pieces).
    for (std::size_t i = 0; i < hs.size(); ++i) {
      for (std::size_t j = i + 1; j < hs.size(); ++j) {
        if (hs[i]->track == hs[j]->track &&
            hs[i]->col_lo <= hs[j]->col_hi &&
            hs[j]->col_lo <= hs[i]->col_hi) {
          dsu.unite(static_cast<int>(i), static_cast<int>(j));
        }
      }
    }
    // Vertical segments of one net in the same column that share a row.
    for (std::size_t i = 0; i < vs.size(); ++i) {
      for (std::size_t j = i + 1; j < vs.size(); ++j) {
        if (vs[i]->column == vs[j]->column &&
            vs[i]->row_lo <= vs[j]->row_hi &&
            vs[j]->row_lo <= vs[i]->row_hi) {
          dsu.unite(static_cast<int>(hs.size() + i),
                    static_cast<int>(hs.size() + j));
        }
      }
    }
    std::set<int> roots;
    for (std::size_t i = 0; i < hs.size() + vs.size(); ++i) {
      roots.insert(dsu.find(static_cast<int>(i)));
    }
    if (roots.size() > 1) {
      complain(util::format("net %d wiring splits into %zu pieces", net,
                            roots.size()));
    }
  }
  return problems;
}

}  // namespace ocr::channel

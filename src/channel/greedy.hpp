#pragma once
/// \file greedy.hpp
/// \brief Greedy channel router in the style of Rivest & Fiduccia (1982).
///
/// The greedy router scans columns left to right, maintaining for every
/// track the net currently occupying it. At each column it (a) brings
/// boundary pins onto tracks with vertical jogs, (b) collapses nets that
/// occupy several tracks, and (c) retires nets past their last pin. Unlike
/// the left-edge family it tolerates cyclic vertical constraints, which is
/// why the level-A flow uses it as the default detailed router.
///
/// This implementation fixes the track count per attempt and retries with
/// a wider channel when a column cannot be completed (the original instead
/// inserts tracks mid-run; the resulting track counts are comparable and
/// the bookkeeping is far simpler). Like the original it may extend the
/// channel a few columns past the last pin to finish collapsing split
/// nets; `ChannelRoute::num_columns_used` reports the extension.

#include "channel/route.hpp"

namespace ocr::channel {

struct GreedyOptions {
  /// Tracks for the first attempt = channel density + initial_slack.
  int initial_slack = 0;
  /// Attempts; each retry adds one track.
  int max_attempts = 64;
  /// Extra columns allowed past the channel end for final collapsing,
  /// as a multiple of the channel width (plus a small constant).
  int max_extension_columns = 64;
};

/// Routes \p problem with the greedy scheme. Returns success = false (with
/// a reason) only if every widening attempt failed.
ChannelRoute route_greedy(const ChannelProblem& problem,
                          const GreedyOptions& options = {});

}  // namespace ocr::channel

#include "channel/left_edge.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/assert.hpp"
#include "util/str.hpp"

namespace ocr::channel {
namespace {

/// A routable piece: a whole net, or a slice of one between consecutive
/// pin columns when doglegs are enabled.
struct Piece {
  int net = 0;
  int col_lo = 0;
  int col_hi = 0;
  int track = 0;  // assigned track, 0 = unassigned
};

/// Sorted unique pin columns of every net.
std::map<int, std::vector<int>> pin_columns_by_net(
    const ChannelProblem& problem) {
  std::map<int, std::vector<int>> columns;
  for (int c = 0; c < problem.num_columns(); ++c) {
    const int t = problem.top[static_cast<std::size_t>(c)];
    const int b = problem.bot[static_cast<std::size_t>(c)];
    if (t != 0) columns[t].push_back(c);
    if (b != 0) columns[b].push_back(c);
  }
  for (auto& [net, cols] : columns) {
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  }
  return columns;
}

}  // namespace

ChannelRoute route_left_edge(const ChannelProblem& problem,
                             const LeftEdgeOptions& options) {
  OCR_ASSERT(problem.well_formed(), "malformed channel problem");
  ChannelRoute route;
  const auto net_cols = pin_columns_by_net(problem);
  if (net_cols.empty()) {
    route.success = true;
    return route;
  }

  // ---- build pieces ---------------------------------------------------
  std::vector<Piece> pieces;
  // piece ids of a net touching a column (for constraint building/joins)
  std::map<int, std::vector<int>> pieces_of_net;
  std::vector<int> straight_through_nets;  // single-column nets, no track

  for (const auto& [net, cols] : net_cols) {
    if (cols.size() == 1) {
      // Single-column net: a straight vertical wire, no track demand.
      straight_through_nets.push_back(net);
      continue;
    }
    if (options.allow_doglegs) {
      for (std::size_t i = 0; i + 1 < cols.size(); ++i) {
        pieces_of_net[net].push_back(static_cast<int>(pieces.size()));
        pieces.push_back(Piece{net, cols[i], cols[i + 1], 0});
      }
    } else {
      pieces_of_net[net].push_back(static_cast<int>(pieces.size()));
      pieces.push_back(Piece{net, cols.front(), cols.back(), 0});
    }
  }

  // ---- vertical constraints between pieces ----------------------------
  // Edge u -> v: piece u must lie strictly above piece v.
  const int n_pieces = static_cast<int>(pieces.size());
  std::vector<std::set<int>> above(static_cast<std::size_t>(n_pieces));
  const auto pieces_touching = [&](int net, int column) {
    std::vector<int> out;
    const auto it = pieces_of_net.find(net);
    if (it == pieces_of_net.end()) return out;
    for (int p : it->second) {
      if (pieces[static_cast<std::size_t>(p)].col_lo <= column &&
          column <= pieces[static_cast<std::size_t>(p)].col_hi) {
        out.push_back(p);
      }
    }
    return out;
  };
  for (int c = 0; c < problem.num_columns(); ++c) {
    const int t = problem.top[static_cast<std::size_t>(c)];
    const int b = problem.bot[static_cast<std::size_t>(c)];
    if (t == 0 || b == 0 || t == b) continue;
    for (int pu : pieces_touching(t, c)) {
      for (int pv : pieces_touching(b, c)) {
        above[static_cast<std::size_t>(pu)].insert(pv);
      }
    }
  }

  // ---- track-by-track assignment --------------------------------------
  std::vector<int> unplaced_preds(static_cast<std::size_t>(n_pieces), 0);
  for (int u = 0; u < n_pieces; ++u) {
    for (int v : above[static_cast<std::size_t>(u)]) {
      ++unplaced_preds[static_cast<std::size_t>(v)];
    }
  }
  int placed = 0;
  int track = 0;
  while (placed < n_pieces) {
    ++track;
    // Ready pieces at the start of this track, in left-edge order.
    std::vector<int> ready;
    for (int p = 0; p < n_pieces; ++p) {
      if (pieces[static_cast<std::size_t>(p)].track == 0 &&
          unplaced_preds[static_cast<std::size_t>(p)] == 0) {
        ready.push_back(p);
      }
    }
    if (ready.empty()) {
      route.success = false;
      route.failure_reason = options.allow_doglegs
          ? "cyclic vertical constraints survive dogleg splitting"
          : "cyclic vertical constraints (doglegs disabled)";
      return route;
    }
    std::sort(ready.begin(), ready.end(), [&pieces](int a, int b) {
      const Piece& pa = pieces[static_cast<std::size_t>(a)];
      const Piece& pb = pieces[static_cast<std::size_t>(b)];
      if (pa.col_lo != pb.col_lo) return pa.col_lo < pb.col_lo;
      if (pa.col_hi != pb.col_hi) return pa.col_hi < pb.col_hi;
      return a < b;
    });
    int frontier = -1;      // rightmost column used on this track
    int frontier_net = 0;   // net owning the frontier column
    std::vector<int> placed_now;
    for (int p : ready) {
      Piece& piece = pieces[static_cast<std::size_t>(p)];
      // Strict gap between different nets (abutting pieces would collide at
      // the shared column's verticals); same-net pieces may abut and merge.
      const bool fits = piece.col_lo > frontier ||
                        (piece.col_lo == frontier &&
                         piece.net == frontier_net);
      if (!fits) continue;
      piece.track = track;
      frontier = piece.col_hi;
      frontier_net = piece.net;
      placed_now.push_back(p);
      ++placed;
    }
    for (int p : placed_now) {
      for (int v : above[static_cast<std::size_t>(p)]) {
        --unplaced_preds[static_cast<std::size_t>(v)];
      }
    }
  }
  route.num_tracks = track;
  const int bottom_row = route.num_tracks + 1;

  // ---- geometry --------------------------------------------------------
  for (const Piece& piece : pieces) {
    route.hsegs.push_back(
        HSeg{piece.net, piece.track, piece.col_lo, piece.col_hi});
  }
  // Dogleg joins: consecutive pieces of a net share a column; join their
  // tracks with a vertical there.
  for (const auto& [net, ids] : pieces_of_net) {
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
      const Piece& a = pieces[static_cast<std::size_t>(ids[i])];
      const Piece& b = pieces[static_cast<std::size_t>(ids[i + 1])];
      OCR_ASSERT(a.col_hi == b.col_lo,
                 "consecutive pieces must share their split column");
      if (a.track != b.track) {
        route.vsegs.push_back(VSeg{net, a.col_hi, std::min(a.track, b.track),
                                   std::max(a.track, b.track)});
      }
    }
  }
  // Pin drops: boundary to the nearest track of a piece touching the pin
  // column.
  for (int c = 0; c < problem.num_columns(); ++c) {
    const int t = problem.top[static_cast<std::size_t>(c)];
    const int b = problem.bot[static_cast<std::size_t>(c)];
    const auto is_straight = [&](int net) {
      return std::find(straight_through_nets.begin(),
                       straight_through_nets.end(),
                       net) != straight_through_nets.end();
    };
    if (t != 0 && !is_straight(t)) {
      int best = bottom_row;
      for (int p : pieces_touching(t, c)) {
        best = std::min(best, pieces[static_cast<std::size_t>(p)].track);
      }
      OCR_ASSERT(best != bottom_row, "top pin has no piece to land on");
      route.vsegs.push_back(VSeg{t, c, 0, best});
    }
    if (b != 0 && !is_straight(b)) {
      int best = 0;
      for (int p : pieces_touching(b, c)) {
        best = std::max(best, pieces[static_cast<std::size_t>(p)].track);
      }
      OCR_ASSERT(best != 0, "bottom pin has no piece to land on");
      route.vsegs.push_back(VSeg{b, c, best, bottom_row});
    }
  }
  // Straight-through nets: one vertical spanning the channel.
  for (int net : straight_through_nets) {
    const int c = net_cols.at(net).front();
    route.vsegs.push_back(VSeg{net, c, 0, bottom_row});
  }

  route.success = true;
  return route;
}

}  // namespace ocr::channel

#include "channel/problem.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ocr::channel {

int ChannelProblem::max_net() const {
  int m = 0;
  for (int n : top) m = std::max(m, n);
  for (int n : bot) m = std::max(m, n);
  return m;
}

bool ChannelProblem::well_formed() const {
  if (top.size() != bot.size()) return false;
  const auto non_negative = [](int n) { return n >= 0; };
  return std::all_of(top.begin(), top.end(), non_negative) &&
         std::all_of(bot.begin(), bot.end(), non_negative);
}

std::vector<NetSpan> net_spans(const ChannelProblem& problem) {
  OCR_ASSERT(problem.well_formed(), "malformed channel problem");
  std::vector<NetSpan> spans(static_cast<std::size_t>(problem.max_net()) + 1);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    spans[i].net = static_cast<int>(i);
  }
  const auto account = [&spans](int net, int column) {
    if (net == 0) return;
    NetSpan& s = spans[static_cast<std::size_t>(net)];
    if (s.pin_count == 0) {
      s.lo = s.hi = column;
    } else {
      s.lo = std::min(s.lo, column);
      s.hi = std::max(s.hi, column);
    }
    ++s.pin_count;
  };
  for (int c = 0; c < problem.num_columns(); ++c) {
    account(problem.top[static_cast<std::size_t>(c)], c);
    account(problem.bot[static_cast<std::size_t>(c)], c);
  }
  return spans;
}

std::vector<int> column_density(const ChannelProblem& problem) {
  const auto spans = net_spans(problem);
  std::vector<int> density(static_cast<std::size_t>(problem.num_columns()),
                           0);
  for (const NetSpan& s : spans) {
    if (!s.present()) continue;
    for (int c = s.lo; c <= s.hi; ++c) {
      ++density[static_cast<std::size_t>(c)];
    }
  }
  return density;
}

int channel_density(const ChannelProblem& problem) {
  const auto density = column_density(problem);
  return density.empty() ? 0 : *std::max_element(density.begin(),
                                                 density.end());
}

bool Vcg::has_cycle() const {
  return topological_order().empty() && adjacency.size() > 1;
}

std::vector<int> Vcg::topological_order() const {
  const int n = static_cast<int>(adjacency.size());
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (int u = 1; u < n; ++u) {
    for (int v : adjacency[static_cast<std::size_t>(u)]) {
      ++indegree[static_cast<std::size_t>(v)];
    }
  }
  std::vector<int> ready;
  for (int u = 1; u < n; ++u) {
    if (indegree[static_cast<std::size_t>(u)] == 0) ready.push_back(u);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  // Pop smallest-numbered ready net first for determinism.
  while (!ready.empty()) {
    const auto it = std::min_element(ready.begin(), ready.end());
    const int u = *it;
    ready.erase(it);
    order.push_back(u);
    for (int v : adjacency[static_cast<std::size_t>(u)]) {
      if (--indegree[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
  }
  if (static_cast<int>(order.size()) != n - 1) return {};  // cyclic
  return order;
}

Vcg build_vcg(const ChannelProblem& problem) {
  Vcg vcg;
  vcg.adjacency.resize(static_cast<std::size_t>(problem.max_net()) + 1);
  for (int c = 0; c < problem.num_columns(); ++c) {
    const int t = problem.top[static_cast<std::size_t>(c)];
    const int b = problem.bot[static_cast<std::size_t>(c)];
    if (t == 0 || b == 0 || t == b) continue;
    auto& below = vcg.adjacency[static_cast<std::size_t>(t)];
    if (std::find(below.begin(), below.end(), b) == below.end()) {
      below.push_back(b);
    }
  }
  return vcg;
}

std::vector<Zone> zone_representation(const ChannelProblem& problem) {
  const auto spans = net_spans(problem);
  const int columns = problem.num_columns();
  std::vector<Zone> zones;
  std::vector<int> previous;
  for (int c = 0; c < columns; ++c) {
    std::vector<int> crossing;
    for (const NetSpan& s : spans) {
      if (s.present() && s.lo <= c && c <= s.hi) crossing.push_back(s.net);
    }
    if (crossing.empty()) continue;
    // A column starts a new zone unless its crossing set is a subset of the
    // previous zone's set (then the previous zone already covers it).
    const bool subset_of_previous = std::includes(
        previous.begin(), previous.end(), crossing.begin(), crossing.end());
    if (!subset_of_previous) {
      zones.push_back(Zone{c, crossing});
      previous = crossing;
    }
  }
  return zones;
}

}  // namespace ocr::channel

#pragma once
/// \file route.hpp
/// \brief Channel-routing solutions and their quality metrics.
///
/// The routed channel uses the reserved-layer HV model of two-layer
/// channel routing: horizontal segments on one layer (tracks), vertical
/// segments on the other (columns), a via wherever a vertical segment
/// meets a horizontal one. Tracks are numbered 1..num_tracks from the top;
/// row 0 is the top boundary and row num_tracks + 1 the bottom boundary,
/// so boundary pins are expressible as vertical-segment endpoints.

#include <string>
#include <vector>

#include "channel/problem.hpp"

namespace ocr::channel {

/// Horizontal wire piece of \p net on \p track spanning [col_lo, col_hi].
struct HSeg {
  int net = 0;
  int track = 0;
  int col_lo = 0;
  int col_hi = 0;
};

/// Vertical wire piece of \p net in \p column spanning rows
/// [row_lo, row_hi] (row 0 = top boundary, num_tracks + 1 = bottom).
struct VSeg {
  int net = 0;
  int column = 0;
  int row_lo = 0;
  int row_hi = 0;
};

/// A complete routed channel.
struct ChannelRoute {
  bool success = false;
  std::string failure_reason;
  int num_tracks = 0;
  /// Columns actually used. Greedy routers may extend the channel past the
  /// last pin column to finish collapsing split nets; 0 means "problem
  /// width".
  int num_columns_used = 0;
  std::vector<HSeg> hsegs;
  std::vector<VSeg> vsegs;

  /// Total wire length in grid units (columns/tracks count as unit cells).
  long long wire_length() const;

  /// Number of vias: junctions where a vertical segment meets a horizontal
  /// segment of the same net (boundary pin landings are not vias — pin
  /// stacks absorb them per the paper's terminal design argument, §2).
  int via_count() const;
};

/// Checks a route against its problem:
///  * every pin is reached by a vertical segment in its column,
///  * horizontal segments of different nets never overlap on a track,
///  * vertical segments of different nets never overlap in a column,
///  * every net's segments form one connected piece.
/// Returns human-readable violations (empty = valid).
std::vector<std::string> validate_route(const ChannelProblem& problem,
                                        const ChannelRoute& route);

}  // namespace ocr::channel

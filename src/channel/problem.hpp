#pragma once
/// \file problem.hpp
/// \brief The classic channel-routing problem and its static analyses.
///
/// A channel is a horizontal routing region with pins on its top and
/// bottom boundaries at integer columns. Net numbers are positive; 0 marks
/// an empty pin position. The analyses here — net spans, local density,
/// the zone representation and the vertical constraint graph (VCG) — are
/// the standard machinery of Yoshimura–Kuh-style channel routers.

#include <vector>

#include "geom/point.hpp"

namespace ocr::channel {

/// Channel routing instance. top[c] / bot[c] give the net at column c on
/// the top / bottom boundary (0 = no pin).
struct ChannelProblem {
  std::vector<int> top;
  std::vector<int> bot;

  int num_columns() const { return static_cast<int>(top.size()); }

  /// Highest net number present (nets are 1-based; 0 = none present).
  int max_net() const;

  /// True if sizes agree and no negative net numbers appear.
  bool well_formed() const;
};

/// Horizontal span [lo, hi] of a net: the column range its pins cover.
struct NetSpan {
  int net = 0;
  int lo = 0;
  int hi = 0;
  int pin_count = 0;
  bool present() const { return pin_count > 0; }
};

/// Spans for nets 1..max_net (index 0 unused).
std::vector<NetSpan> net_spans(const ChannelProblem& problem);

/// Local density per column: number of nets whose span crosses the column
/// boundary (the classic lower bound on track count).
std::vector<int> column_density(const ChannelProblem& problem);

/// max over columns of column_density.
int channel_density(const ChannelProblem& problem);

/// Vertical constraint graph: edge u -> v means net u's segment must lie
/// on a track strictly above net v's (u has the top pin and v the bottom
/// pin of some column).
struct Vcg {
  /// adjacency[u] = nets that must be below u. Index 0 unused.
  std::vector<std::vector<int>> adjacency;

  /// True if the graph has a directed cycle (then a dogleg-free router
  /// cannot complete the channel).
  bool has_cycle() const;

  /// Topological order of the nets (ancestors first). Empty if cyclic.
  std::vector<int> topological_order() const;
};

Vcg build_vcg(const ChannelProblem& problem);

/// Zone representation (Yoshimura–Kuh): maximal sets of mutually
/// overlapping net spans, reported as one representative column per zone.
struct Zone {
  int column = 0;           ///< representative column
  std::vector<int> nets;    ///< nets crossing this zone, ascending
};

std::vector<Zone> zone_representation(const ChannelProblem& problem);

}  // namespace ocr::channel

#include "channel/greedy.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/profile.hpp"
#include "util/str.hpp"

namespace ocr::channel {
namespace {

/// One routing attempt with a fixed number of tracks.
class GreedyAttempt {
 public:
  GreedyAttempt(const ChannelProblem& problem, int num_tracks,
                int max_extension)
      : problem_(problem),
        tracks_(num_tracks),
        max_extension_(max_extension),
        track_net_(static_cast<std::size_t>(num_tracks) + 1, 0),
        track_start_(static_cast<std::size_t>(num_tracks) + 1, 0),
        track_last_release_(static_cast<std::size_t>(num_tracks) + 1, -1) {
    // Pin columns per net, ascending, for look-ahead.
    for (int c = 0; c < problem.num_columns(); ++c) {
      const int t = problem.top[static_cast<std::size_t>(c)];
      const int b = problem.bot[static_cast<std::size_t>(c)];
      if (t != 0) pin_cols_[t].push_back(c);
      if (b != 0) pin_cols_[b].push_back(c);
    }
    for (auto& [net, cols] : pin_cols_) {
      std::sort(cols.begin(), cols.end());
      cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    }
  }

  std::optional<ChannelRoute> run() {
    for (int c = 0; c < problem_.num_columns(); ++c) {
      begin_column(c);
      if (!bring_in_pins(c)) return std::nullopt;
      collapse_and_retire(c);
    }
    // Extension: collapse leftovers past the last pin column.
    int c = problem_.num_columns();
    const int limit = problem_.num_columns() + max_extension_;
    while (has_split_or_live_nets() && c < limit) {
      begin_column(c);
      collapse_and_retire(c);
      ++c;
    }
    if (has_split_or_live_nets()) return std::nullopt;

    route_.success = true;
    route_.num_tracks = tracks_;
    route_.num_columns_used = std::max(c, problem_.num_columns());
    return route_;
  }

 private:
  // ---- column-local vertical bookkeeping -----------------------------
  void begin_column(int c) {
    column_ = c;
    column_verts_.clear();
  }

  bool vertical_fits(int net, int row_lo, int row_hi) const {
    for (const VSeg& v : column_verts_) {
      if (v.net != net && v.row_lo <= row_hi && row_lo <= v.row_hi) {
        return false;
      }
    }
    return true;
  }

  void add_vertical(int net, int row_lo, int row_hi) {
    const VSeg v{net, column_, row_lo, row_hi};
    column_verts_.push_back(v);
    route_.vsegs.push_back(v);
  }

  // ---- track bookkeeping ----------------------------------------------
  void acquire(int net, int t) {
    OCR_ASSERT(track_net_[static_cast<std::size_t>(t)] == 0,
               "acquiring an occupied track");
    track_net_[static_cast<std::size_t>(t)] = net;
    track_start_[static_cast<std::size_t>(t)] = column_;
    resident_[net].insert(t);
  }

  void release(int net, int t) {
    OCR_ASSERT(track_net_[static_cast<std::size_t>(t)] == net,
               "releasing a track the net does not own");
    route_.hsegs.push_back(
        HSeg{net, t, track_start_[static_cast<std::size_t>(t)], column_});
    track_net_[static_cast<std::size_t>(t)] = 0;
    track_last_release_[static_cast<std::size_t>(t)] = column_;
    resident_[net].erase(t);
    if (resident_[net].empty()) resident_.erase(net);
  }

  bool track_free(int t) const {
    return track_net_[static_cast<std::size_t>(t)] == 0 &&
           track_last_release_[static_cast<std::size_t>(t)] < column_;
  }

  // Next pin column of \p net strictly after \p c, or -1.
  int next_pin_column(int net, int c) const {
    const auto it = pin_cols_.find(net);
    if (it == pin_cols_.end()) return -1;
    const auto jt = std::upper_bound(it->second.begin(), it->second.end(), c);
    return jt == it->second.end() ? -1 : *jt;
  }

  // Preferred row a net's surviving track should sit near, based on the
  // boundary of its next pin.
  int target_row(int net, int c) const {
    const int nc = next_pin_column(net, c);
    if (nc < 0) return (tracks_ + 1) / 2;
    const bool on_top = problem_.top[static_cast<std::size_t>(nc)] == net;
    const bool on_bot = problem_.bot[static_cast<std::size_t>(nc)] == net;
    if (on_top && !on_bot) return 0;
    if (on_bot && !on_top) return tracks_ + 1;
    return (tracks_ + 1) / 2;
  }

  // ---- pin handling ----------------------------------------------------
  bool bring_in_pins(int c) {
    const int tp = problem_.top[static_cast<std::size_t>(c)];
    const int bp = problem_.bot[static_cast<std::size_t>(c)];
    if (tp != 0 && tp == bp) return bring_in_through(tp, c);
    if (tp != 0 && !bring_in(tp, /*from_top=*/true)) return false;
    if (bp != 0 && !bring_in(bp, /*from_top=*/false)) return false;
    return true;
  }

  /// Top and bottom pin of the same net: one straight vertical, plus a
  /// track claim if the net continues.
  bool bring_in_through(int net, int c) {
    if (!vertical_fits(net, 0, tracks_ + 1)) return false;
    add_vertical(net, 0, tracks_ + 1);
    const bool continues = next_pin_column(net, c) >= 0;
    if (continues && resident_.find(net) == resident_.end()) {
      const int target = target_row(net, c);
      int best = -1;
      for (int t = 1; t <= tracks_; ++t) {
        if (!track_free(t)) continue;
        if (best < 0 || std::abs(t - target) < std::abs(best - target)) {
          best = t;
        }
      }
      if (best < 0) return false;
      acquire(net, best);
    }
    return true;
  }

  /// Classic greedy rule: scan tracks starting at the pin's boundary and
  /// land on the first track that is free or already owned by the net.
  /// Landing on the nearest such track keeps the jog short and leaves the
  /// rest of the column for the opposite pin; split nets created here are
  /// collapsed in later columns.
  bool bring_in(int net, bool from_top) {
    const int step = from_top ? 1 : -1;
    for (int t = from_top ? 1 : tracks_; t >= 1 && t <= tracks_; t += step) {
      const int owner = track_net_[static_cast<std::size_t>(t)];
      const bool landable = owner == net || track_free(t);
      if (!landable) continue;
      const int row_lo = from_top ? 0 : t;
      const int row_hi = from_top ? t : tracks_ + 1;
      if (!vertical_fits(net, row_lo, row_hi)) {
        // A farther landing needs a superset of this jog; give up early.
        return false;
      }
      if (owner != net) acquire(net, t);
      add_vertical(net, row_lo, row_hi);
      return true;
    }
    return false;
  }

  // ---- collapsing and retiring ----------------------------------------
  void collapse_and_retire(int c) {
    // Deterministic net order.
    std::vector<int> nets;
    nets.reserve(resident_.size());
    for (const auto& [net, tracks] : resident_) nets.push_back(net);

    for (int net : nets) {
      auto it = resident_.find(net);
      if (it == resident_.end()) continue;
      // Try to join consecutive resident tracks at this column.
      bool changed = true;
      while (changed && it->second.size() > 1) {
        changed = false;
        std::vector<int> owned(it->second.begin(), it->second.end());
        for (std::size_t i = 0; i + 1 < owned.size(); ++i) {
          const int lo = owned[i];
          const int hi = owned[i + 1];
          if (!vertical_fits(net, lo, hi)) continue;
          add_vertical(net, lo, hi);
          // Release the track farther from where the net goes next.
          const int target = target_row(net, c);
          const int drop =
              std::abs(lo - target) > std::abs(hi - target) ? lo : hi;
          release(net, drop);
          changed = true;
          break;
        }
      }
      it = resident_.find(net);
      if (it == resident_.end()) continue;
      // Retire nets whose pins are exhausted once they sit on one track.
      if (next_pin_column(net, c) < 0 && it->second.size() == 1) {
        release(net, *it->second.begin());
      }
    }
  }

  bool has_split_or_live_nets() const { return !resident_.empty(); }

  const ChannelProblem& problem_;
  const int tracks_;
  const int max_extension_;
  int column_ = 0;
  std::vector<int> track_net_;
  std::vector<int> track_start_;
  std::vector<int> track_last_release_;
  std::map<int, std::set<int>> resident_;
  std::map<int, std::vector<int>> pin_cols_;
  std::vector<VSeg> column_verts_;
  ChannelRoute route_;
};

}  // namespace

ChannelRoute route_greedy(const ChannelProblem& problem,
                          const GreedyOptions& options) {
  OCR_SPAN("channel.greedy");
  OCR_ASSERT(problem.well_formed(), "malformed channel problem");
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  ChannelRoute failed;
  if (problem.num_columns() == 0 || problem.max_net() == 0) {
    failed.success = true;  // empty channel: zero tracks
    return failed;
  }
  const int density = channel_density(problem);
  const int base = std::max(1, density + options.initial_slack);
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    const int tracks = base + attempt;
    GreedyAttempt runner(problem, tracks,
                         options.max_extension_columns);
    if (auto route = runner.run()) {
      OCR_DEBUG() << "greedy channel routed with " << tracks << " tracks ("
                  << density << " density, attempt " << attempt << ")";
      metrics.counter("channel.routed").add();
      metrics.counter("channel.attempts").add(attempt + 1);
      metrics
          .histogram("channel.tracks",
                     {0, 2, 4, 8, 12, 16, 24, 32, 48, 64})
          .observe(route->num_tracks);
      return *route;
    }
  }
  metrics.counter("channel.failed").add();
  failed.success = false;
  failed.failure_reason = util::format(
      "greedy router failed up to %d tracks (density %d)",
      base + options.max_attempts - 1, density);
  return failed;
}

}  // namespace ocr::channel

#include "channel/yoshimura_kuh.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace ocr::channel {
namespace {

/// Merged-group state: members share one track; the group's span is the
/// union of member spans (pairwise disjoint by construction).
struct Group {
  std::vector<int> nets;
  int hi = 0;  ///< rightmost column of any member span
  bool alive = true;
};

/// Group-level constraint graph with reachability and longest-path
/// queries. Small (≤ #nets nodes); recomputed queries are cheap.
class GroupGraph {
 public:
  explicit GroupGraph(int n) : above_(static_cast<std::size_t>(n)) {}

  void add_edge(int u, int v) {
    if (u != v) above_[static_cast<std::size_t>(u)].insert(v);
  }

  bool reachable(int from, int to) const {
    if (from == to) return true;
    std::vector<int> stack{from};
    std::set<int> seen{from};
    while (!stack.empty()) {
      const int g = stack.back();
      stack.pop_back();
      for (int next : above_[static_cast<std::size_t>(g)]) {
        if (next == to) return true;
        if (seen.insert(next).second) stack.push_back(next);
      }
    }
    return false;
  }

  /// Longest path (in edges) into \p g from any source, and out of \p g to
  /// any sink, over the subgraph of \p alive groups. -1 signals a cycle.
  struct Depths {
    std::vector<int> in;
    std::vector<int> out;
    bool cyclic = false;
  };
  Depths depths(const std::vector<Group>& groups) const {
    const int n = static_cast<int>(above_.size());
    Depths d;
    d.in.assign(static_cast<std::size_t>(n), 0);
    d.out.assign(static_cast<std::size_t>(n), 0);
    // Kahn order over alive nodes.
    std::vector<int> indegree(static_cast<std::size_t>(n), 0);
    int alive_count = 0;
    for (int u = 0; u < n; ++u) {
      if (!groups[static_cast<std::size_t>(u)].alive) continue;
      ++alive_count;
      for (int v : above_[static_cast<std::size_t>(u)]) {
        if (groups[static_cast<std::size_t>(v)].alive) {
          ++indegree[static_cast<std::size_t>(v)];
        }
      }
    }
    std::vector<int> ready;
    for (int u = 0; u < n; ++u) {
      if (groups[static_cast<std::size_t>(u)].alive &&
          indegree[static_cast<std::size_t>(u)] == 0) {
        ready.push_back(u);
      }
    }
    std::vector<int> order;
    while (!ready.empty()) {
      const int u = ready.back();
      ready.pop_back();
      order.push_back(u);
      for (int v : above_[static_cast<std::size_t>(u)]) {
        if (!groups[static_cast<std::size_t>(v)].alive) continue;
        d.in[static_cast<std::size_t>(v)] = std::max(
            d.in[static_cast<std::size_t>(v)],
            d.in[static_cast<std::size_t>(u)] + 1);
        if (--indegree[static_cast<std::size_t>(v)] == 0) {
          ready.push_back(v);
        }
      }
    }
    if (static_cast<int>(order.size()) != alive_count) {
      d.cyclic = true;
      return d;
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      for (int v : above_[static_cast<std::size_t>(*it)]) {
        if (!groups[static_cast<std::size_t>(v)].alive) continue;
        d.out[static_cast<std::size_t>(*it)] =
            std::max(d.out[static_cast<std::size_t>(*it)],
                     d.out[static_cast<std::size_t>(v)] + 1);
      }
    }
    return d;
  }

  /// Merges \p src into \p dst (union of edges); callers mark src dead.
  void merge_into(int dst, int src) {
    for (int v : above_[static_cast<std::size_t>(src)]) add_edge(dst, v);
    above_[static_cast<std::size_t>(src)].clear();
    for (auto& edges : above_) {
      if (edges.erase(src) > 0) edges.insert(dst);
    }
    above_[static_cast<std::size_t>(dst)].erase(dst);
  }

  /// Topological order of alive groups (ancestors first); empty if cyclic.
  std::vector<int> topological(const std::vector<Group>& groups) const {
    const Depths d = depths(groups);
    if (d.cyclic) return {};
    std::vector<int> order;
    for (int g = 0; g < static_cast<int>(above_.size()); ++g) {
      if (groups[static_cast<std::size_t>(g)].alive) order.push_back(g);
    }
    std::stable_sort(order.begin(), order.end(), [&d](int a, int b) {
      return d.in[static_cast<std::size_t>(a)] <
             d.in[static_cast<std::size_t>(b)];
    });
    return order;
  }

 private:
  std::vector<std::set<int>> above_;
};

}  // namespace

ChannelRoute route_yoshimura_kuh(const ChannelProblem& problem) {
  OCR_ASSERT(problem.well_formed(), "malformed channel problem");
  ChannelRoute route;
  const auto spans = net_spans(problem);
  const Vcg vcg = build_vcg(problem);
  if (vcg.has_cycle()) {
    route.failure_reason = "cyclic vertical constraints (net merging is "
                           "dogleg-free)";
    return route;
  }

  // Group 0..max_net-1 keyed by net-1; single-column straight-through nets
  // (one pin column with pins on both boundaries and nothing else) still
  // get a group if they span a single column with 2+ pins: they route as
  // pure verticals without a track only when top==bot at that column.
  const int max_net = problem.max_net();
  std::vector<Group> groups(static_cast<std::size_t>(max_net));
  std::vector<int> group_of(static_cast<std::size_t>(max_net) + 1, -1);
  std::vector<int> straight_through;
  GroupGraph graph(max_net);

  std::vector<int> order;  // nets by ascending left edge
  for (const NetSpan& s : spans) {
    if (!s.present()) continue;
    const bool single_column = s.lo == s.hi;
    if (single_column) {
      // Needs no track iff it is a straight top-to-bottom connection.
      const int c = s.lo;
      if (problem.top[static_cast<std::size_t>(c)] == s.net &&
          problem.bot[static_cast<std::size_t>(c)] == s.net) {
        straight_through.push_back(s.net);
        continue;
      }
    }
    order.push_back(s.net);
  }
  std::sort(order.begin(), order.end(), [&spans](int a, int b) {
    const auto& sa = spans[static_cast<std::size_t>(a)];
    const auto& sb = spans[static_cast<std::size_t>(b)];
    if (sa.lo != sb.lo) return sa.lo < sb.lo;
    return a < b;
  });

  // Seed groups (one per routed net) and inherit VCG edges.
  for (int net : order) {
    const int g = net - 1;
    groups[static_cast<std::size_t>(g)].nets = {net};
    groups[static_cast<std::size_t>(g)].hi =
        spans[static_cast<std::size_t>(net)].hi;
    group_of[static_cast<std::size_t>(net)] = g;
  }
  for (int g = 0; g < max_net; ++g) {
    groups[static_cast<std::size_t>(g)].alive =
        !groups[static_cast<std::size_t>(g)].nets.empty();
  }
  for (int u = 1; u <= max_net; ++u) {
    for (int v : vcg.adjacency[static_cast<std::size_t>(u)]) {
      if (group_of[static_cast<std::size_t>(u)] >= 0 &&
          group_of[static_cast<std::size_t>(v)] >= 0) {
        graph.add_edge(group_of[static_cast<std::size_t>(u)],
                       group_of[static_cast<std::size_t>(v)]);
      }
    }
  }

  // Net merging, left to right: each incoming net tries to join the ended
  // group that minimizes the merged node's longest-path weight.
  for (int net : order) {
    const int g_net = group_of[static_cast<std::size_t>(net)];
    const int lo = spans[static_cast<std::size_t>(net)].lo;
    const auto depth = graph.depths(groups);
    OCR_ASSERT(!depth.cyclic, "merge created a cycle");
    int best = -1;
    int best_score = 0;
    for (int g = 0; g < max_net; ++g) {
      const Group& candidate = groups[static_cast<std::size_t>(g)];
      if (!candidate.alive || g == g_net) continue;
      if (candidate.hi >= lo) continue;  // horizontal overlap
      if (graph.reachable(g, g_net) || graph.reachable(g_net, g)) {
        continue;  // vertical ordering forbids sharing a track
      }
      const int score =
          std::max(depth.in[static_cast<std::size_t>(g)],
                   depth.in[static_cast<std::size_t>(g_net)]) +
          std::max(depth.out[static_cast<std::size_t>(g)],
                   depth.out[static_cast<std::size_t>(g_net)]);
      if (best < 0 || score < best_score) {
        best = g;
        best_score = score;
      }
    }
    if (best >= 0) {
      Group& dst = groups[static_cast<std::size_t>(best)];
      Group& src = groups[static_cast<std::size_t>(g_net)];
      dst.nets.insert(dst.nets.end(), src.nets.begin(), src.nets.end());
      dst.hi = std::max(dst.hi, src.hi);
      src.alive = false;
      src.nets.clear();
      graph.merge_into(best, g_net);
      group_of[static_cast<std::size_t>(net)] = best;
    }
  }

  // One track per surviving group, in topological order (top-most group
  // first so every VCG edge points downward).
  const auto topo = graph.topological(groups);
  std::vector<int> track_of_net(static_cast<std::size_t>(max_net) + 1, 0);
  int track = 0;
  for (int g : topo) {
    ++track;
    for (int net : groups[static_cast<std::size_t>(g)].nets) {
      track_of_net[static_cast<std::size_t>(net)] = track;
    }
  }
  route.num_tracks = track;
  const int bottom_row = route.num_tracks + 1;

  // Geometry: one hseg per net, pin drops, straight-throughs.
  for (int net : order) {
    const NetSpan& s = spans[static_cast<std::size_t>(net)];
    route.hsegs.push_back(HSeg{net, track_of_net[static_cast<std::size_t>(
                                        net)],
                               s.lo, s.hi});
  }
  for (int c = 0; c < problem.num_columns(); ++c) {
    const int t = problem.top[static_cast<std::size_t>(c)];
    const int b = problem.bot[static_cast<std::size_t>(c)];
    if (t != 0 && track_of_net[static_cast<std::size_t>(t)] > 0) {
      route.vsegs.push_back(
          VSeg{t, c, 0, track_of_net[static_cast<std::size_t>(t)]});
    }
    if (b != 0 && track_of_net[static_cast<std::size_t>(b)] > 0) {
      route.vsegs.push_back(VSeg{
          b, c, track_of_net[static_cast<std::size_t>(b)], bottom_row});
    }
  }
  for (int net : straight_through) {
    route.vsegs.push_back(
        VSeg{net, spans[static_cast<std::size_t>(net)].lo, 0, bottom_row});
  }

  route.success = true;
  return route;
}

}  // namespace ocr::channel

#pragma once
/// \file yoshimura_kuh.hpp
/// \brief Net-merging channel router after Yoshimura & Kuh (1982).
///
/// The algorithm the paper cites ([2]) as the basis of efficient channel
/// routing: nets whose horizontal spans do not overlap are *merged* onto a
/// shared track when the vertical constraint graph permits, choosing
/// merges that minimize the growth of the VCG's longest path (the lower
/// bound on track count). One track per merged group, ordered by a
/// topological order of the merged VCG. Dogleg-free: fails on cyclic
/// vertical constraints, like the original.

#include "channel/route.hpp"

namespace ocr::channel {

/// Routes \p problem with the net-merging scheme. success = false on
/// cyclic vertical constraints.
ChannelRoute route_yoshimura_kuh(const ChannelProblem& problem);

}  // namespace ocr::channel

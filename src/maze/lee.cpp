#include "maze/lee.hpp"

#include <deque>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace ocr::maze {
namespace {

using geom::Coord;
using geom::Interval;
using geom::Orientation;
using geom::Point;
using tig::TrackRef;

struct CellIndex {
  int i = 0;  // horizontal track
  int j = 0;  // vertical track
};

}  // namespace

LeeResult lee_connect(const tig::TrackGrid& grid, const geom::Point& a,
                      const geom::Point& b) {
  LeeResult result;
  const int nh = grid.num_h();
  const int nv = grid.num_v();
  const int ia = grid.nearest_h(a.y);
  const int ja = grid.nearest_v(a.x);
  const int ib = grid.nearest_h(b.y);
  const int jb = grid.nearest_v(b.x);
  OCR_ASSERT(grid.h_y(ia) == a.y && grid.v_x(ja) == a.x,
             "lee_connect: endpoint a is not a grid crossing");
  OCR_ASSERT(grid.h_y(ib) == b.y && grid.v_x(jb) == b.x,
             "lee_connect: endpoint b is not a grid crossing");

  if (a == b) {
    result.found = true;
    return result;
  }

  const auto cell = [nv](int i, int j) {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(nv) +
           static_cast<std::size_t>(j);
  };
  constexpr int kUnset = std::numeric_limits<int>::max();
  std::vector<int> dist(static_cast<std::size_t>(nh) *
                            static_cast<std::size_t>(nv),
                        kUnset);

  // Step legality: the track extent between adjacent crossings must be
  // free (the crossing coordinates are included, so blocked crossings
  // block every move through them).
  const auto can_step_h = [&grid](int i, int j_from, int j_to) {
    const Coord x1 = grid.v_x(std::min(j_from, j_to));
    const Coord x2 = grid.v_x(std::max(j_from, j_to));
    return grid.h_is_free(i, Interval(x1, x2));
  };
  const auto can_step_v = [&grid](int j, int i_from, int i_to) {
    const Coord y1 = grid.h_y(std::min(i_from, i_to));
    const Coord y2 = grid.h_y(std::max(i_from, i_to));
    return grid.v_is_free(j, Interval(y1, y2));
  };

  std::deque<CellIndex> wave;
  dist[cell(ia, ja)] = 0;
  wave.push_back(CellIndex{ia, ja});
  bool reached = false;
  while (!wave.empty() && !reached) {
    const CellIndex c = wave.front();
    wave.pop_front();
    ++result.cells_expanded;
    const int d = dist[cell(c.i, c.j)];
    const auto visit = [&](int i, int j) {
      if (dist[cell(i, j)] != kUnset) return;
      dist[cell(i, j)] = d + 1;
      if (i == ib && j == jb) {
        reached = true;
        return;
      }
      wave.push_back(CellIndex{i, j});
    };
    if (c.j + 1 < nv && can_step_h(c.i, c.j, c.j + 1)) visit(c.i, c.j + 1);
    if (c.j - 1 >= 0 && can_step_h(c.i, c.j, c.j - 1)) visit(c.i, c.j - 1);
    if (c.i + 1 < nh && can_step_v(c.j, c.i, c.i + 1)) visit(c.i + 1, c.j);
    if (c.i - 1 >= 0 && can_step_v(c.j, c.i, c.i - 1)) visit(c.i - 1, c.j);
  }
  if (dist[cell(ib, jb)] == kUnset) return result;  // unreachable

  // Retrace from b to a, preferring to continue straight so the final
  // path has few corners among shortest paths.
  std::vector<CellIndex> cells{CellIndex{ib, jb}};
  // Direction we are moving in during the *retrace* (b toward a).
  int di = 0;
  int dj = 0;
  CellIndex cur{ib, jb};
  while (!(cur.i == ia && cur.j == ja)) {
    const int d = dist[cell(cur.i, cur.j)];
    struct Step {
      int di, dj;
      bool legal;
    };
    const Step steps[4] = {
        {0, 1, cur.j + 1 < nv && can_step_h(cur.i, cur.j, cur.j + 1)},
        {0, -1, cur.j - 1 >= 0 && can_step_h(cur.i, cur.j, cur.j - 1)},
        {1, 0, cur.i + 1 < nh && can_step_v(cur.j, cur.i, cur.i + 1)},
        {-1, 0, cur.i - 1 >= 0 && can_step_v(cur.j, cur.i, cur.i - 1)},
    };
    int best = -1;
    for (int s = 0; s < 4; ++s) {
      if (!steps[s].legal) continue;
      const int ni = cur.i + steps[s].di;
      const int nj = cur.j + steps[s].dj;
      if (dist[cell(ni, nj)] != d - 1) continue;
      if (best < 0) best = s;
      if (steps[s].di == di && steps[s].dj == dj) {
        best = s;  // straight continuation wins
        break;
      }
    }
    OCR_ASSERT(best >= 0, "retrace lost the wavefront");
    di = steps[best].di;
    dj = steps[best].dj;
    cur = CellIndex{cur.i + di, cur.j + dj};
    cells.push_back(cur);
  }

  // cells runs b -> a; reverse and compress into legs.
  std::vector<CellIndex> fwd(cells.rbegin(), cells.rend());
  levelb::Path path;
  path.points.push_back(a);
  for (std::size_t k = 1; k < fwd.size(); ++k) {
    const Point p{grid.v_x(fwd[k].j), grid.h_y(fwd[k].i)};
    const bool horizontal_move = fwd[k].i == fwd[k - 1].i;
    const TrackRef track =
        horizontal_move
            ? TrackRef{Orientation::kHorizontal, fwd[k].i}
            : TrackRef{Orientation::kVertical, fwd[k].j};
    path.points.push_back(p);
    path.tracks.push_back(track);
  }
  path.canonicalize();
  result.found = true;
  result.path = std::move(path);
  return result;
}

}  // namespace ocr::maze

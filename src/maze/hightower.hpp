#pragma once
/// \file hightower.hpp
/// \brief Line-search (Hightower-style) router on the level-B track grid.
///
/// The second classic baseline family next to Lee's maze router: instead
/// of a cell-by-cell wavefront, probe *lines* are extended from both
/// terminals and escape perpendicular probes are spawned at a small number
/// of candidate crossings; the connection completes when a source probe
/// intersects a target probe. Far fewer vertices than Lee, but — unlike
/// the paper's MBFS — neither corner-minimal nor complete: line search can
/// miss feasible paths. The ablation bench quantifies both effects.

#include "levelb/path.hpp"
#include "tig/track_grid.hpp"

namespace ocr::maze {

struct HightowerResult {
  bool found = false;
  levelb::Path path;
  long long probes_expanded = 0;  ///< line segments examined
};

struct HightowerOptions {
  /// Escape probes spawned per line (the classic algorithm spawns one per
  /// blocking obstacle; we spawn at up to this many candidate crossings).
  int branch = 3;
  /// Give up after this many expanded probes per side.
  int max_probes = 4000;
};

/// Connects grid crossings \p a and \p b. May fail on routable instances
/// (incomplete search); never returns an invalid path.
HightowerResult hightower_connect(const tig::TrackGrid& grid,
                                  const geom::Point& a, const geom::Point& b,
                                  const HightowerOptions& options = {});

}  // namespace ocr::maze

#pragma once
/// \file lee.hpp
/// \brief Lee-style maze router on the level-B track grid.
///
/// The comparison baseline of §3: a classic wave-propagation router over
/// the grid's crossing lattice. It expands crossing-by-crossing (4
/// neighbours), minimizing the number of grid steps, whereas the paper's
/// MBFS expands track-by-track, minimizing corners and touching far fewer
/// vertices. Both run on the same TrackGrid so the ablation bench can
/// compare work, wire length and corner counts directly.

#include "levelb/cost.hpp"
#include "levelb/path.hpp"
#include "tig/track_grid.hpp"

namespace ocr::maze {

struct LeeResult {
  bool found = false;
  levelb::Path path;        ///< canonical polyline riding grid tracks
  long long cells_expanded = 0;  ///< wavefront work (compare with MBFS)
};

/// Connects grid crossings \p a and \p b with a shortest (fewest grid
/// steps; ties broken toward fewer corners) rectilinear path avoiding
/// blocked extents. Whole-grid search — Lee has no windowing.
LeeResult lee_connect(const tig::TrackGrid& grid, const geom::Point& a,
                      const geom::Point& b);

}  // namespace ocr::maze

#include "maze/hightower.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <tuple>

#include "util/assert.hpp"

namespace ocr::maze {
namespace {

using geom::Coord;
using geom::Interval;
using geom::Orientation;
using geom::Point;
using tig::TrackRef;

/// A probe line: a free extent of one track, entered at `entry`.
struct Probe {
  TrackRef track;
  Interval extent;   ///< free gap (varying coordinate)
  Coord fixed = 0;   ///< the track's own coordinate
  Point entry;       ///< where the parent probe crossed onto this track
  int parent = -1;   ///< index into the side's probe list
};

/// One side's search state (source or target).
struct Side {
  std::vector<Probe> probes;
  std::deque<int> frontier;
  std::set<std::tuple<int, int, Coord>> visited;  // orient, index, gap.lo

  bool mark(const TrackRef& t, const Interval& gap) {
    return visited
        .insert({t.orient == Orientation::kHorizontal ? 0 : 1, t.index,
                 gap.lo})
        .second;
  }
};

/// Seeds a side with the two probes through its terminal.
bool seed(const tig::TrackGrid& grid, const Point& p, Side& side) {
  const int i = grid.nearest_h(p.y);
  const int j = grid.nearest_v(p.x);
  OCR_ASSERT(grid.h_y(i) == p.y && grid.v_x(j) == p.x,
             "hightower: terminal is not a grid crossing");
  bool any = false;
  if (const auto gap = grid.h_free_segment(i, p.x)) {
    Probe probe{TrackRef{Orientation::kHorizontal, i}, *gap, p.y, p, -1};
    if (side.mark(probe.track, probe.extent)) {
      side.probes.push_back(probe);
      side.frontier.push_back(static_cast<int>(side.probes.size()) - 1);
      any = true;
    }
  }
  if (const auto gap = grid.v_free_segment(j, p.y)) {
    Probe probe{TrackRef{Orientation::kVertical, j}, *gap, p.x, p, -1};
    if (side.mark(probe.track, probe.extent)) {
      side.probes.push_back(probe);
      side.frontier.push_back(static_cast<int>(side.probes.size()) - 1);
      any = true;
    }
  }
  return any;
}

/// True if probes \p s (one side) and \p t (other side) cross; the
/// crossing point is returned through \p out.
bool probes_cross(const Probe& s, const Probe& t, Point* out) {
  if (s.track.orient == t.track.orient) return false;
  const Probe& h = s.track.orient == Orientation::kHorizontal ? s : t;
  const Probe& v = s.track.orient == Orientation::kHorizontal ? t : s;
  const Coord x = v.fixed;
  const Coord y = h.fixed;
  if (!h.extent.contains(x) || !v.extent.contains(y)) return false;
  *out = Point{x, y};
  return true;
}

/// Walks a side's parent chain from probe \p index, producing the corner
/// points from the terminal to \p junction (inclusive).
std::vector<Point> trace(const Side& side, int index,
                         const Point& junction) {
  std::vector<Point> points{junction};
  for (int p = index; p >= 0;
       p = side.probes[static_cast<std::size_t>(p)].parent) {
    points.push_back(side.probes[static_cast<std::size_t>(p)].entry);
  }
  std::reverse(points.begin(), points.end());
  return points;  // terminal ... junction
}

/// Track of the leg between consecutive points \p p -> \p q given the
/// probe chains; recomputed from geometry (legs are axis-aligned).
TrackRef leg_track(const tig::TrackGrid& grid, const Point& p,
                   const Point& q) {
  if (p.y == q.y) {
    return TrackRef{Orientation::kHorizontal, grid.nearest_h(p.y)};
  }
  return TrackRef{Orientation::kVertical, grid.nearest_v(p.x)};
}

}  // namespace

HightowerResult hightower_connect(const tig::TrackGrid& grid,
                                  const geom::Point& a, const geom::Point& b,
                                  const HightowerOptions& options) {
  HightowerResult result;
  if (a == b) {
    result.found = true;
    return result;
  }

  Side source;
  Side target;
  if (!seed(grid, a, source) || !seed(grid, b, target)) return result;
  result.probes_expanded = static_cast<long long>(source.probes.size()) +
                           static_cast<long long>(target.probes.size());

  const auto finish = [&](int s_index, int t_index, const Point& junction) {
    std::vector<Point> points = trace(source, s_index, junction);
    const std::vector<Point> back = trace(target, t_index, junction);
    // back = b ... junction; append reversed, skipping the junction.
    for (auto it = back.rbegin() + 1; it != back.rend(); ++it) {
      points.push_back(*it);
    }
    levelb::Path path;
    path.points = std::move(points);
    for (std::size_t leg = 0; leg + 1 < path.points.size(); ++leg) {
      if (path.points[leg] == path.points[leg + 1]) {
        // canonicalize() drops these; give them any track.
        path.tracks.push_back(TrackRef{Orientation::kHorizontal,
                                       grid.nearest_h(path.points[leg].y)});
        continue;
      }
      path.tracks.push_back(
          leg_track(grid, path.points[leg], path.points[leg + 1]));
    }
    path.canonicalize();
    result.found = true;
    result.path = std::move(path);
  };

  // Check the seed probes against each other first.
  for (std::size_t s = 0; s < source.probes.size(); ++s) {
    for (std::size_t t = 0; t < target.probes.size(); ++t) {
      Point junction;
      if (probes_cross(source.probes[s], target.probes[t], &junction)) {
        finish(static_cast<int>(s), static_cast<int>(t), junction);
        return result;
      }
    }
  }

  // Alternate expanding the two sides.
  const auto expand_one = [&](Side& self, const Side& other,
                              const Point& goal, bool self_is_source)
      -> bool {
    if (self.frontier.empty()) return false;
    const int index = self.frontier.front();
    self.frontier.pop_front();
    ++result.probes_expanded;
    const Probe probe = self.probes[static_cast<std::size_t>(index)];

    // Candidate escape crossings along this probe: nearest the goal's
    // coordinate plus the two extremes (clamped to real tracks).
    std::vector<Coord> candidates;
    const bool horizontal =
        probe.track.orient == Orientation::kHorizontal;
    const Coord toward = horizontal ? goal.x : goal.y;
    const Coord clamped =
        std::clamp(toward, probe.extent.lo, probe.extent.hi);
    candidates.push_back(clamped);
    candidates.push_back(probe.extent.lo);
    candidates.push_back(probe.extent.hi);

    int spawned = 0;
    for (const Coord c : candidates) {
      if (spawned >= options.branch) break;
      // Snap to the nearest perpendicular track inside the extent.
      const int perp_index =
          horizontal ? grid.nearest_v(c) : grid.nearest_h(c);
      const Coord perp_coord =
          horizontal ? grid.v_x(perp_index) : grid.h_y(perp_index);
      if (!probe.extent.contains(perp_coord)) continue;
      const Point crossing = horizontal
                                 ? Point{perp_coord, probe.fixed}
                                 : Point{probe.fixed, perp_coord};
      const auto gap = horizontal
                           ? grid.v_free_segment(perp_index, probe.fixed)
                           : grid.h_free_segment(perp_index, probe.fixed);
      if (!gap) continue;
      const TrackRef t{horizontal ? Orientation::kVertical
                                  : Orientation::kHorizontal,
                       perp_index};
      if (!self.mark(t, *gap)) continue;
      Probe next{t, *gap,
                 horizontal ? grid.v_x(perp_index) : grid.h_y(perp_index),
                 crossing, index};
      self.probes.push_back(next);
      const int next_index = static_cast<int>(self.probes.size()) - 1;
      self.frontier.push_back(next_index);
      ++spawned;

      // Completion test against every probe of the other side.
      for (std::size_t o = 0; o < other.probes.size(); ++o) {
        Point junction;
        if (probes_cross(self.probes[static_cast<std::size_t>(next_index)],
                         other.probes[o], &junction)) {
          if (self_is_source) {
            finish(next_index, static_cast<int>(o), junction);
          } else {
            finish(static_cast<int>(o), next_index, junction);
          }
          return true;
        }
      }
    }
    return false;
  };

  int budget = options.max_probes;
  while (budget-- > 0 &&
         (!source.frontier.empty() || !target.frontier.empty())) {
    if (expand_one(source, target, b, /*self_is_source=*/true)) {
      return result;
    }
    if (expand_one(target, source, a, /*self_is_source=*/false)) {
      return result;
    }
  }
  return result;  // not found (line search is incomplete)
}

}  // namespace ocr::maze

#include "service/queue.hpp"

#include <utility>

namespace ocr::service {

JobQueue::JobQueue(std::size_t limit, util::MetricsRegistry& registry)
    : limit_(limit),
      depth_gauge_(registry.gauge("service.queue_depth")),
      inflight_gauge_(registry.gauge("service.inflight")) {
  depth_gauge_.set(0);
  inflight_gauge_.set(0);
}

bool JobQueue::try_push(Entry& entry) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || entries_.size() >= limit_) return false;
    entries_.push_back(std::move(entry));
    depth_gauge_.set(static_cast<long long>(entries_.size()));
  }
  ready_cv_.notify_one();
  return true;
}

bool JobQueue::push_retry(Entry& entry) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    entries_.push_back(std::move(entry));
    depth_gauge_.set(static_cast<long long>(entries_.size()));
  }
  ready_cv_.notify_one();
  return true;
}

std::optional<JobQueue::Entry> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  ready_cv_.wait(lock, [this] { return closed_ || !entries_.empty(); });
  if (entries_.empty()) return std::nullopt;  // closed and drained
  Entry entry = std::move(entries_.front());
  entries_.pop_front();
  ++inflight_;
  depth_gauge_.set(static_cast<long long>(entries_.size()));
  inflight_gauge_.set(static_cast<long long>(inflight_));
  return entry;
}

void JobQueue::note_done() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ > 0) --inflight_;
  inflight_gauge_.set(static_cast<long long>(inflight_));
}

void JobQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_cv_.notify_all();
}

std::size_t JobQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t JobQueue::inflight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

}  // namespace ocr::service

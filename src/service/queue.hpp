#pragma once
/// \file queue.hpp
/// \brief Bounded FIFO job queue with overload rejection and depth gauges.
///
/// The admission contract: `try_push` never blocks — it either accepts
/// the entry or returns false (queue at its bound, or closed), and the
/// caller answers the client immediately. `pop` blocks the worker drain
/// loops until an entry or close-and-drained. The queue publishes
/// `service.queue_depth` and `service.inflight` gauges into the global
/// MetricsRegistry on every transition so admission behaviour is
/// observable live.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "service/job.hpp"
#include "util/metrics.hpp"

namespace ocr::service {

class JobQueue {
 public:
  /// One accepted submission: the job plus its completion callback.
  struct Entry {
    RoutingJob job;
    std::function<void(JobResult)> on_complete;
  };

  explicit JobQueue(std::size_t limit,
                    util::MetricsRegistry& registry =
                        util::MetricsRegistry::global());

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Non-blocking: false when the queue holds \p limit entries or is
  /// closed. The caller still owns \p entry on failure.
  bool try_push(Entry& entry);

  /// Push for a retried job: ignores the depth bound (the job was
  /// already admitted once; bouncing it off the limit again would turn a
  /// transient failure into a dropped job). Still fails once closed.
  bool push_retry(Entry& entry);

  /// Blocks for the next entry. nullopt once closed *and* drained —
  /// entries accepted before close() are always delivered.
  std::optional<Entry> pop();

  /// Marks a popped entry finished (decrements the inflight gauge).
  void note_done();

  /// Stops accepting pushes and wakes every blocked pop.
  void close();

  std::size_t depth() const;
  std::size_t limit() const { return limit_; }
  /// Entries popped but not yet note_done()'d.
  std::size_t inflight() const;

 private:
  const std::size_t limit_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::deque<Entry> entries_;
  std::size_t inflight_ = 0;
  bool closed_ = false;
  util::Gauge& depth_gauge_;
  util::Gauge& inflight_gauge_;
};

}  // namespace ocr::service

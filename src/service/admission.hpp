#pragma once
/// \file admission.hpp
/// \brief Cheap pre-route estimation and admission control for the
/// routing service.
///
/// Before a job is queued, the service computes a back-of-envelope
/// routability estimate in the spirit of early-routability-assessment
/// models: wiring *demand* is the sum of net bounding-box half-perimeters
/// (the classic HPWL lower bound on wire length), wiring *capacity* is
/// the over-cell track supply implied by the die outline and the level-B
/// layer pitches. Their ratio is a congestion figure that costs one pass
/// over the pins — no routing, no TIG construction.
///
/// The AdmissionPolicy turns the estimate into one of three decisions:
///
/// * **admit**    — run the job as requested;
/// * **down-tier** — run it, but cap the per-net search effort (and
///   thereby the worst-case latency) because the estimate says the
///   instance is congested enough to risk pathological search blow-up;
/// * **reject**   — refuse immediately (queue full, instance over the
///   hard size/congestion ceiling). Rejection is always an immediate
///   response, never a hang — the overload contract of docs/SERVICE.md.

#include <cstddef>
#include <string>

#include "floorplan/macro_layout.hpp"
#include "netlist/layout.hpp"

namespace ocr::service {

/// Pre-route size/congestion figures for one job instance.
struct RouteEstimate {
  int cells = 0;
  int nets = 0;
  int pins = 0;
  /// Sum of per-net bounding-box half-perimeters, dbu (HPWL demand).
  long long demand_dbu = 0;
  /// Over-cell wiring supply: horizontal metal3 track length plus
  /// vertical metal4 track length over the die, dbu.
  long long capacity_dbu = 0;
  /// demand / capacity; 0 when the die is degenerate.
  double congestion = 0.0;
};

/// Computes the estimate from the zero-height assembly of \p ml (the
/// same assembly the partition policies use, so callers share it).
RouteEstimate estimate_route(const floorplan::MacroLayout& ml,
                             const netlist::Layout& zero_assembled);

/// What the executor decided about a submitted job.
enum class AdmissionDecision { kAdmit, kDowntier, kReject };

const char* admission_decision_name(AdmissionDecision decision);

/// Thresholds; zero disables the corresponding check.
struct AdmissionPolicy {
  /// Bounded job queue: submissions beyond this many pending jobs are
  /// rejected immediately.
  std::size_t queue_limit = 16;
  /// Hard ceiling on instance net count.
  int max_nets = 0;
  /// Hard ceiling on estimated congestion (demand / capacity).
  double reject_congestion = 0.0;
  /// Above this congestion the job is admitted but down-tiered.
  double downtier_congestion = 0.0;
  /// Per-net vertex budget imposed on down-tiered jobs (only ever
  /// tightens a job's own budget, never loosens it).
  long long downtier_net_effort = 100000;
};

/// Applies the size/congestion rungs of \p policy to \p estimate. The
/// queue bound is enforced separately by the queue itself. On kReject,
/// \p reason (when non-null) receives a human-readable explanation.
AdmissionDecision admit(const AdmissionPolicy& policy,
                        const RouteEstimate& estimate,
                        std::string* reason = nullptr);

}  // namespace ocr::service

#include "service/retry.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace ocr::service {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

RetryClass classify_status(const util::Status& status) {
  switch (status.kind()) {
    case util::StatusKind::kFaultInjected:
    case util::StatusKind::kCancelled:
    case util::StatusKind::kDeadlineExceeded:
    case util::StatusKind::kTaskFailed:
      return RetryClass::kTransient;
    case util::StatusKind::kBudgetExhausted:
      // Queue/pool overload rejections carry the admission stage; a
      // per-net effort budget is a property of the request and would
      // exhaust identically on every attempt.
      return status.stage() == "admission" ? RetryClass::kTransient
                                           : RetryClass::kPermanent;
    default:
      return RetryClass::kPermanent;
  }
}

RetryClass classify_result(const JobResult& result) {
  if (result.rejected) return classify_status(result.reject_reason);
  if (result.report.status != flow::RunStatus::kFailed) {
    return RetryClass::kPermanent;  // success — nothing to retry
  }
  return classify_status(result.report.error);
}

long long retry_backoff_ms(const RetryPolicy& policy,
                           const std::string& job_id, int failed_attempt) {
  const int shift = std::min(failed_attempt, 30);
  long long backoff = policy.base_ms > 0 ? policy.base_ms << shift : 0;
  backoff = std::min(backoff, policy.max_ms);
  if (backoff <= 0 || policy.jitter <= 0.0) return std::max(backoff, 0LL);
  util::Rng rng(policy.seed ^ fnv1a(job_id) ^
                (0x9e3779b97f4a7c15ULL *
                 static_cast<std::uint64_t>(failed_attempt + 1)));
  const double factor =
      rng.uniform_real(1.0 - policy.jitter, 1.0 + policy.jitter);
  backoff = static_cast<long long>(static_cast<double>(backoff) * factor);
  return std::max(backoff, 1LL);
}

bool should_retry(const RetryPolicy& policy, const JobResult& result,
                  int failed_attempt) {
  if (!policy.enabled()) return false;
  if (failed_attempt + 1 >= policy.max_attempts) return false;
  return classify_result(result) == RetryClass::kTransient;
}

}  // namespace ocr::service

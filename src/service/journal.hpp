#pragma once
/// \file journal.hpp
/// \brief Durable append-only job journal (write-ahead log) + recovery.
///
/// The daemon appends one `io::JournalRecord` per job-state transition
/// (see io/journal_io.hpp for the lifecycle). Durability policy:
///
/// * `accepted` / `started` / `retry` / `responded` records are batched —
///   fsync every `Options::fsync_every` appends. Losing a tail of these
///   in a crash costs at most duplicate *work* (a job re-runs), never a
///   wrong answer.
/// * `completed` / `failed` / `drain` records fsync before append()
///   returns, and the daemon appends them **before** writing the
///   response line. A delivered response therefore implies a durable
///   terminal record, which is what makes recovery exactly-once: replay
///   never re-executes a job the client already saw finish.
///
/// A journal write failure (disk full, injected `service.journal.append`
/// fault) is surfaced as a Status; the daemon counts it in
/// `service.journal_errors` and keeps serving with degraded durability
/// rather than dropping live jobs.
///
/// `recover_journal` scans a journal left behind by a crashed or drained
/// daemon and folds it into per-job outcomes. Damaged lines — the torn
/// tail write of a SIGKILL, or bytes corrupted by the
/// `service.journal.replay` chaos site — are counted and skipped with a
/// located Status retained for the recovery summary, never a crash.

#include <mutex>
#include <string>
#include <vector>

#include "io/journal_io.hpp"
#include "util/status.hpp"

namespace ocr::service {

class Journal {
 public:
  struct Options {
    /// Batched records reach disk at least every this many appends.
    int fsync_every = 8;
  };

  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens \p path for appending (created if absent). After a recovery
  /// pass, call set_next_seq so new records continue the sequence.
  util::Status open(const std::string& path, Options options);
  util::Status open(const std::string& path) { return open(path, Options()); }

  bool is_open() const;
  const std::string& path() const { return path_; }

  /// Renders \p record (assigning the next sequence number) and appends
  /// it. Terminal events (completed/failed/drain) are fsynced before
  /// returning; others are batched. Thread-safe.
  util::Status append(io::JournalRecord record);

  /// Forces any batched appends to disk.
  util::Status sync();

  /// Continues the sequence after \p last_seq (recovery handoff).
  void set_next_seq(long long last_seq);

  /// Flushes and closes. Safe to call twice.
  void close();

 private:
  util::Status append_locked(const std::string& line, bool durable);
  util::Status sync_locked();

  mutable std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  Options options_;
  long long next_seq_ = 1;
  int unsynced_ = 0;
};

/// Everything recovery learned about one job id.
struct RecoveredJob {
  std::string id;
  std::string request;  ///< raw request line from the accepted record
  int attempts = 0;     ///< started records seen (execution attempts)
  bool has_terminal = false;
  io::JournalRecord terminal;  ///< completed/failed digest when terminal
  bool responded = false;      ///< response line reached the client
};

struct RecoveryPlan {
  /// Jobs in first-accepted order. Unfinished ⇢ re-enqueue; terminal but
  /// not responded ⇢ synthesize the response from the digest (flagged
  /// `replayed`); terminal and responded ⇢ dedupe any resubmission.
  std::vector<RecoveredJob> jobs;

  long long lines_total = 0;
  long long lines_corrupt = 0;
  /// First skip reason (located), kept for the recovery summary.
  std::string first_corrupt_error;
  /// Highest sequence number seen (hand to Journal::set_next_seq).
  long long last_seq = 0;
  /// The journal ends with a drain record reporting zero unfinished jobs.
  bool clean_drain = false;
  int unfinished = 0;
};

/// Scans \p path and folds records into per-job outcomes. A missing file
/// is an empty plan (fresh start); an unreadable file is kIoError.
/// Damaged lines are skipped and counted, never fatal.
util::StatusOr<RecoveryPlan> recover_journal(const std::string& path);

}  // namespace ocr::service

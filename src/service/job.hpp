#pragma once
/// \file job.hpp
/// \brief The unit of work of the routing service: a validated job spec,
/// its materialized instance, and the per-job result.
///
/// A job travels through three stages:
///
/// 1. `io::JobRequest` (wire format) -> `spec_from_request` ->
///    **JobSpec** — validated per-job policy knobs (flow, partition,
///    threads, deadline, effort, fail policy, faults, manifest path);
/// 2. `materialize` -> **RoutingJob** — the spec plus the generated or
///    parsed MacroLayout, its net partition, the pre-route
///    RouteEstimate, and a per-job CancelSource;
/// 3. execution (service/executor.hpp) -> **JobResult** — the
///    flow::RunReport, queue/run wall times, and a per-job
///    MetricsSnapshot scoped to this job alone.
///
/// The CLI (`ocr_route`) shares stages 1-2 with the daemon so both front
/// ends construct byte-identical routing problems from the same knobs.

#include <chrono>
#include <string>
#include <vector>

#include "flow/run.hpp"
#include "floorplan/macro_layout.hpp"
#include "io/job_io.hpp"
#include "partition/partition.hpp"
#include "service/admission.hpp"
#include "util/cancel.hpp"
#include "util/metrics.hpp"
#include "util/status.hpp"

namespace ocr::service {

/// Validated per-job configuration (the policy knobs of one request).
struct JobSpec {
  std::string id;
  std::string example;  ///< built-in generator name; or
  std::string input;    ///< .oclay file path (exactly one non-empty)
  flow::FlowKind kind = flow::FlowKind::kOverCell;
  std::string partition = "class";
  int threads = 1;
  /// Parallel dispatch strategy when threads > 1: "speculative",
  /// "sharded" or "auto" (serial-exact either way).
  std::string engine_mode = "speculative";
  flow::FailPolicy fail_policy = flow::FailPolicy::kDegrade;
  long long deadline_ms = 0;
  long long net_effort = 0;
  /// Fault-injection spec. "-" (the default) disarms injection for this
  /// job; jobs never inherit the daemon's OCR_FAULTS environment.
  std::string faults = "-";
  std::string manifest_path;
};

/// Validates a decoded request into a JobSpec (kInvalidArgument on bad
/// flow/partition/fail-policy names, missing or ambiguous instance,
/// negative knobs).
util::StatusOr<JobSpec> spec_from_request(const io::JobRequest& request);

/// Builds the MacroLayout a spec names: a bench_data generator for
/// `example`, an .oclay parse for `input` (lenient unless the job's fail
/// policy is abort — the same contract as the CLI). Parser warnings from
/// lenient mode are appended to \p warnings when non-null.
util::StatusOr<floorplan::MacroLayout> make_instance(
    const JobSpec& spec, std::vector<std::string>* warnings = nullptr);

/// Resolves a partition policy string ("class", "allb", "length=<dbu>")
/// against \p layout.
util::StatusOr<partition::NetPartition> make_partition(
    const std::string& policy, const netlist::Layout& layout);

/// A materialized, ready-to-execute job.
struct RoutingJob {
  JobSpec spec;
  floorplan::MacroLayout layout{"unmaterialized", 0};
  partition::NetPartition partition;
  RouteEstimate estimate;
  /// Per-job cancellation: the job's own watchdog fires it on deadline;
  /// it is never shared between jobs.
  util::CancelSource cancel;
  /// Set by JobExecutor::submit; queue_ms measures from here.
  std::chrono::steady_clock::time_point submitted{};
  /// Set when admission down-tiered the job (effort cap applied).
  bool downtiered = false;
  /// 0-based execution attempt; bumped by the executor on each retry
  /// (every retry also installs a fresh CancelSource — cancellation is
  /// sticky and must not leak across attempts).
  int attempt = 0;
  /// The raw request line (journal `accepted` record payload); empty
  /// when the job did not arrive over the wire.
  std::string request_line;
};

/// Materializes \p spec: builds the instance, assembles the zero-height
/// layout once, and derives both the net partition and the pre-route
/// estimate from it.
util::StatusOr<RoutingJob> materialize(const JobSpec& spec);

/// The flow::RunOptions a job's knobs translate to (flow kind, threads,
/// deadline, effort, fail policy, faults).
flow::RunOptions job_run_options(const RoutingJob& job);

/// Everything the service reports about one finished (or refused) job.
struct JobResult {
  std::string id;
  /// Admission refused the job; \p report is default-constructed and
  /// reject_reason explains why.
  bool rejected = false;
  util::Status reject_reason;
  bool downtiered = false;
  flow::RunReport report;
  long long queue_ms = 0;
  long long run_ms = 0;
  /// Execution attempts consumed (1 unless the retry policy re-ran it).
  int attempts = 1;
  /// Per-job metrics scope: the flow.* instruments this job alone
  /// produced (the global registry still accumulates across jobs).
  util::MetricsSnapshot metrics;
  /// Non-empty when a per-job manifest was written.
  std::string manifest_path;

  /// Service exit-class contract (mirrors the CLI exit codes):
  /// 0 clean, 1 failed, 2 rejected, 3 partial.
  int exit_class() const { return rejected ? 2 : report.exit_code(); }
  const char* status_name() const {
    return rejected ? "rejected" : flow::run_status_name(report.status);
  }
};

/// Renders a result as the wire response.
io::JobResponse to_response(const JobResult& result);

}  // namespace ocr::service

#pragma once
/// \file retry.hpp
/// \brief Transient-failure classification and deterministic backoff.
///
/// A failed job is retried only when the failure could plausibly pass on
/// a second attempt — an injected fault, a hung/cancelled worker, a
/// watchdog deadline, a crashed pool task, or queue overload. Failures
/// that are a pure function of the request (parse errors, invalid
/// arguments, unroutable instances, exhausted per-net budgets) would
/// fail identically every time and are never retried:
///
/// | Status kind        | class      | rationale                        |
/// |--------------------|------------|----------------------------------|
/// | kFaultInjected     | transient  | chaos plan, passes when disarmed |
/// | kCancelled         | transient  | supervisor kill / external cancel|
/// | kDeadlineExceeded  | transient  | watchdog stall, load dependent   |
/// | kTaskFailed        | transient  | worker crashed mid-job           |
/// | kBudgetExhausted   | transient iff stage == "admission" (overload) |
/// | kParseError        | permanent  | same bytes parse the same way    |
/// | kInvalidArgument   | permanent  | bad request knobs                |
/// | kUnroutable        | permanent  | search space has no path         |
/// | kIoError           | permanent  | missing/corrupt input file       |
/// | kInternal          | permanent  | needs a human, not a retry       |
///
/// Backoff is exponential with deterministic seeded jitter: the delay
/// for (policy, job id, attempt) is a pure function, so a retry schedule
/// reproduces exactly at any worker count — the property the retry
/// determinism tests pin.

#include <cstdint>
#include <string>

#include "service/job.hpp"
#include "util/status.hpp"

namespace ocr::service {

struct RetryPolicy {
  /// Total execution attempts per job (1 = retries disabled).
  int max_attempts = 1;
  /// Backoff before retry k (0-based failed attempt) is
  /// `min(max_ms, base_ms << k)` scaled by the jitter factor.
  long long base_ms = 10;
  long long max_ms = 2000;
  /// Jitter fraction in [0, 1): the backoff is scaled by a deterministic
  /// factor drawn from [1 - jitter, 1 + jitter).
  double jitter = 0.2;
  /// Seed for the jitter draw (mixed with job id and attempt).
  std::uint64_t seed = 1;

  bool enabled() const { return max_attempts > 1; }
};

enum class RetryClass { kPermanent, kTransient };

/// Classifies one failure Status per the table above.
RetryClass classify_status(const util::Status& status);

/// Classifies a finished JobResult. Successful results (clean/partial)
/// are permanent — there is nothing to retry.
RetryClass classify_result(const JobResult& result);

/// Deterministic backoff in ms before re-running \p job_id after its
/// 0-based \p failed_attempt. Pure function of the arguments.
long long retry_backoff_ms(const RetryPolicy& policy,
                           const std::string& job_id, int failed_attempt);

/// True when \p result is transient and \p failed_attempt + 1 leaves
/// room under policy.max_attempts.
bool should_retry(const RetryPolicy& policy, const JobResult& result,
                  int failed_attempt);

}  // namespace ocr::service

#include "service/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>
#include <utility>

#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/str.hpp"

namespace ocr::service {

using util::Status;
using util::StatusOr;

namespace {

Status errno_status(const char* what, const std::string& path) {
  return Status::io_error(util::format("%s %s: %s", what, path.c_str(),
                                       std::strerror(errno)))
      .with_stage("journal");
}

bool terminal_event(io::JournalEvent event) {
  return event == io::JournalEvent::kCompleted ||
         event == io::JournalEvent::kFailed ||
         event == io::JournalEvent::kDrain;
}

}  // namespace

Journal::~Journal() { close(); }

Status Journal::open(const std::string& path, Options options) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    return Status::invalid_argument("journal already open").with_stage(
        "journal");
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                        0644);
  if (fd < 0) return errno_status("open journal", path);
  fd_ = fd;
  path_ = path;
  options_ = options;
  if (options_.fsync_every < 1) options_.fsync_every = 1;
  unsynced_ = 0;
  return Status();
}

bool Journal::is_open() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0;
}

Status Journal::append(io::JournalRecord record) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    return Status::invalid_argument("journal not open").with_stage("journal");
  }
  record.seq = next_seq_++;
  return append_locked(io::render_journal_record(record) + "\n",
                       terminal_event(record.event));
}

Status Journal::append_locked(const std::string& line, bool durable) {
  auto& metrics = util::MetricsRegistry::global();
  if (OCR_SERVICE_FAULT("service.journal.append")) {
    metrics.counter("service.journal_errors").add();
    return Status::io_error("injected journal append failure")
        .with_stage("journal");
  }
  const char* data = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      metrics.counter("service.journal_errors").add();
      return errno_status("write journal", path_);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  metrics.counter("service.journal_appends").add();
  ++unsynced_;
  if (durable || unsynced_ >= options_.fsync_every) return sync_locked();
  return Status();
}

Status Journal::sync() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status();
  return sync_locked();
}

Status Journal::sync_locked() {
  if (unsynced_ == 0) return Status();
  if (::fsync(fd_) != 0) {
    util::MetricsRegistry::global().counter("service.journal_errors").add();
    return errno_status("fsync journal", path_);
  }
  util::MetricsRegistry::global().counter("service.journal_fsyncs").add();
  unsynced_ = 0;
  return Status();
}

void Journal::set_next_seq(long long last_seq) {
  const std::lock_guard<std::mutex> lock(mu_);
  next_seq_ = std::max(next_seq_, last_seq + 1);
}

void Journal::close() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;
  if (unsynced_ > 0) (void)sync_locked();  // best effort; close anyway
  ::close(fd_);
  fd_ = -1;
}

StatusOr<RecoveryPlan> recover_journal(const std::string& path) {
  RecoveryPlan plan;
  if (::access(path.c_str(), F_OK) != 0) return plan;  // fresh start
  std::ifstream in(path);
  if (!in.is_open()) return errno_status("open journal", path);

  // Fold records per id while remembering first-accepted order.
  std::map<std::string, std::size_t> index;
  bool saw_clean_drain = false;
  std::string line;
  for (long long line_no = 1; std::getline(in, line); ++line_no) {
    if (line.empty()) continue;
    ++plan.lines_total;
    if (OCR_SERVICE_FAULT_KEY("service.journal.replay", line_no)) {
      // Chaos site: treat this line as if its bytes were damaged on disk.
      line = line.substr(0, line.size() / 2);
    }
    StatusOr<io::JournalRecord> parsed = io::parse_journal_record(line);
    if (!parsed.ok()) {
      ++plan.lines_corrupt;
      if (plan.first_corrupt_error.empty()) {
        Status located = parsed.status();
        located.at(static_cast<int>(line_no));
        plan.first_corrupt_error = located.to_string();
      }
      continue;
    }
    const io::JournalRecord& record = *parsed;
    plan.last_seq = std::max(plan.last_seq, record.seq);

    if (record.event == io::JournalEvent::kDrain) {
      saw_clean_drain = record.unfinished == 0;
      continue;
    }
    saw_clean_drain = false;  // anything after a drain reopens the journal

    auto it = index.find(record.id);
    if (it == index.end()) {
      if (record.event != io::JournalEvent::kAccepted) {
        // started/terminal for an id whose accepted record was lost or
        // corrupted — without the request line the job cannot be
        // replayed, so record it only if it carries a terminal digest.
        if (record.event != io::JournalEvent::kCompleted &&
            record.event != io::JournalEvent::kFailed) {
          continue;
        }
      }
      it = index.emplace(record.id, plan.jobs.size()).first;
      plan.jobs.emplace_back();
      plan.jobs.back().id = record.id;
    }
    RecoveredJob& job = plan.jobs[it->second];
    switch (record.event) {
      case io::JournalEvent::kAccepted:
        if (job.request.empty()) job.request = record.request;
        break;
      case io::JournalEvent::kStarted:
        ++job.attempts;
        break;
      case io::JournalEvent::kRetry:
        break;
      case io::JournalEvent::kCompleted:
      case io::JournalEvent::kFailed:
        job.has_terminal = true;
        job.terminal = record;
        break;
      case io::JournalEvent::kResponded:
        job.responded = true;
        break;
      case io::JournalEvent::kDrain:
        break;  // handled above
    }
  }
  if (in.bad()) return errno_status("read journal", path);

  for (const RecoveredJob& job : plan.jobs) {
    if (!job.has_terminal) ++plan.unfinished;
  }
  plan.clean_drain = saw_clean_drain && plan.unfinished == 0;
  return plan;
}

}  // namespace ocr::service

#include "service/executor.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/manifest.hpp"
#include "util/str.hpp"

namespace ocr::service {
namespace {

using Clock = std::chrono::steady_clock;

long long ms_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start)
      .count();
}

/// Shared latency buckets for the service histograms (ms).
std::vector<long long> latency_bounds() {
  return {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000};
}

JobResult rejected_result(const RoutingJob& job, util::Status reason) {
  JobResult result;
  result.id = job.spec.id;
  result.rejected = true;
  result.reject_reason = std::move(reason);
  result.queue_ms = ms_since(job.submitted);
  return result;
}

}  // namespace

JobExecutor::Supervisor::~Supervisor() {
  stop.store(true, std::memory_order_relaxed);
  if (thread.joinable()) thread.join();
}

JobExecutor::JobExecutor(const Options& options)
    : options_(options),
      queue_(std::max<std::size_t>(1, options.admission.queue_limit)),
      pool_(std::max(1, options.workers), "service.pool") {
  slots_.reserve(static_cast<std::size_t>(pool_.size()));
  for (int i = 0; i < pool_.size(); ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  if (options_.retry.enabled()) {
    retry_thread_ = std::thread([this] { retry_loop(); });
  }
  if (options_.hang_ms > 0) {
    supervisor_.thread = std::thread([this] { supervise_loop(); });
  }
  for (int i = 0; i < pool_.size(); ++i) {
    pool_.submit([this, i] { worker_loop(i); });
  }
}

JobExecutor::~JobExecutor() {
  {
    const std::lock_guard<std::mutex> lock(retry_mu_);
    retry_stop_ = true;
  }
  retry_cv_.notify_all();
  // The retry loop flushes every scheduled item straight into the queue
  // once stopped, so accepted-for-retry jobs still run to completion.
  if (retry_thread_.joinable()) retry_thread_.join();
  queue_.close();
  // pool_'s destructor joins the drain loops, which first run every
  // entry accepted before the close; supervisor_ is destroyed after
  // pool_, so a hung worker is still rescued during this join.
}

bool JobExecutor::submit(RoutingJob job, Callback on_complete) {
  job.submitted = Clock::now();
  util::MetricsRegistry& global = util::MetricsRegistry::global();
  global.counter("service.jobs_submitted").add();

  std::string reason;
  const AdmissionDecision decision =
      admit(options_.admission, job.estimate, &reason);
  if (decision == AdmissionDecision::kReject) {
    global.counter("service.jobs_rejected").add();
    if (on_complete) {
      on_complete(rejected_result(
          job, util::Status::invalid_argument(reason).with_stage(
                   "admission")));
    }
    return false;
  }
  if (decision == AdmissionDecision::kDowntier) job.downtiered = true;

  // Write-ahead: the acceptance is journaled before the job can reach a
  // worker, so a crash at any later point leaves a replayable record.
  {
    io::JournalRecord record;
    record.event = io::JournalEvent::kAccepted;
    record.id = job.spec.id;
    record.attempt = job.attempt;
    record.request = job.request_line;
    journal_append(std::move(record));
  }

  {
    const std::lock_guard<std::mutex> lock(pending_mu_);
    ++pending_;
  }
  JobQueue::Entry entry{std::move(job), std::move(on_complete)};
  if (!queue_.try_push(entry)) {
    util::Status overload =
        util::Status::budget_exhausted(
            util::format("job queue full (limit %zu)", queue_.limit()))
            .with_stage("admission");
    if (options_.retry.enabled() &&
        entry.job.attempt + 1 < options_.retry.max_attempts &&
        !hard_drain_.load(std::memory_order_relaxed)) {
      // Overload is transient: hold the job through a backoff instead
      // of bouncing it (the re-queue is bound exempt).
      schedule_retry(std::move(entry), overload);
      return true;
    }
    global.counter("service.jobs_rejected").add();
    finish(entry, rejected_result(entry.job, std::move(overload)));
    return false;
  }
  return true;
}

void JobExecutor::drain() {
  std::unique_lock<std::mutex> lock(pending_mu_);
  pending_cv_.wait(lock, [this] { return pending_ == 0; });
}

int JobExecutor::drain_within(long long deadline_ms) {
  {
    std::unique_lock<std::mutex> lock(pending_mu_);
    if (pending_cv_.wait_for(lock,
                             std::chrono::milliseconds(
                                 std::max<long long>(0, deadline_ms)),
                             [this] { return pending_ == 0; })) {
      return 0;
    }
  }
  hard_drain_.store(true, std::memory_order_relaxed);

  // Scheduled retries will never come due in time: abandon them.
  std::vector<JobQueue::Entry> dropped;
  {
    const std::lock_guard<std::mutex> lock(retry_mu_);
    dropped.reserve(retry_heap_.size());
    for (RetryItem& item : retry_heap_) {
      dropped.push_back(std::move(item.entry));
    }
    retry_heap_.clear();
  }
  retry_cv_.notify_all();
  for (JobQueue::Entry& entry : dropped) abandon(entry);

  // Cancel every running job; the cooperative cancel unwinds the worker
  // and finish_or_retry routes the cancelled attempt to abandon().
  // Queued-but-unstarted entries are abandoned by the drain loops.
  for (const std::unique_ptr<Slot>& slot : slots_) {
    const std::lock_guard<std::mutex> lock(slot->mu);
    if (slot->busy) {
      slot->cancel.cancel(
          util::Status::cancelled("drain deadline").with_stage("drain"));
    }
  }
  drain();
  return abandoned_.load(std::memory_order_relaxed);
}

JobResult JobExecutor::run_inline(RoutingJob job) {
  job.submitted = Clock::now();
  util::MetricsRegistry::global().counter("service.jobs_submitted").add();
  return execute_job(job, -1);
}

void JobExecutor::worker_loop(int slot) {
  while (std::optional<JobQueue::Entry> entry = queue_.pop()) {
    if (hard_drain_.load(std::memory_order_relaxed)) {
      queue_.note_done();
      abandon(*entry);
      continue;
    }
    {
      io::JournalRecord record;
      record.event = io::JournalEvent::kStarted;
      record.id = entry->job.spec.id;
      record.attempt = entry->job.attempt;
      journal_append(std::move(record));
    }
    JobResult result = execute_job(entry->job, slot);
    queue_.note_done();
    finish_or_retry(std::move(*entry), std::move(result));
  }
}

void JobExecutor::finish_or_retry(JobQueue::Entry entry, JobResult result) {
  const RetryClass cls = classify_result(result);
  if (cls == RetryClass::kTransient) {
    if (hard_drain_.load(std::memory_order_relaxed)) {
      // The failure is our own drain cancellation (or raced with it):
      // leave the job unfinished in the journal for --recover.
      abandon(entry);
      return;
    }
    if (should_retry(options_.retry, result, entry.job.attempt)) {
      schedule_retry(std::move(entry),
                     result.rejected ? result.reject_reason
                                     : result.report.error);
      return;
    }
    if (options_.retry.enabled()) {
      util::MetricsRegistry::global().counter("service.retry_exhausted").add();
    }
  }
  finish(entry, std::move(result));
}

void JobExecutor::finish(JobQueue::Entry& entry, JobResult result) {
  result.attempts = entry.job.attempt + 1;
  {
    io::JournalRecord record;
    record.event = result.exit_class() == 1 || result.exit_class() == 2
                       ? io::JournalEvent::kFailed
                       : io::JournalEvent::kCompleted;
    record.id = result.id;
    record.attempt = entry.job.attempt;
    record.status = result.status_name();
    record.exit_class = result.exit_class();
    const flow::FlowMetrics& m = result.report.metrics;
    record.wire_length = m.wire_length;
    record.vias = m.vias;
    record.unrouted_nets = m.unrouted_nets;
    record.cancelled_nets = m.cancelled_nets;
    record.run_ms = result.run_ms;
    if (result.rejected) {
      record.error = result.reject_reason.to_string();
    } else if (!result.report.error.ok()) {
      record.error = result.report.error.to_string();
    }
    // Terminal records fsync inside append(): by the time the callback
    // can emit the response line, the outcome is durable — the ordering
    // that makes recovery exactly-once.
    journal_append(std::move(record));
  }
  if (entry.on_complete) entry.on_complete(std::move(result));
  settle_pending();
}

void JobExecutor::schedule_retry(JobQueue::Entry entry,
                                 const util::Status& cause) {
  util::MetricsRegistry::global().counter("service.retries").add();
  const long long backoff =
      retry_backoff_ms(options_.retry, entry.job.spec.id, entry.job.attempt);
  {
    io::JournalRecord record;
    record.event = io::JournalEvent::kRetry;
    record.id = entry.job.spec.id;
    record.attempt = entry.job.attempt;
    record.backoff_ms = backoff;
    record.error = cause.to_string();
    journal_append(std::move(record));
  }
  entry.job.attempt += 1;
  // Cancellation is sticky; a retried attempt needs its own source so a
  // previous cancel (supervisor, watchdog) cannot pre-cancel it.
  entry.job.cancel = util::CancelSource();
  {
    const std::lock_guard<std::mutex> lock(retry_mu_);
    retry_heap_.push_back(
        {Clock::now() + std::chrono::milliseconds(backoff),
         std::move(entry)});
    std::push_heap(retry_heap_.begin(), retry_heap_.end(),
                   [](const RetryItem& a, const RetryItem& b) {
                     return a.due > b.due;
                   });
  }
  retry_cv_.notify_all();
}

void JobExecutor::abandon(JobQueue::Entry& entry) {
  (void)entry;
  abandoned_.fetch_add(1, std::memory_order_relaxed);
  util::MetricsRegistry::global().counter("service.drain_abandoned").add();
  settle_pending();
}

void JobExecutor::journal_append(io::JournalRecord record) {
  if (options_.journal == nullptr || !options_.journal->is_open()) return;
  const util::Status status = options_.journal->append(std::move(record));
  if (!status.ok()) {
    // Keep serving with degraded durability; the append already counted
    // itself in service.journal_errors.
    OCR_WARN() << "journal append failed: " << status.to_string();
  }
}

void JobExecutor::settle_pending() {
  {
    const std::lock_guard<std::mutex> lock(pending_mu_);
    --pending_;
  }
  pending_cv_.notify_all();
}

void JobExecutor::retry_loop() {
  const auto due_order = [](const RetryItem& a, const RetryItem& b) {
    return a.due > b.due;
  };
  std::unique_lock<std::mutex> lock(retry_mu_);
  for (;;) {
    if (retry_heap_.empty()) {
      if (retry_stop_) return;
      retry_cv_.wait(lock);
      continue;
    }
    const Clock::time_point due = retry_heap_.front().due;
    if (!retry_stop_ && Clock::now() < due) {
      retry_cv_.wait_until(lock, due);
      continue;  // re-check: an earlier item may have been scheduled
    }
    std::pop_heap(retry_heap_.begin(), retry_heap_.end(), due_order);
    RetryItem item = std::move(retry_heap_.back());
    retry_heap_.pop_back();
    lock.unlock();
    if (!queue_.push_retry(item.entry)) {
      // Queue already closed (shutdown race): complete the job as
      // cancelled rather than dropping its callback.
      JobResult result;
      result.id = item.entry.job.spec.id;
      result.report.status = flow::RunStatus::kFailed;
      result.report.error = util::Status::cancelled("executor shut down")
                                .with_stage("retry");
      finish(item.entry, std::move(result));
    }
    lock.lock();
  }
}

void JobExecutor::supervise_loop() {
  util::Counter& restarts =
      util::MetricsRegistry::global().counter("service.worker_restarts");
  while (!supervisor_.stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::max<long long>(
            1, options_.supervise_poll_ms)));
    const Clock::time_point now = Clock::now();
    for (const std::unique_ptr<Slot>& slot_ptr : slots_) {
      Slot& slot = *slot_ptr;
      const std::lock_guard<std::mutex> lock(slot.mu);
      if (!slot.busy || slot.cancel.cancelled()) continue;
      const long long progress = slot.cancel.progress();
      if (progress != slot.last_progress) {
        slot.last_progress = progress;
        slot.last_beat = now;
        continue;
      }
      if (now - slot.last_beat >=
          std::chrono::milliseconds(options_.hang_ms)) {
        slot.cancel.cancel(
            util::Status::cancelled(
                util::format("worker hung: progress frozen for %lld ms",
                             options_.hang_ms))
                .with_stage("supervise"));
        restarts.add();
      }
    }
  }
}

JobResult JobExecutor::execute_job(RoutingJob& job, int slot) {
  JobResult result;
  result.id = job.spec.id;
  result.downtiered = job.downtiered;
  const Clock::time_point start = Clock::now();
  result.queue_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        start - job.submitted)
                        .count();

  const auto set_slot_busy = [&](bool busy) {
    if (slot < 0) return;
    Slot& s = *slots_[static_cast<std::size_t>(slot)];
    const std::lock_guard<std::mutex> lock(s.mu);
    s.busy = busy;
    if (busy) {
      s.cancel = job.cancel;
      s.last_progress = job.cancel.progress();
      s.last_beat = Clock::now();
    }
  };
  set_slot_busy(true);

  // Service-layer chaos sites (armed once at daemon startup, keyed by
  // attempt so plans like `service.worker.fail=@0` kill every job's
  // first attempt deterministically at any worker count).
  if (slot >= 0) {
    if (OCR_SERVICE_FAULT_KEY("service.worker.fail", job.attempt)) {
      result.report.status = flow::RunStatus::kFailed;
      result.report.error = util::Status::task_failed("injected worker kill")
                                .with_stage("execute");
      result.run_ms = ms_since(start);
      set_slot_busy(false);
      return result;
    }
    if (OCR_SERVICE_FAULT("service.worker.hang")) {
      // Spin without heartbeats until the supervisor (or a drain)
      // cancels this slot — the scenario a hung worker presents.
      while (!job.cancel.cancelled()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      result.report.status = flow::RunStatus::kFailed;
      result.report.error = job.cancel.reason();
      result.run_ms = ms_since(start);
      set_slot_busy(false);
      return result;
    }
  }

  flow::RunOptions options = job_run_options(job);
  util::MetricsRegistry& global = util::MetricsRegistry::global();
  if (job.downtiered) {
    const long long cap = options_.admission.downtier_net_effort;
    if (cap > 0) {
      options.net_effort =
          options.net_effort > 0 ? std::min(options.net_effort, cap) : cap;
    }
    global.counter("service.jobs_downtiered").add();
  }

  // Per-job metrics scope: flow.* quantities for this job alone.
  util::MetricsRegistry job_registry;
  {
    // The fault registry is process-global, so jobs that arm it run
    // exclusively; everything else shares. "-" is the disarmed default;
    // an empty spec inherits OCR_FAULTS and must also be exclusive.
    const bool exclusive = job.spec.faults != "-";
    std::shared_lock<std::shared_mutex> shared(fault_mu_, std::defer_lock);
    std::unique_lock<std::shared_mutex> unique(fault_mu_, std::defer_lock);
    if (exclusive) {
      unique.lock();
    } else {
      shared.lock();
    }
    result.report = execute_run(job.layout, job.partition, options,
                                job.cancel, &job_registry);
  }
  result.run_ms = ms_since(start);
  result.metrics = job_registry.snapshot();
  set_slot_busy(false);

  if (!job.spec.manifest_path.empty()) {
    util::RunManifest manifest("ocr_served");
    manifest.add_config("job_id", job.spec.id);
    manifest.add_config("flow", flow::flow_kind_name(job.spec.kind));
    manifest.add_config("partition", job.spec.partition);
    manifest.add_config("threads", job.spec.threads);
    manifest.add_config("fail_policy",
                        flow::fail_policy_name(job.spec.fail_policy));
    manifest.add_config("deadline_ms", job.spec.deadline_ms);
    manifest.add_config("net_effort", job.spec.net_effort);
    manifest.add_config("downtiered", job.downtiered);
    manifest.add_config("attempt", job.attempt);
    manifest.add_provenance("instance", job.spec.example.empty()
                                            ? job.spec.input
                                            : job.spec.example);
    manifest.add_provenance("estimated_nets", job.estimate.nets);
    manifest.add_provenance("estimated_congestion", job.estimate.congestion);
    manifest.add_outcome("status", result.status_name());
    manifest.add_outcome("exit_class", result.exit_class());
    manifest.add_outcome("deadline_fired", result.report.deadline_fired);
    manifest.add_outcome("queue_ms", result.queue_ms);
    manifest.add_outcome("run_ms", result.run_ms);
    manifest.capture_metrics(job_registry);
    if (manifest.write_json_file(job.spec.manifest_path)) {
      result.manifest_path = job.spec.manifest_path;
    } else {
      OCR_WARN() << "cannot write job manifest '" << job.spec.manifest_path
                 << "'";
    }
  }

  global.counter("service.jobs_completed").add();
  global.histogram("service.queue_ms", latency_bounds())
      .observe(result.queue_ms);
  global.histogram("service.run_ms", latency_bounds()).observe(result.run_ms);
  return result;
}

}  // namespace ocr::service

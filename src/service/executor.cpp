#include "service/executor.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/log.hpp"
#include "util/manifest.hpp"
#include "util/str.hpp"

namespace ocr::service {
namespace {

using Clock = std::chrono::steady_clock;

long long ms_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start)
      .count();
}

/// Shared latency buckets for the service histograms (ms).
std::vector<long long> latency_bounds() {
  return {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000};
}

JobResult rejected_result(const RoutingJob& job, util::Status reason) {
  JobResult result;
  result.id = job.spec.id;
  result.rejected = true;
  result.reject_reason = std::move(reason);
  result.queue_ms = ms_since(job.submitted);
  return result;
}

}  // namespace

JobExecutor::JobExecutor(const Options& options)
    : options_(options),
      queue_(std::max<std::size_t>(1, options.admission.queue_limit)),
      pool_(std::max(1, options.workers), "service.pool") {
  for (int i = 0; i < pool_.size(); ++i) {
    pool_.submit([this] { worker_loop(); });
  }
}

JobExecutor::~JobExecutor() {
  queue_.close();
  // pool_'s destructor joins the drain loops, which first run every
  // entry accepted before the close.
}

bool JobExecutor::submit(RoutingJob job, Callback on_complete) {
  job.submitted = Clock::now();
  util::MetricsRegistry& global = util::MetricsRegistry::global();
  global.counter("service.jobs_submitted").add();

  std::string reason;
  const AdmissionDecision decision =
      admit(options_.admission, job.estimate, &reason);
  if (decision == AdmissionDecision::kReject) {
    global.counter("service.jobs_rejected").add();
    if (on_complete) {
      on_complete(rejected_result(
          job, util::Status::invalid_argument(reason).with_stage(
                   "admission")));
    }
    return false;
  }
  if (decision == AdmissionDecision::kDowntier) job.downtiered = true;

  {
    const std::lock_guard<std::mutex> lock(pending_mu_);
    ++pending_;
  }
  JobQueue::Entry entry{std::move(job), std::move(on_complete)};
  if (!queue_.try_push(entry)) {
    {
      const std::lock_guard<std::mutex> lock(pending_mu_);
      --pending_;
    }
    global.counter("service.jobs_rejected").add();
    if (entry.on_complete) {
      entry.on_complete(rejected_result(
          entry.job,
          util::Status::budget_exhausted(
              util::format("job queue full (limit %zu)", queue_.limit()))
              .with_stage("admission")));
    }
    return false;
  }
  return true;
}

void JobExecutor::drain() {
  std::unique_lock<std::mutex> lock(pending_mu_);
  pending_cv_.wait(lock, [this] { return pending_ == 0; });
}

JobResult JobExecutor::run_inline(RoutingJob job) {
  job.submitted = Clock::now();
  util::MetricsRegistry::global().counter("service.jobs_submitted").add();
  return execute_job(job);
}

void JobExecutor::worker_loop() {
  while (std::optional<JobQueue::Entry> entry = queue_.pop()) {
    JobResult result = execute_job(entry->job);
    if (entry->on_complete) entry->on_complete(std::move(result));
    queue_.note_done();
    {
      const std::lock_guard<std::mutex> lock(pending_mu_);
      --pending_;
    }
    pending_cv_.notify_all();
  }
}

JobResult JobExecutor::execute_job(RoutingJob& job) {
  JobResult result;
  result.id = job.spec.id;
  result.downtiered = job.downtiered;
  const Clock::time_point start = Clock::now();
  result.queue_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        start - job.submitted)
                        .count();

  flow::RunOptions options = job_run_options(job);
  util::MetricsRegistry& global = util::MetricsRegistry::global();
  if (job.downtiered) {
    const long long cap = options_.admission.downtier_net_effort;
    if (cap > 0) {
      options.net_effort =
          options.net_effort > 0 ? std::min(options.net_effort, cap) : cap;
    }
    global.counter("service.jobs_downtiered").add();
  }

  // Per-job metrics scope: flow.* quantities for this job alone.
  util::MetricsRegistry job_registry;
  {
    // The fault registry is process-global, so jobs that arm it run
    // exclusively; everything else shares. "-" is the disarmed default;
    // an empty spec inherits OCR_FAULTS and must also be exclusive.
    const bool exclusive = job.spec.faults != "-";
    std::shared_lock<std::shared_mutex> shared(fault_mu_, std::defer_lock);
    std::unique_lock<std::shared_mutex> unique(fault_mu_, std::defer_lock);
    if (exclusive) {
      unique.lock();
    } else {
      shared.lock();
    }
    result.report = execute_run(job.layout, job.partition, options,
                                job.cancel, &job_registry);
  }
  result.run_ms = ms_since(start);
  result.metrics = job_registry.snapshot();

  if (!job.spec.manifest_path.empty()) {
    util::RunManifest manifest("ocr_served");
    manifest.add_config("job_id", job.spec.id);
    manifest.add_config("flow", flow::flow_kind_name(job.spec.kind));
    manifest.add_config("partition", job.spec.partition);
    manifest.add_config("threads", job.spec.threads);
    manifest.add_config("fail_policy",
                        flow::fail_policy_name(job.spec.fail_policy));
    manifest.add_config("deadline_ms", job.spec.deadline_ms);
    manifest.add_config("net_effort", job.spec.net_effort);
    manifest.add_config("downtiered", job.downtiered);
    manifest.add_provenance("instance", job.spec.example.empty()
                                            ? job.spec.input
                                            : job.spec.example);
    manifest.add_provenance("estimated_nets", job.estimate.nets);
    manifest.add_provenance("estimated_congestion", job.estimate.congestion);
    manifest.add_outcome("status", result.status_name());
    manifest.add_outcome("exit_class", result.exit_class());
    manifest.add_outcome("deadline_fired", result.report.deadline_fired);
    manifest.add_outcome("queue_ms", result.queue_ms);
    manifest.add_outcome("run_ms", result.run_ms);
    manifest.capture_metrics(job_registry);
    if (manifest.write_json_file(job.spec.manifest_path)) {
      result.manifest_path = job.spec.manifest_path;
    } else {
      OCR_WARN() << "cannot write job manifest '" << job.spec.manifest_path
                 << "'";
    }
  }

  global.counter("service.jobs_completed").add();
  global.histogram("service.queue_ms", latency_bounds())
      .observe(result.queue_ms);
  global.histogram("service.run_ms", latency_bounds()).observe(result.run_ms);
  return result;
}

}  // namespace ocr::service

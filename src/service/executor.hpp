#pragma once
/// \file executor.hpp
/// \brief The job executor: admission, a bounded queue, worker drain
/// loops on the shared util::ThreadPool, retry scheduling, worker
/// supervision, and the single-job execution path that the CLI and the
/// daemon share.
///
/// Life of a job:
///
/// ```
/// submit(job, on_complete)
///   ├─ admission (service/admission.hpp): reject / down-tier / admit
///   ├─ rejected  -> on_complete(JobResult{rejected}) immediately
///   └─ admitted  -> journal `accepted` -> bounded JobQueue
///        └─ worker drain loop: journal `started` -> execute_run(...)
///             ├─ terminal   -> journal `completed`/`failed` (fsynced)
///             │                -> on_complete(JobResult) on the worker
///             └─ transient  -> journal `retry` -> backoff heap ->
///                              re-queued (bound exempt) as attempt+1
/// ```
///
/// Completion is asynchronous: `on_complete` runs on the worker thread
/// that executed the job (or on the submitting thread for rejections).
/// Callbacks must be thread-safe against each other. Every submission
/// produces **at most one** completion: exactly one in normal operation,
/// zero only for jobs abandoned by a hard drain (see drain_within) —
/// those stay journaled as unfinished for a later `--recover` pass.
///
/// Per-job isolation guarantees:
///  * every job gets its own CancelSource and deadline watchdog — one
///    job's cancellation can never leak into another; every retry
///    attempt gets a *fresh* CancelSource (cancellation is sticky);
///  * every job gets its own MetricsRegistry scope; `flow.*` metrics in
///    a JobResult describe that job alone (the global registry still
///    accumulates totals across jobs);
///  * jobs that arm fault injection run *exclusively* (the registry is
///    process-global), serialized behind all concurrently running clean
///    jobs — a faulted job can never poison a clean one. Service-layer
///    chaos sites live in the separate FaultRegistry::service() and are
///    untouched by per-job arming.
///
/// Supervision: when `Options::hang_ms > 0`, a supervisor thread polls
/// every busy worker's progress heartbeat (the same counter the engine
/// watchdog reads). A slot whose counter stays frozen past hang_ms is
/// cancelled with stage "supervise"; the cooperative cancel unwinds the
/// worker back into its drain loop — the slot restarts on the next pop —
/// and the job is re-queued as a retry when the policy allows.

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "flow/run.hpp"
#include "service/admission.hpp"
#include "service/job.hpp"
#include "service/journal.hpp"
#include "service/queue.hpp"
#include "service/retry.hpp"
#include "util/thread_pool.hpp"

namespace ocr::service {

/// Orchestrates one routing run on the calling thread: arms faults,
/// starts the per-run deadline watchdog against \p cancel, dispatches
/// the flow, and classifies the outcome. This is the single code path
/// behind both `flow::run` (CLI) and the executor workers (daemon).
/// When \p job_registry is non-null, every flow.* metric is published
/// there as well as to the global registry.
flow::RunReport execute_run(const floorplan::MacroLayout& ml,
                            const partition::NetPartition& partition,
                            const flow::RunOptions& options,
                            util::CancelSource& cancel,
                            util::MetricsRegistry* job_registry = nullptr);

class JobExecutor {
 public:
  struct Options {
    /// Concurrent job workers (each job may additionally use its own
    /// level-B engine threads; see docs/SERVICE.md on oversubscription).
    int workers = 1;
    AdmissionPolicy admission;
    /// Transient-failure retry policy (max_attempts = 1 disables).
    RetryPolicy retry;
    /// Optional durable journal, owned by the caller (the daemon). When
    /// set and open, every job-state transition is appended.
    Journal* journal = nullptr;
    /// Supervisor hang threshold: a busy worker whose progress counter
    /// stays frozen this long is cancelled and its job retried. 0 = no
    /// supervision thread.
    long long hang_ms = 0;
    long long supervise_poll_ms = 20;
  };

  using Callback = std::function<void(JobResult)>;

  explicit JobExecutor(const Options& options);
  /// Flushes scheduled retries back into the queue, closes it, runs
  /// every already-accepted job to completion, and joins the workers.
  ~JobExecutor();

  JobExecutor(const JobExecutor&) = delete;
  JobExecutor& operator=(const JobExecutor&) = delete;

  /// Admission + enqueue. Returns true when the job was accepted.
  /// Returns false when it was rejected (queue bound or admission
  /// policy) — \p on_complete has then already been invoked with a
  /// rejected JobResult. A queue-full overload with retries enabled is
  /// accepted instead: the job waits out a backoff and re-enters the
  /// queue bound-exempt.
  bool submit(RoutingJob job, Callback on_complete);

  /// Blocks until every accepted job has completed (the queue stays
  /// open; more work may be submitted afterwards).
  void drain();

  /// Drain with an escalation deadline: waits up to \p deadline_ms for
  /// a clean drain, then hard-drains — cancels every running job (stage
  /// "drain"), drops scheduled retries and queued entries *without*
  /// completing them. Abandoned jobs keep their journal `accepted`
  /// records and are re-run by a later `--recover` pass. Returns the
  /// number of jobs abandoned (0 = clean drain).
  int drain_within(long long deadline_ms);

  /// Runs one job synchronously on the calling thread through the same
  /// execution path the workers use (admission, journaling, retries and
  /// supervision are not applied).
  JobResult run_inline(RoutingJob job);

  int workers() const { return pool_.size(); }
  const Options& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Supervision view of one worker: the running job's cancel source
  /// and the last observed heartbeat.
  struct Slot {
    std::mutex mu;
    bool busy = false;
    util::CancelSource cancel;
    long long last_progress = 0;
    Clock::time_point last_beat{};
  };

  struct RetryItem {
    Clock::time_point due;
    JobQueue::Entry entry;
  };

  void worker_loop(int slot);
  JobResult execute_job(RoutingJob& job, int slot);
  /// Terminal-vs-retry decision after an attempt.
  void finish_or_retry(JobQueue::Entry entry, JobResult result);
  /// Journals the terminal record, completes the callback, settles
  /// pending accounting.
  void finish(JobQueue::Entry& entry, JobResult result);
  /// Journals the retry record and schedules the next attempt.
  void schedule_retry(JobQueue::Entry entry, const util::Status& cause);
  /// Hard-drain path: settle accounting without completing.
  void abandon(JobQueue::Entry& entry);
  void journal_append(io::JournalRecord record);
  void settle_pending();
  void retry_loop();
  void supervise_loop();

  Options options_;
  JobQueue queue_;
  /// Fault-arming jobs take this exclusively; clean jobs take it shared.
  std::shared_mutex fault_mu_;
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  long long pending_ = 0;  ///< accepted but not yet completed/abandoned
  std::atomic<bool> hard_drain_{false};
  std::atomic<int> abandoned_{0};

  std::mutex retry_mu_;
  std::condition_variable retry_cv_;
  std::vector<RetryItem> retry_heap_;  ///< min-heap by due time
  bool retry_stop_ = false;
  std::thread retry_thread_;  ///< joined in the destructor body

  std::vector<std::unique_ptr<Slot>> slots_;
  /// Supervisor lifetime: constructed before / destroyed after pool_,
  /// so supervision stays active while the destructor joins workers (a
  /// hung job is still rescued during shutdown).
  struct Supervisor {
    std::atomic<bool> stop{false};
    std::thread thread;
    ~Supervisor();
  } supervisor_;
  util::ThreadPool pool_;  ///< declared last: workers use the members above
};

}  // namespace ocr::service

#pragma once
/// \file executor.hpp
/// \brief The job executor: admission, a bounded queue, worker drain
/// loops on the shared util::ThreadPool, and the single-job execution
/// path that the CLI and the daemon share.
///
/// Life of a job:
///
/// ```
/// submit(job, on_complete)
///   ├─ admission (service/admission.hpp): reject / down-tier / admit
///   ├─ rejected  -> on_complete(JobResult{rejected}) immediately
///   └─ admitted  -> bounded JobQueue -> worker drain loop
///                      └─ execute_run(...)  ← flow::run wraps this too
///                           └─ on_complete(JobResult) on the worker
/// ```
///
/// Completion is asynchronous: `on_complete` runs on the worker thread
/// that executed the job (or on the submitting thread for rejections).
/// Callbacks must be thread-safe against each other.
///
/// Per-job isolation guarantees:
///  * every job gets its own CancelSource and deadline watchdog — one
///    job's cancellation can never leak into another;
///  * every job gets its own MetricsRegistry scope; `flow.*` metrics in
///    a JobResult describe that job alone (the global registry still
///    accumulates totals across jobs);
///  * jobs that arm fault injection run *exclusively* (the registry is
///    process-global), serialized behind all concurrently running clean
///    jobs — a faulted job can never poison a clean one.

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "flow/run.hpp"
#include "service/admission.hpp"
#include "service/job.hpp"
#include "service/queue.hpp"
#include "util/thread_pool.hpp"

namespace ocr::service {

/// Orchestrates one routing run on the calling thread: arms faults,
/// starts the per-run deadline watchdog against \p cancel, dispatches
/// the flow, and classifies the outcome. This is the single code path
/// behind both `flow::run` (CLI) and the executor workers (daemon).
/// When \p job_registry is non-null, every flow.* metric is published
/// there as well as to the global registry.
flow::RunReport execute_run(const floorplan::MacroLayout& ml,
                            const partition::NetPartition& partition,
                            const flow::RunOptions& options,
                            util::CancelSource& cancel,
                            util::MetricsRegistry* job_registry = nullptr);

class JobExecutor {
 public:
  struct Options {
    /// Concurrent job workers (each job may additionally use its own
    /// level-B engine threads; see docs/SERVICE.md on oversubscription).
    int workers = 1;
    AdmissionPolicy admission;
  };

  using Callback = std::function<void(JobResult)>;

  explicit JobExecutor(const Options& options);
  /// Closes the queue, runs every already-accepted job to completion,
  /// and joins the workers.
  ~JobExecutor();

  JobExecutor(const JobExecutor&) = delete;
  JobExecutor& operator=(const JobExecutor&) = delete;

  /// Admission + enqueue. Returns true when the job was accepted.
  /// Returns false when it was rejected (queue bound or admission
  /// policy) — \p on_complete has then already been invoked with a
  /// rejected JobResult, so *every* submission produces exactly one
  /// completion either way.
  bool submit(RoutingJob job, Callback on_complete);

  /// Blocks until every accepted job has completed (the queue stays
  /// open; more work may be submitted afterwards).
  void drain();

  /// Runs one job synchronously on the calling thread through the same
  /// execution path the workers use (admission is not applied).
  JobResult run_inline(RoutingJob job);

  int workers() const { return pool_.size(); }
  const Options& options() const { return options_; }

 private:
  void worker_loop();
  JobResult execute_job(RoutingJob& job);

  Options options_;
  JobQueue queue_;
  /// Fault-arming jobs take this exclusively; clean jobs take it shared.
  std::shared_mutex fault_mu_;
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  long long pending_ = 0;  ///< accepted but not yet completed
  util::ThreadPool pool_;  ///< declared last: workers use the members above
};

}  // namespace ocr::service

/// \file run.cpp
/// \brief The single-job execution path (service::execute_run) and the
/// thin flow::run wrapper over it.
///
/// This used to be src/flow/run.cpp, a monolithic orchestrator only the
/// CLI could call. The body now lives in service::execute_run with the
/// CancelSource and metrics scope injected, so the JobExecutor workers
/// (daemon) and flow::run (CLI, tests) execute jobs through one code
/// path; flow::run is a wrapper that owns a fresh CancelSource and skips
/// the per-job metrics scope.

#include "flow/run.hpp"

#include <chrono>
#include <utility>

#include "engine/watchdog.hpp"
#include "service/executor.hpp"
#include "util/cancel.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace ocr {
namespace {

using util::Status;

/// Arms the fault registry per RunOptions::faults. Returns the fired
/// count baseline so the report can count only this run's faults.
Status arm_faults(const flow::RunOptions& options, long long& baseline) {
  util::FaultRegistry& registry = util::FaultRegistry::global();
  Status status;
  if (options.faults == "-") {
    registry.clear();
  } else if (!options.faults.empty()) {
    status = registry.configure(options.faults);
  } else {
    status = registry.configure_from_env();
  }
  baseline = registry.fired_count();
  return status;
}

}  // namespace

namespace flow {

const char* fail_policy_name(FailPolicy policy) {
  switch (policy) {
    case FailPolicy::kAbort:
      return "abort";
    case FailPolicy::kDegrade:
      return "degrade";
    case FailPolicy::kPartial:
      return "partial";
  }
  return "unknown";
}

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kClean:
      return "clean";
    case RunStatus::kPartial:
      return "partial";
    case RunStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

const char* flow_kind_name(FlowKind kind) {
  switch (kind) {
    case FlowKind::kOverCell:
      return "overcell";
    case FlowKind::kTwoLayer:
      return "2layer";
    case FlowKind::kFourLayer:
      return "4layer";
    case FlowKind::kFiftyPercent:
      return "50pct";
  }
  return "unknown";
}

int RunReport::exit_code() const {
  switch (status) {
    case RunStatus::kClean:
      return 0;
    case RunStatus::kPartial:
      return 3;
    case RunStatus::kFailed:
      return 1;
  }
  return 1;
}

RunReport run(const floorplan::MacroLayout& ml,
              const partition::NetPartition& partition,
              const RunOptions& options) {
  util::CancelSource source;
  return service::execute_run(ml, partition, options, source);
}

void publish_metrics(const FlowMetrics& m, util::MetricsRegistry& registry) {
  registry.counter("flow.runs").add();

  // Per-run results: last run wins (gauges).
  registry.gauge("flow.success").set(m.success ? 1 : 0);
  registry.gauge("flow.die_width").set(m.die_width);
  registry.gauge("flow.die_height").set(m.die_height);
  registry.gauge("flow.layout_area").set(m.layout_area);
  registry.gauge("flow.wire_length").set(m.wire_length);
  registry.gauge("flow.vias").set(m.vias);
  registry.gauge("flow.total_channel_tracks").set(m.total_channel_tracks);
  registry.gauge("flow.levela_nets").set(m.levela_nets);
  registry.gauge("flow.levelb_nets").set(m.levelb_nets);
  registry.gauge("flow.levelb_completion_permille")
      .set(static_cast<long long>(m.levelb_completion * 1000.0 + 0.5));
  registry.gauge("flow.levelb_threads").set(m.levelb_threads);
  registry.gauge("flow.problems").set(
      static_cast<long long>(m.problems.size()));
  // Memory high-water marks: both gauges by nature (ru_maxrss is already
  // monotonic over the process; grid bytes describe the last run's grid).
  registry.gauge("flow.peak_rss_kb").set(m.peak_rss_kb);
  registry.gauge("tig.grid_bytes").set(m.tig_grid_bytes);

  // Cumulative effort and degradation counts: accumulate across runs in
  // one process (counters).
  registry.counter("flow.levelb_vertices").add(m.levelb_vertices);
  registry.counter("flow.levelb_speculative_commits")
      .add(m.levelb_speculative_commits);
  registry.counter("flow.levelb_speculation_aborts")
      .add(m.levelb_speculation_aborts);
  registry.counter("flow.levelb_wasted_vertices")
      .add(m.levelb_wasted_vertices);
  registry.counter("flow.levelb_wasted_search_us")
      .add(m.levelb_wasted_search_us);
  registry.counter("flow.levelb_queue_wait_us").add(m.levelb_queue_wait_us);
  registry.counter("flow.levelb_grid_copies").add(m.levelb_grid_copies);
  registry.counter("flow.levelb_batches").add(m.levelb_batches);
  registry.counter("flow.levelb_boundary_nets").add(m.levelb_boundary_nets);
  registry.counter("flow.levelb_sharded_commits")
      .add(m.levelb_sharded_commits);
  registry.counter("flow.levelb_sharded_wasted_vertices")
      .add(m.levelb_sharded_wasted_vertices);
  registry.counter("flow.levelb_sharded_wasted_search_us")
      .add(m.levelb_sharded_wasted_search_us);
  registry.counter("flow.degrade_fault_reroutes")
      .add(m.degrade_fault_reroutes);
  registry.counter("flow.degrade_ripup_recovered")
      .add(m.degrade_ripup_recovered);
  registry.counter("flow.degrade_fault_drops").add(m.degrade_fault_drops);
  registry.counter("flow.unrouted_nets").add(m.unrouted_nets);
  registry.counter("flow.cancelled_nets").add(m.cancelled_nets);
  registry.counter("flow.budget_nets").add(m.budget_nets);
  registry.counter("flow.pool_task_failures").add(m.pool_task_failures);
  registry.counter("flow.faults_injected").add(m.faults_injected);
}

}  // namespace flow

namespace service {

flow::RunReport execute_run(const floorplan::MacroLayout& ml,
                            const partition::NetPartition& partition,
                            const flow::RunOptions& options,
                            util::CancelSource& source,
                            util::MetricsRegistry* job_registry) {
  using flow::FailPolicy;
  using flow::FlowKind;
  using flow::FlowMetrics;
  using flow::RunReport;
  using flow::RunStatus;

  RunReport report;

  long long fault_baseline = 0;
  const Status fault_status = arm_faults(options, fault_baseline);
  if (!fault_status.ok()) {
    report.status = RunStatus::kFailed;
    report.error = fault_status;
    return report;
  }

  flow::FlowOptions flow_options = options.flow;
  flow_options.levelb.trace = options.trace;
  flow_options.levelb.net_vertex_budget = options.net_effort;
  if (options.fail_policy == FailPolicy::kPartial) {
    // Mark-and-continue: no rip-up recovery rung, failures go straight
    // to "unrouted". (Validation-failure serial re-routes always stay —
    // they are a correctness requirement, not a recovery step.)
    flow_options.levelb.ripup_rounds = 0;
  }

  // The job-wide cancel source: the watchdog fires it on deadline, the
  // MBFS loops and the level-A channel loop observe it. The source is
  // injected per job, so one job's cancellation never touches another.
  flow_options.levelb.finder.cancel = source.token();

  {
    engine::Watchdog::Options wopt;
    wopt.deadline = std::chrono::milliseconds(
        options.deadline_ms > 0 ? options.deadline_ms : 0);
    engine::Watchdog watchdog(source, wopt);

    switch (options.kind) {
      case FlowKind::kOverCell:
        report.metrics = flow::run_over_cell_flow(ml, partition, flow_options,
                                                  options.artifacts);
        break;
      case FlowKind::kTwoLayer:
        report.metrics =
            flow::run_two_layer_flow(ml, flow_options, options.artifacts);
        break;
      case FlowKind::kFourLayer:
        report.metrics = flow::run_four_layer_channel_flow(
            ml, flow_options, options.artifacts);
        break;
      case FlowKind::kFiftyPercent:
        report.metrics = flow::run_fifty_percent_model_flow(ml, flow_options);
        break;
    }
    report.deadline_fired = watchdog.fired();
  }  // joins the watchdog before classifying

  FlowMetrics& m = report.metrics;
  m.faults_injected =
      util::FaultRegistry::global().fired_count() - fault_baseline;

  // Classify. "Degraded but usable" means level A hard-failed nothing
  // and the only problems are unrouted/cancelled/dropped level-B nets.
  const bool degraded = m.unrouted_nets > 0 || m.degrade_fault_drops > 0 ||
                        source.cancelled();
  if (!m.success) {
    report.status = RunStatus::kFailed;
    report.error = source.cancelled()
                       ? source.reason()
                       : Status::internal(m.problems.empty()
                                              ? "flow failed"
                                              : m.problems.front())
                             .with_stage("flow");
  } else if (degraded) {
    if (options.fail_policy == FailPolicy::kAbort) {
      report.status = RunStatus::kFailed;
      report.error =
          source.cancelled()
              ? source.reason()
              : Status::unroutable(m.problems.empty() ? "nets unrouted"
                                                      : m.problems.front())
                    .with_stage("flow");
    } else {
      report.status = RunStatus::kPartial;
      if (source.cancelled()) report.error = source.reason();
    }
  } else {
    report.status = RunStatus::kClean;
  }

  if (options.trace != nullptr) {
    util::TraceEvent ev("degrade");
    ev.add("status", flow::run_status_name(report.status))
        .add("fail_policy", flow::fail_policy_name(options.fail_policy))
        .add("fault_reroutes", m.degrade_fault_reroutes)
        .add("ripup_recovered", m.degrade_ripup_recovered)
        .add("fault_drops", m.degrade_fault_drops)
        .add("unrouted_nets", m.unrouted_nets)
        .add("cancelled_nets", m.cancelled_nets)
        .add("budget_nets", m.budget_nets)
        .add("pool_task_failures", m.pool_task_failures)
        .add("faults_injected", m.faults_injected)
        .add("deadline_fired", report.deadline_fired);
    options.trace->record(std::move(ev));
  }
  if (report.deadline_fired) {
    OCR_WARN() << "routing run hit its deadline: "
               << source.reason().to_string();
  }

  // Publish into the global registry (cross-job totals) and, when the
  // executor provided one, into the per-job scope as well.
  const auto publish_to = [&](util::MetricsRegistry& registry) {
    flow::publish_metrics(report.metrics, registry);
    registry.gauge("flow.status").set(static_cast<long long>(report.status));
    if (report.deadline_fired) registry.counter("flow.deadline_fired").add();
  };
  publish_to(util::MetricsRegistry::global());
  if (job_registry != nullptr) publish_to(*job_registry);

  return report;
}

}  // namespace service
}  // namespace ocr

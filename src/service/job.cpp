#include "service/job.hpp"

#include <cstdlib>
#include <utility>

#include "bench_data/synthetic.hpp"
#include "io/layout_io.hpp"
#include "util/str.hpp"

namespace ocr::service {

using util::Status;
using util::StatusOr;

StatusOr<JobSpec> spec_from_request(const io::JobRequest& request) {
  JobSpec spec;
  spec.id = request.id;
  spec.example = request.example;
  spec.input = request.input;
  if (spec.example.empty() == spec.input.empty()) {
    return Status::invalid_argument(
               "exactly one of 'example' / 'input' is required")
        .with_stage("job");
  }

  if (request.flow == "overcell") {
    spec.kind = flow::FlowKind::kOverCell;
  } else if (request.flow == "2layer") {
    spec.kind = flow::FlowKind::kTwoLayer;
  } else if (request.flow == "4layer") {
    spec.kind = flow::FlowKind::kFourLayer;
  } else if (request.flow == "50pct") {
    spec.kind = flow::FlowKind::kFiftyPercent;
  } else {
    return Status::invalid_argument("unknown flow '" + request.flow + "'")
        .with_stage("job");
  }

  spec.partition = request.partition;
  if (spec.partition != "class" && spec.partition != "allb" &&
      !util::starts_with(spec.partition, "length=")) {
    return Status::invalid_argument("unknown partition '" + spec.partition +
                                    "'")
        .with_stage("job");
  }

  if (request.fail_policy == "abort") {
    spec.fail_policy = flow::FailPolicy::kAbort;
  } else if (request.fail_policy == "degrade") {
    spec.fail_policy = flow::FailPolicy::kDegrade;
  } else if (request.fail_policy == "partial") {
    spec.fail_policy = flow::FailPolicy::kPartial;
  } else {
    return Status::invalid_argument("unknown fail policy '" +
                                    request.fail_policy + "'")
        .with_stage("job");
  }

  if (request.threads < 0) {
    return Status::invalid_argument("threads must be >= 0").with_stage("job");
  }
  if (request.engine_mode != "speculative" &&
      request.engine_mode != "sharded" && request.engine_mode != "auto") {
    return Status::invalid_argument("unknown engine mode '" +
                                    request.engine_mode + "'")
        .with_stage("job");
  }
  spec.engine_mode = request.engine_mode;
  if (request.deadline_ms < 0 || request.net_effort < 0) {
    return Status::invalid_argument("deadline_ms / net_effort must be >= 0")
        .with_stage("job");
  }
  spec.threads = request.threads;
  spec.deadline_ms = request.deadline_ms;
  spec.net_effort = request.net_effort;
  spec.faults = request.faults;
  spec.manifest_path = request.manifest;
  return spec;
}

StatusOr<floorplan::MacroLayout> make_instance(
    const JobSpec& spec, std::vector<std::string>* warnings) {
  if (!spec.input.empty()) {
    io::ParseOptions options;
    options.lenient = spec.fail_policy != flow::FailPolicy::kAbort;
    io::ParseResult parsed = io::load_layout(spec.input, options);
    if (!parsed.ok()) {
      return parsed.status.ok()
                 ? Status::io_error(parsed.error).with_stage("job")
                 : parsed.status;
    }
    if (warnings != nullptr) {
      warnings->insert(warnings->end(), parsed.warnings.begin(),
                       parsed.warnings.end());
    }
    return std::move(*parsed.layout);
  }
  if (spec.example == "ami33") {
    return bench_data::generate_macro_layout(bench_data::ami33_spec());
  }
  if (spec.example == "xerox" || spec.example == "Xerox") {
    return bench_data::generate_macro_layout(bench_data::xerox_spec());
  }
  if (spec.example == "ex3") {
    return bench_data::generate_macro_layout(bench_data::ex3_spec());
  }
  if (util::starts_with(spec.example, "random")) {
    std::uint64_t seed = 1;
    const auto colon = spec.example.find(':');
    if (colon != std::string::npos) {
      seed = std::strtoull(spec.example.c_str() + colon + 1, nullptr, 10);
    }
    return bench_data::generate_macro_layout(bench_data::random_spec(seed));
  }
  return Status::invalid_argument("unknown example '" + spec.example + "'")
      .with_stage("job");
}

StatusOr<partition::NetPartition> make_partition(
    const std::string& policy, const netlist::Layout& layout) {
  if (policy == "class") {
    return partition::partition_by_class(layout);
  }
  if (policy == "allb") {
    return partition::partition_all_b(layout);
  }
  if (util::starts_with(policy, "length=")) {
    const geom::Coord threshold =
        std::strtoll(policy.c_str() + 7, nullptr, 10);
    return partition::partition_by_length(layout, threshold);
  }
  return Status::invalid_argument("unknown partition '" + policy + "'")
      .with_stage("job");
}

StatusOr<RoutingJob> materialize(const JobSpec& spec) {
  StatusOr<floorplan::MacroLayout> instance = make_instance(spec);
  if (!instance.ok()) return instance.status();

  RoutingJob job;
  job.spec = spec;
  job.layout = std::move(instance).value();

  // One zero-height assembly feeds both the partition policy and the
  // pre-route estimate (non-overcell flows still benefit from the
  // estimate for admission, so it is always computed).
  const netlist::Layout zero = job.layout.assemble(std::vector<geom::Coord>(
      static_cast<std::size_t>(job.layout.num_channels()), 0));
  job.estimate = estimate_route(job.layout, zero);
  if (spec.kind == flow::FlowKind::kOverCell) {
    StatusOr<partition::NetPartition> part =
        make_partition(spec.partition, zero);
    if (!part.ok()) return part.status();
    job.partition = std::move(part).value();
  }
  return job;
}

flow::RunOptions job_run_options(const RoutingJob& job) {
  flow::RunOptions options;
  options.kind = job.spec.kind;
  options.flow.levelb_threads = job.spec.threads;
  options.flow.levelb_engine_mode = job.spec.engine_mode;
  options.fail_policy = job.spec.fail_policy;
  options.deadline_ms = job.spec.deadline_ms;
  options.net_effort = job.spec.net_effort;
  options.faults = job.spec.faults;
  return options;
}

io::JobResponse to_response(const JobResult& result) {
  io::JobResponse response;
  response.id = result.id;
  response.status = result.status_name();
  response.exit_class = result.exit_class();
  response.queue_ms = result.queue_ms;
  response.run_ms = result.run_ms;
  const flow::FlowMetrics& m = result.report.metrics;
  response.wire_length = m.wire_length;
  response.vias = m.vias;
  response.unrouted_nets = m.unrouted_nets;
  response.cancelled_nets = m.cancelled_nets;
  response.deadline_fired = result.report.deadline_fired;
  response.faults_injected = m.faults_injected;
  response.attempts = result.attempts;
  if (result.rejected) {
    response.error = result.reject_reason.to_string();
  } else if (!result.report.error.ok()) {
    response.error = result.report.error.to_string();
  }
  response.manifest = result.manifest_path;
  return response;
}

}  // namespace ocr::service

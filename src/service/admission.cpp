#include "service/admission.hpp"

#include <algorithm>

#include "geom/layers.hpp"
#include "util/str.hpp"

namespace ocr::service {

RouteEstimate estimate_route(const floorplan::MacroLayout& ml,
                             const netlist::Layout& zero_assembled) {
  const netlist::Layout& layout = zero_assembled;
  RouteEstimate est;
  est.cells = static_cast<int>(layout.cells().size());
  est.nets = static_cast<int>(layout.nets().size());
  est.pins = static_cast<int>(layout.pins().size());

  // Demand: per-net bounding box of pin positions, half-perimeter.
  for (const netlist::Net& net : layout.nets()) {
    if (net.pins.size() < 2) continue;
    geom::Coord min_x = 0, max_x = 0, min_y = 0, max_y = 0;
    bool first = true;
    for (const netlist::PinId pin_id : net.pins) {
      const geom::Point& p = layout.pin(pin_id).position;
      if (first) {
        min_x = max_x = p.x;
        min_y = max_y = p.y;
        first = false;
      } else {
        min_x = std::min(min_x, p.x);
        max_x = std::max(max_x, p.x);
        min_y = std::min(min_y, p.y);
        max_y = std::max(max_y, p.y);
      }
    }
    est.demand_dbu += (max_x - min_x) + (max_y - min_y);
  }

  // Capacity: level-B routes horizontal wires on metal3 and vertical
  // wires on metal4; the track supply over the zero-height assembly is a
  // (slightly optimistic) proxy for the real TIG built after level A —
  // channels only grow the die, so the real capacity is at least this.
  const geom::Rect& die = zero_assembled.die();
  const geom::DesignRules& rules = ml.rules();
  const geom::Coord h_pitch = rules.rule(geom::Layer::kMetal3).pitch();
  const geom::Coord v_pitch = rules.rule(geom::Layer::kMetal4).pitch();
  const geom::Coord width = die.width();
  const geom::Coord height = die.height();
  if (width > 0 && height > 0 && h_pitch > 0 && v_pitch > 0) {
    const long long h_tracks = height / h_pitch;
    const long long v_tracks = width / v_pitch;
    est.capacity_dbu = h_tracks * width + v_tracks * height;
  }
  if (est.capacity_dbu > 0) {
    est.congestion = static_cast<double>(est.demand_dbu) /
                     static_cast<double>(est.capacity_dbu);
  }
  return est;
}

const char* admission_decision_name(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmit:
      return "admit";
    case AdmissionDecision::kDowntier:
      return "downtier";
    case AdmissionDecision::kReject:
      return "reject";
  }
  return "unknown";
}

AdmissionDecision admit(const AdmissionPolicy& policy,
                        const RouteEstimate& estimate, std::string* reason) {
  if (policy.max_nets > 0 && estimate.nets > policy.max_nets) {
    if (reason != nullptr) {
      *reason = util::format("instance has %d nets, admission limit is %d",
                             estimate.nets, policy.max_nets);
    }
    return AdmissionDecision::kReject;
  }
  if (policy.reject_congestion > 0.0 &&
      estimate.congestion > policy.reject_congestion) {
    if (reason != nullptr) {
      *reason = util::format(
          "estimated congestion %.3f exceeds admission ceiling %.3f",
          estimate.congestion, policy.reject_congestion);
    }
    return AdmissionDecision::kReject;
  }
  if (policy.downtier_congestion > 0.0 &&
      estimate.congestion > policy.downtier_congestion) {
    return AdmissionDecision::kDowntier;
  }
  return AdmissionDecision::kAdmit;
}

}  // namespace ocr::service

#include "flow/check.hpp"

#include <algorithm>
#include <map>

#include "channel/route.hpp"
#include "levelb/path.hpp"
#include "util/str.hpp"

namespace ocr::flow {
namespace {

using geom::Coord;
using geom::Interval;
using geom::Orientation;
using geom::Point;

struct TrackLeg {
  int net = 0;
  Interval span;
  Point a;
  Point b;
};

Coord point_to_leg_distance(const Point& p, const TrackLeg& leg) {
  const Coord x = std::clamp(p.x, std::min(leg.a.x, leg.b.x),
                             std::max(leg.a.x, leg.b.x));
  const Coord y = std::clamp(p.y, std::min(leg.a.y, leg.b.y),
                             std::max(leg.a.y, leg.b.y));
  return geom::manhattan(p, Point{x, y});
}

class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    parent_[static_cast<std::size_t>(find(a))] = find(b);
  }

 private:
  std::vector<int> parent_;
};

bool legs_touch(const TrackLeg& u, const TrackLeg& v) {
  const geom::Rect bu = geom::Rect::from_corners(u.a, u.b);
  const geom::Rect bv = geom::Rect::from_corners(v.a, v.b);
  return bu.overlaps(bv);
}

}  // namespace

std::vector<std::string> check_over_cell_result(
    const FlowArtifacts& artifacts) {
  std::vector<std::string> problems;
  const auto complain = [&problems](std::string msg) {
    problems.push_back(std::move(msg));
  };

  // ---- layout sanity --------------------------------------------------
  for (const std::string& p : artifacts.layout.validate()) {
    complain("layout: " + p);
  }

  // ---- level-A channels -----------------------------------------------
  for (std::size_t c = 0; c < artifacts.channel_routes.size() &&
                          c < artifacts.global.channels.size();
       ++c) {
    const auto& route = artifacts.channel_routes[c];
    if (!route.success) {
      complain(util::format("channel %zu unrouted", c));
      continue;
    }
    for (const std::string& p :
         channel::validate_route(artifacts.global.channels[c], route)) {
      complain(util::format("channel %zu: %s", c, p.c_str()));
    }
  }

  // ---- level-B geometry -------------------------------------------------
  const geom::DesignRules& rules = artifacts.layout.rules();
  tig::TrackGrid grid = tig::TrackGrid::uniform(
      artifacts.layout.die(), rules.rule(geom::Layer::kMetal3).pitch(),
      rules.rule(geom::Layer::kMetal4).pitch());

  std::map<std::pair<int, int>, std::vector<TrackLeg>> by_track;
  std::map<int, std::vector<TrackLeg>> legs_of_net;
  for (const levelb::NetResult& net : artifacts.levelb.nets) {
    for (const levelb::Path& path : net.paths) {
      if (path.points.size() < 2) {
        complain(util::format("net %d has a degenerate path", net.id));
        continue;
      }
      for (const std::string& p : levelb::validate_path(
               grid, path, path.points.front(), path.points.back())) {
        complain(util::format("net %d: %s", net.id, p.c_str()));
      }
      for (std::size_t leg = 0; leg + 1 < path.points.size(); ++leg) {
        const Point& a = path.points[leg];
        const Point& b = path.points[leg + 1];
        const auto& t = path.tracks[leg];
        const bool horizontal = t.orient == Orientation::kHorizontal;
        TrackLeg tl{net.id,
                    horizontal
                        ? Interval(std::min(a.x, b.x), std::max(a.x, b.x))
                        : Interval(std::min(a.y, b.y), std::max(a.y, b.y)),
                    a, b};
        by_track[{horizontal ? 0 : 1, t.index}].push_back(tl);
        legs_of_net[net.id].push_back(tl);
      }
    }
  }

  // Exclusivity: different nets never share a point of a track.
  for (const auto& [track, legs] : by_track) {
    for (std::size_t i = 0; i < legs.size(); ++i) {
      for (std::size_t j = i + 1; j < legs.size(); ++j) {
        if (legs[i].net == legs[j].net) continue;
        if (legs[i].span.overlaps(legs[j].span)) {
          complain(util::format(
              "nets %d and %d overlap on %s track %d", legs[i].net,
              legs[j].net, track.first == 0 ? "horizontal" : "vertical",
              track.second));
        }
      }
    }
  }

  // Obstacle avoidance on the leg's own layer.
  for (const netlist::Obstacle& o : artifacts.layout.obstacles()) {
    for (const auto& [track, legs] : by_track) {
      const bool horizontal = track.first == 0;
      if (horizontal && !o.blocks_metal3) continue;
      if (!horizontal && !o.blocks_metal4) continue;
      for (const TrackLeg& leg : legs) {
        const geom::Rect box = geom::Rect::from_corners(leg.a, leg.b);
        if (box.overlaps(o.region)) {
          complain(util::format(
              "net %d crosses obstacle '%s' on %s", leg.net,
              o.reason.c_str(), horizontal ? "metal3" : "metal4"));
        }
      }
    }
  }

  // Connectivity of complete nets: all snapped terminals reachable via
  // touching legs. Tolerance of ~1.5 grid pitches absorbs the router's
  // collision-aware terminal snapping.
  const Coord tolerance =
      (rules.rule(geom::Layer::kMetal3).pitch() +
       rules.rule(geom::Layer::kMetal4).pitch()) *
      3 / 2;
  for (const levelb::NetResult& net : artifacts.levelb.nets) {
    if (!net.complete) continue;
    const auto it = legs_of_net.find(net.id);
    const netlist::NetId nid{static_cast<std::uint32_t>(net.id)};
    const auto pins = artifacts.layout.net_pin_positions(nid);
    if (pins.size() < 2) continue;
    if (it == legs_of_net.end()) {
      // Complete without wiring is only legal if all pins snap together.
      bool coincide = true;
      for (const Point& p : pins) {
        if (geom::manhattan(grid.snap(p), grid.snap(pins.front())) >
            tolerance) {
          coincide = false;
        }
      }
      if (!coincide) {
        complain(util::format("net %d marked complete but has no wiring",
                              net.id));
      }
      continue;
    }
    const auto& legs = it->second;
    DisjointSet dsu(legs.size() + pins.size());
    for (std::size_t i = 0; i < legs.size(); ++i) {
      for (std::size_t j = i + 1; j < legs.size(); ++j) {
        if (legs_touch(legs[i], legs[j])) {
          dsu.unite(static_cast<int>(i), static_cast<int>(j));
        }
      }
    }
    for (std::size_t p = 0; p < pins.size(); ++p) {
      bool attached = false;
      for (std::size_t i = 0; i < legs.size(); ++i) {
        if (point_to_leg_distance(pins[p], legs[i]) <= tolerance) {
          dsu.unite(static_cast<int>(legs.size() + p),
                    static_cast<int>(i));
          attached = true;
        }
      }
      if (!attached) {
        complain(util::format("net %d: pin %zu is not on the wiring",
                              net.id, p));
      }
    }
    const int root = dsu.find(static_cast<int>(legs.size()));
    for (std::size_t p = 1; p < pins.size(); ++p) {
      if (dsu.find(static_cast<int>(legs.size() + p)) != root) {
        complain(util::format(
            "net %d: wiring splits into disconnected pieces", net.id));
        break;
      }
    }
  }
  return problems;
}

}  // namespace ocr::flow

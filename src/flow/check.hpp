#pragma once
/// \file check.hpp
/// \brief End-to-end verification of a routed over-cell flow.
///
/// A lightweight DRC/LVS for the library's own output: given the
/// artifacts of run_over_cell_flow, verify that
///  * every channel route is legal against its channel problem,
///  * level-B wiring of different nets never shares a track extent,
///  * no level-B leg crosses an obstacle on its own layer,
///  * every complete level-B net actually connects all of its terminals
///    (union-find over legs and snapped pins),
///  * every path is rectilinear and rides real tracks.
///
/// Returns human-readable violations; an empty list certifies the run.
/// Used by tests and by `ocr_route --check`.

#include <string>
#include <vector>

#include "flow/flow.hpp"

namespace ocr::flow {

std::vector<std::string> check_over_cell_result(
    const FlowArtifacts& artifacts);

}  // namespace ocr::flow

#pragma once
/// \file run.hpp
/// \brief Fault-tolerant flow orchestrator: wraps the routing flows in
/// deadlines, effort budgets, fault injection and a degradation ladder.
///
/// `flow::run` is what `ocr_route` calls. It owns the run-wide
/// CancelSource, starts the engine watchdog when a deadline is set,
/// threads budgets/tokens into the level-B options, arms the fault
/// registry, and classifies the outcome:
///
/// * **clean**   — every net routed, no problems (exit code 0);
/// * **partial** — the layout is usable but degraded: some nets are
///   unrouted, cancelled, budget-stopped or fault-dropped (exit code 3);
/// * **failed**  — a hard failure, or any problem under the `abort`
///   fail-policy (exit code 1).
///
/// The degradation ladder (policy `degrade`) is: speculation-validation
/// failure -> serial re-route on the live grid -> rip-up round -> mark
/// the net unrouted and continue. Every downgrade is counted in
/// FlowMetrics and, when a TraceSink is attached, emitted as a
/// "degrade" trace event.

#include <string>

#include "flow/flow.hpp"
#include "util/metrics.hpp"
#include "util/status.hpp"
#include "util/trace.hpp"

namespace ocr::flow {

/// Which flow to orchestrate (the four Table-2/3 columns).
enum class FlowKind {
  kOverCell,      ///< run_over_cell_flow (the paper's methodology)
  kTwoLayer,      ///< run_two_layer_flow baseline
  kFourLayer,     ///< run_four_layer_channel_flow baseline
  kFiftyPercent,  ///< run_fifty_percent_model_flow model
};

/// What to do when nets fail or faults fire.
enum class FailPolicy {
  kAbort,    ///< any problem fails the run (exit 1); no recovery rungs
  kDegrade,  ///< full ladder: serial re-route, rip-up, then mark & go on
  kPartial,  ///< mark-and-continue: no rip-up recovery, report partial
};

/// Outcome classification; exit_code() maps it for tools.
enum class RunStatus { kClean, kPartial, kFailed };

const char* fail_policy_name(FailPolicy policy);
const char* run_status_name(RunStatus status);
/// "overcell", "2layer", "4layer" or "50pct" — the CLI/JSONL spellings.
const char* flow_kind_name(FlowKind kind);

struct RunOptions {
  FlowOptions flow;
  FlowKind kind = FlowKind::kOverCell;
  FailPolicy fail_policy = FailPolicy::kDegrade;
  /// Wall-clock deadline for the whole run in ms; 0 = none. Enforced by
  /// an engine::Watchdog through the run's cancel token; the run
  /// terminates well within 2x this value at any thread count.
  long long deadline_ms = 0;
  /// Per-net vertex-expansion budget (levelb net_vertex_budget); 0 =
  /// unlimited.
  long long net_effort = 0;
  /// Fault-injection spec (util/fault.hpp grammar). Empty = read the
  /// OCR_FAULTS environment variable; "-" = force-disable injection.
  std::string faults;
  /// Trace sink for flow + degradation events (also wired into levelb).
  util::TraceSink* trace = nullptr;
  /// When set, the flow fills detailed artifacts (visualization, checks).
  FlowArtifacts* artifacts = nullptr;
};

struct RunReport {
  FlowMetrics metrics;
  RunStatus status = RunStatus::kClean;
  /// Primary failure (or cancellation reason); OK when clean.
  util::Status error;
  /// Whether the deadline watchdog fired.
  bool deadline_fired = false;

  /// Process exit code contract: 0 clean, 1 failed, 3 partial (2 is
  /// reserved for usage errors in tools).
  int exit_code() const;
};

/// Orchestrates one routing run. \p partition is only consulted by the
/// over-cell flow.
///
/// This is a thin single-job wrapper over `service::execute_run`
/// (src/service/executor.hpp) — the CLI and the `ocr_served` daemon
/// share that one execution path. The implementation lives in
/// `ocr_service` (src/service/run.cpp); callers must link it.
RunReport run(const floorplan::MacroLayout& ml,
              const partition::NetPartition& partition,
              const RunOptions& options);

/// Publishes every FlowMetrics quantity into \p registry under `flow.*`
/// names (gauges for per-run results, counters for cumulative event
/// counts — see docs/OBSERVABILITY.md for the catalog). flow::run calls
/// this on every report; exposed so tests and tools can publish metrics
/// they computed through the flow functions directly.
void publish_metrics(const FlowMetrics& metrics,
                     util::MetricsRegistry& registry =
                         util::MetricsRegistry::global());

}  // namespace ocr::flow

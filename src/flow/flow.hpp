#pragma once
/// \file flow.hpp
/// \brief End-to-end routing flows: the paper's two-level methodology and
/// the baselines it is evaluated against.
///
/// Four flows, one per column of the paper's Tables 2 and 3:
///
/// * `run_two_layer_flow`      — the conventional baseline: every net is
///   channel-routed on metal1/metal2 (Table 2's comparator).
/// * `run_over_cell_flow`      — the proposed methodology: set-A nets in
///   channels (level A), set-B nets over the whole layout on metal3/4
///   (level B).
/// * `run_four_layer_channel_flow` — a real 4-layer channel router
///   (mlchannel layer-pair partitioning) for every net.
/// * `run_fifty_percent_model_flow` — the paper's optimistic Table-3
///   model: the two-layer solution with channel tracks halved.
///
/// Each flow returns FlowMetrics (layout area, wire length, via count,
/// completion) and can optionally surface FlowArtifacts for visualization
/// and inspection.

#include <string>
#include <vector>

#include "channel/greedy.hpp"
#include "floorplan/macro_layout.hpp"
#include "global/global_router.hpp"
#include "levelb/router.hpp"
#include "mlchannel/multilayer.hpp"
#include "netlist/layout.hpp"
#include "partition/partition.hpp"
#include "tig/track_grid.hpp"

namespace ocr::flow {

struct FlowOptions {
  channel::GreedyOptions greedy;
  levelb::LevelBOptions levelb;
  /// Boundary clearance added to every non-empty channel, in dbu.
  geom::Coord channel_margin = 6;
  /// Floor applied to every channel height, including empty channels.
  /// Zero by default; the all-over-cell policy (§5) needs a few dbu of
  /// row separation or the pin rows collapse onto too few metal3 tracks
  /// (the paper's caveat: eliminating channels assumes the level-B
  /// solution space still guarantees completion).
  geom::Coord min_channel_height = 0;
  /// Stacked vias charged per level-B terminal connection (metal1/2 pin up
  /// to the metal3/4 wire; the paper argues these land on the terminal
  /// pads, but they are still vias and counted as such).
  int terminal_stack_vias = 2;
  /// Run the corner-straightening post-pass on the level-B wiring
  /// (levelb/optimize.hpp). Off by default to keep the paper-faithful
  /// single-pass numbers; the ablation bench quantifies the gain.
  bool straighten_levelb = false;
  /// Level-B engine worker threads: 1 = the serial router, N > 1 =
  /// speculative parallel search with deterministic commit (results are
  /// bit-identical for any value), <= 0 = one per hardware thread.
  int levelb_threads = 1;
  /// Parallel dispatch strategy for threads > 1: "speculative", "sharded"
  /// or "auto" (engine::EngineMode; every mode is serial-exact). An
  /// unknown name fails the flow up front.
  std::string levelb_engine_mode = "speculative";
  /// Path to a prior run's manifest for engine_mode=auto: the measured
  /// abort/escape rates in it override the static mean-batch heuristic
  /// (engine/auto_hint.hpp). Empty = no hint; an unreadable or hint-less
  /// file silently falls back to the static heuristic.
  std::string levelb_engine_hint_manifest;
};

/// Quality metrics of one routed flow (the quantities of Tables 2 and 3).
struct FlowMetrics {
  std::string flow_name;
  std::string example_name;
  bool success = true;
  std::vector<std::string> problems;

  geom::Coord die_width = 0;
  geom::Coord die_height = 0;
  geom::Coord layout_area = 0;
  long long wire_length = 0;  ///< dbu
  int vias = 0;
  int total_channel_tracks = 0;
  int levela_nets = 0;
  int levelb_nets = 0;
  double levelb_completion = 1.0;

  // Level-B engine observability (over-cell flow only).
  int levelb_threads = 1;                    ///< resolved worker count
  std::string levelb_engine_mode = "serial"; ///< dispatch that ran:
                                             ///  serial/speculative/sharded
  long long levelb_vertices = 0;             ///< MBFS vertices examined
  long long levelb_speculative_commits = 0;  ///< speculations accepted
  long long levelb_speculation_aborts = 0;   ///< speculations re-routed
  long long levelb_batches = 0;              ///< shard batches dispatched
  long long levelb_boundary_nets = 0;        ///< shard escapes re-routed
  long long levelb_sharded_commits = 0;      ///< batch results committed
  long long levelb_sharded_wasted_vertices = 0;   ///< escape search waste
  long long levelb_sharded_wasted_search_us = 0;  ///< escape search time
  long long levelb_wasted_vertices = 0;      ///< MBFS vertices of
                                             ///  discarded speculations
  long long levelb_wasted_search_us = 0;     ///< search time of discarded
                                             ///  speculations
  long long levelb_queue_wait_us = 0;        ///< workers' claim blocking
  long long levelb_grid_copies = 0;          ///< snapshot grid copies
  std::string levelb_auto_source;            ///< auto decision input:
                                             ///  none/manifest/static

  // Memory observability (over-cell flow only).
  long long peak_rss_kb = 0;      ///< process ru_maxrss after routing
  long long tig_grid_bytes = 0;   ///< live grid heap (chunked occupancy
                                  ///  + gap cache) after routing

  // Degradation-ladder counters (see DESIGN.md "Failure model"). All
  // zero on a healthy run without deadline/budget limits.
  long long degrade_fault_reroutes = 0;   ///< rung 1: serial re-routes of
                                          ///  faulted/poisoned commits
  int degrade_ripup_recovered = 0;        ///< rung 2: rip-up rescues
  long long degrade_fault_drops = 0;      ///< rung 3: nets dropped by an
                                          ///  apply fault
  int unrouted_nets = 0;     ///< level-B nets left incomplete
  int cancelled_nets = 0;    ///< of those, stopped by deadline/cancel
  int budget_nets = 0;       ///< of those, stopped by the effort budget
  long long pool_task_failures = 0;  ///< engine worker tasks that threw
  long long faults_injected = 0;     ///< registered faults that fired
};

/// Percent reduction of \p ours vs \p baseline for a metric (positive =
/// we are smaller), as the paper's Table 2 reports.
double percent_reduction(double baseline, double ours);

/// Optional detailed outputs for visualization and debugging.
struct FlowArtifacts {
  netlist::Layout layout{"unassembled"};
  std::vector<geom::Coord> channel_heights;
  std::vector<channel::ChannelRoute> channel_routes;
  global::GlobalRouteResult global;
  levelb::LevelBResult levelb;
  /// The level-B grid after routing (committed wires + obstacles).
  std::vector<geom::Rect> levelb_obstacles;
};

FlowMetrics run_two_layer_flow(const floorplan::MacroLayout& ml,
                               const FlowOptions& options = {},
                               FlowArtifacts* artifacts = nullptr);

FlowMetrics run_over_cell_flow(const floorplan::MacroLayout& ml,
                               const partition::NetPartition& partition,
                               const FlowOptions& options = {},
                               FlowArtifacts* artifacts = nullptr);

FlowMetrics run_four_layer_channel_flow(const floorplan::MacroLayout& ml,
                                        const FlowOptions& options = {},
                                        FlowArtifacts* artifacts = nullptr);

FlowMetrics run_fifty_percent_model_flow(const floorplan::MacroLayout& ml,
                                         const FlowOptions& options = {});

}  // namespace ocr::flow

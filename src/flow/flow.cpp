#include "flow/flow.hpp"

#include "engine/engine.hpp"
#include "levelb/optimize.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/mem.hpp"
#include "util/profile.hpp"

namespace ocr::flow {
namespace {

using floorplan::MacroLayout;
using geom::Coord;

std::vector<int> to_indices(const std::vector<netlist::NetId>& ids) {
  std::vector<int> out;
  out.reserve(ids.size());
  for (netlist::NetId id : ids) out.push_back(static_cast<int>(id.index()));
  return out;
}

/// Level-A routing of \p nets: global route into channels, then greedy
/// two-layer detail routing per channel. Produces channel heights and the
/// level-A share of the metrics.
struct LevelAOutcome {
  bool success = true;
  std::vector<std::string> problems;
  global::GlobalRouteResult global;
  std::vector<channel::ChannelRoute> routes;
  std::vector<Coord> heights;
  long long wire_length = 0;
  int vias = 0;
  int total_tracks = 0;
};

LevelAOutcome route_level_a(const MacroLayout& ml,
                            const std::vector<int>& nets,
                            const FlowOptions& options) {
  OCR_SPAN("flow.levelA");
  LevelAOutcome out;
  const geom::DesignRules& rules = ml.rules();
  const Coord col_pitch =
      rules.channel_pitch(geom::Layer::kMetal1, geom::Layer::kMetal2);
  const Coord track_pitch = col_pitch;

  global::GlobalOptions gopt;
  gopt.column_pitch = col_pitch;
  out.global = global::global_route(ml, nets, gopt);
  if (!out.global.success) {
    out.success = false;
    out.problems = out.global.problems;
  }

  out.heights.resize(static_cast<std::size_t>(ml.num_channels()), 0);
  for (int c = 0; c < ml.num_channels(); ++c) {
    // Deadline/cancel support (flow::run): remaining channels are skipped
    // and reported, never half-routed.
    if (options.levelb.finder.cancel.cancelled()) {
      out.success = false;
      out.problems.push_back(
          "level A cancelled before channel " + std::to_string(c) + ": " +
          options.levelb.finder.cancel.reason().to_string());
      break;
    }
    const channel::ChannelProblem& problem =
        out.global.channels[static_cast<std::size_t>(c)];
    channel::ChannelRoute route =
        channel::route_greedy(problem, options.greedy);
    if (!route.success) {
      out.success = false;
      out.problems.push_back("channel " + std::to_string(c) + ": " +
                             route.failure_reason);
    }
    const bool has_pins = problem.max_net() > 0;
    out.heights[static_cast<std::size_t>(c)] = std::max(
        static_cast<Coord>(route.num_tracks) * track_pitch +
            (has_pins ? options.channel_margin : 0),
        options.min_channel_height);
    out.total_tracks += route.num_tracks;
    long long h_len = 0;
    long long v_len = 0;
    for (const channel::HSeg& h : route.hsegs) h_len += h.col_hi - h.col_lo;
    for (const channel::VSeg& v : route.vsegs) v_len += v.row_hi - v.row_lo;
    out.wire_length += h_len * col_pitch + v_len * track_pitch;
    out.vias += route.via_count();
    out.routes.push_back(std::move(route));
  }
  out.wire_length += out.global.feedthrough_length;
  out.vias += out.global.feedthrough_vias;
  return out;
}

/// Builds the level-B routing grid over the assembled layout, applying
/// over-cell obstacles.
tig::TrackGrid make_levelb_grid(const netlist::Layout& layout) {
  const geom::DesignRules& rules = layout.rules();
  tig::TrackGrid grid = tig::TrackGrid::uniform(
      layout.die(), rules.rule(geom::Layer::kMetal3).pitch(),
      rules.rule(geom::Layer::kMetal4).pitch());
  for (const netlist::Obstacle& obstacle : layout.obstacles()) {
    if (obstacle.blocks_metal3) grid.block_region_h(obstacle.region);
    if (obstacle.blocks_metal4) grid.block_region_v(obstacle.region);
  }
  return grid;
}

void fill_common(FlowMetrics& m, const MacroLayout& ml,
                 const LevelAOutcome& a) {
  m.example_name = ml.name();
  m.die_width = ml.die_width();
  m.die_height = ml.die_height(a.heights);
  m.layout_area = m.die_width * m.die_height;
  m.wire_length = a.wire_length;
  m.vias = a.vias;
  m.total_channel_tracks = a.total_tracks;
  if (!a.success) {
    m.success = false;
    m.problems.insert(m.problems.end(), a.problems.begin(),
                      a.problems.end());
  }
}

}  // namespace

double percent_reduction(double baseline, double ours) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (baseline - ours) / baseline;
}

FlowMetrics run_two_layer_flow(const MacroLayout& ml,
                               const FlowOptions& options,
                               FlowArtifacts* artifacts) {
  FlowMetrics m;
  m.flow_name = "2-layer channel";
  std::vector<int> all_nets;
  for (int n = 0; n < static_cast<int>(ml.nets().size()); ++n) {
    all_nets.push_back(n);
  }
  const LevelAOutcome a = route_level_a(ml, all_nets, options);
  fill_common(m, ml, a);
  m.levela_nets = static_cast<int>(all_nets.size());
  if (artifacts != nullptr) {
    artifacts->layout = ml.assemble(a.heights);
    artifacts->channel_heights = a.heights;
    artifacts->channel_routes = a.routes;
    artifacts->global = a.global;
  }
  return m;
}

FlowMetrics run_over_cell_flow(const MacroLayout& ml,
                               const partition::NetPartition& partition,
                               const FlowOptions& options,
                               FlowArtifacts* artifacts) {
  FlowMetrics m;
  m.flow_name = "4-layer over-cell";

  // Level A: the selected subset in channels.
  const LevelAOutcome a =
      route_level_a(ml, to_indices(partition.set_a), options);
  fill_common(m, ml, a);
  m.levela_nets = static_cast<int>(partition.set_a.size());
  m.levelb_nets = static_cast<int>(partition.set_b.size());

  // The layout is now fixed (§2): assemble and route level B on top.
  netlist::Layout layout = [&] {
    OCR_SPAN("flow.assemble");
    return ml.assemble(a.heights);
  }();
  tig::TrackGrid grid = [&] {
    OCR_SPAN("flow.tig_build");
    return make_levelb_grid(layout);
  }();

  std::vector<levelb::BNet> bnets;
  for (netlist::NetId id : partition.set_b) {
    levelb::BNet bnet;
    bnet.id = static_cast<int>(id.index());
    bnet.terminals = layout.net_pin_positions(id);
    bnets.push_back(std::move(bnet));
  }
  engine::EngineOptions eopt;
  eopt.levelb = options.levelb;
  eopt.threads = options.levelb_threads;
  if (!engine::parse_engine_mode(options.levelb_engine_mode, &eopt.mode)) {
    m.success = false;
    m.problems.push_back("unknown engine mode '" +
                         options.levelb_engine_mode + "'");
    return m;
  }
  if (!options.levelb_engine_hint_manifest.empty()) {
    eopt.auto_hint =
        engine::load_auto_hint(options.levelb_engine_hint_manifest);
  }
  engine::RoutingEngine router(grid, eopt);
  levelb::LevelBResult b = [&] {
    OCR_SPAN("flow.levelB");
    return router.route(bnets);
  }();
  if (options.straighten_levelb) {
    OCR_SPAN("flow.optimize");
    levelb::straighten_corners(grid, b);
  }
  m.levelb_threads = router.stats().threads;
  m.levelb_engine_mode = router.stats().mode;
  m.levelb_vertices = b.vertices_examined;
  m.levelb_speculative_commits = router.stats().speculative_commits;
  m.levelb_speculation_aborts = router.stats().speculation_aborts;
  m.levelb_batches = router.stats().batches;
  m.levelb_boundary_nets = router.stats().boundary_nets;
  m.levelb_sharded_commits = router.stats().sharded_commits;
  m.levelb_sharded_wasted_vertices = router.stats().sharded_wasted_vertices;
  m.levelb_sharded_wasted_search_us =
      router.stats().sharded_wasted_search_us;
  m.levelb_wasted_vertices = router.stats().wasted_vertices;
  m.levelb_wasted_search_us = router.stats().wasted_search_us;
  m.levelb_queue_wait_us = router.stats().queue_wait_us;
  m.levelb_grid_copies = router.stats().grid_copies;
  m.levelb_auto_source = router.stats().auto_source;
  m.peak_rss_kb = util::peak_rss_kb();
  m.tig_grid_bytes = static_cast<long long>(grid.grid_bytes());
  m.degrade_fault_reroutes =
      router.stats().fault_reroutes + router.stats().worker_failures;
  m.degrade_ripup_recovered = b.ripup_recovered;
  m.degrade_fault_drops = router.stats().fault_drops;
  m.unrouted_nets = b.failed_nets;
  m.cancelled_nets = b.cancelled_nets;
  m.budget_nets = b.budget_nets;
  m.pool_task_failures = router.stats().pool_task_failures;

  m.wire_length += b.total_wire_length;
  int b_terminals = 0;
  for (netlist::NetId id : partition.set_b) {
    b_terminals += layout.net(id).degree();
  }
  m.vias += b.total_corners + options.terminal_stack_vias * b_terminals;
  m.levelb_completion = b.completion_rate();
  if (b.failed_nets > 0) {
    m.problems.push_back(std::to_string(b.failed_nets) +
                         " level-B nets incomplete");
  }

  if (artifacts != nullptr) {
    artifacts->channel_heights = a.heights;
    artifacts->channel_routes = a.routes;
    artifacts->global = a.global;
    artifacts->levelb = std::move(b);
    for (const netlist::Obstacle& o : layout.obstacles()) {
      artifacts->levelb_obstacles.push_back(o.region);
    }
    artifacts->layout = std::move(layout);
  }
  return m;
}

FlowMetrics run_four_layer_channel_flow(const MacroLayout& ml,
                                        const FlowOptions& options,
                                        FlowArtifacts* artifacts) {
  FlowMetrics m;
  m.flow_name = "4-layer channel";
  const geom::DesignRules& rules = ml.rules();
  const Coord col_pitch =
      rules.channel_pitch(geom::Layer::kMetal1, geom::Layer::kMetal2);

  std::vector<int> all_nets;
  for (int n = 0; n < static_cast<int>(ml.nets().size()); ++n) {
    all_nets.push_back(n);
  }
  global::GlobalOptions gopt;
  gopt.column_pitch = col_pitch;
  global::GlobalRouteResult global = global_route(ml, all_nets, gopt);
  if (!global.success) {
    m.success = false;
    m.problems = global.problems;
  }

  std::vector<Coord> heights(static_cast<std::size_t>(ml.num_channels()),
                             0);
  const Coord pitch12 =
      rules.channel_pitch(geom::Layer::kMetal1, geom::Layer::kMetal2);
  const Coord pitch34 =
      rules.channel_pitch(geom::Layer::kMetal3, geom::Layer::kMetal4);
  mlchannel::MultiLayerOptions mlopt;
  mlopt.greedy = options.greedy;
  OCR_SPAN("flow.mlchannel");
  for (int c = 0; c < ml.num_channels(); ++c) {
    const channel::ChannelProblem& problem =
        global.channels[static_cast<std::size_t>(c)];
    mlchannel::MultiLayerChannelResult result =
        mlchannel::route_multilayer(problem, mlopt);
    if (!result.success) {
      m.success = false;
      m.problems.push_back("channel " + std::to_string(c) + ": " +
                           result.failure_reason);
    }
    const bool has_pins = problem.max_net() > 0;
    heights[static_cast<std::size_t>(c)] =
        result.channel_height(rules) +
        (has_pins ? options.channel_margin : 0);
    // Wire length: horizontal runs at the column pitch; vertical runs at
    // each group's track pitch (group 1 pays the metal3/4 pitch).
    for (std::size_t g = 0; g < result.group_routes.size(); ++g) {
      const channel::ChannelRoute& route = result.group_routes[g];
      const Coord vpitch = g == 0 ? pitch12 : pitch34;
      long long h_len = 0;
      long long v_len = 0;
      for (const channel::HSeg& h : route.hsegs) {
        h_len += h.col_hi - h.col_lo;
      }
      for (const channel::VSeg& v : route.vsegs) {
        v_len += v.row_hi - v.row_lo;
      }
      m.wire_length += h_len * col_pitch + v_len * vpitch;
      m.total_channel_tracks += route.num_tracks;
    }
    m.vias += result.via_count();
  }
  m.wire_length += global.feedthrough_length;
  m.vias += global.feedthrough_vias;

  m.example_name = ml.name();
  m.die_width = ml.die_width();
  m.die_height = ml.die_height(heights);
  m.layout_area = m.die_width * m.die_height;
  m.levela_nets = static_cast<int>(all_nets.size());
  if (artifacts != nullptr) {
    artifacts->layout = ml.assemble(heights);
    artifacts->channel_heights = heights;
    artifacts->global = std::move(global);
  }
  return m;
}

FlowMetrics run_fifty_percent_model_flow(const MacroLayout& ml,
                                         const FlowOptions& options) {
  // Paper's Table-3 comparator: take the two-layer solution and halve each
  // channel's track count at the metal1/2 pitch (optimistically ignoring
  // the coarser upper-layer rules). Only the area is meaningful.
  FlowMetrics m;
  m.flow_name = "50% track model";
  std::vector<int> all_nets;
  for (int n = 0; n < static_cast<int>(ml.nets().size()); ++n) {
    all_nets.push_back(n);
  }
  const LevelAOutcome a = route_level_a(ml, all_nets, options);
  const Coord pitch =
      ml.rules().channel_pitch(geom::Layer::kMetal1, geom::Layer::kMetal2);

  std::vector<Coord> heights(a.heights.size(), 0);
  for (std::size_t c = 0; c < a.routes.size(); ++c) {
    const int halved =
        mlchannel::fifty_percent_track_model(a.routes[c].num_tracks);
    const bool has_pins =
        a.global.channels[c].max_net() > 0;
    heights[c] = static_cast<Coord>(halved) * pitch +
                 (has_pins ? options.channel_margin : 0);
    m.total_channel_tracks += halved;
  }
  m.example_name = ml.name();
  m.flow_name = "50% track model";
  m.die_width = ml.die_width();
  m.die_height = ml.die_height(heights);
  m.layout_area = m.die_width * m.die_height;
  m.wire_length = a.wire_length;  // model adjusts area only
  m.vias = a.vias;
  m.levela_nets = static_cast<int>(all_nets.size());
  m.success = a.success;
  m.problems = a.problems;
  return m;
}

}  // namespace ocr::flow

#pragma once
/// \file journal_io.hpp
/// \brief JSONL codec for the durable job journal.
///
/// The `ocr_served` daemon records every job-state transition as one
/// JSON object per line in an append-only write-ahead log
/// (`src/service/journal.hpp`). This file owns the wire format only —
/// rendering a record to its line and parsing a line back — so the
/// recovery scanner and the fuzz tests share one codec with the rest of
/// `src/io/`.
///
/// Record lifecycle for one job id:
///
/// ```
/// accepted ──► started ──► completed            (clean / partial)
///                 │    └──► failed              (terminal failure)
///                 └──► retry ──► started ──► …  (transient, re-queued)
/// completed/failed ──► responded                (result line delivered)
/// ```
///
/// plus one `drain` record at clean shutdown. Example lines:
///
/// ```json
/// {"event":"accepted","seq":1,"id":"j1","attempt":0,"request":"{...}"}
/// {"event":"started","seq":2,"id":"j1","attempt":0}
/// {"event":"retry","seq":3,"id":"j1","attempt":1,"backoff_ms":12,
///  "error":"[task] execute: injected worker kill"}
/// {"event":"completed","seq":5,"id":"j1","attempt":1,"status":"clean",
///  "exit_class":0,"wire_length":399764,"vias":1288,"unrouted_nets":0,
///  "cancelled_nets":0,"run_ms":41}
/// {"event":"responded","seq":6,"id":"j1"}
/// {"event":"drain","seq":7,"unfinished":0}
/// ```
///
/// Parsing is tolerant of unknown fields (forward compatibility) but
/// strict about structure and types: a truncated or corrupted line is a
/// located `kParseError`, never a crash — recovery counts and skips
/// damaged records (typically the torn tail write of a crash).

#include <string>

#include "util/status.hpp"

namespace ocr::io {

/// One journal state transition. See the file comment for the lifecycle.
enum class JournalEvent {
  kAccepted,   ///< admission accepted the job; `request` holds the line
  kStarted,    ///< a worker began executing an attempt
  kRetry,      ///< a transient attempt failed; re-queued after backoff
  kCompleted,  ///< terminal result, exit_class 0 or 3 (digest fields set)
  kFailed,     ///< terminal result, exit_class 1 or 2 (digest fields set)
  kResponded,  ///< the response line was delivered to the client
  kDrain,      ///< clean shutdown marker with the unfinished-job count
};

/// "accepted", "started", ... (the wire spellings).
const char* journal_event_name(JournalEvent event);

struct JournalRecord {
  JournalEvent event = JournalEvent::kAccepted;
  /// Monotonic per-journal sequence number (assigned by Journal::append).
  long long seq = 0;
  std::string id;
  int attempt = 0;
  /// kAccepted: the raw JSONL request line, replayed verbatim on
  /// recovery to rebuild the job.
  std::string request;
  /// kCompleted / kFailed result digest — enough to synthesize the
  /// response without re-routing.
  std::string status;
  int exit_class = 0;
  long long wire_length = 0;
  int vias = 0;
  int unrouted_nets = 0;
  int cancelled_nets = 0;
  long long run_ms = 0;
  /// kRetry / kFailed: human-readable failure reason.
  std::string error;
  /// kRetry: scheduled backoff before the next attempt.
  long long backoff_ms = 0;
  /// kDrain: jobs still unfinished at shutdown (0 for a clean drain).
  int unfinished = 0;
};

/// Renders \p record as one JSON line (no trailing newline). Only the
/// fields meaningful for the record's event are emitted.
std::string render_journal_record(const JournalRecord& record);

/// Parses one journal line. Unknown fields are ignored; a structurally
/// damaged line or an unknown event name is a kParseError.
util::StatusOr<JournalRecord> parse_journal_record(const std::string& line);

}  // namespace ocr::io

#include "io/layout_io.hpp"

#include <cstdio>
#include <sstream>

#include "util/str.hpp"

namespace ocr::io {
namespace {

using floorplan::MacroCell;
using floorplan::MacroLayout;
using floorplan::MacroNet;
using floorplan::MacroObstacle;
using floorplan::MacroPin;

const char* class_name(netlist::NetClass cls) {
  switch (cls) {
    case netlist::NetClass::kSignal:
      return "signal";
    case netlist::NetClass::kCritical:
      return "critical";
    case netlist::NetClass::kClock:
      return "clock";
    case netlist::NetClass::kPower:
      return "power";
  }
  return "signal";
}

std::optional<netlist::NetClass> class_from_name(const std::string& name) {
  if (name == "signal") return netlist::NetClass::kSignal;
  if (name == "critical") return netlist::NetClass::kCritical;
  if (name == "clock") return netlist::NetClass::kClock;
  if (name == "power") return netlist::NetClass::kPower;
  return std::nullopt;
}

/// Tokenizes one line; '#' starts a comment.
std::vector<std::string> tokenize(std::string_view line) {
  const std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::vector<std::string> tokens;
  std::istringstream stream{std::string(line)};
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

bool parse_coord(const std::string& token, geom::Coord* out) {
  try {
    std::size_t used = 0;
    const long long value = std::stoll(token, &used);
    if (used != token.size()) return false;
    *out = value;
    return true;
  } catch (...) {
    return false;
  }
}

bool parse_int(const std::string& token, int* out) {
  geom::Coord value = 0;
  if (!parse_coord(token, &value)) return false;
  *out = static_cast<int>(value);
  return true;
}

}  // namespace

std::string write_layout_text(const MacroLayout& ml) {
  std::string out = "# overcell-router macro layout v1\n";
  out += util::format("layout %s %lld\n", ml.name().c_str(),
                      static_cast<long long>(ml.die_width()));
  for (int r = 0; r < ml.num_rows(); ++r) {
    out += util::format("row %lld\n",
                        static_cast<long long>(ml.row_height(r)));
  }
  for (const MacroCell& cell : ml.cells()) {
    out += util::format("cell %s %d %lld %lld %lld\n", cell.name.c_str(),
                        cell.row, static_cast<long long>(cell.x),
                        static_cast<long long>(cell.width),
                        static_cast<long long>(cell.height));
  }
  for (const MacroNet& net : ml.nets()) {
    out += util::format("net %s %s\n", net.name.c_str(),
                        class_name(net.net_class));
  }
  for (const MacroPin& pin : ml.pins()) {
    out += util::format("pin %d %d %c %lld\n", pin.net, pin.cell,
                        pin.north ? 'N' : 'S',
                        static_cast<long long>(pin.x));
  }
  for (const MacroObstacle& o : ml.obstacles()) {
    out += util::format("obstacle %d %lld %lld %lld %lld %d %d %s\n",
                        o.cell, static_cast<long long>(o.x_lo),
                        static_cast<long long>(o.y_lo),
                        static_cast<long long>(o.x_hi),
                        static_cast<long long>(o.y_hi),
                        o.blocks_metal3 ? 1 : 0, o.blocks_metal4 ? 1 : 0,
                        o.reason.empty() ? "-" : o.reason.c_str());
  }
  return out;
}

ParseResult read_layout_text(const std::string& text) {
  ParseResult result;
  std::optional<MacroLayout> ml;
  int line_number = 0;
  const auto fail = [&result, &line_number](const std::string& why) {
    result.layout.reset();
    result.error = util::format("line %d: %s", line_number, why.c_str());
    return result;
  };

  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& kind = tokens[0];

    if (kind == "layout") {
      if (tokens.size() != 3) return fail("layout needs <name> <width>");
      geom::Coord width = 0;
      if (!parse_coord(tokens[2], &width) || width <= 0) {
        return fail("bad die width");
      }
      ml.emplace(tokens[1], width);
      continue;
    }
    if (!ml.has_value()) return fail("'layout' must come first");

    if (kind == "row") {
      if (tokens.size() != 2) return fail("row needs <height>");
      geom::Coord height = 0;
      if (!parse_coord(tokens[1], &height) || height <= 0) {
        return fail("bad row height");
      }
      ml->add_row(height);
    } else if (kind == "cell") {
      if (tokens.size() != 6) {
        return fail("cell needs <name> <row> <x> <width> <height>");
      }
      MacroCell cell;
      cell.name = tokens[1];
      geom::Coord w = 0;
      geom::Coord h = 0;
      if (!parse_int(tokens[2], &cell.row) ||
          !parse_coord(tokens[3], &cell.x) || !parse_coord(tokens[4], &w) ||
          !parse_coord(tokens[5], &h)) {
        return fail("bad cell fields");
      }
      if (cell.row < 0 || cell.row >= ml->num_rows()) {
        return fail("cell row out of range");
      }
      if (w <= 0 || h <= 0 || h > ml->row_height(cell.row)) {
        return fail("bad cell footprint");
      }
      cell.width = w;
      cell.height = h;
      ml->add_cell(std::move(cell));
    } else if (kind == "net") {
      if (tokens.size() != 3) return fail("net needs <name> <class>");
      const auto cls = class_from_name(tokens[2]);
      if (!cls) return fail("unknown net class '" + tokens[2] + "'");
      ml->add_net(MacroNet{tokens[1], *cls});
    } else if (kind == "pin") {
      if (tokens.size() != 5) {
        return fail("pin needs <net> <cell|-1> <N|S> <x>");
      }
      MacroPin pin;
      if (!parse_int(tokens[1], &pin.net) ||
          !parse_int(tokens[2], &pin.cell) ||
          !parse_coord(tokens[4], &pin.x)) {
        return fail("bad pin fields");
      }
      if (tokens[3] == "N") {
        pin.north = true;
      } else if (tokens[3] == "S") {
        pin.north = false;
      } else {
        return fail("pin side must be N or S");
      }
      if (pin.net < 0 || pin.net >= static_cast<int>(ml->nets().size())) {
        return fail("pin references an undeclared net");
      }
      if (pin.cell < -1 ||
          pin.cell >= static_cast<int>(ml->cells().size())) {
        return fail("pin references an undeclared cell");
      }
      ml->add_pin(pin);
    } else if (kind == "obstacle") {
      if (tokens.size() != 9) {
        return fail("obstacle needs <cell> <xlo> <ylo> <xhi> <yhi> <m3> "
                    "<m4> <reason>");
      }
      MacroObstacle o;
      int m3 = 0;
      int m4 = 0;
      if (!parse_int(tokens[1], &o.cell) ||
          !parse_coord(tokens[2], &o.x_lo) ||
          !parse_coord(tokens[3], &o.y_lo) ||
          !parse_coord(tokens[4], &o.x_hi) ||
          !parse_coord(tokens[5], &o.y_hi) || !parse_int(tokens[6], &m3) ||
          !parse_int(tokens[7], &m4)) {
        return fail("bad obstacle fields");
      }
      if (o.cell < 0 || o.cell >= static_cast<int>(ml->cells().size())) {
        return fail("obstacle references an undeclared cell");
      }
      if (o.x_lo > o.x_hi || o.y_lo > o.y_hi) {
        return fail("degenerate obstacle extents");
      }
      o.blocks_metal3 = m3 != 0;
      o.blocks_metal4 = m4 != 0;
      o.reason = tokens[8] == "-" ? "" : tokens[8];
      ml->add_obstacle(std::move(o));
    } else {
      return fail("unknown directive '" + kind + "'");
    }
  }
  if (!ml.has_value()) {
    ++line_number;
    return fail("no 'layout' directive found");
  }
  const auto problems = ml->validate();
  if (!problems.empty()) {
    return fail("layout invalid: " + problems.front());
  }
  result.layout = std::move(ml);
  return result;
}

bool save_layout(const MacroLayout& ml, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string text = write_layout_text(ml);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return written == text.size();
}

ParseResult load_layout(const std::string& path) {
  ParseResult result;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    result.error = "cannot open '" + path + "'";
    return result;
  }
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return read_layout_text(text);
}

}  // namespace ocr::io

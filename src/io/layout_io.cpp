#include "io/layout_io.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "util/fault.hpp"
#include "util/str.hpp"

namespace ocr::io {
namespace {

using floorplan::MacroCell;
using floorplan::MacroLayout;
using floorplan::MacroNet;
using floorplan::MacroObstacle;
using floorplan::MacroPin;

const char* class_name(netlist::NetClass cls) {
  switch (cls) {
    case netlist::NetClass::kSignal:
      return "signal";
    case netlist::NetClass::kCritical:
      return "critical";
    case netlist::NetClass::kClock:
      return "clock";
    case netlist::NetClass::kPower:
      return "power";
  }
  return "signal";
}

std::optional<netlist::NetClass> class_from_name(const std::string& name) {
  if (name == "signal") return netlist::NetClass::kSignal;
  if (name == "critical") return netlist::NetClass::kCritical;
  if (name == "clock") return netlist::NetClass::kClock;
  if (name == "power") return netlist::NetClass::kPower;
  return std::nullopt;
}

/// One token with its 1-based source column (error context).
struct Tok {
  std::string text;
  int column = 1;
};

/// Tokenizes one line; '#' starts a comment.
std::vector<Tok> tokenize(std::string_view line) {
  const std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::vector<Tok> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size()) break;
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    tokens.push_back(Tok{std::string(line.substr(start, i - start)),
                         static_cast<int>(start) + 1});
  }
  return tokens;
}

bool parse_coord(const std::string& token, geom::Coord* out) {
  try {
    std::size_t used = 0;
    const long long value = std::stoll(token, &used);
    if (used != token.size()) return false;
    *out = value;
    return true;
  } catch (...) {
    return false;
  }
}

bool parse_int(const std::string& token, int* out) {
  geom::Coord value = 0;
  if (!parse_coord(token, &value)) return false;
  *out = static_cast<int>(value);
  return true;
}

}  // namespace

std::string write_layout_text(const MacroLayout& ml) {
  std::string out = "# overcell-router macro layout v1\n";
  out += util::format("layout %s %lld\n", ml.name().c_str(),
                      static_cast<long long>(ml.die_width()));
  for (int r = 0; r < ml.num_rows(); ++r) {
    out += util::format("row %lld\n",
                        static_cast<long long>(ml.row_height(r)));
  }
  for (const MacroCell& cell : ml.cells()) {
    out += util::format("cell %s %d %lld %lld %lld\n", cell.name.c_str(),
                        cell.row, static_cast<long long>(cell.x),
                        static_cast<long long>(cell.width),
                        static_cast<long long>(cell.height));
  }
  for (const MacroNet& net : ml.nets()) {
    out += util::format("net %s %s\n", net.name.c_str(),
                        class_name(net.net_class));
  }
  for (const MacroPin& pin : ml.pins()) {
    out += util::format("pin %d %d %c %lld\n", pin.net, pin.cell,
                        pin.north ? 'N' : 'S',
                        static_cast<long long>(pin.x));
  }
  for (const MacroObstacle& o : ml.obstacles()) {
    out += util::format("obstacle %d %lld %lld %lld %lld %d %d %s\n",
                        o.cell, static_cast<long long>(o.x_lo),
                        static_cast<long long>(o.y_lo),
                        static_cast<long long>(o.x_hi),
                        static_cast<long long>(o.y_hi),
                        o.blocks_metal3 ? 1 : 0, o.blocks_metal4 ? 1 : 0,
                        o.reason.empty() ? "-" : o.reason.c_str());
  }
  return out;
}

ParseResult read_layout_text(const std::string& text,
                             const ParseOptions& options) {
  ParseResult result;
  std::optional<MacroLayout> ml;
  int line_number = 0;

  const auto fail = [&result, &line_number](util::Status status) {
    result.layout.reset();
    status.with_stage("layout-parse");
    if (status.line() == 0) status.at(line_number);
    result.error = status.to_string();
    result.status = std::move(status);
    return result;
  };

  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;

    // Parse-error factory pinned to the offending token's column.
    const auto bad = [&](const std::string& why, std::size_t token = 0) {
      const int column =
          token < tokens.size() ? tokens[token].column : tokens[0].column;
      return util::Status::parse_error(why).at(line_number, column);
    };

    // Parses one directive line; OK = the line was consumed.
    const auto parse_line = [&]() -> util::Status {
      // Test-harness fault: treat this line as corrupt (keyed by line
      // number, so a spec can target any specific line).
      if (OCR_FAULT_KEY("io.layout.line", line_number)) {
        return util::Status::fault_injected("injected parse fault")
            .at(line_number, tokens[0].column);
      }
      const std::string& kind = tokens[0].text;

      if (kind == "layout") {
        if (tokens.size() != 3) return bad("layout needs <name> <width>");
        geom::Coord width = 0;
        if (!parse_coord(tokens[2].text, &width) || width <= 0) {
          return bad("bad die width", 2);
        }
        ml.emplace(tokens[1].text, width);
        return util::Status();
      }
      if (!ml.has_value()) return bad("'layout' must come first");

      if (kind == "row") {
        if (tokens.size() != 2) return bad("row needs <height>");
        geom::Coord height = 0;
        if (!parse_coord(tokens[1].text, &height) || height <= 0) {
          return bad("bad row height", 1);
        }
        ml->add_row(height);
      } else if (kind == "cell") {
        if (tokens.size() != 6) {
          return bad("cell needs <name> <row> <x> <width> <height>");
        }
        MacroCell cell;
        cell.name = tokens[1].text;
        geom::Coord w = 0;
        geom::Coord h = 0;
        if (!parse_int(tokens[2].text, &cell.row) ||
            !parse_coord(tokens[3].text, &cell.x) ||
            !parse_coord(tokens[4].text, &w) ||
            !parse_coord(tokens[5].text, &h)) {
          return bad("bad cell fields", 2);
        }
        if (cell.row < 0 || cell.row >= ml->num_rows()) {
          return bad("cell row out of range", 2);
        }
        if (w <= 0 || h <= 0 || h > ml->row_height(cell.row)) {
          return bad("bad cell footprint", 4);
        }
        cell.width = w;
        cell.height = h;
        ml->add_cell(std::move(cell));
      } else if (kind == "net") {
        if (tokens.size() != 3) return bad("net needs <name> <class>");
        const auto cls = class_from_name(tokens[2].text);
        if (!cls) {
          return bad("unknown net class '" + tokens[2].text + "'", 2);
        }
        ml->add_net(MacroNet{tokens[1].text, *cls});
      } else if (kind == "pin") {
        if (tokens.size() != 5) {
          return bad("pin needs <net> <cell|-1> <N|S> <x>");
        }
        MacroPin pin;
        if (!parse_int(tokens[1].text, &pin.net) ||
            !parse_int(tokens[2].text, &pin.cell) ||
            !parse_coord(tokens[4].text, &pin.x)) {
          return bad("bad pin fields", 1);
        }
        if (tokens[3].text == "N") {
          pin.north = true;
        } else if (tokens[3].text == "S") {
          pin.north = false;
        } else {
          return bad("pin side must be N or S", 3);
        }
        if (pin.net < 0 ||
            pin.net >= static_cast<int>(ml->nets().size())) {
          return bad("pin references an undeclared net", 1);
        }
        if (pin.cell < -1 ||
            pin.cell >= static_cast<int>(ml->cells().size())) {
          return bad("pin references an undeclared cell", 2);
        }
        ml->add_pin(pin);
      } else if (kind == "obstacle") {
        if (tokens.size() != 9) {
          return bad("obstacle needs <cell> <xlo> <ylo> <xhi> <yhi> <m3> "
                     "<m4> <reason>");
        }
        MacroObstacle o;
        int m3 = 0;
        int m4 = 0;
        if (!parse_int(tokens[1].text, &o.cell) ||
            !parse_coord(tokens[2].text, &o.x_lo) ||
            !parse_coord(tokens[3].text, &o.y_lo) ||
            !parse_coord(tokens[4].text, &o.x_hi) ||
            !parse_coord(tokens[5].text, &o.y_hi) ||
            !parse_int(tokens[6].text, &m3) ||
            !parse_int(tokens[7].text, &m4)) {
          return bad("bad obstacle fields", 1);
        }
        if (o.cell < 0 || o.cell >= static_cast<int>(ml->cells().size())) {
          return bad("obstacle references an undeclared cell", 1);
        }
        if (o.x_lo > o.x_hi || o.y_lo > o.y_hi) {
          return bad("degenerate obstacle extents", 2);
        }
        o.blocks_metal3 = m3 != 0;
        o.blocks_metal4 = m4 != 0;
        o.reason = tokens[8].text == "-" ? "" : tokens[8].text;
        ml->add_obstacle(std::move(o));
      } else {
        return bad("unknown directive '" + kind + "'");
      }
      return util::Status();
    };

    util::Status line_status = parse_line();
    if (!line_status.ok()) {
      if (options.lenient) {
        // Degrade: drop the corrupt line, keep what parses. Structural
        // failures below (no header, invalid layout) still fail.
        line_status.with_stage("layout-parse");
        result.warnings.push_back(line_status.to_string());
        continue;
      }
      return fail(std::move(line_status));
    }
  }
  if (!ml.has_value()) {
    ++line_number;
    return fail(util::Status::parse_error("no 'layout' directive found"));
  }
  const auto problems = ml->validate();
  if (!problems.empty()) {
    return fail(
        util::Status::parse_error("layout invalid: " + problems.front()));
  }
  result.layout = std::move(ml);
  return result;
}

bool save_layout(const MacroLayout& ml, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string text = write_layout_text(ml);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return written == text.size();
}

ParseResult load_layout(const std::string& path,
                        const ParseOptions& options) {
  ParseResult result;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    result.status = util::Status::io_error("cannot open '" + path + "'")
                        .with_stage("layout-parse");
    result.error = result.status.to_string();
    return result;
  }
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return read_layout_text(text, options);
}

}  // namespace ocr::io

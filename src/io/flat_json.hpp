#pragma once
/// \file flat_json.hpp
/// \brief Shared flat-JSON-object scanner for the service codecs.
///
/// The job protocol (`job_io.*`) and the journal (`journal_io.*`) both
/// speak one flat JSON object per line — string/number/bool scalars
/// only, never nested. This header holds the strict scanner and the
/// field-extraction helpers both codecs share; it is an implementation
/// detail of `src/io/` (internal namespace, not part of the public API).

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>

#include "util/status.hpp"
#include "util/trace.hpp"  // json_escape

namespace ocr::io::internal {

/// One decoded scalar from a flat JSON object. The line protocols never
/// nest, so the parser rejects arrays/objects in value position — a
/// deliberate restriction that keeps the codecs small and the failure
/// modes obvious.
struct Scalar {
  enum class Kind { kString, kInt, kDouble, kBool, kNull } kind;
  std::string str;
  long long integer = 0;
  double real = 0.0;
  bool boolean = false;
};

/// Strict recursive-descent parser for `{"key": scalar, ...}` lines.
class FlatObjectParser {
 public:
  explicit FlatObjectParser(const std::string& text) : text_(text) {}

  util::Status parse(std::map<std::string, Scalar>& out) {
    skip_ws();
    if (!eat('{')) return error("expected '{'");
    skip_ws();
    if (eat('}')) return finish();
    for (;;) {
      skip_ws();
      std::string key;
      util::Status s = parse_string(key);
      if (!s.ok()) return s;
      skip_ws();
      if (!eat(':')) return error("expected ':'");
      skip_ws();
      Scalar value;
      s = parse_scalar(value);
      if (!s.ok()) return s;
      if (!out.emplace(key, std::move(value)).second) {
        return error(("duplicate key '" + key + "'").c_str());
      }
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return finish();
      return error("expected ',' or '}'");
    }
  }

 private:
  util::Status finish() {
    skip_ws();
    if (pos_ != text_.size()) return error("trailing garbage");
    return util::Status();
  }

  util::Status error(const char* reason) const {
    return util::Status::parse_error(std::string(reason) + " at byte " +
                                     std::to_string(pos_))
        .with_stage("job-io");
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!eat(*p)) return false;
    }
    return true;
  }

  util::Status parse_string(std::string& out) {
    if (!eat('"')) return error("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return util::Status();
      if (static_cast<unsigned char>(c) < 0x20) {
        return error("unescaped control character");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return error("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // The line protocols are ASCII; decode BMP escapes to '?'
          // placeholders rather than carrying a UTF-8 encoder for field
          // values that are never non-ASCII in practice.
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = peek();
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              return error("bad \\u escape");
            }
            code = code * 16 +
                   static_cast<unsigned>(
                       std::isdigit(static_cast<unsigned char>(h))
                           ? h - '0'
                           : std::tolower(h) - 'a' + 10);
            ++pos_;
          }
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return error("bad escape");
      }
    }
    return error("unterminated string");
  }

  util::Status parse_scalar(Scalar& out) {
    const char c = peek();
    if (c == '"') {
      out.kind = Scalar::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't') {
      if (!literal("true")) return error("bad literal");
      out.kind = Scalar::Kind::kBool;
      out.boolean = true;
      return util::Status();
    }
    if (c == 'f') {
      if (!literal("false")) return error("bad literal");
      out.kind = Scalar::Kind::kBool;
      out.boolean = false;
      return util::Status();
    }
    if (c == 'n') {
      if (!literal("null")) return error("bad literal");
      out.kind = Scalar::Kind::kNull;
      return util::Status();
    }
    if (c == '{' || c == '[') {
      return error("nested values are not part of the line schema");
    }
    return parse_number(out);
  }

  util::Status parse_number(Scalar& out) {
    const std::size_t start = pos_;
    eat('-');
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return error("expected value");
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    bool is_double = false;
    if (eat('.')) {
      is_double = true;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return error("bad fraction");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      is_double = true;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return error("bad exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (is_double) {
      out.kind = Scalar::Kind::kDouble;
      out.real = std::strtod(token.c_str(), nullptr);
    } else {
      out.kind = Scalar::Kind::kInt;
      out.integer = std::strtoll(token.c_str(), nullptr, 10);
    }
    return util::Status();
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline util::Status type_error(const std::string& key, const char* want) {
  return util::Status::parse_error("field '" + key + "' must be a " + want)
      .with_stage("job-io");
}

inline util::Status take_string(std::map<std::string, Scalar>& fields,
                                const std::string& key, std::string& out) {
  const auto it = fields.find(key);
  if (it == fields.end()) return util::Status();
  if (it->second.kind != Scalar::Kind::kString) {
    return type_error(key, "string");
  }
  out = std::move(it->second.str);
  fields.erase(it);
  return util::Status();
}

inline util::Status take_int(std::map<std::string, Scalar>& fields,
                             const std::string& key, long long& out) {
  const auto it = fields.find(key);
  if (it == fields.end()) return util::Status();
  if (it->second.kind != Scalar::Kind::kInt) return type_error(key, "number");
  out = it->second.integer;
  fields.erase(it);
  return util::Status();
}

inline util::Status take_bool(std::map<std::string, Scalar>& fields,
                              const std::string& key, bool& out) {
  const auto it = fields.find(key);
  if (it == fields.end()) return util::Status();
  if (it->second.kind != Scalar::Kind::kBool) return type_error(key, "bool");
  out = it->second.boolean;
  fields.erase(it);
  return util::Status();
}

/// Appends `"key":value` (with a leading comma when needed).
class JsonWriter {
 public:
  void field(const char* key, const std::string& value) {
    sep();
    out_ += '"';
    out_ += key;
    out_ += "\":\"";
    out_ += util::json_escape(value);
    out_ += '"';
  }
  void field(const char* key, long long value) {
    sep();
    out_ += '"';
    out_ += key;
    out_ += "\":";
    out_ += std::to_string(value);
  }
  void field(const char* key, bool value) {
    sep();
    out_ += '"';
    out_ += key;
    out_ += "\":";
    out_ += value ? "true" : "false";
  }
  std::string finish() { return "{" + out_ + "}"; }

 private:
  void sep() {
    if (!out_.empty()) out_ += ',';
  }
  std::string out_;
};

}  // namespace ocr::io::internal

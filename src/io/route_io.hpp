#pragma once
/// \file route_io.hpp
/// \brief Plain-text export of routed level-B wiring.
///
/// The hand-off artifact a downstream tool (mask generation, parasitic
/// extraction) would consume. One line per wire leg:
///
/// ```
/// # overcell-router wiring v1
/// wiring <num_nets>
/// net <id> <complete 0|1>
/// leg <layer metal3|metal4> <x1> <y1> <x2> <y2>
/// via <x> <y>                      # metal3<->metal4 corner
/// ```
///
/// Legs belong to the most recent `net` line. The format round-trips:
/// read_wiring_text reconstructs a LevelBResult's geometry (paths are
/// split per leg; corner counts and lengths are recomputed).

#include <optional>
#include <string>

#include "levelb/router.hpp"
#include "util/status.hpp"

namespace ocr::io {

/// Serializes the wiring of \p result.
std::string write_wiring_text(const levelb::LevelBResult& result);

struct WiringParseResult {
  std::optional<levelb::LevelBResult> result;
  std::string error;
  /// Machine-readable outcome: kParseError with 1-based line() and
  /// column() of the offending token.
  util::Status status;

  bool ok() const { return result.has_value(); }
};

/// Parses the wiring format. Tracks in the reconstructed paths carry only
/// orientation (indices are not persisted); geometry, lengths and corner
/// counts are faithful.
WiringParseResult read_wiring_text(const std::string& text);

bool save_wiring(const levelb::LevelBResult& result,
                 const std::string& path);

}  // namespace ocr::io

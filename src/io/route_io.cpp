#include "io/route_io.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "util/str.hpp"

namespace ocr::io {
namespace {

using geom::Orientation;
using geom::Point;

/// One token with its 1-based source column (error context).
struct Tok {
  std::string text;
  int column = 1;
};

std::vector<Tok> tokenize(std::string_view line) {
  const std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::vector<Tok> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size()) break;
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    tokens.push_back(Tok{std::string(line.substr(start, i - start)),
                         static_cast<int>(start) + 1});
  }
  return tokens;
}

bool parse_coord(const std::string& token, geom::Coord* out) {
  try {
    std::size_t used = 0;
    const long long value = std::stoll(token, &used);
    if (used != token.size()) return false;
    *out = value;
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

std::string write_wiring_text(const levelb::LevelBResult& result) {
  std::string out = "# overcell-router wiring v1\n";
  out += util::format("wiring %zu\n", result.nets.size());
  for (const levelb::NetResult& net : result.nets) {
    out += util::format("net %d %d\n", net.id, net.complete ? 1 : 0);
    for (const levelb::Path& path : net.paths) {
      for (std::size_t leg = 0; leg + 1 < path.points.size(); ++leg) {
        const Point& a = path.points[leg];
        const Point& b = path.points[leg + 1];
        const bool horizontal =
            path.tracks[leg].orient == Orientation::kHorizontal;
        out += util::format(
            "leg %s %lld %lld %lld %lld\n",
            horizontal ? "metal3" : "metal4", static_cast<long long>(a.x),
            static_cast<long long>(a.y), static_cast<long long>(b.x),
            static_cast<long long>(b.y));
      }
      for (std::size_t c = 1; c + 1 < path.points.size(); ++c) {
        out += util::format("via %lld %lld\n",
                            static_cast<long long>(path.points[c].x),
                            static_cast<long long>(path.points[c].y));
      }
    }
  }
  return out;
}

WiringParseResult read_wiring_text(const std::string& text) {
  WiringParseResult result;
  levelb::LevelBResult wiring;
  levelb::NetResult* current = nullptr;
  int line_number = 0;
  int fail_column = 0;
  const auto fail = [&](const std::string& why) {
    result.result.reset();
    result.status = util::Status::parse_error(why)
                        .with_stage("wiring-parse")
                        .at(line_number, fail_column);
    result.error = result.status.to_string();
    return result;
  };

  std::istringstream stream(text);
  std::string line;
  bool saw_header = false;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    // Blame the token at \p index when a check below fails.
    const auto blame = [&](std::size_t index) {
      fail_column =
          index < tokens.size() ? tokens[index].column : tokens[0].column;
    };
    blame(0);
    const std::string& kind = tokens[0].text;
    if (kind == "wiring") {
      saw_header = true;
    } else if (kind == "net") {
      if (tokens.size() != 3) return fail("net needs <id> <complete>");
      levelb::NetResult net;
      geom::Coord id = 0;
      geom::Coord complete = 0;
      blame(1);
      if (!parse_coord(tokens[1].text, &id) ||
          !parse_coord(tokens[2].text, &complete)) {
        return fail("bad net fields");
      }
      net.id = static_cast<int>(id);
      net.complete = complete != 0;
      wiring.nets.push_back(std::move(net));
      current = &wiring.nets.back();
    } else if (kind == "leg") {
      if (current == nullptr) return fail("leg before any net");
      if (tokens.size() != 6) {
        return fail("leg needs <layer> <x1> <y1> <x2> <y2>");
      }
      Orientation orient;
      blame(1);
      if (tokens[1].text == "metal3") {
        orient = Orientation::kHorizontal;
      } else if (tokens[1].text == "metal4") {
        orient = Orientation::kVertical;
      } else {
        return fail("unknown layer '" + tokens[1].text + "'");
      }
      Point a;
      Point b;
      blame(2);
      if (!parse_coord(tokens[2].text, &a.x) ||
          !parse_coord(tokens[3].text, &a.y) ||
          !parse_coord(tokens[4].text, &b.x) ||
          !parse_coord(tokens[5].text, &b.y)) {
        return fail("bad leg coordinates");
      }
      if (a.x != b.x && a.y != b.y) return fail("leg is not axis-aligned");
      levelb::Path path;
      path.points = {a, b};
      path.tracks = {tig::TrackRef{orient, 0}};
      current->wire_length += path.length();
      current->paths.push_back(std::move(path));
    } else if (kind == "via") {
      if (current == nullptr) return fail("via before any net");
      if (tokens.size() != 3) return fail("via needs <x> <y>");
      Point p;
      blame(1);
      if (!parse_coord(tokens[1].text, &p.x) ||
          !parse_coord(tokens[2].text, &p.y)) {
        return fail("bad via coordinates");
      }
      ++current->corners;
    } else {
      return fail("unknown directive '" + kind + "'");
    }
  }
  if (!saw_header) {
    ++line_number;
    fail_column = 0;
    return fail("missing 'wiring' header");
  }
  for (const levelb::NetResult& net : wiring.nets) {
    wiring.total_wire_length += net.wire_length;
    wiring.total_corners += net.corners;
    if (net.complete) {
      ++wiring.routed_nets;
    } else {
      ++wiring.failed_nets;
    }
  }
  result.result = std::move(wiring);
  return result;
}

bool save_wiring(const levelb::LevelBResult& result,
                 const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string text = write_wiring_text(result);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return written == text.size();
}

}  // namespace ocr::io

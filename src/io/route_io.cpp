#include "io/route_io.hpp"

#include <cstdio>
#include <sstream>

#include "util/str.hpp"

namespace ocr::io {
namespace {

using geom::Orientation;
using geom::Point;

std::vector<std::string> tokenize(std::string_view line) {
  const std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::vector<std::string> tokens;
  std::istringstream stream{std::string(line)};
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

bool parse_coord(const std::string& token, geom::Coord* out) {
  try {
    std::size_t used = 0;
    const long long value = std::stoll(token, &used);
    if (used != token.size()) return false;
    *out = value;
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

std::string write_wiring_text(const levelb::LevelBResult& result) {
  std::string out = "# overcell-router wiring v1\n";
  out += util::format("wiring %zu\n", result.nets.size());
  for (const levelb::NetResult& net : result.nets) {
    out += util::format("net %d %d\n", net.id, net.complete ? 1 : 0);
    for (const levelb::Path& path : net.paths) {
      for (std::size_t leg = 0; leg + 1 < path.points.size(); ++leg) {
        const Point& a = path.points[leg];
        const Point& b = path.points[leg + 1];
        const bool horizontal =
            path.tracks[leg].orient == Orientation::kHorizontal;
        out += util::format(
            "leg %s %lld %lld %lld %lld\n",
            horizontal ? "metal3" : "metal4", static_cast<long long>(a.x),
            static_cast<long long>(a.y), static_cast<long long>(b.x),
            static_cast<long long>(b.y));
      }
      for (std::size_t c = 1; c + 1 < path.points.size(); ++c) {
        out += util::format("via %lld %lld\n",
                            static_cast<long long>(path.points[c].x),
                            static_cast<long long>(path.points[c].y));
      }
    }
  }
  return out;
}

WiringParseResult read_wiring_text(const std::string& text) {
  WiringParseResult result;
  levelb::LevelBResult wiring;
  levelb::NetResult* current = nullptr;
  int line_number = 0;
  const auto fail = [&](const std::string& why) {
    result.result.reset();
    result.error = util::format("line %d: %s", line_number, why.c_str());
    return result;
  };

  std::istringstream stream(text);
  std::string line;
  bool saw_header = false;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& kind = tokens[0];
    if (kind == "wiring") {
      saw_header = true;
    } else if (kind == "net") {
      if (tokens.size() != 3) return fail("net needs <id> <complete>");
      levelb::NetResult net;
      geom::Coord id = 0;
      geom::Coord complete = 0;
      if (!parse_coord(tokens[1], &id) ||
          !parse_coord(tokens[2], &complete)) {
        return fail("bad net fields");
      }
      net.id = static_cast<int>(id);
      net.complete = complete != 0;
      wiring.nets.push_back(std::move(net));
      current = &wiring.nets.back();
    } else if (kind == "leg") {
      if (current == nullptr) return fail("leg before any net");
      if (tokens.size() != 6) {
        return fail("leg needs <layer> <x1> <y1> <x2> <y2>");
      }
      Orientation orient;
      if (tokens[1] == "metal3") {
        orient = Orientation::kHorizontal;
      } else if (tokens[1] == "metal4") {
        orient = Orientation::kVertical;
      } else {
        return fail("unknown layer '" + tokens[1] + "'");
      }
      Point a;
      Point b;
      if (!parse_coord(tokens[2], &a.x) || !parse_coord(tokens[3], &a.y) ||
          !parse_coord(tokens[4], &b.x) || !parse_coord(tokens[5], &b.y)) {
        return fail("bad leg coordinates");
      }
      if (a.x != b.x && a.y != b.y) return fail("leg is not axis-aligned");
      levelb::Path path;
      path.points = {a, b};
      path.tracks = {tig::TrackRef{orient, 0}};
      current->wire_length += path.length();
      current->paths.push_back(std::move(path));
    } else if (kind == "via") {
      if (current == nullptr) return fail("via before any net");
      if (tokens.size() != 3) return fail("via needs <x> <y>");
      Point p;
      if (!parse_coord(tokens[1], &p.x) || !parse_coord(tokens[2], &p.y)) {
        return fail("bad via coordinates");
      }
      ++current->corners;
    } else {
      return fail("unknown directive '" + kind + "'");
    }
  }
  if (!saw_header) {
    ++line_number;
    return fail("missing 'wiring' header");
  }
  for (const levelb::NetResult& net : wiring.nets) {
    wiring.total_wire_length += net.wire_length;
    wiring.total_corners += net.corners;
    if (net.complete) {
      ++wiring.routed_nets;
    } else {
      ++wiring.failed_nets;
    }
  }
  result.result = std::move(wiring);
  return result;
}

bool save_wiring(const levelb::LevelBResult& result,
                 const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string text = write_wiring_text(result);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return written == text.size();
}

}  // namespace ocr::io

#include "io/job_io.hpp"

#include <map>

#include "io/flat_json.hpp"

namespace ocr::io {

using internal::FlatObjectParser;
using internal::JsonWriter;
using internal::Scalar;
using internal::take_bool;
using internal::take_int;
using internal::take_string;
using util::Status;
using util::StatusOr;

StatusOr<JobRequest> parse_job_request(const std::string& line) {
  std::map<std::string, Scalar> fields;
  Status s = FlatObjectParser(line).parse(fields);
  if (!s.ok()) return s;

  JobRequest request;
  long long threads = request.threads;
  if (!(s = take_string(fields, "id", request.id)).ok()) return s;
  if (!(s = take_string(fields, "example", request.example)).ok()) return s;
  if (!(s = take_string(fields, "input", request.input)).ok()) return s;
  if (!(s = take_string(fields, "flow", request.flow)).ok()) return s;
  if (!(s = take_string(fields, "partition", request.partition)).ok()) {
    return s;
  }
  if (!(s = take_int(fields, "threads", threads)).ok()) return s;
  if (!(s = take_string(fields, "engine_mode", request.engine_mode)).ok()) {
    return s;
  }
  if (!(s = take_int(fields, "deadline_ms", request.deadline_ms)).ok()) {
    return s;
  }
  if (!(s = take_int(fields, "net_effort", request.net_effort)).ok()) return s;
  if (!(s = take_string(fields, "fail_policy", request.fail_policy)).ok()) {
    return s;
  }
  if (!(s = take_string(fields, "faults", request.faults)).ok()) return s;
  if (!(s = take_string(fields, "manifest", request.manifest)).ok()) return s;
  request.threads = static_cast<int>(threads);

  if (!fields.empty()) {
    return Status::parse_error("unknown field '" + fields.begin()->first +
                               "'")
        .with_stage("job-io");
  }
  return request;
}

std::string render_job_response(const JobResponse& response) {
  JsonWriter w;
  w.field("id", response.id);
  w.field("status", response.status);
  w.field("exit_class", static_cast<long long>(response.exit_class));
  w.field("queue_ms", response.queue_ms);
  w.field("run_ms", response.run_ms);
  w.field("wire_length", response.wire_length);
  w.field("vias", static_cast<long long>(response.vias));
  w.field("unrouted_nets", static_cast<long long>(response.unrouted_nets));
  w.field("cancelled_nets", static_cast<long long>(response.cancelled_nets));
  w.field("deadline_fired", response.deadline_fired);
  w.field("faults_injected", response.faults_injected);
  w.field("attempts", static_cast<long long>(response.attempts));
  if (response.replayed) w.field("replayed", true);
  w.field("error", response.error);
  w.field("manifest", response.manifest);
  return w.finish();
}

StatusOr<JobResponse> parse_job_response(const std::string& line) {
  std::map<std::string, Scalar> fields;
  Status s = FlatObjectParser(line).parse(fields);
  if (!s.ok()) return s;

  JobResponse r;
  long long exit_class = 0, vias = 0, unrouted = 0, cancelled = 0;
  long long attempts = r.attempts;
  if (!(s = take_string(fields, "id", r.id)).ok()) return s;
  if (!(s = take_string(fields, "status", r.status)).ok()) return s;
  if (!(s = take_int(fields, "exit_class", exit_class)).ok()) return s;
  if (!(s = take_int(fields, "queue_ms", r.queue_ms)).ok()) return s;
  if (!(s = take_int(fields, "run_ms", r.run_ms)).ok()) return s;
  if (!(s = take_int(fields, "wire_length", r.wire_length)).ok()) return s;
  if (!(s = take_int(fields, "vias", vias)).ok()) return s;
  if (!(s = take_int(fields, "unrouted_nets", unrouted)).ok()) return s;
  if (!(s = take_int(fields, "cancelled_nets", cancelled)).ok()) return s;
  if (!(s = take_bool(fields, "deadline_fired", r.deadline_fired)).ok()) {
    return s;
  }
  if (!(s = take_int(fields, "faults_injected", r.faults_injected)).ok()) {
    return s;
  }
  if (!(s = take_int(fields, "attempts", attempts)).ok()) return s;
  if (!(s = take_bool(fields, "replayed", r.replayed)).ok()) return s;
  if (!(s = take_string(fields, "error", r.error)).ok()) return s;
  if (!(s = take_string(fields, "manifest", r.manifest)).ok()) return s;
  r.exit_class = static_cast<int>(exit_class);
  r.vias = static_cast<int>(vias);
  r.unrouted_nets = static_cast<int>(unrouted);
  r.cancelled_nets = static_cast<int>(cancelled);
  r.attempts = static_cast<int>(attempts);
  return r;
}

}  // namespace ocr::io

#include "io/job_io.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <utility>

#include "util/trace.hpp"

namespace ocr::io {
namespace {

using util::Status;
using util::StatusOr;

/// One decoded scalar from a flat JSON object. The job protocol never
/// nests, so the parser rejects arrays/objects in value position — a
/// deliberate restriction that keeps the codec small and the failure
/// modes obvious.
struct Scalar {
  enum class Kind { kString, kInt, kDouble, kBool, kNull } kind;
  std::string str;
  long long integer = 0;
  double real = 0.0;
  bool boolean = false;
};

/// Strict recursive-descent parser for `{"key": scalar, ...}` lines.
class FlatObjectParser {
 public:
  explicit FlatObjectParser(const std::string& text) : text_(text) {}

  Status parse(std::map<std::string, Scalar>& out) {
    skip_ws();
    if (!eat('{')) return error("expected '{'");
    skip_ws();
    if (eat('}')) return finish();
    for (;;) {
      skip_ws();
      std::string key;
      Status s = parse_string(key);
      if (!s.ok()) return s;
      skip_ws();
      if (!eat(':')) return error("expected ':'");
      skip_ws();
      Scalar value;
      s = parse_scalar(value);
      if (!s.ok()) return s;
      if (!out.emplace(key, std::move(value)).second) {
        return error(("duplicate key '" + key + "'").c_str());
      }
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return finish();
      return error("expected ',' or '}'");
    }
  }

 private:
  Status finish() {
    skip_ws();
    if (pos_ != text_.size()) return error("trailing garbage");
    return Status();
  }

  Status error(const char* reason) const {
    return Status::parse_error(std::string(reason) + " at byte " +
                               std::to_string(pos_))
        .with_stage("job-io");
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!eat(*p)) return false;
    }
    return true;
  }

  Status parse_string(std::string& out) {
    if (!eat('"')) return error("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status();
      if (static_cast<unsigned char>(c) < 0x20) {
        return error("unescaped control character");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return error("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // The job schema is ASCII; decode BMP escapes to '?' placeholders
          // rather than carrying a UTF-8 encoder for field values that are
          // never non-ASCII in practice.
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = peek();
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              return error("bad \\u escape");
            }
            code = code * 16 +
                   static_cast<unsigned>(
                       std::isdigit(static_cast<unsigned char>(h))
                           ? h - '0'
                           : std::tolower(h) - 'a' + 10);
            ++pos_;
          }
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return error("bad escape");
      }
    }
    return error("unterminated string");
  }

  Status parse_scalar(Scalar& out) {
    const char c = peek();
    if (c == '"') {
      out.kind = Scalar::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't') {
      if (!literal("true")) return error("bad literal");
      out.kind = Scalar::Kind::kBool;
      out.boolean = true;
      return Status();
    }
    if (c == 'f') {
      if (!literal("false")) return error("bad literal");
      out.kind = Scalar::Kind::kBool;
      out.boolean = false;
      return Status();
    }
    if (c == 'n') {
      if (!literal("null")) return error("bad literal");
      out.kind = Scalar::Kind::kNull;
      return Status();
    }
    if (c == '{' || c == '[') {
      return error("nested values are not part of the job schema");
    }
    return parse_number(out);
  }

  Status parse_number(Scalar& out) {
    const std::size_t start = pos_;
    eat('-');
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return error("expected value");
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    bool is_double = false;
    if (eat('.')) {
      is_double = true;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return error("bad fraction");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      is_double = true;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return error("bad exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (is_double) {
      out.kind = Scalar::Kind::kDouble;
      out.real = std::strtod(token.c_str(), nullptr);
    } else {
      out.kind = Scalar::Kind::kInt;
      out.integer = std::strtoll(token.c_str(), nullptr, 10);
    }
    return Status();
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Status type_error(const std::string& key, const char* want) {
  return Status::parse_error("field '" + key + "' must be a " + want)
      .with_stage("job-io");
}

Status take_string(std::map<std::string, Scalar>& fields,
                   const std::string& key, std::string& out) {
  const auto it = fields.find(key);
  if (it == fields.end()) return Status();
  if (it->second.kind != Scalar::Kind::kString) {
    return type_error(key, "string");
  }
  out = std::move(it->second.str);
  fields.erase(it);
  return Status();
}

Status take_int(std::map<std::string, Scalar>& fields, const std::string& key,
                long long& out) {
  const auto it = fields.find(key);
  if (it == fields.end()) return Status();
  if (it->second.kind != Scalar::Kind::kInt) return type_error(key, "number");
  out = it->second.integer;
  fields.erase(it);
  return Status();
}

Status take_bool(std::map<std::string, Scalar>& fields, const std::string& key,
                 bool& out) {
  const auto it = fields.find(key);
  if (it == fields.end()) return Status();
  if (it->second.kind != Scalar::Kind::kBool) return type_error(key, "bool");
  out = it->second.boolean;
  fields.erase(it);
  return Status();
}

/// Appends `"key":value` (with a leading comma when needed).
class JsonWriter {
 public:
  void field(const char* key, const std::string& value) {
    sep();
    out_ += '"';
    out_ += key;
    out_ += "\":\"";
    out_ += util::json_escape(value);
    out_ += '"';
  }
  void field(const char* key, long long value) {
    sep();
    out_ += '"';
    out_ += key;
    out_ += "\":";
    out_ += std::to_string(value);
  }
  void field(const char* key, bool value) {
    sep();
    out_ += '"';
    out_ += key;
    out_ += "\":";
    out_ += value ? "true" : "false";
  }
  std::string finish() { return "{" + out_ + "}"; }

 private:
  void sep() {
    if (!out_.empty()) out_ += ',';
  }
  std::string out_;
};

}  // namespace

StatusOr<JobRequest> parse_job_request(const std::string& line) {
  std::map<std::string, Scalar> fields;
  Status s = FlatObjectParser(line).parse(fields);
  if (!s.ok()) return s;

  JobRequest request;
  long long threads = request.threads;
  if (!(s = take_string(fields, "id", request.id)).ok()) return s;
  if (!(s = take_string(fields, "example", request.example)).ok()) return s;
  if (!(s = take_string(fields, "input", request.input)).ok()) return s;
  if (!(s = take_string(fields, "flow", request.flow)).ok()) return s;
  if (!(s = take_string(fields, "partition", request.partition)).ok()) {
    return s;
  }
  if (!(s = take_int(fields, "threads", threads)).ok()) return s;
  if (!(s = take_int(fields, "deadline_ms", request.deadline_ms)).ok()) {
    return s;
  }
  if (!(s = take_int(fields, "net_effort", request.net_effort)).ok()) return s;
  if (!(s = take_string(fields, "fail_policy", request.fail_policy)).ok()) {
    return s;
  }
  if (!(s = take_string(fields, "faults", request.faults)).ok()) return s;
  if (!(s = take_string(fields, "manifest", request.manifest)).ok()) return s;
  request.threads = static_cast<int>(threads);

  if (!fields.empty()) {
    return Status::parse_error("unknown field '" + fields.begin()->first +
                               "'")
        .with_stage("job-io");
  }
  return request;
}

std::string render_job_response(const JobResponse& response) {
  JsonWriter w;
  w.field("id", response.id);
  w.field("status", response.status);
  w.field("exit_class", static_cast<long long>(response.exit_class));
  w.field("queue_ms", response.queue_ms);
  w.field("run_ms", response.run_ms);
  w.field("wire_length", response.wire_length);
  w.field("vias", static_cast<long long>(response.vias));
  w.field("unrouted_nets", static_cast<long long>(response.unrouted_nets));
  w.field("cancelled_nets", static_cast<long long>(response.cancelled_nets));
  w.field("deadline_fired", response.deadline_fired);
  w.field("faults_injected", response.faults_injected);
  w.field("error", response.error);
  w.field("manifest", response.manifest);
  return w.finish();
}

StatusOr<JobResponse> parse_job_response(const std::string& line) {
  std::map<std::string, Scalar> fields;
  Status s = FlatObjectParser(line).parse(fields);
  if (!s.ok()) return s;

  JobResponse r;
  long long exit_class = 0, vias = 0, unrouted = 0, cancelled = 0;
  if (!(s = take_string(fields, "id", r.id)).ok()) return s;
  if (!(s = take_string(fields, "status", r.status)).ok()) return s;
  if (!(s = take_int(fields, "exit_class", exit_class)).ok()) return s;
  if (!(s = take_int(fields, "queue_ms", r.queue_ms)).ok()) return s;
  if (!(s = take_int(fields, "run_ms", r.run_ms)).ok()) return s;
  if (!(s = take_int(fields, "wire_length", r.wire_length)).ok()) return s;
  if (!(s = take_int(fields, "vias", vias)).ok()) return s;
  if (!(s = take_int(fields, "unrouted_nets", unrouted)).ok()) return s;
  if (!(s = take_int(fields, "cancelled_nets", cancelled)).ok()) return s;
  if (!(s = take_bool(fields, "deadline_fired", r.deadline_fired)).ok()) {
    return s;
  }
  if (!(s = take_int(fields, "faults_injected", r.faults_injected)).ok()) {
    return s;
  }
  if (!(s = take_string(fields, "error", r.error)).ok()) return s;
  if (!(s = take_string(fields, "manifest", r.manifest)).ok()) return s;
  r.exit_class = static_cast<int>(exit_class);
  r.vias = static_cast<int>(vias);
  r.unrouted_nets = static_cast<int>(unrouted);
  r.cancelled_nets = static_cast<int>(cancelled);
  return r;
}

}  // namespace ocr::io

#include "io/journal_io.hpp"

#include <map>

#include "io/flat_json.hpp"

namespace ocr::io {

using internal::FlatObjectParser;
using internal::JsonWriter;
using internal::Scalar;
using internal::take_int;
using internal::take_string;
using util::Status;
using util::StatusOr;

const char* journal_event_name(JournalEvent event) {
  switch (event) {
    case JournalEvent::kAccepted: return "accepted";
    case JournalEvent::kStarted: return "started";
    case JournalEvent::kRetry: return "retry";
    case JournalEvent::kCompleted: return "completed";
    case JournalEvent::kFailed: return "failed";
    case JournalEvent::kResponded: return "responded";
    case JournalEvent::kDrain: return "drain";
  }
  return "unknown";
}

namespace {

bool event_from_name(const std::string& name, JournalEvent& out) {
  static constexpr JournalEvent kAll[] = {
      JournalEvent::kAccepted,  JournalEvent::kStarted,
      JournalEvent::kRetry,     JournalEvent::kCompleted,
      JournalEvent::kFailed,    JournalEvent::kResponded,
      JournalEvent::kDrain,
  };
  for (const JournalEvent event : kAll) {
    if (name == journal_event_name(event)) {
      out = event;
      return true;
    }
  }
  return false;
}

bool has_digest(JournalEvent event) {
  return event == JournalEvent::kCompleted || event == JournalEvent::kFailed;
}

}  // namespace

std::string render_journal_record(const JournalRecord& record) {
  JsonWriter w;
  w.field("event", std::string(journal_event_name(record.event)));
  w.field("seq", record.seq);
  if (record.event != JournalEvent::kDrain) {
    w.field("id", record.id);
  }
  switch (record.event) {
    case JournalEvent::kAccepted:
      w.field("attempt", static_cast<long long>(record.attempt));
      w.field("request", record.request);
      break;
    case JournalEvent::kStarted:
      w.field("attempt", static_cast<long long>(record.attempt));
      break;
    case JournalEvent::kRetry:
      w.field("attempt", static_cast<long long>(record.attempt));
      w.field("backoff_ms", record.backoff_ms);
      w.field("error", record.error);
      break;
    case JournalEvent::kCompleted:
    case JournalEvent::kFailed:
      w.field("attempt", static_cast<long long>(record.attempt));
      w.field("status", record.status);
      w.field("exit_class", static_cast<long long>(record.exit_class));
      w.field("wire_length", record.wire_length);
      w.field("vias", static_cast<long long>(record.vias));
      w.field("unrouted_nets", static_cast<long long>(record.unrouted_nets));
      w.field("cancelled_nets", static_cast<long long>(record.cancelled_nets));
      w.field("run_ms", record.run_ms);
      if (!record.error.empty()) w.field("error", record.error);
      break;
    case JournalEvent::kResponded:
      break;
    case JournalEvent::kDrain:
      w.field("unfinished", static_cast<long long>(record.unfinished));
      break;
  }
  return w.finish();
}

StatusOr<JournalRecord> parse_journal_record(const std::string& line) {
  std::map<std::string, Scalar> fields;
  Status s = FlatObjectParser(line).parse(fields);
  if (!s.ok()) return s;

  std::string event_name;
  if (!(s = take_string(fields, "event", event_name)).ok()) return s;
  JournalRecord record;
  if (!event_from_name(event_name, record.event)) {
    return Status::parse_error("unknown journal event '" + event_name + "'")
        .with_stage("journal-io");
  }

  long long attempt = 0, exit_class = 0, vias = 0, unrouted = 0,
            cancelled = 0, unfinished = 0;
  if (!(s = take_int(fields, "seq", record.seq)).ok()) return s;
  if (!(s = take_string(fields, "id", record.id)).ok()) return s;
  if (!(s = take_int(fields, "attempt", attempt)).ok()) return s;
  if (!(s = take_string(fields, "request", record.request)).ok()) return s;
  if (!(s = take_string(fields, "status", record.status)).ok()) return s;
  if (!(s = take_int(fields, "exit_class", exit_class)).ok()) return s;
  if (!(s = take_int(fields, "wire_length", record.wire_length)).ok()) {
    return s;
  }
  if (!(s = take_int(fields, "vias", vias)).ok()) return s;
  if (!(s = take_int(fields, "unrouted_nets", unrouted)).ok()) return s;
  if (!(s = take_int(fields, "cancelled_nets", cancelled)).ok()) return s;
  if (!(s = take_int(fields, "run_ms", record.run_ms)).ok()) return s;
  if (!(s = take_string(fields, "error", record.error)).ok()) return s;
  if (!(s = take_int(fields, "backoff_ms", record.backoff_ms)).ok()) return s;
  if (!(s = take_int(fields, "unfinished", unfinished)).ok()) return s;
  record.attempt = static_cast<int>(attempt);
  record.exit_class = static_cast<int>(exit_class);
  record.vias = static_cast<int>(vias);
  record.unrouted_nets = static_cast<int>(unrouted);
  record.cancelled_nets = static_cast<int>(cancelled);
  record.unfinished = static_cast<int>(unfinished);
  // Unknown remaining fields are tolerated for forward compatibility.

  if (record.event != JournalEvent::kDrain && record.id.empty()) {
    return Status::parse_error("journal record missing 'id'")
        .with_stage("journal-io");
  }
  if (record.event == JournalEvent::kAccepted && record.request.empty()) {
    return Status::parse_error("accepted record missing 'request'")
        .with_stage("journal-io");
  }
  if (has_digest(record.event) && record.status.empty()) {
    return Status::parse_error("terminal record missing 'status'")
        .with_stage("journal-io");
  }
  return record;
}

}  // namespace ocr::io

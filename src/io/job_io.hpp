#pragma once
/// \file job_io.hpp
/// \brief JSONL codec for routing-service jobs.
///
/// The `ocr_served` daemon speaks a line-oriented protocol: every request
/// is one JSON object per line on stdin (or a unix-socket connection) and
/// every response is one JSON object per line on stdout (or back on the
/// same connection). This file owns both directions: a small strict JSON
/// parser for the flat request schema, and the response renderer.
///
/// Request schema (all fields optional unless noted; unknown keys are a
/// parse error so typos fail loudly):
///
/// ```json
/// {"id":"job-1","example":"ami33","flow":"overcell","partition":"class",
///  "threads":2,"deadline_ms":5000,"net_effort":0,
///  "fail_policy":"degrade","faults":"-","manifest":"out/job-1.json"}
/// ```
///
/// * `id`          — caller-chosen correlation tag echoed in the response.
/// * `example` / `input` — exactly one required: a built-in generator name
///   (`ami33|xerox|ex3|random[:seed]`) or an `.oclay` file path.
/// * `flow`        — `overcell|2layer|4layer|50pct` (default `overcell`).
/// * `partition`   — `class|allb|length=<dbu>` (default `class`).
/// * `threads`     — level-B engine workers for this job (default 1).
/// * `engine_mode` — parallel dispatch for `threads > 1`:
///   `speculative|sharded|auto` (default `speculative`; serial-exact
///   either way).
/// * `deadline_ms` — per-job wall-clock budget, 0 = none.
/// * `net_effort`  — per-net vertex budget, 0 = unlimited.
/// * `fail_policy` — `abort|degrade|partial` (default `degrade`).
/// * `faults`      — fault-injection spec; default `"-"` (disarmed — jobs
///   never inherit `OCR_FAULTS` from the daemon environment).
/// * `manifest`    — path to write this job's RunManifest JSON.
///
/// Response schema (see docs/SERVICE.md for the exit-class contract):
///
/// ```json
/// {"id":"job-1","status":"clean","exit_class":0,"queue_ms":1,"run_ms":42,
///  "wire_length":12345,"vias":67,"unrouted_nets":0,"cancelled_nets":0,
///  "deadline_fired":false,"faults_injected":0,"error":"","manifest":"..."}
/// ```

#include <string>

#include "util/status.hpp"

namespace ocr::io {

/// One decoded job-request line. Plain data; validation beyond JSON
/// structure (legal flow names, spec consistency) happens in
/// service::spec_from_request so the codec stays policy-free.
struct JobRequest {
  std::string id;
  std::string example;
  std::string input;
  std::string flow = "overcell";
  std::string partition = "class";
  int threads = 1;
  std::string engine_mode = "speculative";
  long long deadline_ms = 0;
  long long net_effort = 0;
  std::string fail_policy = "degrade";
  /// "-" disarms injection for this job (the default; an empty spec would
  /// mean "inherit OCR_FAULTS", which a multi-tenant daemon must not do).
  std::string faults = "-";
  std::string manifest;
};

/// Parses one JSONL request line. Strict: the line must be a flat JSON
/// object, every key must be known, and values must have the right type.
/// Returns kParseError with a byte offset in the message otherwise.
util::StatusOr<JobRequest> parse_job_request(const std::string& line);

/// One job-response line (not yet newline-terminated).
struct JobResponse {
  std::string id;
  std::string status;  ///< clean | partial | failed | rejected
  int exit_class = 0;  ///< 0 clean, 1 failed, 2 rejected/usage, 3 partial
  long long queue_ms = 0;
  long long run_ms = 0;
  long long wire_length = 0;
  int vias = 0;
  int unrouted_nets = 0;
  int cancelled_nets = 0;
  bool deadline_fired = false;
  long long faults_injected = 0;
  int attempts = 1;       ///< execution attempts (>1 when retried)
  bool replayed = false;  ///< synthesized from the journal, not re-routed
  std::string error;      ///< empty when OK
  std::string manifest;   ///< manifest path when one was written
};

/// Renders \p response as one JSON object (single line, no newline).
std::string render_job_response(const JobResponse& response);

/// Parses a response line back into a JobResponse (used by tests and the
/// bench harness to consume daemon output without a full JSON library).
util::StatusOr<JobResponse> parse_job_response(const std::string& line);

}  // namespace ocr::io

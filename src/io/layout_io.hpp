#pragma once
/// \file layout_io.hpp
/// \brief Plain-text serialization of macro-cell floorplans.
///
/// A small line-oriented format so instances can be saved, shared and fed
/// to the `ocr_route` command-line driver:
///
/// ```
/// # comment
/// layout <name> <die_width>
/// row <height>
/// cell <name> <row> <x> <width> <height>
/// net <name> <signal|critical|clock|power>
/// pin <net_index> <cell_index|-1> <N|S> <x>
/// obstacle <cell_index> <x_lo> <y_lo> <x_hi> <y_hi> <m3 0|1> <m4 0|1> <reason>
/// ```
///
/// Indices refer to declaration order. Fields are whitespace-separated;
/// names must not contain whitespace.

#include <optional>
#include <string>
#include <vector>

#include "floorplan/macro_layout.hpp"
#include "util/status.hpp"

namespace ocr::io {

/// Serializes \p ml to the text format.
std::string write_layout_text(const floorplan::MacroLayout& ml);

/// Parser behavior knobs.
struct ParseOptions {
  /// Skip malformed directive lines (recorded as warnings) instead of
  /// failing the whole parse. Structural problems — a missing 'layout'
  /// header, a layout that fails validation — still fail. This is the
  /// degrade-policy path for corrupt inputs. Caveat: cell/net lines are
  /// index-bearing (later pins refer to them by declaration order), so
  /// skipping one usually shifts references and the final validation
  /// rejects the layout anyway; lenient mode reliably recovers from
  /// corrupt pin/obstacle lines.
  bool lenient = false;
};

/// Parse outcome: either a layout or a diagnostic with line/column.
struct ParseResult {
  std::optional<floorplan::MacroLayout> layout;
  std::string error;  ///< empty on success (status.to_string() otherwise)
  /// Machine-readable outcome: kParseError/kIoError/kFaultInjected with
  /// 1-based line() and column() of the offending token.
  util::Status status;
  /// Lenient mode: one entry per skipped malformed line.
  std::vector<std::string> warnings;

  bool ok() const { return layout.has_value(); }
};

/// Parses the text format. Never throws; malformed input yields a Status
/// naming the offending line and column.
ParseResult read_layout_text(const std::string& text,
                             const ParseOptions& options = {});

/// File convenience wrappers.
bool save_layout(const floorplan::MacroLayout& ml, const std::string& path);
ParseResult load_layout(const std::string& path,
                        const ParseOptions& options = {});

}  // namespace ocr::io

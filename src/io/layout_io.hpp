#pragma once
/// \file layout_io.hpp
/// \brief Plain-text serialization of macro-cell floorplans.
///
/// A small line-oriented format so instances can be saved, shared and fed
/// to the `ocr_route` command-line driver:
///
/// ```
/// # comment
/// layout <name> <die_width>
/// row <height>
/// cell <name> <row> <x> <width> <height>
/// net <name> <signal|critical|clock|power>
/// pin <net_index> <cell_index|-1> <N|S> <x>
/// obstacle <cell_index> <x_lo> <y_lo> <x_hi> <y_hi> <m3 0|1> <m4 0|1> <reason>
/// ```
///
/// Indices refer to declaration order. Fields are whitespace-separated;
/// names must not contain whitespace.

#include <optional>
#include <string>

#include "floorplan/macro_layout.hpp"

namespace ocr::io {

/// Serializes \p ml to the text format.
std::string write_layout_text(const floorplan::MacroLayout& ml);

/// Parse outcome: either a layout or a diagnostic with a line number.
struct ParseResult {
  std::optional<floorplan::MacroLayout> layout;
  std::string error;  ///< empty on success

  bool ok() const { return layout.has_value(); }
};

/// Parses the text format. Never throws; malformed input yields an error
/// message naming the offending line.
ParseResult read_layout_text(const std::string& text);

/// File convenience wrappers.
bool save_layout(const floorplan::MacroLayout& ml, const std::string& path);
ParseResult load_layout(const std::string& path);

}  // namespace ocr::io

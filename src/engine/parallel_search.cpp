#include "engine/parallel_search.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "levelb/workspace.hpp"
#include "util/assert.hpp"
#include "util/fault.hpp"
#include "util/profile.hpp"

namespace ocr::engine {

using geom::Point;

void SpeculationSlots::publish(std::size_t position, Speculation spec) {
  OCR_ASSERT(position < size_, "slot position out of range");
  Slot& slot = slots_[position];
  OCR_ASSERT(!slot.ready.load(std::memory_order_relaxed),
             "slot published twice");
  slot.spec = std::move(spec);
  slot.ready.store(true, std::memory_order_release);
  slot.ready.notify_all();
}

Speculation SpeculationSlots::take(std::size_t position) {
  OCR_ASSERT(position < size_, "slot position out of range");
  Slot& slot = slots_[position];
  slot.ready.wait(false, std::memory_order_acquire);
  return std::move(slot.spec);
}

Speculation SpeculationSlots::take(
    std::size_t position, const std::function<bool()>& abandoned) {
  OCR_ASSERT(position < size_, "slot position out of range");
  Slot& slot = slots_[position];
  // Fast path: spin briefly — in the steady state the worker is already
  // done or about to be.
  for (int spin = 0; spin < 256; ++spin) {
    if (slot.ready.load(std::memory_order_acquire)) {
      return std::move(slot.spec);
    }
    std::this_thread::yield();
  }
  // Slow path: sleep-poll so a dead worker (which will never set the
  // flag) cannot strand us, checking the abandonment predicate once per
  // sleep instead of per spin (it may take a lock).
  for (;;) {
    if (slot.ready.load(std::memory_order_acquire)) {
      return std::move(slot.spec);
    }
    if (abandoned()) {
      // Worker died before publishing; hand back a poisoned placeholder
      // so the committer recomputes this position on the live grid.
      Speculation spec;
      spec.poisoned = true;
      return spec;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void BatchSearch::start_batch(
    const tig::TrackGrid* base, std::size_t begin, std::size_t end,
    std::shared_ptr<const levelb::SensitiveRuns> sensitive) {
  base_ = base;
  sensitive_ = std::move(sensitive);
  begin_ = begin;
  items_.clear();
  items_.resize(end - begin);
  cursor_.store(0, std::memory_order_relaxed);
}

void BatchSearch::run_worker() {
  // No rebase, no log replay: the batch-start grid is exact, and the
  // planner guarantees same-batch nets cannot influence each other's
  // reads (escapes are caught by the committer's footprint check). The
  // overlay only carries this worker's terminal braces.
  tig::GridOverlay overlay(base_);
  levelb::SearchWorkspace workspace;
  for (;;) {
    const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= items_.size()) {
      workspace.publish_arena_metrics();
      return;
    }
    const std::size_t k = begin_ + i;
    Item& item = items_[i];
    if (OCR_FAULT_KEY("engine.worker.route", nets_[k]->id)) continue;
    try {
      const std::vector<Point>& terminals = *terminals_[k];
      for (const Point& p : terminals) {
        levelb::unblock_terminal(overlay, p);
      }
      const auto start = std::chrono::steady_clock::now();
      {
        OCR_SPAN("engine.search");
        item.result = levelb::route_single_net(
            overlay, options_,
            levelb::NetRouteRequest{nets_[k]->id, &terminals,
                                    unrouted_.suffix(k), sensitive_.get()},
            item.committed, item.stats, &item.footprint, &workspace);
      }
      item.search_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      for (const Point& p : terminals) {
        levelb::block_terminal(overlay, p);
      }
      item.routed = true;
    } catch (...) {
      // Same contract as a poisoned speculation: leave the item unrouted
      // for serial recovery and drop the possibly half-mutated overlay.
      item = Item{};
      overlay.rebase(base_);
    }
  }
}

void ParallelSearch::run_worker() {
  // The worker's view of the routing surface: the shared immutable
  // snapshot plus a private overlay. The overlay accumulates the
  // commit-log batches newer than the snapshot (so claims between
  // snapshot refreshes never copy the grid) and carries the terminal
  // braces around each search — which are unblocked before and re-blocked
  // after, a structural no-op on the interval sets, so the overlay stays
  // equal to "snapshot + replayed commits" across claims.
  tig::GridOverlay overlay;
  std::shared_ptr<const tig::GridSnapshot> base;
  std::uint64_t applied = 0;  // commit epochs [0, applied) are reflected
  // Per-worker scratch buffers, reused across every claim this worker
  // serves (workspaces never affect results).
  levelb::SearchWorkspace workspace;

  while (const auto claim = scheduler_.claim()) {
    const std::size_t k = claim->position;

    Speculation spec;
    spec.queue_wait_us = claim->queue_wait_us;

    // A degraded claim (injected scheduler fault) skips the search
    // entirely; the committer recovers the position serially.
    if (claim->degraded ||
        OCR_FAULT_KEY("engine.worker.route", nets_[k]->id)) {
      spec.poisoned = true;
      slots_.publish(k, std::move(spec));
      continue;
    }

    try {
      // Published epoch+sensitive first, snapshot second. The pair is
      // read atomically; the snapshot may then be NEWER than the
      // published epoch (a commit landed in between), in which case the
      // extra blocks it contains sit inside the validation gap
      // [pub.epoch, k) — the commit check re-examines them, so the worst
      // case is a conservative abort, never a wrong accept. A snapshot
      // OLDER than the published epoch is caught up from the commit log
      // below.
      const Committer::Published pub = committer_.published();
      {
        OCR_SPAN("engine.rebase");
        const std::shared_ptr<const tig::GridSnapshot> snap =
            grid_.snapshot();
        if (base != snap) {
          overlay.rebase(&snap->grid);
          base = snap;
          applied = snap->epoch;
        }
        // Replay commit batches [applied, pub.epoch) onto the overlay.
        // record_at is lock-free here: the committer published pub.epoch
        // only after appending every record below it. Batches are
        // block-only during the parallel phase, so replay interleaving
        // with this worker's own braces is immaterial (set union
        // commutes with re-adding a blocked crossing).
        const std::uint64_t target = std::max<std::uint64_t>(applied,
                                                             pub.epoch);
        while (applied < target) {
          const tig::CommitRecord* record = grid_.log().record_at(applied);
          if (record == nullptr) break;  // unreachable; fail conservative
          for (const tig::CommitOp& op : record->ops) {
            overlay.apply(op.track, op.span, op.block);
          }
          ++applied;
        }
      }
      // The epoch the validation gap starts from must not exceed what
      // the sensitive registry covers (pub.epoch) nor what the overlay
      // actually reflects (applied) — a sensitive or footprint-touching
      // batch between the two is then re-checked at commit time.
      spec.epoch = std::min<std::uint64_t>(applied, pub.epoch);

      const std::vector<Point>& terminals = *terminals_[k];
      for (const Point& p : terminals) {
        levelb::unblock_terminal(overlay, p);
      }

      const auto start = std::chrono::steady_clock::now();
      OCR_SPAN("engine.search");
      spec.result = levelb::route_single_net(
          overlay, options_,
          levelb::NetRouteRequest{nets_[k]->id, &terminals,
                                  unrouted_.suffix(k), pub.sensitive.get()},
          spec.committed, spec.stats, &spec.footprint, &workspace);
      spec.search_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count();

      for (const Point& p : terminals) {
        levelb::block_terminal(overlay, p);
      }
    } catch (...) {
      // Claim boundary: a throwing search must not strand its slot (the
      // committer blocks on it) or kill the worker. Poison the position
      // — the committer recomputes it serially — and drop the overlay
      // state, which may be half-mutated (the next claim rebases from a
      // fresh snapshot).
      spec = Speculation{};
      spec.queue_wait_us = claim->queue_wait_us;
      spec.poisoned = true;
      base.reset();
      applied = 0;
    }

    slots_.publish(k, std::move(spec));
  }
  workspace.publish_arena_metrics();
}

}  // namespace ocr::engine

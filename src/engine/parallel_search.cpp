#include "engine/parallel_search.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include "levelb/workspace.hpp"
#include "util/assert.hpp"
#include "util/fault.hpp"

namespace ocr::engine {

using geom::Point;

void SpeculationSlots::publish(std::size_t position, Speculation spec) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    OCR_ASSERT(position < slots_.size(), "slot position out of range");
    OCR_ASSERT(!ready_[position], "slot published twice");
    slots_[position] = std::move(spec);
    ready_[position] = true;
  }
  cv_.notify_all();
}

Speculation SpeculationSlots::take(std::size_t position) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return ready_[position]; });
  return std::move(slots_[position]);
}

Speculation SpeculationSlots::take(
    std::size_t position, const std::function<bool()>& abandoned) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(10),
                     [&] { return ready_[position]; })) {
      return std::move(slots_[position]);
    }
    if (abandoned()) {
      // Worker died before publishing; hand back a poisoned placeholder
      // so the committer recomputes this position on the live grid.
      Speculation spec;
      spec.poisoned = true;
      return spec;
    }
  }
}

void ParallelSearch::run_worker() {
  // Snapshot copy reused across claims at the same epoch. Terminals are
  // unblocked before a net's search and re-blocked after — a structural
  // no-op on the interval sets — so the copy stays equal to its snapshot.
  std::optional<tig::TrackGrid> local;
  std::uint64_t local_epoch = 0;
  // Per-worker scratch buffers, reused across every claim this worker
  // serves (workspaces never affect results).
  levelb::SearchWorkspace workspace;

  while (const auto claim = scheduler_.claim()) {
    const std::size_t k = claim->position;

    Speculation spec;
    spec.queue_wait_us = claim->queue_wait_us;

    // A degraded claim (injected scheduler fault) skips the search
    // entirely; the committer recovers the position serially.
    if (claim->degraded ||
        OCR_FAULT_KEY("engine.worker.route", nets_[k]->id)) {
      spec.poisoned = true;
      slots_.publish(k, std::move(spec));
      continue;
    }

    try {
      // Grid snapshot BEFORE the sensitive snapshot: a sensitive commit
      // between the two reads then lies in the validation gap [epoch, k)
      // and invalidates this speculation, so the pair is never trusted
      // while inconsistent.
      const std::shared_ptr<const tig::GridSnapshot> snap =
          grid_.snapshot();
      const std::shared_ptr<const levelb::SensitiveRuns> sensitive =
          committer_.sensitive_snapshot();
      if (!local.has_value() || local_epoch != snap->epoch) {
        local.emplace(snap->grid);
        local_epoch = snap->epoch;
      }

      const std::vector<Point>& terminals = *terminals_[k];
      for (const Point& p : terminals) levelb::unblock_terminal(*local, p);

      spec.epoch = snap->epoch;
      const auto start = std::chrono::steady_clock::now();
      spec.result = levelb::route_single_net(
          *local, options_,
          levelb::NetRouteRequest{nets_[k]->id, &terminals,
                                  unrouted_.suffix(k), sensitive.get()},
          spec.committed, spec.stats, &spec.footprint, &workspace);
      spec.search_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count();

      for (const Point& p : terminals) levelb::block_terminal(*local, p);
    } catch (...) {
      // Claim boundary: a throwing search must not strand its slot (the
      // committer blocks on it) or kill the worker. Poison the position
      // — the committer recomputes it serially — and drop the local grid
      // copy, which may be half-mutated.
      spec = Speculation{};
      spec.queue_wait_us = claim->queue_wait_us;
      spec.poisoned = true;
      local.reset();
    }

    slots_.publish(k, std::move(spec));
  }
}

}  // namespace ocr::engine

#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "engine/committer.hpp"
#include "engine/parallel_search.hpp"
#include "engine/partition.hpp"
#include "engine/scheduler.hpp"
#include "geom/rect.hpp"
#include "levelb/router.hpp"
#include "levelb/workspace.hpp"
#include "tig/snapshot.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/profile.hpp"
#include "util/thread_pool.hpp"

namespace ocr::engine {
namespace {

using geom::Point;
using levelb::BNet;
using levelb::Committed;
using levelb::LevelBResult;
using levelb::NetResult;
using levelb::SearchStats;

long long micros_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Folds the run's EngineStats into the global registry (`engine.*`
/// counters accumulate across route() calls in one process; the thread
/// count is a gauge). One call per route(), never in the hot loop.
void publish_engine_metrics(const EngineStats& s) {
  util::MetricsRegistry& reg = util::MetricsRegistry::global();
  reg.counter("engine.routes").add();
  reg.gauge("engine.threads").set(s.threads);
  reg.gauge("engine.lookahead_peak").set(s.lookahead_peak);
  reg.counter("engine.speculative_commits").add(s.speculative_commits);
  reg.counter("engine.speculation_aborts").add(s.speculation_aborts);
  reg.counter("engine.wasted_vertices").add(s.wasted_vertices);
  reg.counter("engine.wasted_search_us").add(s.wasted_search_us);
  reg.counter("engine.queue_wait_us").add(s.queue_wait_us);
  reg.counter("engine.grid_copies").add(s.grid_copies);
  // Sharded-dispatch counters: kept apart from the speculative ones so
  // wasted work stays attributable to a dispatch strategy.
  reg.counter("engine.batches").add(s.batches);
  reg.counter("engine.sharded_commits").add(s.sharded_commits);
  reg.counter("engine.boundary_nets").add(s.boundary_nets);
  reg.counter("engine.sharded_wasted_vertices")
      .add(s.sharded_wasted_vertices);
  reg.counter("engine.sharded_wasted_search_us")
      .add(s.sharded_wasted_search_us);
  reg.counter("engine.fault_reroutes").add(s.fault_reroutes);
  reg.counter("engine.fault_drops").add(s.fault_drops);
  reg.counter("engine.worker_failures").add(s.worker_failures);
  reg.counter("engine.pool_task_failures").add(s.pool_task_failures);
  reg.counter("engine.ripup_recovered").add(s.ripup_recovered);
}

util::Histogram& net_search_us_histogram() {
  return util::MetricsRegistry::global().histogram(
      "engine.net_search_us",
      {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 100000});
}

/// Largest track pitch of the grid — the unit the shard halo and the
/// speculative conflict hints scale with.
geom::Coord grid_pitch(const tig::TrackGrid& grid) {
  geom::Coord pitch = 1;
  if (grid.num_h() >= 2) {
    pitch = std::max(pitch, grid.h_y(1) - grid.h_y(0));
  }
  if (grid.num_v() >= 2) {
    pitch = std::max(pitch, grid.v_x(1) - grid.v_x(0));
  }
  return pitch;
}

}  // namespace

const char* engine_mode_name(EngineMode mode) {
  switch (mode) {
    case EngineMode::kSpeculative: return "speculative";
    case EngineMode::kSharded: return "sharded";
    case EngineMode::kAuto: return "auto";
  }
  return "speculative";
}

bool parse_engine_mode(const std::string& name, EngineMode* mode) {
  if (name == "speculative") {
    *mode = EngineMode::kSpeculative;
  } else if (name == "sharded") {
    *mode = EngineMode::kSharded;
  } else if (name == "auto") {
    *mode = EngineMode::kAuto;
  } else {
    return false;
  }
  return true;
}

/// The parallel prologue, identical to the serial router's: the ordering,
/// the snapped terminal reservations, and the unrouted-suffix views fix
/// everything a net's search depends on besides grid occupancy. Built
/// exactly once per route() — terminal reservation mutates the grid, and
/// the shard plan must be derived from the same snapped terminals both
/// dispatch strategies will route.
struct RoutingEngine::Prepared {
  std::vector<std::size_t> order;
  std::vector<std::vector<Point>> snapped;
  std::vector<const BNet*> nets_by_position;
  std::vector<const std::vector<Point>*> terminals_by_position;
  std::optional<levelb::UnroutedSuffix> unrouted;
  ShardPlan plan;       ///< meaningful iff planned
  bool planned = false;
};

RoutingEngine::RoutingEngine(tig::TrackGrid& grid, EngineOptions options)
    : grid_(grid), options_(std::move(options)) {}

int RoutingEngine::resolve_threads(int requested) {
  if (requested > 0) return requested;
  return util::ThreadPool::hardware_threads();
}

LevelBResult RoutingEngine::route(const std::vector<BNet>& nets) {
  const int threads = resolve_threads(options_.threads);
  stats_ = EngineStats{};
  stats_.threads = threads;
  if (threads <= 1) {
    levelb::LevelBRouter serial(grid_, options_.levelb);
    levelb::LevelBResult result = serial.route(nets);
    stats_.ripup_recovered = result.ripup_recovered;
    publish_engine_metrics(stats_);
    return result;
  }

  Prepared prep;
  prep.order = levelb::order_nets(nets, options_.levelb.ordering);
  prep.snapped = levelb::snap_and_reserve_terminals(grid_, nets);
  prep.unrouted.emplace(prep.snapped, prep.order);
  const std::size_t n = prep.order.size();
  prep.nets_by_position.resize(n);
  prep.terminals_by_position.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    prep.nets_by_position[k] = &nets[prep.order[k]];
    prep.terminals_by_position[k] = &prep.snapped[prep.order[k]];
  }

  bool sharded = options_.mode == EngineMode::kSharded;
  if (options_.mode != EngineMode::kSpeculative) {
    ShardPlanOptions popt;
    popt.pitch = grid_pitch(grid_);
    popt.halo_pitches = options_.shard_halo_pitches;
    prep.plan = build_shard_plan(prep.nets_by_position,
                                 prep.terminals_by_position, popt);
    prep.planned = true;
    if (options_.mode == EngineMode::kAuto) {
      const EngineAutoHint& hint = options_.auto_hint;
      if (hint.valid) {
        // Trust the measurement: repeat a sharded dispatch that stayed
        // clean, abandon a speculative one that thrashed.
        stats_.auto_source = "manifest";
        sharded = hint.measured_sharded
                      ? hint.escape_rate <= options_.auto_max_escape_rate
                      : hint.abort_rate >= options_.auto_min_abort_rate;
      } else {
        stats_.auto_source = "static";
        sharded = prep.plan.mean_batch() >= options_.auto_min_mean_batch;
      }
    }
  }

  LevelBResult result = sharded ? route_sharded(nets, prep, threads)
                                : route_parallel(nets, prep, threads);
  publish_engine_metrics(stats_);
  return result;
}

LevelBResult RoutingEngine::route_parallel(const std::vector<BNet>& nets,
                                           const Prepared& prep,
                                           int threads) {
  stats_.mode = "speculative";
  const std::size_t n = prep.order.size();
  const std::vector<const BNet*>& nets_by_position = prep.nets_by_position;
  const std::vector<const std::vector<Point>*>& terminals_by_position =
      prep.terminals_by_position;
  const levelb::UnroutedSuffix& unrouted = *prep.unrouted;

  // Snapshots refresh incrementally every few commits (workers bridge the
  // lag from the commit log through their overlays); the log reservation
  // makes record_at lock-free for the workers' replay reads.
  constexpr std::uint64_t kSnapshotRefreshInterval = 16;
  tig::VersionedGrid versioned(grid_, /*expected_commits=*/n,
                               kSnapshotRefreshInterval);
  Committer committer(versioned);
  const std::size_t lookahead =
      options_.lookahead > 0 ? static_cast<std::size_t>(options_.lookahead)
                             : static_cast<std::size_t>(threads);
  NetScheduler scheduler(n, lookahead,
                         options_.levelb.trace != nullptr);
  // Conflict hints: a position's terminal bounding box inflated by the
  // expected search halo (the first window-growth step). Overlapping
  // boxes of earlier uncommitted positions predict invalidation, so the
  // scheduler claims likely-independent nets first. Purely a performance
  // hint — the committer's validation decides correctness either way.
  {
    const geom::Coord halo =
        grid_pitch(grid_) *
        static_cast<geom::Coord>(
            std::max(1, options_.levelb.finder.window_margin * 4));
    std::vector<geom::Rect> bounds(n);
    for (std::size_t k = 0; k < n; ++k) {
      if (!terminals_by_position[k]->empty()) {
        bounds[k] =
            geom::bounding_box(*terminals_by_position[k]).inflated(halo);
      }
    }
    scheduler.set_conflict_hints(std::move(bounds));
    scheduler.set_max_lookahead(
        std::max(lookahead, static_cast<std::size_t>(threads) * 4));
  }
  SpeculationSlots slots(n);
  ParallelSearch search(versioned, committer, scheduler, slots,
                        options_.levelb, nets_by_position,
                        terminals_by_position, unrouted);

  // Workers must be torn down before anything they reference: the pool is
  // declared last, so its destructor joins them first.
  util::ThreadPool pool(threads, "engine.pool");
  for (int t = 0; t < threads; ++t) {
    pool.submit([&search] { search.run_worker(); });
  }

  // Committer loop: this thread is the engine's single writer.
  std::vector<NetResult> results(n);
  std::vector<std::vector<Committed>> net_committed(n);
  SearchStats stats;
  // Scratch for the serial-fallback re-routes and the rip-up epilogue.
  levelb::SearchWorkspace workspace;
  // The fallback re-routes run on the committer's own overlay over the
  // published snapshot — caught up from the commit log to the exact live
  // epoch (== k, one batch per position) — instead of deep-copying the
  // grid per abort.
  tig::GridOverlay exact;
  std::shared_ptr<const tig::GridSnapshot> exact_base;
  std::uint64_t exact_applied = 0;
  util::Histogram& search_us_hist = net_search_us_histogram();
  for (std::size_t k = 0; k < n; ++k) {
    Speculation spec = [&] {
      OCR_SPAN("engine.claim");
      return slots.take(k, [&pool] { return !pool.first_failure().ok(); });
    }();
    stats_.queue_wait_us += spec.queue_wait_us;

    // Degradation ladder, rung 1: anything that invalidates the
    // speculation — a racing commit, a poisoned worker, or an injected
    // committer fault — falls back to a serial re-route on the live
    // state. The live grid at epoch k is exactly the serial grid after k
    // commits, so the accepted result is always the serial one.
    bool accepted = false;
    if (spec.poisoned) {
      ++stats_.worker_failures;
    } else if (OCR_FAULT("engine.committer.commit")) {
      ++stats_.fault_reroutes;
      stats_.wasted_vertices += spec.stats.vertices_examined;
      stats_.wasted_search_us += spec.search_us;
    } else {
      accepted = committer.validate(spec.epoch, k, spec.footprint);
      if (!accepted) {
        ++stats_.speculation_aborts;
        stats_.wasted_vertices += spec.stats.vertices_examined;
        stats_.wasted_search_us += spec.search_us;
      }
    }
    if (accepted) {
      ++stats_.speculative_commits;
    } else {
      OCR_SPAN("engine.reroute");
      const std::shared_ptr<const tig::GridSnapshot> snap =
          versioned.snapshot();
      if (exact_base != snap) {
        exact.rebase(&snap->grid);
        exact_base = snap;
        exact_applied = snap->epoch;
      }
      // This thread is the writer: the log holds exactly epochs [0, k).
      while (exact_applied < k) {
        const tig::CommitRecord* record =
            versioned.log().record_at(exact_applied);
        for (const tig::CommitOp& op : record->ops) {
          exact.apply(op);
        }
        ++exact_applied;
      }
      const std::vector<Point>& terminals = *terminals_by_position[k];
      for (const Point& p : terminals) levelb::unblock_terminal(exact, p);
      const long long queue_wait_us = spec.queue_wait_us;
      spec = Speculation{};
      spec.queue_wait_us = queue_wait_us;
      spec.epoch = k;
      const auto start = std::chrono::steady_clock::now();
      spec.result = levelb::route_single_net(
          exact, options_.levelb,
          levelb::NetRouteRequest{nets_by_position[k]->id, &terminals,
                                  unrouted.suffix(k),
                                  committer.sensitive_snapshot().get()},
          spec.committed, spec.stats, nullptr, &workspace);
      spec.search_us = micros_since(start);
      for (const Point& p : terminals) levelb::block_terminal(exact, p);
    }

    results[k] = std::move(spec.result);
    net_committed[k] = std::move(spec.committed);
    stats.vertices_examined += spec.stats.vertices_examined;
    stats.candidates += spec.stats.candidates;
    stats.window_growths += spec.stats.window_growths;

    // Rung 3: an apply fault is unrecoverable for this net — drop its
    // wiring entirely (committing none of it keeps flow::check clean)
    // and mark it unrouted; a later rip-up round may still rescue it.
    if (OCR_FAULT("engine.committer.apply")) {
      ++stats_.fault_drops;
      NetResult dropped;
      dropped.id = nets_by_position[k]->id;
      dropped.complete = false;
      dropped.outcome = util::StatusKind::kFaultInjected;
      dropped.failed_connections = std::max(
          0, static_cast<int>(terminals_by_position[k]->size()) - 1);
      results[k] = std::move(dropped);
      net_committed[k].clear();
    }

    search_us_hist.observe(spec.search_us);
    {
      OCR_SPAN("engine.commit");
      committer.commit(net_committed[k], nets_by_position[k]->sensitive);
    }
    scheduler.on_committed(k + 1, accepted);

    if (options_.levelb.trace != nullptr) {
      util::TraceEvent ev("net");
      ev.add("net", nets_by_position[k]->id)
          .add("order", static_cast<long long>(k))
          .add("mode", "engine")
          .add("epoch", static_cast<long long>(spec.epoch))
          .add("speculative", accepted)
          .add("retries", accepted ? 0 : 1)
          .add("complete", results[k].complete)
          .add("wire_length",
               static_cast<long long>(results[k].wire_length))
          .add("corners", results[k].corners)
          .add("footprint_tracks",
               static_cast<long long>(spec.footprint.tracks()))
          .add("vertices_examined", spec.stats.vertices_examined)
          .add("window_growths", spec.stats.window_growths)
          .add("candidates", spec.stats.candidates)
          .add("search_us", spec.search_us)
          .add("queue_wait_us", spec.queue_wait_us);
      options_.levelb.trace->record(std::move(ev));
    }
  }

  // All positions committed: claim() now drains, workers exit.
  pool.wait_idle();

  stats_.grid_copies = static_cast<long long>(versioned.snapshot_copies());
  stats_.lookahead_peak = static_cast<int>(scheduler.peak_lookahead());

  if (options_.levelb.trace != nullptr) {
    // Run-level totals: where the parallel phase's effort went. Wasted
    // time/vertices are the discarded speculative searches (aborted,
    // fault-rerouted); queue wait is the summed claim blocking.
    util::TraceEvent ev("engine");
    ev.add("threads", stats_.threads)
        .add("engine_mode", stats_.mode)
        .add("speculative_commits", stats_.speculative_commits)
        .add("speculation_aborts", stats_.speculation_aborts)
        .add("worker_failures", stats_.worker_failures)
        .add("wasted_vertices", stats_.wasted_vertices)
        .add("wasted_search_us", stats_.wasted_search_us)
        .add("queue_wait_us", stats_.queue_wait_us)
        .add("grid_copies", stats_.grid_copies)
        .add("lookahead_peak", stats_.lookahead_peak);
    options_.levelb.trace->record(std::move(ev));
  }

  // Single-threaded epilogue on the live grid, same as the serial router.
  std::vector<std::vector<Point>> snapped_by_order(n);
  std::vector<BNet> nets_by_order(n);
  for (std::size_t k = 0; k < n; ++k) {
    snapped_by_order[k] = prep.snapped[prep.order[k]];
    nets_by_order[k] = nets[prep.order[k]];
  }
  const int recovered = [&] {
    OCR_SPAN("engine.ripup");
    return levelb::run_ripup_rounds(
        versioned.exclusive_grid(), options_.levelb, nets_by_order,
        snapped_by_order, results, net_committed, stats, &workspace);
  }();
  stats_.ripup_recovered = recovered;
  stats_.pool_task_failures =
      static_cast<long long>(pool.task_failures().size());
  workspace.publish_arena_metrics();

  LevelBResult result = levelb::assemble_result(std::move(results), stats);
  result.ripup_recovered = recovered;
  return result;
}

LevelBResult RoutingEngine::route_sharded(const std::vector<BNet>& nets,
                                          const Prepared& prep,
                                          int threads) {
  stats_.mode = "sharded";
  const std::size_t n = prep.order.size();
  const ShardPlan& plan = prep.plan;
  stats_.batches = static_cast<long long>(plan.batches.size());
  stats_.max_batch_size = static_cast<long long>(plan.max_batch());

  // Zero grid copies: workers read the engine's LIVE grid through private
  // overlays. Batches phase-separate reads from writes — this thread only
  // commits after pool.wait_idle(), and workers only read between
  // start_batch and that barrier — so the live grid at batch start IS the
  // exact serial prefix, with no snapshot, no commit log, and no replay.
  // The only subtlety is the gap cache's lazy memos: mutations patch
  // entries in place (so they stay valid), and warm_gap_cache() below
  // materializes anything still pending before each multi-worker batch,
  // making concurrent const reads pure.
  BatchSearch search(options_.levelb, prep.nets_by_position,
                     prep.terminals_by_position, *prep.unrouted);
  util::ThreadPool pool(threads, "engine.pool");

  std::vector<NetResult> results(n);
  std::vector<std::vector<Committed>> net_committed(n);
  SearchStats stats;
  levelb::SearchWorkspace workspace;
  // Committed sensitive wiring, copy-on-write like the speculative
  // committer's registry. The shard planner puts a sensitive net last in
  // its batch, so the batch-start registry is position-exact for every
  // batch member (no sensitive net precedes a member inside its batch).
  auto sensitive = std::make_shared<const levelb::SensitiveRuns>();

  util::Histogram& search_us_hist = net_search_us_histogram();
  util::Histogram& batch_hist = util::MetricsRegistry::global().histogram(
      "engine.batch_size", {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64});

  for (std::size_t b = 0; b < plan.batches.size(); ++b) {
    const ShardBatch& batch = plan.batches[b];
    batch_hist.observe(static_cast<double>(batch.size()));
    search.start_batch(&grid_, batch.begin, batch.end, sensitive);
    const int workers = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(threads),
                              batch.size()));
    if (workers > 1) {
      {
        // Materialize the gap cache's lazy memos so the parallel phase's
        // concurrent const reads never race on them. Entries stay valid
        // across commits (mutations patch in place), so this re-warms
        // only what the previous batch's commits touched — near O(tracks)
        // of predictable skips, not a grid copy.
        OCR_SPAN("engine.warm");
        grid_.warm_gap_cache();
      }
      for (int t = 0; t < workers; ++t) {
        pool.submit([&search] { search.run_worker(); });
      }
      // The barrier that makes batch commits single-writer: items() is
      // only read after the pool quiesces.
      pool.wait_idle();
    } else {
      // Singleton batches skip the pool round-trip (and the warm: a
      // single-threaded read may fill memos safely).
      search.run_worker();
    }

    std::vector<BatchSearch::Item>& items = search.items();
    for (std::size_t i = 0; i < items.size(); ++i) {
      const std::size_t k = batch.begin + i;
      BatchSearch::Item& item = items[i];
      const BNet* net = prep.nets_by_position[k];
      bool accepted = false;
      bool escaped = false;
      if (!item.routed) {
        ++stats_.worker_failures;
      } else if (OCR_FAULT("engine.committer.commit")) {
        ++stats_.fault_reroutes;
        stats_.sharded_wasted_vertices += item.stats.vertices_examined;
        stats_.sharded_wasted_search_us += item.search_us;
      } else {
        // Exact escape check: the batch result is the serial result iff
        // none of its reads touch wiring a same-batch predecessor
        // committed (the batch-start snapshot is missing exactly that
        // wiring, and commits are block-only). Predecessors are final
        // here — accepted ones are serial by induction, escaped ones
        // were re-routed serially — so this compares against the true
        // serial prefix. Disjoint declared regions make a hit rare; far
        // free-gap and blockage-distance reads make it possible.
        accepted = true;
        for (std::size_t j = batch.begin; accepted && j < k; ++j) {
          for (const Committed& c : net_committed[j]) {
            if (item.footprint.intersects(c.track, c.extent)) {
              accepted = false;
              break;
            }
          }
        }
        if (!accepted) {
          escaped = true;
          ++stats_.boundary_nets;
          stats_.sharded_wasted_vertices += item.stats.vertices_examined;
          stats_.sharded_wasted_search_us += item.search_us;
        }
      }

      if (accepted) {
        ++stats_.sharded_commits;
      } else {
        // Serial recovery directly on the live grid — which at position k
        // IS the serial prefix (order-convex batches, in-order commits),
        // so this is literally the serial router's step for net k: no
        // overlay, no log replay, no rollback.
        OCR_SPAN("engine.reroute");
        const std::vector<Point>& terminals =
            *prep.terminals_by_position[k];
        for (const Point& p : terminals) {
          levelb::unblock_terminal(grid_, p);
        }
        item.committed.clear();
        item.stats = SearchStats{};
        item.footprint.clear();
        const auto start = std::chrono::steady_clock::now();
        item.result = levelb::route_single_net(
            grid_, options_.levelb,
            levelb::NetRouteRequest{net->id, &terminals,
                                    prep.unrouted->suffix(k),
                                    sensitive.get()},
            item.committed, item.stats, nullptr, &workspace);
        item.search_us = micros_since(start);
        for (const Point& p : terminals) {
          levelb::block_terminal(grid_, p);
        }
      }

      results[k] = std::move(item.result);
      net_committed[k] = std::move(item.committed);
      stats.vertices_examined += item.stats.vertices_examined;
      stats.candidates += item.stats.candidates;
      stats.window_growths += item.stats.window_growths;

      // Rung 3 of the degradation ladder, same as the speculative path:
      // an apply fault drops the net's wiring and marks it unrouted.
      if (OCR_FAULT("engine.committer.apply")) {
        ++stats_.fault_drops;
        NetResult dropped;
        dropped.id = net->id;
        dropped.complete = false;
        dropped.outcome = util::StatusKind::kFaultInjected;
        dropped.failed_connections = std::max(
            0,
            static_cast<int>(prep.terminals_by_position[k]->size()) - 1);
        results[k] = std::move(dropped);
        net_committed[k].clear();
      }

      search_us_hist.observe(static_cast<double>(item.search_us));
      {
        // Direct live-grid commit: gap-cache entries are patched in
        // place by each block, so the next batch's warm is incremental.
        OCR_SPAN("engine.commit");
        levelb::commit_extents(grid_, net_committed[k]);
      }
      if (net->sensitive && !net_committed[k].empty()) {
        auto next = std::make_shared<levelb::SensitiveRuns>(*sensitive);
        for (const Committed& c : net_committed[k]) {
          if (c.track.orient == geom::Orientation::kHorizontal) {
            next->add_h(c.track.index, c.extent);
          } else {
            next->add_v(c.track.index, c.extent);
          }
        }
        sensitive = std::move(next);
      }

      if (options_.levelb.trace != nullptr) {
        util::TraceEvent ev("net");
        ev.add("net", net->id)
            .add("order", static_cast<long long>(k))
            .add("mode", "sharded")
            .add("batch", static_cast<long long>(b))
            .add("batch_size", static_cast<long long>(batch.size()))
            .add("speculative", accepted)
            .add("escaped", escaped)
            .add("complete", results[k].complete)
            .add("wire_length",
                 static_cast<long long>(results[k].wire_length))
            .add("corners", results[k].corners)
            .add("footprint_tracks",
                 static_cast<long long>(item.footprint.tracks()))
            .add("vertices_examined", item.stats.vertices_examined)
            .add("window_growths", item.stats.window_growths)
            .add("candidates", item.stats.candidates)
            .add("search_us", item.search_us)
            .add("queue_wait_us", 0LL);
        options_.levelb.trace->record(std::move(ev));
      }
    }
  }

  // The sharded path's headline: the grid is never copied, at any thread
  // count — workers share the live grid between commit phases.
  stats_.grid_copies = 0;

  if (options_.levelb.trace != nullptr) {
    util::TraceEvent ev("engine");
    ev.add("threads", stats_.threads)
        .add("engine_mode", stats_.mode)
        .add("batches", stats_.batches)
        .add("max_batch_size", stats_.max_batch_size)
        .add("sharded_commits", stats_.sharded_commits)
        .add("boundary_nets", stats_.boundary_nets)
        .add("worker_failures", stats_.worker_failures)
        .add("sharded_wasted_vertices", stats_.sharded_wasted_vertices)
        .add("sharded_wasted_search_us", stats_.sharded_wasted_search_us)
        .add("wasted_vertices", stats_.wasted_vertices)
        .add("wasted_search_us", stats_.wasted_search_us)
        .add("queue_wait_us", stats_.queue_wait_us)
        .add("grid_copies", stats_.grid_copies)
        .add("lookahead_peak", stats_.lookahead_peak);
    options_.levelb.trace->record(std::move(ev));
  }

  // Single-threaded epilogue on the live grid, same as the serial router.
  std::vector<std::vector<Point>> snapped_by_order(n);
  std::vector<BNet> nets_by_order(n);
  for (std::size_t k = 0; k < n; ++k) {
    snapped_by_order[k] = prep.snapped[prep.order[k]];
    nets_by_order[k] = nets[prep.order[k]];
  }
  const int recovered = [&] {
    OCR_SPAN("engine.ripup");
    return levelb::run_ripup_rounds(
        grid_, options_.levelb, nets_by_order, snapped_by_order, results,
        net_committed, stats, &workspace);
  }();
  stats_.ripup_recovered = recovered;
  stats_.pool_task_failures =
      static_cast<long long>(pool.task_failures().size());
  workspace.publish_arena_metrics();

  LevelBResult result = levelb::assemble_result(std::move(results), stats);
  result.ripup_recovered = recovered;
  return result;
}

}  // namespace ocr::engine

#pragma once
/// \file parallel_search.hpp
/// \brief The engine's reader side: worker threads that speculatively
/// route nets against grid snapshots and publish results per ordering
/// position for the committer to validate.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "engine/committer.hpp"
#include "engine/scheduler.hpp"
#include "levelb/net_core.hpp"
#include "tig/overlay.hpp"
#include "tig/snapshot.hpp"

namespace ocr::engine {

/// One speculative routing result, produced by a worker against the grid
/// snapshot of \c epoch and waiting for the committer's verdict.
struct Speculation {
  std::uint64_t epoch = 0;
  levelb::NetResult result;
  std::vector<levelb::Committed> committed;
  /// Every occupancy read the net's searches made, as (track, interval)
  /// dependencies — what the committer checks gap commits against.
  levelb::SearchFootprint footprint;
  levelb::SearchStats stats;  ///< this net's search effort only
  long long queue_wait_us = 0;
  long long search_us = 0;
  /// The worker failed to produce a usable result (its task threw, a
  /// fault was injected, or its slot was abandoned). The committer must
  /// discard the payload and recompute the net on the live grid — which
  /// yields exactly the serial result, so poisoning never costs
  /// determinism, only speed.
  bool poisoned = false;
};

/// Per-position mailbox between workers and the committer. Workers
/// publish() each position exactly once; the committer take()s positions
/// in order, blocking until the worker delivers.
///
/// Each position is its own independent slot with an atomic ready flag —
/// publish is a move plus one release store and a notify on that slot's
/// flag, and a take touches nothing but its own slot. There is no shared
/// mutex: N workers publishing different positions never contend with
/// each other or with the committer taking a third.
class SpeculationSlots {
 public:
  explicit SpeculationSlots(std::size_t positions)
      : slots_(std::make_unique<Slot[]>(positions)), size_(positions) {}

  void publish(std::size_t position, Speculation spec);

  /// Blocks until position is published, then moves it out.
  Speculation take(std::size_t position);

  /// Like take(), but polls \p abandoned while waiting: when it reports
  /// true and the slot is still empty, gives up and returns a poisoned
  /// Speculation instead of blocking forever. Lets the committer survive
  /// a worker that died (task threw) before publishing its claim — the
  /// poisoned position is recomputed serially. A late publish into an
  /// abandoned slot is tolerated and simply never consumed. (A dead
  /// worker never notifies, and C++20 atomic wait has no timeout — so
  /// this variant spins briefly, then falls back to a sleep poll.)
  Speculation take(std::size_t position,
                   const std::function<bool()>& abandoned);

 private:
  struct Slot {
    std::atomic<bool> ready{false};
    Speculation spec;
  };

  // Slots hold atomics (not movable), so a plain vector cannot hold them.
  std::unique_ptr<Slot[]> slots_;
  std::size_t size_;
};

/// The sharded engine mode's worker loop (engine.cpp route_sharded): one
/// provably-disjoint batch of consecutive ordering positions, routed in
/// parallel against the shared batch-start grid with no speculation
/// machinery at all — no scheduler claims, no snapshots, no commit-log
/// replay, no rebase, no epoch racing. The base is the engine's LIVE grid:
/// batches phase-separate reads from writes (the committer only commits
/// after every worker finished), so sharing it costs zero grid copies.
/// The committer must warm_gap_cache() before each multi-worker batch so
/// concurrent base reads are pure (see GapCache's thread contract).
/// Workers pull positions from an atomic cursor; the committer harvests
/// items() after the pool quiesces (wait_idle is the synchronization
/// point) and commits them in position order.
class BatchSearch {
 public:
  /// One batch position's routing result.
  struct Item {
    levelb::NetResult result;
    std::vector<levelb::Committed> committed;
    /// Exact read set of the search — what the committer checks against
    /// same-batch predecessors' wiring to catch region escapes.
    levelb::SearchFootprint footprint;
    levelb::SearchStats stats;
    long long search_us = 0;
    /// False until a worker completes the search: a position left
    /// unrouted (injected fault, thrown search, dead worker task) is
    /// recovered serially by the committer, like a poisoned speculation.
    bool routed = false;
  };

  BatchSearch(const levelb::LevelBOptions& options,
              const std::vector<const levelb::BNet*>& nets_by_position,
              const std::vector<const std::vector<geom::Point>*>&
                  terminals_by_position,
              const levelb::UnroutedSuffix& unrouted)
      : options_(options), nets_(nets_by_position),
        terminals_(terminals_by_position), unrouted_(unrouted) {}

  /// Arms positions [begin, end) against \p base (the live grid at the
  /// batch-start state — exactly the serial prefix [0, begin)) with the
  /// batch-start sensitive registry. \p base must not be mutated and its
  /// gap cache must be warm while workers run. Single-threaded; call
  /// before submitting workers.
  void start_batch(const tig::TrackGrid* base, std::size_t begin,
                   std::size_t end,
                   std::shared_ptr<const levelb::SensitiveRuns> sensitive);

  /// Claims and routes batch positions until the cursor drains. Safe from
  /// any number of threads; also callable inline on the committer thread
  /// for singleton batches.
  void run_worker();

  /// Items of the current batch, indexed by position - begin. Only valid
  /// after every worker finished (pool quiescence).
  std::vector<Item>& items() { return items_; }

 private:
  const levelb::LevelBOptions& options_;
  const std::vector<const levelb::BNet*>& nets_;
  const std::vector<const std::vector<geom::Point>*>& terminals_;
  const levelb::UnroutedSuffix& unrouted_;

  const tig::TrackGrid* base_ = nullptr;
  std::shared_ptr<const levelb::SensitiveRuns> sensitive_;
  std::size_t begin_ = 0;
  std::vector<Item> items_;
  std::atomic<std::size_t> cursor_{0};
};

/// Worker-loop driver. Each engine worker thread runs run_worker(): claim
/// an ordering position from the scheduler, route that net against the
/// shared immutable snapshot through a private GridOverlay (no grid deep
/// copy — the overlay carries the worker's terminal braces plus the
/// commit-log batches newer than the snapshot), and publish the
/// speculation. All referenced objects must outlive the workers.
class ParallelSearch {
 public:
  ParallelSearch(const tig::VersionedGrid& grid, const Committer& committer,
                 NetScheduler& scheduler, SpeculationSlots& slots,
                 const levelb::LevelBOptions& options,
                 const std::vector<const levelb::BNet*>& nets_by_position,
                 const std::vector<const std::vector<geom::Point>*>&
                     terminals_by_position,
                 const levelb::UnroutedSuffix& unrouted)
      : grid_(grid), committer_(committer), scheduler_(scheduler),
        slots_(slots), options_(options), nets_(nets_by_position),
        terminals_(terminals_by_position), unrouted_(unrouted) {}

  /// Runs until the scheduler is exhausted. Call from one thread per
  /// worker; each call keeps its own overlay and scratch buffers.
  void run_worker();

 private:
  const tig::VersionedGrid& grid_;
  const Committer& committer_;
  NetScheduler& scheduler_;
  SpeculationSlots& slots_;
  const levelb::LevelBOptions& options_;
  const std::vector<const levelb::BNet*>& nets_;
  const std::vector<const std::vector<geom::Point>*>& terminals_;
  const levelb::UnroutedSuffix& unrouted_;
};

}  // namespace ocr::engine

#include "engine/partition.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "util/profile.hpp"

namespace ocr::engine {
namespace {

/// Uniform spatial hash over the *current batch's* regions, answering
/// "does this rect overlap any member region" with exactly the boolean
/// the linear member scan computes: two overlapping rects always share at
/// least one covered cell (their intersection contains a point, and every
/// point lies in one cell both rects cover), and every candidate pulled
/// from a cell is re-tested with the exact Rect::overlaps. Regions wider
/// than kMaxCellsSpan cells per axis (uniform non-local nets can declare
/// die-sized regions) go to a linear big-member list instead of flooding
/// the table — the degenerate all-big case is the original O(batch) scan.
class BatchRegionIndex {
 public:
  void configure(geom::Coord halo) {
    // Cells ~4 halos wide keep a typical declared region (terminal bbox
    // + 2 halos) within a 2x2 cell footprint.
    cell_ = std::max<geom::Coord>(1, 4 * halo);
  }

  void clear() {
    cells_.clear();
    big_.clear();
  }

  void insert(std::size_t member, const geom::Rect& r) {
    const std::int64_t cx_lo = floor_div(r.xlo);
    const std::int64_t cx_hi = floor_div(r.xhi);
    const std::int64_t cy_lo = floor_div(r.ylo);
    const std::int64_t cy_hi = floor_div(r.yhi);
    if (cx_hi - cx_lo >= kMaxCellsSpan || cy_hi - cy_lo >= kMaxCellsSpan) {
      big_.push_back(static_cast<std::uint32_t>(member));
      return;
    }
    for (std::int64_t cx = cx_lo; cx <= cx_hi; ++cx) {
      for (std::int64_t cy = cy_lo; cy <= cy_hi; ++cy) {
        cells_[key(cx, cy)].push_back(static_cast<std::uint32_t>(member));
      }
    }
  }

  bool overlaps_any(const geom::Rect& r,
                    const std::vector<geom::Rect>& regions) const {
    for (const std::uint32_t j : big_) {
      if (r.overlaps(regions[j])) return true;
    }
    const std::int64_t cx_lo = floor_div(r.xlo);
    const std::int64_t cx_hi = floor_div(r.xhi);
    const std::int64_t cy_lo = floor_div(r.ylo);
    const std::int64_t cy_hi = floor_div(r.yhi);
    for (std::int64_t cx = cx_lo; cx <= cx_hi; ++cx) {
      for (std::int64_t cy = cy_lo; cy <= cy_hi; ++cy) {
        const auto it = cells_.find(key(cx, cy));
        if (it == cells_.end()) continue;
        for (const std::uint32_t j : it->second) {
          if (r.overlaps(regions[j])) return true;
        }
      }
    }
    return false;
  }

 private:
  static constexpr std::int64_t kMaxCellsSpan = 8;

  std::int64_t floor_div(geom::Coord v) const {
    return v >= 0 ? v / cell_ : -((-v + cell_ - 1) / cell_);
  }

  static std::uint64_t key(std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(cx) << 32) ^
           static_cast<std::uint32_t>(cy);
  }

  geom::Coord cell_ = 1;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
  std::vector<std::uint32_t> big_;
};

}  // namespace

std::size_t ShardPlan::max_batch() const {
  std::size_t widest = 0;
  for (const ShardBatch& b : batches) widest = std::max(widest, b.size());
  return widest;
}

double ShardPlan::mean_batch() const {
  if (batches.empty()) return 0.0;
  return static_cast<double>(positions()) /
         static_cast<double>(batches.size());
}

ShardPlan build_shard_plan(
    const std::vector<const levelb::BNet*>& nets_by_position,
    const std::vector<const std::vector<geom::Point>*>& terminals_by_position,
    const ShardPlanOptions& options) {
  OCR_SPAN("engine.partition");
  const std::size_t n = nets_by_position.size();
  const geom::Coord halo =
      options.pitch * static_cast<geom::Coord>(std::max(1,
                                                        options.halo_pitches));
  ShardPlan plan;
  plan.regions.resize(n);
  plan.has_region.assign(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    if (!terminals_by_position[k]->empty()) {
      plan.regions[k] =
          geom::bounding_box(*terminals_by_position[k]).inflated(halo);
      plan.has_region[k] = 1;
    }
  }

  // Greedy order-convex coloring: extend the current run while the new
  // position's region is disjoint from every member's; close it on the
  // first overlap and after every sensitive member. Membership is tested
  // through a spatial hash of the current batch (identical boolean to the
  // per-member scan), so planning a 100k-net instance stays near-linear
  // instead of O(n · batch width).
  BatchRegionIndex index;
  index.configure(halo);
  ShardBatch current{0, 0};
  for (std::size_t k = 0; k < n; ++k) {
    const bool joins =
        !plan.has_region[k] || !index.overlaps_any(plan.regions[k],
                                                   plan.regions);
    if (!joins) {
      plan.batches.push_back(current);
      current = ShardBatch{k, k};
      index.clear();
    }
    current.end = k + 1;
    if (plan.has_region[k]) index.insert(k, plan.regions[k]);
    if (nets_by_position[k]->sensitive) {
      // The registry update a sensitive commit performs is invisible to
      // footprints, so nothing may route concurrently after it.
      plan.batches.push_back(current);
      current = ShardBatch{k + 1, k + 1};
      index.clear();
    }
  }
  if (current.size() > 0) plan.batches.push_back(current);
  return plan;
}

}  // namespace ocr::engine

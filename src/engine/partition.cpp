#include "engine/partition.hpp"

#include <algorithm>

#include "util/profile.hpp"

namespace ocr::engine {

std::size_t ShardPlan::max_batch() const {
  std::size_t widest = 0;
  for (const ShardBatch& b : batches) widest = std::max(widest, b.size());
  return widest;
}

double ShardPlan::mean_batch() const {
  if (batches.empty()) return 0.0;
  return static_cast<double>(positions()) /
         static_cast<double>(batches.size());
}

ShardPlan build_shard_plan(
    const std::vector<const levelb::BNet*>& nets_by_position,
    const std::vector<const std::vector<geom::Point>*>& terminals_by_position,
    const ShardPlanOptions& options) {
  OCR_SPAN("engine.partition");
  const std::size_t n = nets_by_position.size();
  const geom::Coord halo =
      options.pitch * static_cast<geom::Coord>(std::max(1,
                                                        options.halo_pitches));
  ShardPlan plan;
  plan.regions.resize(n);
  plan.has_region.assign(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    if (!terminals_by_position[k]->empty()) {
      plan.regions[k] =
          geom::bounding_box(*terminals_by_position[k]).inflated(halo);
      plan.has_region[k] = 1;
    }
  }

  // Greedy order-convex coloring: extend the current run while the new
  // position's region is disjoint from every member's; close it on the
  // first overlap and after every sensitive member.
  ShardBatch current{0, 0};
  for (std::size_t k = 0; k < n; ++k) {
    bool joins = true;
    if (plan.has_region[k]) {
      for (std::size_t j = current.begin; j < current.end; ++j) {
        if (plan.has_region[j] &&
            plan.regions[k].overlaps(plan.regions[j])) {
          joins = false;
          break;
        }
      }
    }
    if (!joins) {
      plan.batches.push_back(current);
      current = ShardBatch{k, k};
    }
    current.end = k + 1;
    if (nets_by_position[k]->sensitive) {
      // The registry update a sensitive commit performs is invisible to
      // footprints, so nothing may route concurrently after it.
      plan.batches.push_back(current);
      current = ShardBatch{k + 1, k + 1};
    }
  }
  if (current.size() > 0) plan.batches.push_back(current);
  return plan;
}

}  // namespace ocr::engine

#include "engine/auto_hint.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace ocr::engine {
namespace {

/// The value of the first `"key": <number>` occurrence, 0 when absent.
/// Tolerates any whitespace around the colon; numbers are non-negative
/// integers (metric counters).
long long find_counter(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return 0;
  pos += needle.size();
  while (pos < text.size() &&
         (std::isspace(static_cast<unsigned char>(text[pos])) != 0 ||
          text[pos] == ':')) {
    ++pos;
  }
  long long value = 0;
  bool any = false;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
    value = value * 10 + (text[pos] - '0');
    ++pos;
    any = true;
  }
  return any ? value : 0;
}

}  // namespace

EngineAutoHint auto_hint_from_manifest_text(const std::string& text) {
  EngineAutoHint hint;
  const long long batches = find_counter(text, "engine.batches");
  const long long sharded_commits =
      find_counter(text, "engine.sharded_commits");
  const long long boundary = find_counter(text, "engine.boundary_nets");
  const long long spec_commits =
      find_counter(text, "engine.speculative_commits");
  const long long aborts = find_counter(text, "engine.speculation_aborts");
  if (batches > 0) {
    // The prior run dispatched sharded (batches only count there).
    hint.valid = true;
    hint.measured_sharded = true;
    const long long total = sharded_commits + boundary;
    hint.escape_rate =
        total > 0 ? static_cast<double>(boundary) / static_cast<double>(total)
                  : 0.0;
  } else if (spec_commits + aborts > 0) {
    hint.valid = true;
    hint.measured_sharded = false;
    hint.abort_rate = static_cast<double>(aborts) /
                      static_cast<double>(spec_commits + aborts);
  }
  return hint;
}

EngineAutoHint load_auto_hint(const std::string& path) {
  std::ifstream in(path);
  if (!in) return EngineAutoHint{};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return auto_hint_from_manifest_text(buffer.str());
}

}  // namespace ocr::engine

#include "engine/scheduler.hpp"

#include <chrono>

#include "util/assert.hpp"
#include "util/fault.hpp"

namespace ocr::engine {

NetScheduler::NetScheduler(std::size_t positions, std::size_t lookahead,
                           bool measure_wait)
    : positions_(positions), lookahead_(lookahead),
      measure_wait_(measure_wait) {
  OCR_ASSERT(lookahead >= 1, "NetScheduler needs lookahead >= 1");
}

std::optional<NetScheduler::Claim> NetScheduler::claim() {
  const auto start = measure_wait_
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return next_ >= positions_ || next_ < committed_ + lookahead_;
  });
  if (next_ >= positions_) return std::nullopt;
  Claim c;
  c.position = next_++;
  // Under mu_, so nth-hit triggers see claims in hand-out order.
  c.degraded = OCR_FAULT("engine.scheduler.claim");
  if (measure_wait_) {
    c.queue_wait_us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  }
  return c;
}

void NetScheduler::on_committed(std::size_t count) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    committed_ = count;
  }
  cv_.notify_all();
}

std::size_t NetScheduler::committed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return committed_;
}

}  // namespace ocr::engine

#include "engine/scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "util/assert.hpp"
#include "util/fault.hpp"

namespace ocr::engine {
namespace {

/// Adaptive-lookahead controller constants. The verdict window is small
/// so the controller reacts within a few dozen commits; the thresholds
/// leave a dead band so the width does not oscillate.
constexpr std::size_t kVerdictWindow = 32;
constexpr double kWidenBelowAbortRate = 0.10;
constexpr double kShrinkAboveAbortRate = 0.30;

}  // namespace

NetScheduler::NetScheduler(std::size_t positions, std::size_t lookahead,
                           bool measure_wait)
    : claimed_(positions, 0),
      positions_(positions),
      base_lookahead_(lookahead),
      max_lookahead_(lookahead),
      lookahead_cur_(lookahead),
      peak_lookahead_(lookahead),
      measure_wait_(measure_wait) {
  OCR_ASSERT(lookahead >= 1, "NetScheduler needs lookahead >= 1");
}

void NetScheduler::set_conflict_hints(std::vector<geom::Rect> bounds) {
  OCR_ASSERT(bounds.size() == positions_,
             "conflict hints must cover every position");
  bounds_ = std::move(bounds);
}

void NetScheduler::set_max_lookahead(std::size_t max_lookahead) {
  max_lookahead_ = std::max(max_lookahead, base_lookahead_);
}

/// Number of not-yet-committed earlier positions whose terminal box
/// overlaps position k's — each one will commit before k and may land in
/// k's validation gap. Caller holds mu_.
std::size_t NetScheduler::penalty_locked(std::size_t k,
                                         std::size_t committed) const {
  if (bounds_.empty()) return 0;
  std::size_t overlaps = 0;
  const geom::Rect& mine = bounds_[k];
  for (std::size_t j = committed; j < k; ++j) {
    if (bounds_[j].overlaps(mine)) ++overlaps;
  }
  return overlaps;
}

std::optional<NetScheduler::Claim> NetScheduler::claim() {
  const auto start = measure_wait_
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  for (;;) {
    std::size_t observed = 0;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (first_unclaimed_ >= positions_) return std::nullopt;
      const std::size_t committed =
          committed_.load(std::memory_order_relaxed);
      const std::size_t window_end =
          std::min(positions_, committed + lookahead_cur_);
      if (first_unclaimed_ < window_end) {
        // Lowest (penalty, position) among the window's unclaimed
        // positions. The window head — the first unclaimed position once
        // it equals `committed` — always has penalty 0, so no position
        // waits forever behind cheaper latecomers.
        std::size_t best = first_unclaimed_;
        std::size_t best_penalty = penalty_locked(best, committed);
        if (!bounds_.empty() && best_penalty > 0) {
          for (std::size_t k = first_unclaimed_ + 1; k < window_end; ++k) {
            if (claimed_[k]) continue;
            const std::size_t p = penalty_locked(k, committed);
            if (p < best_penalty) {
              best = k;
              best_penalty = p;
              if (p == 0) break;
            }
          }
        }
        claimed_[best] = 1;
        while (first_unclaimed_ < positions_ && claimed_[first_unclaimed_]) {
          ++first_unclaimed_;
        }
        Claim c;
        c.position = best;
        // Under mu_, so nth-hit triggers see claims in hand-out order.
        c.degraded = OCR_FAULT("engine.scheduler.claim");
        if (measure_wait_) {
          c.queue_wait_us =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
        }
        return c;
      }
      observed = committed;
    }
    // Window exhausted: block until the committer advances. The width
    // only changes inside on_committed(), so waiting on the counter
    // alone cannot miss a widened window.
    committed_.wait(observed, std::memory_order_acquire);
  }
}

void NetScheduler::on_committed(std::size_t count, bool accepted) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    // Feed the rolling accept/abort window and adapt the width: widen
    // while speculation almost always lands, shrink back toward the base
    // when aborts pick up.
    if (max_lookahead_ > base_lookahead_) {
      if (verdicts_.size() < kVerdictWindow) {
        verdicts_.resize(kVerdictWindow, 1);
      }
      if (verdict_count_ == kVerdictWindow) {
        aborts_in_window_ -= verdicts_[verdict_next_] == 0 ? 1 : 0;
      } else {
        ++verdict_count_;
      }
      verdicts_[verdict_next_] = accepted ? 1 : 0;
      aborts_in_window_ += accepted ? 0 : 1;
      verdict_next_ = (verdict_next_ + 1) % kVerdictWindow;
      if (verdict_count_ == kVerdictWindow) {
        const double abort_rate =
            static_cast<double>(aborts_in_window_) /
            static_cast<double>(kVerdictWindow);
        if (abort_rate < kWidenBelowAbortRate &&
            lookahead_cur_ < max_lookahead_) {
          ++lookahead_cur_;
          peak_lookahead_ = std::max(peak_lookahead_, lookahead_cur_);
        } else if (abort_rate > kShrinkAboveAbortRate &&
                   lookahead_cur_ > base_lookahead_) {
          --lookahead_cur_;
        }
      }
    }
    committed_.store(count, std::memory_order_release);
  }
  committed_.notify_all();
}

std::size_t NetScheduler::lookahead() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return lookahead_cur_;
}

std::size_t NetScheduler::peak_lookahead() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return peak_lookahead_;
}

}  // namespace ocr::engine

#pragma once
/// \file engine.hpp
/// \brief RoutingEngine: the level-B router behind a snapshot/commit
/// engine that searches nets in parallel yet commits them in
/// deterministic net order.
///
/// With threads == 1 the engine IS the serial LevelBRouter. With N > 1
/// worker threads it speculates: workers route upcoming nets against
/// immutable grid snapshots while a single committer applies results in
/// strict ordering sequence, re-routing any speculation that raced a
/// conflicting commit. Results are bit-identical to the serial router for
/// a fixed ordering (see DESIGN.md "Engine architecture" for the
/// argument).

#include <string>
#include <vector>

#include "engine/auto_hint.hpp"
#include "levelb/net_core.hpp"
#include "tig/track_grid.hpp"

namespace ocr::engine {

/// Parallel dispatch strategy (threads > 1 only; 1 thread is always the
/// serial router).
///
/// * kSpeculative — workers race the committer on overlapping windows;
///   footprint validation aborts and re-routes collisions (PR-1 engine).
/// * kSharded — a geometry pre-pass (partition.hpp) groups consecutive
///   ordering positions with disjoint search regions into batches; each
///   batch routes in parallel against its start snapshot with no
///   speculation, no rebase and no aborts. Nets whose reads escape their
///   declared region are re-routed serially (boundary nets).
/// * kAuto — plans the shard schedule, then picks kSharded when its mean
///   batch length clears auto_min_mean_batch (enough parallelism to win)
///   and kSpeculative otherwise.
///
/// Every mode is bit-identical to the serial router at any thread count.
enum class EngineMode { kSpeculative, kSharded, kAuto };

/// "speculative" / "sharded" / "auto".
const char* engine_mode_name(EngineMode mode);
/// Parses a mode name; false (and *mode untouched) on an unknown name.
bool parse_engine_mode(const std::string& name, EngineMode* mode);

struct EngineOptions {
  levelb::LevelBOptions levelb;
  /// Worker thread count. 1 = serial (no snapshots, no speculation);
  /// <= 0 = one per hardware thread.
  int threads = 1;
  /// Max uncommitted ordering positions in flight; 0 = one per thread
  /// (the minimum speculation distance that still occupies every worker —
  /// deeper lookahead raises the abort rate faster than it adds overlap).
  int lookahead = 0;
  /// Parallel dispatch strategy (see EngineMode).
  EngineMode mode = EngineMode::kSpeculative;
  /// Sharded planning: declared-region inflation in routing pitches
  /// (partition.hpp). Tunes the escape rate, never correctness.
  int shard_halo_pitches = 16;
  /// Auto mode picks sharded when the plan's mean batch length reaches
  /// this (below it, batches are too short to occupy the workers and the
  /// speculative overlap wins back the difference).
  double auto_min_mean_batch = 2.0;
  /// Measured dispatch outcome from a prior run's manifest (auto_hint.hpp).
  /// When valid, auto mode trusts the measurement over the static
  /// mean-batch heuristic: it repeats a sharded dispatch whose escape rate
  /// stayed at or below auto_max_escape_rate, and abandons a speculative
  /// dispatch whose abort rate reached auto_min_abort_rate.
  EngineAutoHint auto_hint;
  /// A prior sharded run escaping more than this fraction of its nets is
  /// not worth repeating — every escape is a serial re-route.
  double auto_max_escape_rate = 0.10;
  /// A prior speculative run aborting at least this fraction of its
  /// speculations suggests the conflict structure suits sharding instead.
  double auto_min_abort_rate = 0.10;
};

/// Counters from the last route() call (parallel runs only; a serial run
/// reports zero speculation).
struct EngineStats {
  int threads = 1;
  /// The dispatch that actually ran: "serial", "speculative" or
  /// "sharded" (auto resolves to one of the latter two).
  const char* mode = "serial";
  /// What decided an auto-mode dispatch: "none" (mode was explicit),
  /// "manifest" (a valid prior-run hint) or "static" (mean-batch
  /// heuristic fallback).
  const char* auto_source = "none";
  // Sharded-dispatch counters (zero on serial/speculative runs). The
  // speculative counters below stay zero on a sharded run — the split is
  // what makes wasted work attributable to a dispatch strategy.
  long long batches = 0;          ///< shard batches dispatched
  long long max_batch_size = 0;   ///< widest batch (parallelism ceiling)
  long long sharded_commits = 0;  ///< batch results committed untouched
  long long boundary_nets = 0;    ///< reads escaped the declared region;
                                  ///  re-routed serially on the prefix
  long long sharded_wasted_vertices = 0;   ///< discarded escape searches
  long long sharded_wasted_search_us = 0;  ///< time of those searches
  long long speculative_commits = 0;  ///< speculations accepted as-is
  long long speculation_aborts = 0;   ///< speculations re-routed exactly
  long long wasted_vertices = 0;      ///< MBFS vertices of discarded runs
  long long wasted_search_us = 0;     ///< search time of discarded runs
  long long queue_wait_us = 0;        ///< total worker wait for claims
  long long grid_copies = 0;          ///< TrackGrid deep copies made for
                                      ///  snapshot publication
  int lookahead_peak = 0;             ///< widest adaptive speculation
                                      ///  window the scheduler reached
  // Robustness counters (degradation ladder; see DESIGN.md "Failure
  // model"). All zero on a fault-free run.
  long long fault_reroutes = 0;   ///< rung 1: commit faults re-routed
                                  ///  serially on the live grid
  long long fault_drops = 0;      ///< rung 3: apply faults; net dropped
                                  ///  and marked unrouted
  long long worker_failures = 0;  ///< poisoned/abandoned speculations
                                  ///  recovered serially
  long long pool_task_failures = 0;  ///< worker tasks that threw
  int ripup_recovered = 0;        ///< rung 2: nets rescued by rip-up
};

class RoutingEngine {
 public:
  /// Routes over \p grid, which must outlive the engine and carries the
  /// committed wiring after route() returns (same contract as
  /// LevelBRouter).
  RoutingEngine(tig::TrackGrid& grid, EngineOptions options);

  /// Routes all nets. Safe to call once per engine instance per grid
  /// state; the result is bit-identical to
  /// LevelBRouter(grid, options.levelb).route(nets) for any thread count.
  levelb::LevelBResult route(const std::vector<levelb::BNet>& nets);

  const EngineStats& stats() const { return stats_; }

  /// The thread count a configured value resolves to (handles <= 0).
  static int resolve_threads(int requested);

 private:
  /// The shared parallel prologue — ordering, snapped terminal
  /// reservations, unrouted suffixes (defined in engine.cpp). Built once
  /// per route() so auto mode can plan before either dispatch runs
  /// (terminal reservation mutates the grid and must happen exactly once).
  struct Prepared;

  levelb::LevelBResult route_parallel(const std::vector<levelb::BNet>& nets,
                                      const Prepared& prep, int threads);
  levelb::LevelBResult route_sharded(const std::vector<levelb::BNet>& nets,
                                     const Prepared& prep, int threads);

  tig::TrackGrid& grid_;
  EngineOptions options_;
  EngineStats stats_;
};

}  // namespace ocr::engine

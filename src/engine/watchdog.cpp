#include "engine/watchdog.hpp"

#include "util/str.hpp"

namespace ocr::engine {

Watchdog::Watchdog(util::CancelSource& source, Options options)
    : source_(source), options_(options),
      start_(std::chrono::steady_clock::now()) {
  if (options_.deadline.count() > 0 || options_.stall.count() > 0) {
    thread_ = std::thread([this] { monitor(); });
  }
}

Watchdog::~Watchdog() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::monitor() {
  long long last_progress = source_.progress();
  auto last_advance = start_;

  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_.load(std::memory_order_relaxed)) {
    cv_.wait_for(lock, options_.poll, [this] {
      return stop_.load(std::memory_order_relaxed);
    });
    if (stop_.load(std::memory_order_relaxed)) return;
    if (source_.cancelled()) return;  // someone else fired; done watching

    const auto now = std::chrono::steady_clock::now();
    if (options_.deadline.count() > 0 && now - start_ >= options_.deadline) {
      fired_.store(true, std::memory_order_relaxed);
      source_.cancel(util::Status::deadline_exceeded(
                         util::format("deadline of %lld ms exceeded",
                                      static_cast<long long>(
                                          options_.deadline.count())))
                         .with_stage("watchdog"));
      return;
    }
    if (options_.stall.count() > 0) {
      const long long progress = source_.progress();
      if (progress != last_progress) {
        last_progress = progress;
        last_advance = now;
      } else if (now - last_advance >= options_.stall) {
        fired_.store(true, std::memory_order_relaxed);
        source_.cancel(util::Status::cancelled(
                           util::format("no progress for %lld ms",
                                        static_cast<long long>(
                                            options_.stall.count())))
                           .with_stage("watchdog"));
        return;
      }
    }
  }
}

}  // namespace ocr::engine

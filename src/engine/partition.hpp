#pragma once
/// \file partition.hpp
/// \brief Conflict-graph spatial sharding: the engine's zero-speculation
/// batch planner.
///
/// The speculative engine pays for parallelism with aborts: workers race
/// the committer, and every footprint collision discards a finished
/// search. Most of those collisions are predictable from geometry alone —
/// two nets whose search regions are far apart cannot invalidate each
/// other, so racing them was never necessary.
///
/// The shard planner turns that observation into a schedule. Each ordering
/// position gets a *declared region*: its terminal bounding box inflated
/// by the expected search halo (window growth + congestion-window reads).
/// Scanning positions in the serial ordering, a batch is the maximal run
/// of consecutive positions whose regions are pairwise disjoint — i.e. a
/// greedy coloring of the region-overlap conflict graph, constrained to
/// order-convex color classes. The constraint is what keeps recovery
/// exact: when every batch is a contiguous ordering interval and batches
/// commit in order, the live grid at any position k inside a batch is
/// exactly the serial prefix [0, k) — so a net whose search escaped its
/// declared region can be re-routed serially with no rollback.
///
/// Sensitive nets close their batch (they stay its last member): their
/// commit updates the SensitiveRuns registry, which the w24 cost term
/// reads *without* touching the grid, so no later net may share a batch
/// with one. With that rule, the batch-start registry is position-exact
/// for every member.
///
/// The plan is a performance device, not a correctness proof: free-gap
/// and blockage-distance reads can extend past any declared region on
/// sparse tracks, so the engine still verifies each batch member's exact
/// read set against the wiring its same-batch predecessors committed and
/// re-routes the rare escapee serially (see engine.cpp route_sharded).

#include <cstddef>
#include <vector>

#include "geom/rect.hpp"
#include "levelb/net_core.hpp"

namespace ocr::engine {

struct ShardPlanOptions {
  /// Routing pitch the halo scales with (max of the grid's h/v pitches).
  geom::Coord pitch = 1;
  /// Region inflation in pitches. Covers the first search-window growth
  /// steps plus the acf congestion-window reads; larger values trade
  /// batch length for fewer escapes. Purely a tuning knob — escapes are
  /// caught at commit time either way.
  int halo_pitches = 16;
};

/// One batch: the ordering positions [begin, end), pairwise
/// region-disjoint and routable in parallel against the batch-start grid.
struct ShardBatch {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
};

struct ShardPlan {
  /// Declared region per ordering position (meaningless where
  /// has_region[k] is false — nets with no terminals conflict with
  /// nothing and join any batch).
  std::vector<geom::Rect> regions;
  std::vector<char> has_region;
  /// Order-convex cover of [0, n): batches[i].end == batches[i+1].begin.
  std::vector<ShardBatch> batches;

  std::size_t positions() const {
    return batches.empty() ? 0 : batches.back().end;
  }
  std::size_t max_batch() const;
  /// Mean batch length — the planner's parallelism estimate (an upper
  /// bound on achievable speedup; the auto engine mode thresholds on it).
  double mean_batch() const;
};

/// Builds the batch schedule for nets already in ordering sequence.
/// Deterministic: a pure function of the terminal geometry, the sensitive
/// flags and the options.
ShardPlan build_shard_plan(
    const std::vector<const levelb::BNet*>& nets_by_position,
    const std::vector<const std::vector<geom::Point>*>& terminals_by_position,
    const ShardPlanOptions& options);

}  // namespace ocr::engine

#pragma once
/// \file committer.hpp
/// \brief The engine's single writer: applies net results to the live
/// grid in deterministic net order and validates speculative searches.
///
/// Exactly one commit batch is applied per ordering position, so the
/// VersionedGrid epoch always equals the number of committed nets. A
/// speculative search that ran against epoch e and is being committed at
/// position k is valid iff no batch applied at epochs [e, k) overlapped a
/// track interval the search actually read (its SearchFootprint), and
/// none of those batches registered sensitive wiring (which changes path
/// costs beyond the touched tracks).

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "levelb/net_core.hpp"
#include "tig/snapshot.hpp"

namespace ocr::engine {

class Committer {
 public:
  explicit Committer(tig::VersionedGrid& grid);

  /// What the committer has published so far, read atomically as a pair:
  /// the epoch AFTER the latest commit batch and the sensitive-run
  /// registry including that batch. Workers base a speculation on this —
  /// footprint validation covers exactly the epochs at or above
  /// `published().epoch`, and the sensitive registry is consistent with
  /// that boundary (a later sensitive commit lands in the validation gap
  /// and aborts the speculation).
  struct Published {
    std::uint64_t epoch = 0;
    std::shared_ptr<const levelb::SensitiveRuns> sensitive;
  };
  Published published() const;

  /// Published snapshot of the committed sensitive wiring alone (the
  /// `published().sensitive` component).
  std::shared_ptr<const levelb::SensitiveRuns> sensitive_snapshot() const;

  /// Whether a speculation from \p epoch can be committed at \p position
  /// unchanged (see file comment for the argument).
  bool validate(std::uint64_t epoch, std::size_t position,
                const levelb::SearchFootprint& footprint) const;

  /// Applies one net's extents as the commit batch for the next position;
  /// \p sensitive registers the extents in the sensitive-run registry.
  /// Updates published() after the grid apply.
  void commit(const std::vector<levelb::Committed>& extents,
              bool sensitive);

  std::uint64_t epoch() const { return grid_.epoch(); }

 private:
  tig::VersionedGrid& grid_;
  mutable std::mutex mu_;
  std::uint64_t published_epoch_ = 0;
  std::shared_ptr<const levelb::SensitiveRuns> sensitive_;
};

}  // namespace ocr::engine

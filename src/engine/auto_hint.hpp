#pragma once
/// \file auto_hint.hpp
/// \brief Manifest-fed dispatch hint for engine_mode=auto.
///
/// Auto mode's static heuristic guesses from geometry (the shard plan's
/// mean batch length) which parallel dispatch will win. But a previous
/// run of the same instance already *measured* the answer: its
/// RunManifest records how many speculations aborted or how many sharded
/// nets escaped their declared regions. The hint loader scans a prior
/// manifest for those `engine.*` counters and turns them into rates; the
/// engine then repeats a dispatch that measured clean and switches away
/// from one that measured contended, falling back to the static
/// heuristic when no usable manifest is given.
///
/// The loader is deliberately a targeted key scanner, not a JSON parser:
/// manifests nest the metrics snapshot one level deep, which the io/
/// flat-JSON reader rejects by design, and the hint needs five numeric
/// keys whose names never contain escapes. Absent keys read as 0; a
/// manifest with no engine counters at all yields an invalid hint (the
/// static fallback), so pointing --engine-hint at an unrelated file
/// degrades to exactly the unhinted behavior.

#include <string>

namespace ocr::engine {

/// Measured dispatch outcome of a prior run of (presumably) the same
/// instance. `valid` gates everything: an invalid hint means "no usable
/// measurement, use the static heuristic".
struct EngineAutoHint {
  bool valid = false;
  /// Which dispatch the prior run measured (it ran exactly one).
  bool measured_sharded = false;
  /// Sharded runs: boundary_nets / (sharded_commits + boundary_nets).
  double escape_rate = 0.0;
  /// Speculative runs: aborts / (commits + aborts).
  double abort_rate = 0.0;
};

/// Extracts a hint from RunManifest JSON text. Invalid when the text
/// carries no engine dispatch counters (e.g. a serial run's manifest).
EngineAutoHint auto_hint_from_manifest_text(const std::string& text);

/// Reads \p path and extracts the hint; invalid on any I/O failure.
EngineAutoHint load_auto_hint(const std::string& path);

}  // namespace ocr::engine

#include "engine/committer.hpp"

namespace ocr::engine {

Committer::Committer(tig::VersionedGrid& grid)
    : grid_(grid),
      published_epoch_(grid.epoch()),
      sensitive_(std::make_shared<const levelb::SensitiveRuns>()) {}

Committer::Published Committer::published() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return Published{published_epoch_, sensitive_};
}

std::shared_ptr<const levelb::SensitiveRuns> Committer::sensitive_snapshot()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sensitive_;
}

bool Committer::validate(std::uint64_t epoch, std::size_t position,
                         const levelb::SearchFootprint& footprint) const {
  // One batch per position: the gap records are exactly epochs
  // [epoch, position). Commit batches are block-only, so a gap op can
  // change the speculation's outcome only by blocking an interval the
  // search actually read.
  for (std::uint64_t e = epoch; e < position; ++e) {
    const tig::CommitRecord* record = grid_.log().record_at(e);
    if (record == nullptr) return false;  // writer raced us; be safe
    if (record->sensitive) return false;
    for (const tig::CommitOp& op : record->ops) {
      if (footprint.intersects(op.track, op.span)) return false;
    }
  }
  return true;
}

void Committer::commit(const std::vector<levelb::Committed>& extents,
                       bool sensitive) {
  std::vector<tig::CommitOp> ops;
  ops.reserve(extents.size());
  for (const levelb::Committed& c : extents) {
    ops.push_back(tig::CommitOp{c.track, c.extent, /*block=*/true});
  }
  grid_.apply(std::move(ops), sensitive);

  std::shared_ptr<const levelb::SensitiveRuns> next_sensitive;
  if (sensitive && !extents.empty()) {
    // Copy-on-write: readers keep their published snapshot.
    auto next = std::make_shared<levelb::SensitiveRuns>(*sensitive_);
    for (const levelb::Committed& c : extents) {
      if (c.track.orient == geom::Orientation::kHorizontal) {
        next->add_h(c.track.index, c.extent);
      } else {
        next->add_v(c.track.index, c.extent);
      }
    }
    next_sensitive = std::move(next);
  }

  // Publish epoch + registry as one unit, AFTER the grid apply: a worker
  // that reads this epoch is guaranteed the commit log holds every record
  // below it, and the registry it reads includes every sensitive batch at
  // epochs below it.
  const std::lock_guard<std::mutex> lock(mu_);
  published_epoch_ = grid_.epoch();
  if (next_sensitive != nullptr) {
    sensitive_ = std::move(next_sensitive);
  }
}

}  // namespace ocr::engine

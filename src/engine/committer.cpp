#include "engine/committer.hpp"

namespace ocr::engine {

Committer::Committer(tig::VersionedGrid& grid)
    : grid_(grid),
      sensitive_(std::make_shared<const levelb::SensitiveRuns>()) {}

std::shared_ptr<const levelb::SensitiveRuns> Committer::sensitive_snapshot()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sensitive_;
}

bool Committer::validate(std::uint64_t epoch, std::size_t position,
                         const levelb::SearchFootprint& footprint) const {
  // One batch per position: the gap records are exactly epochs
  // [epoch, position). Commit batches are block-only, so a gap op can
  // change the speculation's outcome only by blocking an interval the
  // search actually read.
  for (std::uint64_t e = epoch; e < position; ++e) {
    const tig::CommitRecord* record = grid_.log().record_at(e);
    if (record == nullptr) return false;  // writer raced us; be safe
    if (record->sensitive) return false;
    for (const tig::CommitOp& op : record->ops) {
      if (footprint.intersects(op.track, op.span)) return false;
    }
  }
  return true;
}

void Committer::commit(const std::vector<levelb::Committed>& extents,
                       bool sensitive) {
  std::vector<tig::CommitOp> ops;
  ops.reserve(extents.size());
  for (const levelb::Committed& c : extents) {
    ops.push_back(tig::CommitOp{c.track, c.extent, /*block=*/true});
  }
  grid_.apply(std::move(ops), sensitive);

  if (sensitive && !extents.empty()) {
    // Copy-on-write: readers keep their published snapshot.
    auto next = std::make_shared<levelb::SensitiveRuns>(*sensitive_);
    for (const levelb::Committed& c : extents) {
      if (c.track.orient == geom::Orientation::kHorizontal) {
        next->add_h(c.track.index, c.extent);
      } else {
        next->add_v(c.track.index, c.extent);
      }
    }
    const std::lock_guard<std::mutex> lock(mu_);
    sensitive_ = std::move(next);
  }
}

}  // namespace ocr::engine

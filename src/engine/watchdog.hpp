#pragma once
/// \file watchdog.hpp
/// \brief Deadline and stall enforcement for routing runs.
///
/// The watchdog owns a small monitor thread that fires a CancelSource
/// when either limit trips:
///
/// * **deadline** — wall clock since construction exceeds the limit
///   (`StatusKind::kDeadlineExceeded`);
/// * **stall** — the cancel token's progress counter (bumped by the MBFS
///   inner loops and the committer) has not advanced for the stall
///   window (`StatusKind::kCancelled`, "stalled"), which catches a stuck
///   worker that stopped examining vertices entirely.
///
/// Cancellation is cooperative: search loops observe the token within a
/// bounded number of vertex expansions, so a run terminates well inside
/// 2x the deadline at any thread count. Zero limits disable the
/// corresponding check; with both zero no thread is started at all.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/cancel.hpp"

namespace ocr::engine {

class Watchdog {
 public:
  struct Options {
    /// Wall-clock budget for the whole run; 0 = no deadline.
    std::chrono::milliseconds deadline{0};
    /// Cancel if progress stands still this long; 0 = disabled.
    std::chrono::milliseconds stall{0};
    /// Monitor poll interval.
    std::chrono::milliseconds poll{5};
  };

  /// Starts monitoring \p source immediately (if any limit is set).
  Watchdog(util::CancelSource& source, Options options);

  /// Stops the monitor thread. Does not un-cancel the source.
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Whether this watchdog fired the cancel (deadline or stall).
  bool fired() const { return fired_.load(std::memory_order_relaxed); }

 private:
  void monitor();

  util::CancelSource& source_;
  Options options_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> fired_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace ocr::engine

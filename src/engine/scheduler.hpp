#pragma once
/// \file scheduler.hpp
/// \brief Net scheduling for the parallel engine: hands out ordering
/// positions to workers within a bounded speculation window.
///
/// Positions are claimed strictly in ordering sequence. A position k is
/// claimable once k < committed + lookahead, bounding how far workers may
/// speculate past the committer; the committer advances `committed` as it
/// applies results in deterministic net order.

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>

namespace ocr::engine {

class NetScheduler {
 public:
  /// \p lookahead >= 1: how many uncommitted positions may be in flight.
  /// \p measure_wait: record claim() blocking time (tracing only).
  NetScheduler(std::size_t positions, std::size_t lookahead,
               bool measure_wait);

  /// One claim ticket: the ordering position plus how long the worker
  /// waited for it to become claimable (0 unless measuring).
  struct Claim {
    std::size_t position = 0;
    long long queue_wait_us = 0;
    /// An injected scheduler fault hit this ticket: the worker must not
    /// search it, only publish it poisoned so the committer recovers the
    /// position serially (fault-injection harness).
    bool degraded = false;
  };

  /// Blocks until the next position enters the speculation window;
  /// std::nullopt once every position has been handed out.
  std::optional<Claim> claim();

  /// Committer: positions [0, count) are now committed. Wakes waiters.
  void on_committed(std::size_t count);

  std::size_t committed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t next_ = 0;
  std::size_t committed_ = 0;
  const std::size_t positions_;
  const std::size_t lookahead_;
  const bool measure_wait_;
};

}  // namespace ocr::engine

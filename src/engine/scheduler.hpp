#pragma once
/// \file scheduler.hpp
/// \brief Net scheduling for the parallel engine: hands out ordering
/// positions to workers within a bounded speculation window.
///
/// A position k is claimable once k < committed + lookahead, bounding how
/// far workers may speculate past the committer; the committer advances
/// `committed` as it applies results in deterministic net order.
///
/// Within the window, claims are *conflict-aware*: when per-position
/// terminal bounding boxes are supplied, claim() prefers the position
/// least likely to be invalidated — the one whose box overlaps the fewest
/// not-yet-committed earlier positions (ties broken by ordering position,
/// so the head of the window always wins among equals and no position
/// starves). Without hints every penalty is zero and claims degenerate to
/// strict ordering sequence. Claim order never affects routing results —
/// the committer applies results in ordering sequence and re-routes any
/// invalidated speculation — only the abort rate.
///
/// The lookahead is *adaptive*: on_committed() feeds a rolling window of
/// accept/abort verdicts, and the window widens (up to a cap) while the
/// abort rate stays low, shrinking back toward the base when speculation
/// starts getting invalidated.
///
/// Blocking uses C++20 atomic wait on the committed counter instead of a
/// mutex+condition_variable pair; the claim-selection state itself sits
/// under a small mutex that is only ever held for O(window^2) index
/// arithmetic.

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "geom/rect.hpp"

namespace ocr::engine {

class NetScheduler {
 public:
  /// \p lookahead >= 1: base window of uncommitted positions in flight.
  /// \p measure_wait: record claim() blocking time (tracing only).
  NetScheduler(std::size_t positions, std::size_t lookahead,
               bool measure_wait);

  /// Enables conflict-aware selection: \p bounds[k] is position k's
  /// terminal bounding box, pre-inflated by the caller's expected search
  /// halo. Call before workers start (not thread-safe against claim()).
  void set_conflict_hints(std::vector<geom::Rect> bounds);

  /// Enables adaptive lookahead up to \p max_lookahead (>= base). Call
  /// before workers start.
  void set_max_lookahead(std::size_t max_lookahead);

  /// One claim ticket: the ordering position plus how long the worker
  /// waited for it to become claimable (0 unless measuring).
  struct Claim {
    std::size_t position = 0;
    long long queue_wait_us = 0;
    /// An injected scheduler fault hit this ticket: the worker must not
    /// search it, only publish it poisoned so the committer recovers the
    /// position serially (fault-injection harness).
    bool degraded = false;
  };

  /// Blocks until a position enters the speculation window;
  /// std::nullopt once every position has been handed out.
  std::optional<Claim> claim();

  /// Committer: positions [0, count) are now committed; \p accepted says
  /// whether the latest position's speculation was accepted as-is (feeds
  /// the adaptive-lookahead abort-rate window). Wakes waiters.
  void on_committed(std::size_t count, bool accepted = true);

  std::size_t committed() const {
    return committed_.load(std::memory_order_acquire);
  }

  /// Current adaptive window width (base <= value <= max).
  std::size_t lookahead() const;
  /// Widest the window ever grew (scaling diagnostics).
  std::size_t peak_lookahead() const;

 private:
  std::size_t penalty_locked(std::size_t k, std::size_t committed) const;

  // Waiters block on this counter (atomic wait/notify), not on a cv.
  std::atomic<std::size_t> committed_{0};

  mutable std::mutex mu_;  // guards everything below
  std::vector<char> claimed_;      ///< per-position hand-out flags
  std::size_t first_unclaimed_ = 0;
  const std::size_t positions_;
  const std::size_t base_lookahead_;
  std::size_t max_lookahead_;
  std::size_t lookahead_cur_;
  std::size_t peak_lookahead_;
  std::vector<geom::Rect> bounds_;  ///< empty = no conflict hints
  // Rolling accept/abort history for the adaptive controller.
  std::vector<char> verdicts_;      ///< ring buffer of accept flags
  std::size_t verdict_next_ = 0;
  std::size_t verdict_count_ = 0;
  std::size_t aborts_in_window_ = 0;
  const bool measure_wait_;
};

}  // namespace ocr::engine

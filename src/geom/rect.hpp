#pragma once
/// \file rect.hpp
/// \brief Axis-aligned rectangles (cell outlines, obstacles, channels).

#include <compare>
#include <ostream>
#include <vector>

#include "geom/interval.hpp"
#include "geom/point.hpp"

namespace ocr::geom {

/// Closed axis-aligned rectangle [xlo, xhi] x [ylo, yhi].
struct Rect {
  Coord xlo = 0;
  Coord ylo = 0;
  Coord xhi = 0;
  Coord yhi = 0;

  Rect() = default;
  Rect(Coord xlo_in, Coord ylo_in, Coord xhi_in, Coord yhi_in)
      : xlo(xlo_in), ylo(ylo_in), xhi(xhi_in), yhi(yhi_in) {
    OCR_ASSERT(xlo_in <= xhi_in && ylo_in <= yhi_in,
               "Rect requires xlo <= xhi and ylo <= yhi");
  }

  static Rect from_corners(const Point& a, const Point& b) {
    return Rect(std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
                std::max(a.y, b.y));
  }

  Coord width() const { return xhi - xlo; }
  Coord height() const { return yhi - ylo; }
  Coord area() const { return width() * height(); }
  Point center() const { return Point{(xlo + xhi) / 2, (ylo + yhi) / 2}; }
  Interval x_span() const { return Interval(xlo, xhi); }
  Interval y_span() const { return Interval(ylo, yhi); }

  bool contains(const Point& p) const {
    return xlo <= p.x && p.x <= xhi && ylo <= p.y && p.y <= yhi;
  }
  bool contains(const Rect& other) const {
    return xlo <= other.xlo && other.xhi <= xhi && ylo <= other.ylo &&
           other.yhi <= yhi;
  }

  /// True if the closed rectangles share at least one point.
  bool overlaps(const Rect& other) const {
    return xlo <= other.xhi && other.xlo <= xhi && ylo <= other.yhi &&
           other.ylo <= yhi;
  }

  /// True if the *open interiors* intersect (shared edges are allowed).
  bool interior_overlaps(const Rect& other) const {
    return xlo < other.xhi && other.xlo < xhi && ylo < other.yhi &&
           other.ylo < yhi;
  }

  /// Smallest rectangle containing both.
  Rect hull(const Rect& other) const {
    return Rect(std::min(xlo, other.xlo), std::min(ylo, other.ylo),
                std::max(xhi, other.xhi), std::max(yhi, other.yhi));
  }

  /// Rectangle grown by \p margin on every side (margin may be negative as
  /// long as the result stays non-degenerate).
  Rect inflated(Coord margin) const {
    return Rect(xlo - margin, ylo - margin, xhi + margin, yhi + margin);
  }

  friend constexpr auto operator<=>(const Rect&, const Rect&) = default;
};

/// Bounding box of a non-empty point set.
Rect bounding_box(const std::vector<Point>& points);

std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace ocr::geom

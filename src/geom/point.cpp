#include "geom/point.hpp"

namespace ocr::geom {

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << "," << p.y << ")";
}

std::ostream& operator<<(std::ostream& os, Orientation o) {
  return os << orientation_tag(o);
}

}  // namespace ocr::geom

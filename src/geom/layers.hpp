#pragma once
/// \file layers.hpp
/// \brief Routing-layer identities and the synthetic design-rule set.
///
/// The paper's central area argument hinges on design rules: upper metal
/// layers have wider lines and larger vias, so saving channel *tracks* with
/// a multi-layer channel router does not save proportional channel *area*,
/// whereas moving nets over the cells removes the channel demand entirely.
/// DesignRules carries exactly the quantities needed for that argument:
/// per-layer wire pitch and via dimensions.

#include <array>
#include <cstdint>
#include <ostream>
#include <string_view>

#include "geom/point.hpp"

namespace ocr::geom {

/// The four routing layers of the paper's technology assumption.
/// metal1/metal2 route inside channels (level A); metal3/metal4 route over
/// the whole layout (level B).
enum class Layer : std::uint8_t {
  kMetal1 = 0,
  kMetal2 = 1,
  kMetal3 = 2,
  kMetal4 = 3,
};

inline constexpr int kNumLayers = 4;

/// Layer index in [0, kNumLayers).
constexpr int layer_index(Layer layer) { return static_cast<int>(layer); }

/// Human-readable layer name ("metal1" ... "metal4").
std::string_view layer_name(Layer layer);

/// Per-layer wiring geometry in database units (dbu).
struct LayerRule {
  Coord line_width = 0;  ///< drawn wire width
  Coord spacing = 0;     ///< minimum wire-to-wire spacing
  /// Track pitch: distance between adjacent parallel routing tracks.
  Coord pitch() const { return line_width + spacing; }
};

/// Synthetic process design rules for the 4-layer technology.
///
/// The defaults follow the paper's qualitative rule — pitch grows with the
/// layer number — with factors typical of late-1980s double/quad-metal
/// processes (upper layers ~1.5-2x the metal1 pitch).
struct DesignRules {
  std::array<LayerRule, kNumLayers> layers{
      LayerRule{3, 3},  // metal1: pitch 6
      LayerRule{3, 3},  // metal2: pitch 6
      LayerRule{5, 4},  // metal3: pitch 9
      LayerRule{6, 5},  // metal4: pitch 11
  };

  /// Side length of the square cut joining \p lower with the layer above.
  /// Grows with height in the stack, like the line widths.
  std::array<Coord, kNumLayers - 1> via_size{4, 6, 8};

  const LayerRule& rule(Layer layer) const {
    return layers[static_cast<std::size_t>(layer_index(layer))];
  }

  /// Pitch of the horizontal/vertical track grid used by a channel routed
  /// on layers \p a and \p b: the coarser of the two pitches (both
  /// directions must clear both layers' vias and lines).
  Coord channel_pitch(Layer a, Layer b) const;

  /// Validates internal consistency (positive widths, monotone stack).
  bool valid() const;
};

std::ostream& operator<<(std::ostream& os, Layer layer);

}  // namespace ocr::geom

#include "geom/interval_set.hpp"

#include <algorithm>
#include <limits>

namespace ocr::geom {

namespace {
// First run whose hi >= v (candidate container of v).
std::vector<Interval>::const_iterator first_reaching(
    const std::vector<Interval>& runs, Coord v) {
  return std::lower_bound(
      runs.begin(), runs.end(), v,
      [](const Interval& run, Coord value) { return run.hi < value; });
}
}  // namespace

void IntervalSet::add(const Interval& iv) {
  // Find all runs that overlap or are adjacent to iv and merge them.
  Interval merged = iv;
  auto first = std::lower_bound(runs_.begin(), runs_.end(), iv.lo,
                                [](const Interval& run, Coord value) {
                                  // adjacent runs (run.hi + 1 == lo) merge too
                                  return run.hi + 1 < value;
                                });
  auto last = first;
  while (last != runs_.end() && last->lo <= merged.hi + 1) {
    merged = merged.hull(*last);
    ++last;
  }
  if (first == last) {
    runs_.insert(first, merged);
  } else {
    *first = merged;
    runs_.erase(first + 1, last);
  }
}

void IntervalSet::remove(const Interval& iv) {
  auto first = first_reaching(runs_, iv.lo);
  std::vector<Interval> replacement;
  auto it = first;
  while (it != runs_.end() && it->lo <= iv.hi) {
    if (it->lo < iv.lo) replacement.emplace_back(it->lo, iv.lo - 1);
    if (it->hi > iv.hi) replacement.emplace_back(iv.hi + 1, it->hi);
    ++it;
  }
  const auto insert_pos = runs_.erase(first, it);
  runs_.insert(insert_pos, replacement.begin(), replacement.end());
}

bool IntervalSet::intersects(const Interval& iv) const {
  const auto it = first_reaching(runs_, iv.lo);
  return it != runs_.end() && it->lo <= iv.hi;
}

bool IntervalSet::contains(Coord v) const {
  return intersects(Interval(v, v));
}

Coord IntervalSet::blocked_length() const {
  Coord total = 0;
  for (const Interval& run : runs_) total += run.length();
  return total;
}

std::optional<Interval> IntervalSet::free_gap_containing(
    const Interval& universe, Coord v) const {
  if (!universe.contains(v)) return std::nullopt;
  const auto it = first_reaching(runs_, v);
  if (it != runs_.end() && it->lo <= v) return std::nullopt;  // v blocked
  Coord lo = universe.lo;
  if (it != runs_.begin()) lo = std::max(lo, std::prev(it)->hi + 1);
  Coord hi = universe.hi;
  if (it != runs_.end()) hi = std::min(hi, it->lo - 1);
  if (lo > hi) return std::nullopt;
  return Interval(lo, hi);
}

std::optional<Coord> IntervalSet::distance_to_nearest_blocked(
    Coord v) const {
  if (runs_.empty()) return std::nullopt;
  const auto it = first_reaching(runs_, v);
  if (it != runs_.end() && it->lo <= v) return 0;
  Coord best = std::numeric_limits<Coord>::max();
  if (it != runs_.end()) best = std::min(best, it->lo - v);
  if (it != runs_.begin()) best = std::min(best, v - std::prev(it)->hi);
  return best;
}

std::vector<Interval> IntervalSet::free_gaps(const Interval& universe) const {
  std::vector<Interval> gaps;
  free_gaps_into(universe, gaps);
  return gaps;
}

void IntervalSet::free_gaps_into(const Interval& universe,
                                 std::vector<Interval>& out) const {
  out.clear();
  Coord cursor = universe.lo;
  for (const Interval& run : runs_) {
    if (run.hi < universe.lo) continue;
    if (run.lo > universe.hi) break;
    if (run.lo > cursor) out.emplace_back(cursor, run.lo - 1);
    cursor = std::max(cursor, run.hi + 1);
    if (cursor > universe.hi) break;
  }
  if (cursor <= universe.hi) out.emplace_back(cursor, universe.hi);
}

}  // namespace ocr::geom

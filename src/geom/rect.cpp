#include "geom/rect.hpp"

namespace ocr::geom {

Rect bounding_box(const std::vector<Point>& points) {
  OCR_ASSERT(!points.empty(), "bounding_box requires at least one point");
  Rect box(points.front().x, points.front().y, points.front().x,
           points.front().y);
  for (const Point& p : points) {
    box.xlo = std::min(box.xlo, p.x);
    box.ylo = std::min(box.ylo, p.y);
    box.xhi = std::max(box.xhi, p.x);
    box.yhi = std::max(box.yhi, p.y);
  }
  return box;
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.xlo << "," << r.ylo << " .. " << r.xhi << ","
            << r.yhi << "]";
}

}  // namespace ocr::geom

#include "geom/interval.hpp"

namespace ocr::geom {

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << "[" << iv.lo << "," << iv.hi << "]";
}

}  // namespace ocr::geom

#include "geom/layers.hpp"

#include <algorithm>

namespace ocr::geom {

std::string_view layer_name(Layer layer) {
  switch (layer) {
    case Layer::kMetal1:
      return "metal1";
    case Layer::kMetal2:
      return "metal2";
    case Layer::kMetal3:
      return "metal3";
    case Layer::kMetal4:
      return "metal4";
  }
  return "metal?";
}

Coord DesignRules::channel_pitch(Layer a, Layer b) const {
  return std::max(rule(a).pitch(), rule(b).pitch());
}

bool DesignRules::valid() const {
  for (const LayerRule& lr : layers) {
    if (lr.line_width <= 0 || lr.spacing <= 0) return false;
  }
  for (Coord v : via_size) {
    if (v <= 0) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, Layer layer) {
  return os << layer_name(layer);
}

}  // namespace ocr::geom

#pragma once
/// \file interval.hpp
/// \brief Closed integer intervals [lo, hi].
///
/// Channel routing reasons about horizontal spans of nets; track blocking
/// reasons about blocked extents along a track. Both use closed intervals
/// on grid coordinates.

#include <algorithm>
#include <compare>
#include <ostream>

#include "geom/point.hpp"
#include "util/assert.hpp"

namespace ocr::geom {

/// Closed interval [lo, hi] over Coord. Empty intervals are not
/// representable; construction requires lo <= hi.
struct Interval {
  Coord lo = 0;
  Coord hi = 0;

  Interval() = default;
  Interval(Coord lo_in, Coord hi_in) : lo(lo_in), hi(hi_in) {
    OCR_ASSERT(lo_in <= hi_in, "Interval requires lo <= hi");
  }

  Coord length() const { return hi - lo; }
  bool contains(Coord v) const { return lo <= v && v <= hi; }
  bool contains(const Interval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }

  /// True if the two closed intervals share at least one point.
  bool overlaps(const Interval& other) const {
    return lo <= other.hi && other.lo <= hi;
  }

  /// Smallest interval containing both.
  Interval hull(const Interval& other) const {
    return Interval(std::min(lo, other.lo), std::max(hi, other.hi));
  }

  friend constexpr auto operator<=>(const Interval&, const Interval&) =
      default;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

}  // namespace ocr::geom

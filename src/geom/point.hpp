#pragma once
/// \file point.hpp
/// \brief Integer lattice points and the Manhattan metric.
///
/// All geometry in the library is integral (database units, "dbu"); the
/// synthetic design rules express layer pitches in dbu, so no floating
/// point ever enters area/wirelength accounting.

#include <compare>
#include <cstdint>
#include <ostream>

namespace ocr::geom {

/// Database-unit coordinate. 64-bit: layout areas reach 1e7 x 1e7 dbu and
/// areas must not overflow when multiplied.
using Coord = std::int64_t;

/// Axis orientation of a wire segment or routing track.
enum class Orientation : std::uint8_t { kHorizontal, kVertical };

/// Returns the perpendicular orientation.
constexpr Orientation perpendicular(Orientation o) {
  return o == Orientation::kHorizontal ? Orientation::kVertical
                                       : Orientation::kHorizontal;
}

/// Single-character tag used in debug output ('H' / 'V').
constexpr char orientation_tag(Orientation o) {
  return o == Orientation::kHorizontal ? 'H' : 'V';
}

/// A point on the integer lattice.
struct Point {
  Coord x = 0;
  Coord y = 0;

  friend constexpr auto operator<=>(const Point&, const Point&) = default;
};

/// L1 (rectilinear) distance — the metric of the paper's Steiner trees.
constexpr Coord manhattan(const Point& a, const Point& b) {
  const Coord dx = a.x >= b.x ? a.x - b.x : b.x - a.x;
  const Coord dy = a.y >= b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

std::ostream& operator<<(std::ostream& os, const Point& p);
std::ostream& operator<<(std::ostream& os, Orientation o);

}  // namespace ocr::geom

#pragma once
/// \file interval_set.hpp
/// \brief A set of disjoint closed intervals with block/free queries.
///
/// Routing tracks keep an IntervalSet of *blocked* extents (obstacles and
/// wires already committed to the track). Path legality checks reduce to
/// "is [a, b] fully free on this track?", which this structure answers in
/// O(log k) for k maximal blocked runs.

#include <optional>
#include <vector>

#include "geom/interval.hpp"

namespace ocr::geom {

/// Maintains a canonical (sorted, non-overlapping, non-adjacent-merged)
/// list of blocked closed intervals over Coord.
class IntervalSet {
 public:
  /// Marks [iv.lo, iv.hi] as blocked, merging with existing runs.
  void add(const Interval& iv);

  /// Unmarks [iv.lo, iv.hi]; splits existing runs as needed.
  void remove(const Interval& iv);

  /// True if any coordinate of \p iv is blocked.
  bool intersects(const Interval& iv) const;

  /// True if the single coordinate \p v is blocked.
  bool contains(Coord v) const;

  /// True if the whole of \p iv is free (no blocked point inside).
  bool is_free(const Interval& iv) const { return !intersects(iv); }

  /// Total blocked length, counting each blocked run as hi - lo
  /// (zero-length runs block a single point but add no length).
  Coord blocked_length() const;

  /// Maximal blocked runs in ascending order.
  const std::vector<Interval>& runs() const { return runs_; }

  bool empty() const { return runs_.empty(); }
  void clear() { runs_.clear(); }

  /// Enumerates the maximal free gaps of the universe [lo, hi] minus the
  /// blocked runs. Gaps are closed intervals; runs touching the boundary
  /// clip the gaps accordingly.
  std::vector<Interval> free_gaps(const Interval& universe) const;

  /// free_gaps, written into \p out (cleared first) so callers can reuse
  /// its capacity across rebuilds.
  void free_gaps_into(const Interval& universe,
                      std::vector<Interval>& out) const;

  /// The maximal free gap of \p universe containing \p v, if \p v is free
  /// and inside the universe. O(log k).
  std::optional<Interval> free_gap_containing(const Interval& universe,
                                              Coord v) const;

  /// Distance from \p v to the nearest blocked coordinate (in either
  /// direction), or nullopt when nothing is blocked. Used by the level-B
  /// cost function's corner-proximity term.
  std::optional<Coord> distance_to_nearest_blocked(Coord v) const;

 private:
  std::vector<Interval> runs_;  // sorted by lo, pairwise disjoint
};

}  // namespace ocr::geom

#pragma once
/// \file chunked.hpp
/// \brief ChunkedVector: a fixed-size-indexed array whose storage
/// materializes in 64-element chunks on first write.
///
/// The 100k-net instances put the dense per-track containers out of
/// business: a TrackGrid over a 200k-dbu die carries ~40k tracks, and a
/// dense `std::vector<IntervalSet>` (or GapCache entry array, or overlay
/// slot array) pays construction, copy and cache-miss cost for every one
/// of them even though a single net's search touches a few dozen. The
/// ChunkedVector keeps only a directory of chunk pointers; a chunk
/// (64 consecutive indices) exists once something in it has been written.
/// Reads of absent indices answer with a shared default value, writes
/// materialize the chunk filled with that default — so the container is
/// observationally identical to a dense vector initialized to the default,
/// while untouched regions cost one null pointer.
///
/// Copying copies only the present chunks (the GridSnapshot publication
/// path: a worker's grid copy inherits exactly the occupied part of the
/// die). The container never shrinks short of reset().
///
/// Thread contract: same as std::vector — const access is a pure read
/// (at()/find() never materialize), any mutation (touch()) follows the
/// owner's single-writer rules.

#include <cstddef>
#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace ocr::util {

template <typename T>
class ChunkedVector {
 public:
  static constexpr std::size_t kChunkShift = 6;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  ChunkedVector() = default;
  explicit ChunkedVector(T default_value)
      : default_(std::move(default_value)) {}

  ChunkedVector(const ChunkedVector& other)
      : default_(other.default_), size_(other.size_) {
    chunks_.resize(other.chunks_.size());
    for (std::size_t c = 0; c < other.chunks_.size(); ++c) {
      if (other.chunks_[c] != nullptr) {
        chunks_[c] = clone_chunk(*other.chunks_[c]);
      }
    }
  }
  ChunkedVector& operator=(const ChunkedVector& other) {
    if (this != &other) {
      ChunkedVector copy(other);
      *this = std::move(copy);
    }
    return *this;
  }
  ChunkedVector(ChunkedVector&&) noexcept = default;
  ChunkedVector& operator=(ChunkedVector&&) noexcept = default;

  /// Sizes the container for \p size indices and drops every chunk (all
  /// indices read as the default again).
  void reset(std::size_t size) {
    size_ = size;
    chunks_.clear();
    chunks_.resize((size + kChunkSize - 1) >> kChunkShift);
  }

  std::size_t size() const { return size_; }

  /// The value at \p i; a shared reference to the default when the chunk
  /// is absent. Pure read, never materializes.
  const T& at(std::size_t i) const {
    OCR_ASSERT(i < size_, "ChunkedVector index out of range");
    const Chunk* chunk = chunks_[i >> kChunkShift].get();
    return chunk == nullptr ? default_ : (*chunk)[i & (kChunkSize - 1)];
  }

  /// Mutable pointer to the value at \p i, nullptr when its chunk was
  /// never materialized (callers use this for skip-if-absent mutations).
  T* find(std::size_t i) {
    OCR_ASSERT(i < size_, "ChunkedVector index out of range");
    Chunk* chunk = chunks_[i >> kChunkShift].get();
    return chunk == nullptr ? nullptr : &(*chunk)[i & (kChunkSize - 1)];
  }
  const T* find(std::size_t i) const {
    OCR_ASSERT(i < size_, "ChunkedVector index out of range");
    const Chunk* chunk = chunks_[i >> kChunkShift].get();
    return chunk == nullptr ? nullptr : &(*chunk)[i & (kChunkSize - 1)];
  }

  /// The value at \p i, materializing its chunk (filled with the default)
  /// when absent.
  T& touch(std::size_t i) {
    OCR_ASSERT(i < size_, "ChunkedVector index out of range");
    std::unique_ptr<Chunk>& slot = chunks_[i >> kChunkShift];
    if (slot == nullptr) {
      slot = std::make_unique<Chunk>();
      slot->reserve(kChunkSize);
      for (std::size_t k = 0; k < kChunkSize; ++k) {
        slot->push_back(default_);
      }
    }
    return (*slot)[i & (kChunkSize - 1)];
  }

  bool chunk_present(std::size_t i) const {
    OCR_ASSERT(i < size_, "ChunkedVector index out of range");
    return chunks_[i >> kChunkShift] != nullptr;
  }

  std::size_t materialized_chunks() const {
    std::size_t n = 0;
    for (const auto& chunk : chunks_) n += chunk != nullptr ? 1 : 0;
    return n;
  }

  /// Calls \p fn(index, element) for every element of every materialized
  /// chunk, in ascending index order. Elements still holding the default
  /// are included (they are materialized). Const overload is a pure read.
  template <typename Fn>
  void for_each_present(Fn&& fn) const {
    for (std::size_t c = 0; c < chunks_.size(); ++c) {
      const Chunk* chunk = chunks_[c].get();
      if (chunk == nullptr) continue;
      const std::size_t base = c << kChunkShift;
      const std::size_t limit = chunk_limit(c);
      for (std::size_t k = 0; k < limit; ++k) fn(base + k, (*chunk)[k]);
    }
  }
  template <typename Fn>
  void for_each_present(Fn&& fn) {
    for (std::size_t c = 0; c < chunks_.size(); ++c) {
      Chunk* chunk = chunks_[c].get();
      if (chunk == nullptr) continue;
      const std::size_t base = c << kChunkShift;
      const std::size_t limit = chunk_limit(c);
      for (std::size_t k = 0; k < limit; ++k) fn(base + k, (*chunk)[k]);
    }
  }

  /// Bytes of directly-owned storage: the chunk directory plus every
  /// materialized chunk's element array. Heap owned *by* the elements
  /// (e.g. IntervalSet runs) is the caller's to add via for_each_present.
  std::size_t storage_bytes() const {
    std::size_t bytes = chunks_.capacity() * sizeof(std::unique_ptr<Chunk>);
    for (const auto& chunk : chunks_) {
      if (chunk != nullptr) {
        bytes += sizeof(Chunk) + chunk->capacity() * sizeof(T);
      }
    }
    return bytes;
  }

 private:
  using Chunk = std::vector<T>;

  std::unique_ptr<Chunk> clone_chunk(const Chunk& src) const {
    auto chunk = std::make_unique<Chunk>();
    *chunk = src;
    return chunk;
  }

  /// Valid element count of chunk \p c (the last chunk may be partial;
  /// its tail slots exist but are never exposed).
  std::size_t chunk_limit(std::size_t c) const {
    const std::size_t base = c << kChunkShift;
    return size_ - base < kChunkSize ? size_ - base : kChunkSize;
  }

  T default_{};
  std::size_t size_ = 0;
  std::vector<std::unique_ptr<Chunk>> chunks_;
};

}  // namespace ocr::util

#pragma once
/// \file profile.hpp
/// \brief Span-based wall-clock profiler with Chrome trace-event export.
///
/// A Span is an RAII region: constructed at stage/section entry, it
/// records {name, thread, nesting depth, start, duration} into the
/// owning Profiler's per-thread ring buffer when it is destroyed. The
/// profiler is off by default and the disabled cost is one relaxed
/// atomic load plus a branch — spans can therefore sit permanently in
/// hot-ish paths (per net, per stage; not per MBFS vertex).
///
///   OCR_SPAN("flow.levelB");                  // rest of scope
///   { util::Span s("engine.claim"); ... }     // explicit scope
///
/// Records are kept in fixed-capacity per-thread rings (oldest records
/// are overwritten past capacity and counted as dropped), merged at
/// export time. Export renders the Chrome trace-event JSON format
/// (`{"traceEvents":[...]}`), loadable at https://ui.perfetto.dev — see
/// docs/OBSERVABILITY.md for the walkthrough. A TraceSink can mirror its
/// events into the profiler as instant events (TraceSink::set_mirror),
/// so per-net trace records and spans share one timeline and one output
/// pipeline.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ocr::util {

class Profiler {
 public:
  /// One finished span or instant event, in profiler-relative time.
  struct Record {
    std::string name;
    std::uint32_t tid = 0;    ///< profiler-assigned, dense from 1
    std::uint32_t depth = 0;  ///< nesting level on its thread (0 = top)
    std::int64_t start_us = 0;
    std::int64_t dur_us = 0;  ///< -1 = instant event (no duration)
  };

  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// The process-wide profiler every OCR_SPAN uses.
  static Profiler& global();

  /// Starts capturing. \p ring_capacity is per thread, in records;
  /// re-enabling keeps existing records (clear() first for a fresh run).
  void enable(std::size_t ring_capacity = kDefaultCapacity);
  void disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records an instant event (a point on the timeline; Chrome renders a
  /// marker). No-op while disabled.
  void instant(std::string name);

  /// Drops all records (keeps enabled state and thread registrations).
  void clear();

  /// Merged snapshot of every thread's ring, ordered by start time.
  std::vector<Record> records() const;
  /// Total records lost to ring wrap-around across all threads.
  std::uint64_t dropped() const;

  /// Sum of span durations per name over depth-0 spans only — the
  /// per-stage wall times the run manifest reports (nested spans would
  /// double-count their parents).
  std::vector<std::pair<std::string, std::int64_t>> stage_totals() const;

  /// Chrome trace-event JSON: one complete ("ph":"X") event per span,
  /// one instant ("ph":"i") event per instant record.
  std::string to_chrome_json() const;
  bool write_chrome_json(const std::string& path) const;

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

 private:
  friend class Span;

  struct ThreadLog {
    std::uint32_t tid = 0;            ///< dense export id, assigned from 1
    std::thread::id owner;            ///< registering thread
    std::uint32_t depth = 0;          ///< open spans on this thread
    std::vector<Record> ring;
    std::uint64_t recorded = 0;       ///< total records ever written
  };

  /// This thread's log, created (under the mutex) on first use and
  /// cached thread-locally per profiler identity.
  ThreadLog* acquire_log();
  void push(ThreadLog* log, Record record);
  std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  std::atomic<bool> enabled_{false};
  const std::uint64_t id_;  ///< process-unique, for thread-local caching
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadLog>> logs_;
  std::size_t capacity_ = kDefaultCapacity;
};

/// RAII profiling span. When the owning profiler is disabled at
/// construction the span is inert (one branch); enablement mid-span is
/// ignored for that span.
class Span {
 public:
  explicit Span(const char* name, Profiler& profiler = Profiler::global())
      : profiler_(profiler) {
    if (!profiler_.enabled()) return;
    log_ = profiler_.acquire_log();
    name_ = name;
    depth_ = log_->depth++;
    start_us_ = profiler_.now_us();
  }

  ~Span() {
    if (log_ == nullptr) return;
    --log_->depth;
    Profiler::Record record;
    record.name = name_;
    record.depth = depth_;
    record.start_us = start_us_;
    record.dur_us = profiler_.now_us() - start_us_;
    profiler_.push(log_, std::move(record));
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Profiler& profiler_;
  Profiler::ThreadLog* log_ = nullptr;  ///< null = inert span
  const char* name_ = "";
  std::uint32_t depth_ = 0;
  std::int64_t start_us_ = 0;
};

#define OCR_SPAN_CONCAT_(a, b) a##b
#define OCR_SPAN_CONCAT(a, b) OCR_SPAN_CONCAT_(a, b)
/// Profiles the rest of the enclosing scope under \p name.
#define OCR_SPAN(name) \
  ::ocr::util::Span OCR_SPAN_CONCAT(ocr_span_, __LINE__)(name)

}  // namespace ocr::util

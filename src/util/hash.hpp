#pragma once
/// \file hash.hpp
/// \brief FNV-1a hashing for small plain-data keys.
///
/// Used by the path finder's candidate dedup: candidate polylines are
/// hashed and only equal-hash pairs are compared in full, turning the
/// O(n²) polyline-compare scan into O(n) hash probes with a verify
/// compare. FNV-1a is deterministic across platforms and runs, which the
/// routing determinism contract requires (no seeding by address or time).

#include <cstddef>
#include <cstdint>

namespace ocr::util {

inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/// Folds \p len bytes into \p seed (pass a previous result to chain).
inline std::uint64_t fnv1a_bytes(const void* data, std::size_t len,
                                 std::uint64_t seed = kFnv1aOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    seed ^= p[i];
    seed *= kFnv1aPrime;
  }
  return seed;
}

/// Folds one trivially-copyable value into \p seed.
template <typename T>
std::uint64_t fnv1a_value(const T& value,
                          std::uint64_t seed = kFnv1aOffset) {
  return fnv1a_bytes(&value, sizeof(T), seed);
}

}  // namespace ocr::util

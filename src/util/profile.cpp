#include "util/profile.hpp"

#include <algorithm>
#include <fstream>
#include <thread>

#include "util/trace.hpp"

namespace ocr::util {
namespace {

std::atomic<std::uint64_t> next_profiler_id{1};

}  // namespace

Profiler::Profiler()
    : id_(next_profiler_id.fetch_add(1, std::memory_order_relaxed)),
      origin_(std::chrono::steady_clock::now()) {}

Profiler::~Profiler() = default;

Profiler& Profiler::global() {
  static Profiler profiler;
  return profiler;
}

void Profiler::enable(std::size_t ring_capacity) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (ring_capacity != capacity_) {
      // A capacity change invalidates the rings' modulo indexing; start
      // the capture fresh.
      for (auto& log : logs_) {
        log->ring.clear();
        log->recorded = 0;
      }
      capacity_ = std::max<std::size_t>(1, ring_capacity);
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Profiler::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void Profiler::instant(std::string name) {
  if (!enabled()) return;
  ThreadLog* log = acquire_log();
  Record record;
  record.name = std::move(name);
  record.depth = log->depth;
  record.start_us = now_us();
  record.dur_us = -1;
  push(log, std::move(record));
}

void Profiler::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& log : logs_) {
    log->ring.clear();
    log->recorded = 0;
  }
}

Profiler::ThreadLog* Profiler::acquire_log() {
  // One-entry cache per thread: revalidated by profiler identity, so a
  // thread touching several profilers (tests) falls back to the scan.
  thread_local std::uint64_t cached_id = 0;
  thread_local ThreadLog* cached_log = nullptr;
  if (cached_id == id_) return cached_log;

  const std::lock_guard<std::mutex> lock(mu_);
  static thread_local const std::thread::id self = std::this_thread::get_id();
  for (auto& log : logs_) {
    if (log->owner == self) {
      cached_id = id_;
      cached_log = log.get();
      return cached_log;
    }
  }
  auto log = std::make_unique<ThreadLog>();
  log->tid = static_cast<std::uint32_t>(logs_.size() + 1);
  log->owner = self;
  logs_.push_back(std::move(log));
  cached_id = id_;
  cached_log = logs_.back().get();
  return cached_log;
}

void Profiler::push(ThreadLog* log, Record record) {
  record.tid = log->tid;
  const std::lock_guard<std::mutex> lock(mu_);
  if (log->ring.size() < capacity_) {
    log->ring.push_back(std::move(record));
  } else {
    log->ring[static_cast<std::size_t>(log->recorded % capacity_)] =
        std::move(record);
  }
  ++log->recorded;
}

std::vector<Profiler::Record> Profiler::records() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Record> out;
  for (const auto& log : logs_) {
    // Chronological unwrap: the oldest surviving record sits at the
    // ring's write index once it has wrapped.
    const std::size_t n = log->ring.size();
    const std::size_t start =
        log->recorded > n ? static_cast<std::size_t>(log->recorded % n) : 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(log->ring[(start + i) % n]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Record& a, const Record& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

std::uint64_t Profiler::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& log : logs_) {
    if (log->recorded > log->ring.size()) {
      dropped += log->recorded - log->ring.size();
    }
  }
  return dropped;
}

std::vector<std::pair<std::string, std::int64_t>> Profiler::stage_totals()
    const {
  std::vector<std::pair<std::string, std::int64_t>> totals;
  for (const Record& r : records()) {
    if (r.depth != 0 || r.dur_us < 0) continue;
    auto it = std::find_if(totals.begin(), totals.end(),
                           [&](const auto& t) { return t.first == r.name; });
    if (it == totals.end()) {
      totals.emplace_back(r.name, r.dur_us);
    } else {
      it->second += r.dur_us;
    }
  }
  return totals;
}

std::string Profiler::to_chrome_json() const {
  // Chrome trace-event format ("JSON Object Format" flavour): complete
  // events carry ph:"X" + dur, instants ph:"i" with thread scope. Loads
  // directly in https://ui.perfetto.dev or chrome://tracing.
  std::string out = "{\n\"traceEvents\": [";
  bool first = true;
  for (const Record& r : records()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"" + json_escape(r.name) + "\",";
    if (r.dur_us < 0) {
      out += "\"cat\":\"trace\",\"ph\":\"i\",\"s\":\"t\",";
    } else {
      out += "\"cat\":\"ocr\",\"ph\":\"X\",\"dur\":" +
             std::to_string(r.dur_us) + ",";
    }
    out += "\"ts\":" + std::to_string(r.start_us) +
           ",\"pid\":1,\"tid\":" + std::to_string(r.tid) + "}";
  }
  out += "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"dropped\": " +
         std::to_string(dropped()) + "}\n}\n";
  return out;
}

bool Profiler::write_chrome_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_json();
  return static_cast<bool>(out);
}

}  // namespace ocr::util

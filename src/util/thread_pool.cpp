#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>

#include "util/fault.hpp"

namespace ocr::util {

int ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int threads, const std::string& metrics_prefix) {
  if (!metrics_prefix.empty()) {
    MetricsRegistry& registry = MetricsRegistry::global();
    depth_gauge_ = &registry.gauge(metrics_prefix + ".queue_depth");
    active_gauge_ = &registry.gauge(metrics_prefix + ".active_workers");
    depth_gauge_->set(0);
    active_gauge_->set(0);
  }
  const int n = threads > 0 ? threads : hardware_threads();
  workers_.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    publish_gauges_locked();
  }
  work_cv_.notify_one();
}

std::size_t ThreadPool::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int ThreadPool::active() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

void ThreadPool::publish_gauges_locked() {
  if (depth_gauge_ != nullptr) {
    depth_gauge_->set(static_cast<long long>(queue_.size()));
  }
  if (active_gauge_ != nullptr) active_gauge_->set(active_);
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::vector<Status> ThreadPool::task_failures() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

Status ThreadPool::first_failure() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return failures_.empty() ? Status() : failures_.front();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      publish_gauges_locked();
    }
    // Task boundary: an escaping exception must not tear down the
    // process (joining a pool while a task throws used to terminate).
    // It becomes a Status the owner can read after wait_idle().
    Status failure;
    try {
      if (OCR_FAULT("util.pool.task")) {
        throw std::runtime_error("injected pool-task fault");
      }
      task();
    } catch (const std::exception& e) {
      failure = Status::task_failed(e.what()).with_stage("thread-pool");
    } catch (...) {
      failure =
          Status::task_failed("non-standard exception").with_stage(
              "thread-pool");
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!failure.ok()) failures_.push_back(std::move(failure));
      --active_;
      publish_gauges_locked();
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace ocr::util

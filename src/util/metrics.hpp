#pragma once
/// \file metrics.hpp
/// \brief Thread-safe metrics registry: named counters, gauges and
/// fixed-bucket histograms with cheap atomic hot-path updates.
///
/// This is the single accumulation point for run-level observability —
/// the counters that used to be hand-threaded through EngineStats and
/// FlowMetrics all land here as well, so one snapshot serializes every
/// number a run produced (`ocr_route --metrics-json`, the bench
/// manifests, the run manifest).
///
/// Usage pattern: resolve instruments once (registration takes a mutex),
/// update them lock-free from any thread (relaxed atomics — totals are
/// exact, cross-instrument ordering is not), snapshot at the end.
///
///   auto& commits = MetricsRegistry::global().counter("engine.commits");
///   commits.add();                       // hot path: one relaxed fetch_add
///   MetricsSnapshot s = MetricsRegistry::global().snapshot();
///   s.write_json_file("metrics.json");
///
/// Instruments live as long as their registry; references returned by
/// counter()/gauge()/histogram() are stable (node-based storage), so hot
/// loops may cache them across the whole run. reset() zeroes values but
/// keeps every registered instrument alive.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ocr::util {

/// Monotonically increasing total. add() is a relaxed atomic fetch_add.
class Counter {
 public:
  void add(long long delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  long long value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

/// Last-write-wins scalar (thread counts, completion permille, ...).
class Gauge {
 public:
  void set(long long value) {
    value_.store(value, std::memory_order_relaxed);
  }
  /// Raises the gauge to \p value if it is below it (atomic max) — for
  /// high-water marks reported independently by several owners (e.g. one
  /// search arena per worker thread).
  void set_max(long long value) {
    long long cur = value_.load(std::memory_order_relaxed);
    while (cur < value && !value_.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }
  long long value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

/// Fixed-boundary histogram. Bucket i counts observations v with
/// bounds[i-1] < v <= bounds[i] (first bucket: v <= bounds[0]); one
/// implicit overflow bucket counts v > bounds.back(). Boundaries are
/// fixed at registration; observe() is a binary search plus one relaxed
/// fetch_add, safe from any thread.
class Histogram {
 public:
  explicit Histogram(std::vector<long long> bounds);

  void observe(long long value);

  const std::vector<long long>& bounds() const { return bounds_; }
  /// Count in bucket \p i, i in [0, bounds().size()] — the last index is
  /// the overflow bucket.
  long long bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  long long count() const { return count_.load(std::memory_order_relaxed); }
  long long sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<long long> bounds_;  // strictly increasing upper bounds
  std::vector<std::atomic<long long>> counts_;  // bounds_.size() + 1
  std::atomic<long long> count_{0};
  std::atomic<long long> sum_{0};
};

/// Point-in-time copy of every registered instrument, detached from the
/// registry (safe to serialize while the run keeps counting).
struct MetricsSnapshot {
  struct HistogramValue {
    std::string name;
    std::vector<long long> bounds;
    std::vector<long long> counts;  ///< bounds.size() + 1 (overflow last)
    long long count = 0;
    long long sum = 0;
  };

  std::vector<std::pair<std::string, long long>> counters;
  std::vector<std::pair<std::string, long long>> gauges;
  std::vector<HistogramValue> histograms;

  /// Looks up a counter/gauge by name; returns \p missing when absent.
  long long counter_value(std::string_view name, long long missing = -1) const;
  long long gauge_value(std::string_view name, long long missing = -1) const;

  /// `{"counters":{...},"gauges":{...},"histograms":{...}}`, names sorted.
  std::string to_json() const;
  bool write_json_file(const std::string& path) const;
};

/// Thread-safe instrument registry. Lookups by name take a mutex and
/// return a stable reference; repeated lookups of the same name return
/// the same instrument. Distinct kinds share a namespace per kind only —
/// a counter and a gauge may use the same name (don't).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by the flows, the engine and the CLI.
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Registers a histogram with the given strictly-increasing bucket
  /// upper bounds; on a repeat lookup \p bounds is ignored and the
  /// existing instrument is returned.
  Histogram& histogram(std::string_view name, std::vector<long long> bounds);

  MetricsSnapshot snapshot() const;
  /// Zeroes every instrument but keeps registrations (and the references
  /// callers hold) valid.
  void reset();

 private:
  template <typename T>
  struct Entry {
    std::string name;
    std::unique_ptr<T> instrument;
  };

  mutable std::mutex mu_;
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
};

}  // namespace ocr::util

#pragma once
/// \file fault.hpp
/// \brief Deterministic fault-injection registry.
///
/// Production code marks failure-capable points with `OCR_FAULT("site")`
/// (or `OCR_FAULT_KEY("site", key)` where the call order is thread
/// dependent but a stable key exists, e.g. a net's ordering position).
/// The macro is a single relaxed atomic load while no faults are
/// configured, so shipping the sites costs nothing.
///
/// Tests and CI arm sites through a spec string (programmatically or via
/// the `OCR_FAULTS` environment variable):
///
/// ```
/// spec    := entry (';' entry)*
/// entry   := 'seed=' N            seed for probabilistic triggers
///          | site '=' trigger
/// trigger := '*'                  every hit
///          | N                    exactly the Nth hit (1-based)
///          | N '+'                the Nth hit and every one after
///          | '~' P                each hit with probability P (seeded,
///                                 deterministic per site + hit index)
///          | '@' K ('|' K)*       hits whose key matches (key-based
///                                 sites only; counter hits never match)
/// ```
///
/// Example: `OCR_FAULTS="engine.commit=2;io.layout.line=@7;seed=3"`.
/// Every decision is a pure function of (spec, site, hit index, key), so
/// a run with a fixed spec is reproducible at any thread count for
/// key-based sites, and on the single-threaded committer/parser paths
/// for counter-based ones.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace ocr::util {

class FaultRegistry {
 public:
  /// Process-wide registry the OCR_FAULT macros consult.
  static FaultRegistry& global();

  /// Second process-wide registry for service-layer sites (journal
  /// append, worker kill, socket drop, recovery replay). Kept separate
  /// from global() because the job executor re-arms global() from each
  /// job's `faults` spec per attempt — service chaos plans must survive
  /// that churn, persisting hit counters across attempts so triggers
  /// like `service.worker.fail=@0` ("kill every first attempt") work.
  /// Armed once at daemon startup via `--service-faults` /
  /// `OCR_SERVICE_FAULTS`; consulted by the OCR_SERVICE_FAULT macros.
  static FaultRegistry& service();

  /// Replaces the configuration with \p spec (see file comment) and
  /// resets all hit counters and the fired log. Empty spec = disarm.
  Status configure(const std::string& spec);

  /// configure() from the OCR_FAULTS environment variable (missing or
  /// empty variable = disarm).
  Status configure_from_env();

  /// Disarms every site and clears counters and the fired log.
  void clear();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Should the Nth hit of \p site fail? Counter-based: every call
  /// advances the site's hit counter.
  bool should_fail(const char* site) { return hit(site, kNoKey); }

  /// Keyed variant for sites whose call order is thread dependent: '@'
  /// triggers match \p key; counter triggers still see the hit.
  bool should_fail(const char* site, long long key) {
    return hit(site, key);
  }

  /// Total faults fired since the last configure()/clear().
  long long fired_count() const;

  /// Human-readable log of fired faults, in firing order.
  std::vector<std::string> fired_report() const;

 private:
  static constexpr long long kNoKey = -1;

  struct Trigger {
    bool always = false;
    long long nth = 0;         ///< fire on this hit (1-based), 0 = unused
    bool from_nth = false;     ///< nth and onward
    double probability = -1.0; ///< seeded per-hit probability, <0 = unused
    std::vector<long long> keys;  ///< '@' key matches
  };

  struct Site {
    Trigger trigger;
    long long hits = 0;
    long long fired = 0;
  };

  bool hit(const char* site, long long key);
  bool decide(const Site& site, long long hit_index, long long key,
              const std::string& name) const;

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::uint64_t seed_ = 1;
  std::map<std::string, Site> sites_;
  std::vector<std::string> fired_;
};

}  // namespace ocr::util

/// True when the registry says this hit of \p site must fail. Zero-cost
/// (one relaxed load) while no faults are configured.
#define OCR_FAULT(site)                                       \
  (::ocr::util::FaultRegistry::global().armed() &&            \
   ::ocr::util::FaultRegistry::global().should_fail((site)))

#define OCR_FAULT_KEY(site, key)                                       \
  (::ocr::util::FaultRegistry::global().armed() &&                     \
   ::ocr::util::FaultRegistry::global().should_fail((site), (key)))

/// Service-layer variants consulting FaultRegistry::service() — armed by
/// the daemon's chaos plan, untouched by per-job fault arming.
#define OCR_SERVICE_FAULT(site)                             \
  (::ocr::util::FaultRegistry::service().armed() &&         \
   ::ocr::util::FaultRegistry::service().should_fail((site)))

#define OCR_SERVICE_FAULT_KEY(site, key)                            \
  (::ocr::util::FaultRegistry::service().armed() &&                 \
   ::ocr::util::FaultRegistry::service().should_fail((site), (key)))

#pragma once
/// \file arena.hpp
/// \brief Bump allocator with per-connect reset for search-scratch data.
///
/// One MBFS connect allocates thousands of short-lived objects — visited
/// interval overflow lists, candidate segment arrays — all of which die
/// together the moment the connect returns a path. A general-purpose
/// allocator pays malloc/free per object and scatters them across the
/// heap; the Arena hands out pointers by bumping a cursor through large
/// blocks and releases *everything* in O(1) at `reset()`. Blocks are kept
/// across resets, so a warmed-up workspace performs zero heap calls per
/// connect in steady state.
///
/// Allocations are trivially-destructible raw storage: the arena never
/// runs destructors. Callers that grow an array re-allocate and copy
/// (`grow_array`); the abandoned old storage is reclaimed wholesale at
/// the next reset. `reset()` also advances an epoch counter so holders of
/// arena pointers (e.g. generation-stamped visit slots) can detect that
/// their storage is from a previous connect and must not be dereferenced.
///
/// Not thread-safe: each SearchWorkspace owns its own Arena, matching the
/// engine's one-workspace-per-worker discipline.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

namespace ocr::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized, aligned storage for \p n objects of T. T must be
  /// trivially destructible — the arena never destroys.
  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is reclaimed without running destructors");
    if (n == 0) return nullptr;
    return static_cast<T*>(alloc_bytes(n * sizeof(T), alignof(T)));
  }

  /// Moves an array of \p count live elements into fresh storage of
  /// \p new_cap elements. The old storage is simply abandoned (reclaimed
  /// at the next reset) — the bump design makes in-place growth possible
  /// only for the most recent allocation, which is not worth tracking.
  template <typename T>
  T* grow_array(const T* old_data, std::size_t count, std::size_t new_cap) {
    OCR_ASSERT(count <= new_cap, "Arena grow_array shrinking");
    T* fresh = alloc_array<T>(new_cap);
    for (std::size_t i = 0; i < count; ++i) fresh[i] = old_data[i];
    return fresh;
  }

  /// Releases every allocation at once and advances the epoch. Block
  /// storage is retained, so steady-state resets touch no heap.
  void reset() {
    ++epoch_;
    cursor_ = 0;
    block_index_ = 0;
    used_bytes_ = 0;
  }

  /// Monotonic counter bumped by reset(); pointers handed out under a
  /// different epoch than `epoch()` are dangling by contract.
  std::uint64_t epoch() const { return epoch_; }

  /// Bytes handed out since the last reset (ignoring alignment padding
  /// and block-tail waste — a utilization signal, not an exact map).
  std::size_t used_bytes() const { return used_bytes_; }

  /// Largest used_bytes() observed across the arena's lifetime.
  std::size_t high_water_bytes() const { return high_water_; }

  /// Total bytes of block storage currently owned (survives reset).
  std::size_t reserved_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* alloc_bytes(std::size_t bytes, std::size_t align) {
    while (true) {
      if (block_index_ < blocks_.size()) {
        Block& b = blocks_[block_index_];
        std::size_t aligned = (cursor_ + align - 1) & ~(align - 1);
        if (aligned + bytes <= b.size) {
          cursor_ = aligned + bytes;
          used_bytes_ += bytes;
          if (used_bytes_ > high_water_) high_water_ = used_bytes_;
          return b.data.get() + aligned;
        }
        ++block_index_;
        cursor_ = 0;
        continue;
      }
      Block b;
      b.size = bytes > block_bytes_ ? bytes : block_bytes_;
      b.data = std::make_unique<std::byte[]>(b.size);
      blocks_.push_back(std::move(b));
    }
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t block_index_ = 0;
  std::size_t cursor_ = 0;
  std::size_t used_bytes_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t epoch_ = 1;
};

}  // namespace ocr::util

#pragma once
/// \file thread_pool.hpp
/// \brief A fixed-size worker pool with a FIFO task queue.
///
/// The routing engine's ParallelSearch submits one long-running speculation
/// loop per worker; other callers can use it as a conventional task pool.
/// Tasks are std::function<void()>. An exception escaping a task is caught
/// at the task boundary and surfaced as a util::Status through
/// task_failures() — it never terminates the process, and the pool keeps
/// serving the queue. The destructor drains the queue: already-submitted
/// tasks run to completion before join.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.hpp"
#include "util/status.hpp"

namespace ocr::util {

class ThreadPool {
 public:
  /// Spawns \p threads workers; \p threads <= 0 uses hardware_threads().
  /// A non-empty \p metrics_prefix publishes `<prefix>.queue_depth` and
  /// `<prefix>.active_workers` gauges into the global MetricsRegistry,
  /// updated on every queue/activity transition.
  explicit ThreadPool(int threads, const std::string& metrics_prefix = "");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues \p task; runs on some worker in FIFO order.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// Statuses of tasks that threw, in completion order. A non-empty list
  /// means some submitted work did not finish; callers decide whether
  /// that is fatal (the engine treats it as a degraded run).
  std::vector<Status> task_failures() const;

  /// First failure, or OK when every task completed.
  Status first_failure() const;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Tasks submitted but not yet picked up by a worker.
  std::size_t queue_depth() const;

  /// Workers currently running a task.
  int active() const;

  /// std::thread::hardware_concurrency with a floor of 1.
  static int hardware_threads();

 private:
  void worker_loop();
  /// Pushes queue/active into the gauges; call with mu_ held.
  void publish_gauges_locked();

  Gauge* depth_gauge_ = nullptr;   // null when no metrics prefix
  Gauge* active_gauge_ = nullptr;  // null when no metrics prefix
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks/stop
  std::condition_variable idle_cv_;   // wait_idle waits for quiescence
  std::deque<std::function<void()>> queue_;
  std::vector<Status> failures_;
  int active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ocr::util

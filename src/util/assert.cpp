#include "util/assert.hpp"

#include <cstdio>

namespace ocr::util {

void assert_fail(const char* expr, const char* file, int line,
                 const char* msg) {
  std::fprintf(stderr, "OCR_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace ocr::util

#pragma once
/// \file status.hpp
/// \brief Recoverable-error taxonomy for library code.
///
/// `Status` carries *recoverable* outcomes — malformed input, an
/// unroutable net, a cancelled search, an exhausted budget — through
/// return values instead of exceptions or aborts. `OCR_ASSERT` remains
/// reserved for programming contracts (see assert.hpp); everything a
/// caller could reasonably handle travels as a Status.
///
/// A Status is a kind plus optional context: the pipeline stage that
/// produced it, the net it concerns, and (for parsers) a line/column
/// position. `StatusOr<T>` is the value-or-status composite used by
/// factory-style functions.

#include <optional>
#include <string>
#include <utility>

#include "util/assert.hpp"

namespace ocr::util {

/// Failure taxonomy. Stable small set: callers switch on it to pick a
/// degradation rung, and tools map it to exit codes.
enum class StatusKind {
  kOk = 0,
  kInvalidArgument,    ///< caller passed something unusable
  kParseError,         ///< malformed input text (line/column set)
  kUnroutable,         ///< no path exists in the search space
  kCancelled,          ///< a cancellation token fired mid-operation
  kDeadlineExceeded,   ///< wall-clock deadline hit (watchdog)
  kBudgetExhausted,    ///< per-net effort budget spent
  kFaultInjected,      ///< a registered fault fired (tests/CI only)
  kTaskFailed,         ///< a pool task threw; exception captured
  kIoError,            ///< file system failure
  kInternal,           ///< invariant violated but recoverable in context
};

/// Short lower-case tag for messages and trace events ("parse", ...).
const char* status_kind_name(StatusKind kind);

class [[nodiscard]] Status {
 public:
  /// Default = OK.
  Status() = default;
  Status(StatusKind kind, std::string message)
      : kind_(kind), message_(std::move(message)) {}

  static Status invalid_argument(std::string msg) {
    return Status(StatusKind::kInvalidArgument, std::move(msg));
  }
  static Status parse_error(std::string msg) {
    return Status(StatusKind::kParseError, std::move(msg));
  }
  static Status unroutable(std::string msg) {
    return Status(StatusKind::kUnroutable, std::move(msg));
  }
  static Status cancelled(std::string msg) {
    return Status(StatusKind::kCancelled, std::move(msg));
  }
  static Status deadline_exceeded(std::string msg) {
    return Status(StatusKind::kDeadlineExceeded, std::move(msg));
  }
  static Status budget_exhausted(std::string msg) {
    return Status(StatusKind::kBudgetExhausted, std::move(msg));
  }
  static Status fault_injected(std::string msg) {
    return Status(StatusKind::kFaultInjected, std::move(msg));
  }
  static Status task_failed(std::string msg) {
    return Status(StatusKind::kTaskFailed, std::move(msg));
  }
  static Status io_error(std::string msg) {
    return Status(StatusKind::kIoError, std::move(msg));
  }
  static Status internal(std::string msg) {
    return Status(StatusKind::kInternal, std::move(msg));
  }

  bool ok() const { return kind_ == StatusKind::kOk; }
  StatusKind kind() const { return kind_; }
  const std::string& message() const { return message_; }

  /// Context builders (chainable; each returns *this by value semantics
  /// of the fluent style used at call sites).
  Status& with_stage(std::string stage) {
    stage_ = std::move(stage);
    return *this;
  }
  Status& with_net(int net_id) {
    net_id_ = net_id;
    return *this;
  }
  Status& at(int line, int column = 0) {
    line_ = line;
    column_ = column;
    return *this;
  }

  const std::string& stage() const { return stage_; }
  /// Net id the failure concerns, or -1.
  int net() const { return net_id_; }
  /// 1-based source line for parse errors, or 0.
  int line() const { return line_; }
  /// 1-based source column for parse errors, or 0.
  int column() const { return column_; }

  /// "[kind] stage: line L:C: net N: message" with absent parts elided.
  std::string to_string() const;

  friend bool operator==(const Status&, const Status&) = default;

 private:
  StatusKind kind_ = StatusKind::kOk;
  std::string message_;
  std::string stage_;
  int net_id_ = -1;
  int line_ = 0;
  int column_ = 0;
};

/// Value-or-Status. A StatusOr either holds a T (status is OK) or a
/// non-OK Status; accessing the value of a failed StatusOr asserts.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    OCR_ASSERT(!status_.ok(), "StatusOr built from OK status needs a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    OCR_ASSERT(ok(), "value() on failed StatusOr");
    return *value_;
  }
  T& value() & {
    OCR_ASSERT(ok(), "value() on failed StatusOr");
    return *value_;
  }
  T&& value() && {
    OCR_ASSERT(ok(), "value() on failed StatusOr");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ocr::util

#include "util/trace.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/profile.hpp"
#include "util/str.hpp"

namespace ocr::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string TraceValue::to_json() const {
  switch (kind_) {
    case Kind::kBool:
      return int_ != 0 ? "true" : "false";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kDouble:
      // JSON has no NaN/Inf; clamp to null.
      if (!std::isfinite(double_)) return "null";
      return format("%.6g", double_);
    case Kind::kString:
      return "\"" + json_escape(str_) + "\"";
  }
  return "null";
}

std::string TraceEvent::to_json() const {
  std::string out = "{\"kind\":\"" + json_escape(kind) + "\"";
  for (const auto& [key, value] : fields) {
    out += ",\"" + json_escape(key) + "\":" + value.to_json();
  }
  out += "}";
  return out;
}

void TraceSink::record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (mirror_ != nullptr) mirror_->instant(event.kind);
  events_.push_back(std::move(event));
}

void TraceSink::set_mirror(Profiler* profiler) {
  const std::lock_guard<std::mutex> lock(mu_);
  mirror_ = profiler;
}

std::size_t TraceSink::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceSink::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string TraceSink::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out = "[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out += i == 0 ? "\n  " : ",\n  ";
    out += events_[i].to_json();
  }
  out += "\n]\n";
  return out;
}

bool TraceSink::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

void TraceSink::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

}  // namespace ocr::util

#include "util/mem.hpp"

#include <sys/resource.h>

namespace ocr::util {

std::int64_t peak_rss_kb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes (macOS uses bytes; this tree
  // targets the Linux CI image, so no conversion).
  return static_cast<std::int64_t>(usage.ru_maxrss);
}

}  // namespace ocr::util

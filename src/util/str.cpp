#include "util/str.hpp"

#include <cstdarg>
#include <cstdio>

namespace ocr::util {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::string with_commas(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace ocr::util

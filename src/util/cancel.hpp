#pragma once
/// \file cancel.hpp
/// \brief Cooperative cancellation for long-running routing loops.
///
/// A `CancelSource` owns the cancellation state; `CancelToken`s are cheap
/// shared views handed down through options structs into the MBFS inner
/// loops. Cancellation is cooperative and *sticky*: the first cancel()
/// wins, later calls are ignored, and a cancelled token never resets.
///
/// Tokens also carry a progress counter that search loops bump as they
/// examine vertices; the engine watchdog reads it to distinguish a slow
/// run (progress advancing) from a stuck one (counter frozen).
///
/// Determinism note: a token that never fires is free of side effects on
/// routing results — checks are pure reads — so cancelled()-guarded code
/// stays bit-identical to unguarded code until a cancel actually happens.

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>

#include "util/status.hpp"

namespace ocr::util {

namespace internal {
struct CancelState {
  std::atomic<bool> cancelled{false};
  std::atomic<long long> progress{0};
  std::mutex mu;              // guards reason
  Status reason;              // first cancel() wins
};
}  // namespace internal

/// Read-side view of a CancelSource. Copyable, cheap, thread-safe.
class CancelToken {
 public:
  /// A token that can never fire (the default for all options structs).
  CancelToken() = default;

  bool valid() const { return state_ != nullptr; }

  bool cancelled() const {
    return state_ != nullptr &&
           state_->cancelled.load(std::memory_order_relaxed);
  }

  /// Why the source cancelled; OK status while not cancelled.
  Status reason() const;

  /// Bumps the shared progress counter (relaxed; watchdog heartbeat).
  void note_progress(long long amount = 1) const {
    if (state_ != nullptr) {
      state_->progress.fetch_add(amount, std::memory_order_relaxed);
    }
  }

  long long progress() const {
    return state_ == nullptr
               ? 0
               : state_->progress.load(std::memory_order_relaxed);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<internal::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::CancelState> state_;
};

/// Write-side owner. Create one per run; hand token() to workers.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<internal::CancelState>()) {}

  CancelToken token() const { return CancelToken(state_); }

  /// Requests cancellation with \p reason. First call wins; later calls
  /// are no-ops so the original cause is preserved.
  void cancel(Status reason);

  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_relaxed);
  }

  Status reason() const { return token().reason(); }
  long long progress() const { return token().progress(); }

 private:
  std::shared_ptr<internal::CancelState> state_;
};

}  // namespace ocr::util

#pragma once
/// \file str.hpp
/// \brief Small string helpers used by reports and SVG emission.

#include <string>
#include <string_view>
#include <vector>

namespace ocr::util {

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits \p text on \p sep; keeps empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Joins \p parts with \p sep between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if \p text begins with \p prefix.
bool starts_with(std::string_view text, std::string_view prefix);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Formats an integer with thousands separators ("1,874,880") as the
/// paper's tables print areas.
std::string with_commas(long long value);

}  // namespace ocr::util

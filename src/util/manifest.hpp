#pragma once
/// \file manifest.hpp
/// \brief Run manifest: one machine-readable JSON record of what a tool
/// run was — configuration, provenance (version, git revision, seed),
/// per-stage wall times, the metrics snapshot and the outcome.
///
/// Producers: `ocr_route --manifest out.json`, `bench_mbfs --json` and
/// `bench_scaling --json` (which write `*.manifest.json` next to their
/// result files). CI uploads the manifests as artifacts so any captured
/// number can be traced back to the exact configuration that produced
/// it. Schema documented in docs/OBSERVABILITY.md.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/metrics.hpp"
#include "util/profile.hpp"
#include "util/trace.hpp"

namespace ocr::util {

class RunManifest {
 public:
  /// \p tool names the producer ("ocr_route", "bench_mbfs", ...).
  explicit RunManifest(std::string tool);

  /// Configuration entries (CLI flags, resolved options). Insertion
  /// order is preserved in the output.
  void add_config(std::string key, TraceValue value);
  /// Provenance entries beyond the built-in version/git revision
  /// (instance name, seed, host notes).
  void add_provenance(std::string key, TraceValue value);
  /// Outcome entries (status string, exit code, problem counts).
  void add_outcome(std::string key, TraceValue value);

  /// Records one stage wall time explicitly (for tools that time their
  /// stages by hand rather than through the profiler).
  void add_stage_us(std::string stage, std::int64_t wall_us);
  /// Imports every depth-0 span total from \p profiler as stage times.
  void capture_stages(const Profiler& profiler);
  /// Embeds a snapshot of \p registry as the manifest's "metrics" section.
  void capture_metrics(const MetricsRegistry& registry);

  /// The manifest as one JSON object.
  std::string to_json() const;
  bool write_json_file(const std::string& path) const;

 private:
  std::string tool_;
  std::string created_; ///< ISO-8601 UTC wall-clock time of construction
  std::vector<std::pair<std::string, TraceValue>> config_;
  std::vector<std::pair<std::string, TraceValue>> provenance_;
  std::vector<std::pair<std::string, TraceValue>> outcome_;
  std::vector<std::pair<std::string, std::int64_t>> stages_us_;
  std::string metrics_json_;  ///< pre-rendered object, empty = absent
};

/// The source revision baked in at configure time (OCR_GIT_REVISION),
/// or "unknown" when the build was not configured from a git checkout.
const char* build_git_revision();
/// The project version (CMake PROJECT_VERSION), or "unknown".
const char* build_version();

}  // namespace ocr::util

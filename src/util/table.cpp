#include "util/table.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ocr::util {

void TextTable::set_header(std::vector<std::string> header) {
  OCR_ASSERT(!header.empty(), "table header must have at least one column");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  OCR_ASSERT(row.size() == header_.size(),
             "row column count must match header");
  rows_.push_back(Row{std::move(row), pending_separator_});
  pending_separator_ = false;
}

void TextTable::add_separator() { pending_separator_ = true; }

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  const auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " ";
      line += cells[c];
      line.append(width[c] - cells[c].size(), ' ');
      line += " |";
    }
    line += "\n";
    return line;
  };
  const auto render_rule = [&]() {
    std::string line = "+";
    for (std::size_t c = 0; c < width.size(); ++c) {
      line.append(width[c] + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };

  std::string out = render_rule();
  out += render_line(header_);
  out += render_rule();
  for (const Row& row : rows_) {
    if (row.separator) out += render_rule();
    out += render_line(row.cells);
  }
  out += render_rule();
  return out;
}

}  // namespace ocr::util

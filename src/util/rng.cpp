#include "util/rng.hpp"

#include <cmath>

namespace ocr::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // xoshiro requires a nonzero state; splitmix64 of any seed gives one with
  // overwhelming probability, but guard against the pathological case.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  OCR_ASSERT(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform01() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  OCR_ASSERT(lo < hi, "uniform_real requires lo < hi");
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::index(std::size_t size) {
  OCR_ASSERT(size > 0, "index requires a non-empty container");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

}  // namespace ocr::util

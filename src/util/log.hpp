#pragma once
/// \file log.hpp
/// \brief Minimal leveled logging to stderr.
///
/// The routers report progress and diagnostics through this sink so that
/// library users can silence or redirect them. Logging is process-global
/// and cheap when disabled (level check before formatting).

#include <sstream>
#include <string>

namespace ocr::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted. Defaults to kWarn so
/// library use is quiet; benches and examples raise it to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one formatted line (used by the OCR_LOG macro).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace ocr::util

#define OCR_LOG(level)                                       \
  if (static_cast<int>(level) <                              \
      static_cast<int>(::ocr::util::log_level())) {          \
  } else                                                     \
    ::ocr::util::detail::LogMessage(level).stream()

#define OCR_DEBUG() OCR_LOG(::ocr::util::LogLevel::kDebug)
#define OCR_INFO() OCR_LOG(::ocr::util::LogLevel::kInfo)
#define OCR_WARN() OCR_LOG(::ocr::util::LogLevel::kWarn)
#define OCR_ERROR() OCR_LOG(::ocr::util::LogLevel::kError)

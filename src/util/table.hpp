#pragma once
/// \file table.hpp
/// \brief Aligned plain-text table rendering for the benchmark harnesses.
///
/// Every bench binary regenerates one of the paper's tables; TextTable
/// renders them with the familiar `| col | col |` layout so diffing
/// successive runs is easy.

#include <string>
#include <vector>

namespace ocr::util {

/// A simple column-aligned text table.
class TextTable {
 public:
  /// Sets the header row. Column count is fixed by the header.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal separator line before the next added row.
  void add_separator();

  /// Renders the table; each line is terminated with '\n'.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace ocr::util

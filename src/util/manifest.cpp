#include "util/manifest.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>

namespace ocr::util {
namespace {

std::string iso8601_utc_now() {
  const std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string render_section(
    const std::vector<std::pair<std::string, TraceValue>>& entries) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : entries) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + json_escape(key) + "\": " + value.to_json();
  }
  out += first ? "}" : "\n  }";
  return out;
}

}  // namespace

const char* build_git_revision() {
#ifdef OCR_GIT_REVISION
  return OCR_GIT_REVISION;
#else
  return "unknown";
#endif
}

const char* build_version() {
#ifdef OCR_VERSION
  return OCR_VERSION;
#else
  return "unknown";
#endif
}

RunManifest::RunManifest(std::string tool)
    : tool_(std::move(tool)), created_(iso8601_utc_now()) {}

void RunManifest::add_config(std::string key, TraceValue value) {
  config_.emplace_back(std::move(key), std::move(value));
}

void RunManifest::add_provenance(std::string key, TraceValue value) {
  provenance_.emplace_back(std::move(key), std::move(value));
}

void RunManifest::add_outcome(std::string key, TraceValue value) {
  outcome_.emplace_back(std::move(key), std::move(value));
}

void RunManifest::add_stage_us(std::string stage, std::int64_t wall_us) {
  stages_us_.emplace_back(std::move(stage), wall_us);
}

void RunManifest::capture_stages(const Profiler& profiler) {
  for (auto& [name, us] : profiler.stage_totals()) {
    stages_us_.emplace_back(name, us);
  }
}

void RunManifest::capture_metrics(const MetricsRegistry& registry) {
  metrics_json_ = registry.snapshot().to_json();
  // Snapshot JSON ends with a newline for file use; trim for embedding.
  while (!metrics_json_.empty() && metrics_json_.back() == '\n') {
    metrics_json_.pop_back();
  }
}

std::string RunManifest::to_json() const {
  std::string out = "{\n  \"tool\": \"" + json_escape(tool_) + "\",\n";
  out += "  \"created\": \"" + json_escape(created_) + "\",\n";
  out += "  \"provenance\": {";
  out += "\n    \"version\": \"" + json_escape(build_version()) + "\",";
  out += "\n    \"git_revision\": \"" + json_escape(build_git_revision()) +
         "\"";
  for (const auto& [key, value] : provenance_) {
    out += ",\n    \"" + json_escape(key) + "\": " + value.to_json();
  }
  out += "\n  },\n";
  out += "  \"config\": " + render_section(config_) + ",\n";
  out += "  \"outcome\": " + render_section(outcome_) + ",\n";
  out += "  \"stages_us\": {";
  bool first = true;
  for (const auto& [stage, us] : stages_us_) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + json_escape(stage) + "\": " + std::to_string(us);
  }
  out += first ? "}" : "\n  }";
  if (!metrics_json_.empty()) {
    out += ",\n  \"metrics\": " + metrics_json_;
  }
  out += "\n}\n";
  return out;
}

bool RunManifest::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace ocr::util

#pragma once
/// \file assert.hpp
/// \brief Contract-checking macros used across the library.
///
/// `OCR_ASSERT` guards programming contracts (preconditions, invariants).
/// It is active in all build types: routing code is full of subtle index
/// arithmetic and silently corrupted routing state is far more expensive
/// than the check. Recoverable conditions (unroutable net, infeasible
/// channel) are *not* asserted; they are reported through status returns.

#include <cstdlib>

namespace ocr::util {

/// Prints a diagnostic and aborts. Used by the OCR_ASSERT macro; exposed
/// so tests can exercise the formatting path.
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const char* msg);

}  // namespace ocr::util

#define OCR_ASSERT(expr, msg)                                         \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::ocr::util::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                 \
  } while (false)

/// Marks unreachable control flow; aborts if reached.
#define OCR_UNREACHABLE(msg) \
  ::ocr::util::assert_fail("unreachable", __FILE__, __LINE__, (msg))

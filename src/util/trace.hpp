#pragma once
/// \file trace.hpp
/// \brief Structured per-event tracing emitted as JSON.
///
/// The routing engine records one event per net (search effort, window
/// growths, speculation retries, queue wait) so scaling studies can see
/// *where* wall-clock goes, not just how much. A TraceSink is thread-safe:
/// worker threads record concurrently and the owner serializes the event
/// log to a JSON array afterwards. Tracing is opt-in — code paths hold a
/// `TraceSink*` and skip all event construction when it is null, keeping
/// the disabled overhead to a pointer test.

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ocr::util {

class Profiler;

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& s);

/// One JSON-serializable scalar.
class TraceValue {
 public:
  TraceValue(bool v) : kind_(Kind::kBool), int_(v ? 1 : 0) {}
  TraceValue(int v) : kind_(Kind::kInt), int_(v) {}
  TraceValue(long v) : kind_(Kind::kInt), int_(v) {}
  TraceValue(long long v) : kind_(Kind::kInt), int_(v) {}
  TraceValue(unsigned long long v)
      : kind_(Kind::kInt), int_(static_cast<long long>(v)) {}
  TraceValue(double v) : kind_(Kind::kDouble), double_(v) {}
  TraceValue(std::string v) : kind_(Kind::kString), str_(std::move(v)) {}
  TraceValue(const char* v) : kind_(Kind::kString), str_(v) {}

  /// Renders the value as a JSON token.
  std::string to_json() const;

 private:
  enum class Kind { kBool, kInt, kDouble, kString };
  Kind kind_;
  long long int_ = 0;
  double double_ = 0.0;
  std::string str_;
};

/// One trace record: a kind tag plus ordered key/value fields.
struct TraceEvent {
  std::string kind;
  std::vector<std::pair<std::string, TraceValue>> fields;

  TraceEvent() = default;
  explicit TraceEvent(std::string kind_in) : kind(std::move(kind_in)) {}

  TraceEvent& add(std::string key, TraceValue value) {
    fields.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// `{"kind":"...","key":value,...}`.
  std::string to_json() const;
};

/// Thread-safe collector of trace events.
class TraceSink {
 public:
  void record(TraceEvent event);

  /// Mirrors every recorded event into \p profiler as an instant event
  /// named after the event kind (null detaches). Spans and trace events
  /// then share one timeline in the Chrome-trace export, so `--trace`
  /// and `--profile` feed a single observability pipeline.
  void set_mirror(Profiler* profiler);

  std::size_t size() const;
  /// Snapshot of the events recorded so far.
  std::vector<TraceEvent> events() const;

  /// Renders all events as a JSON array (one event per line).
  std::string to_json() const;

  /// Writes to_json() to \p path; returns false on I/O failure.
  bool write_json_file(const std::string& path) const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  Profiler* mirror_ = nullptr;
};

}  // namespace ocr::util

#include "util/metrics.hpp"

#include <algorithm>
#include <fstream>

#include "util/assert.hpp"
#include "util/trace.hpp"

namespace ocr::util {

Histogram::Histogram(std::vector<long long> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1) {
  OCR_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                 std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                     bounds_.end(),
             "histogram bounds must be strictly increasing");
}

void Histogram::observe(long long value) {
  // First bound >= value: bucket i holds (bounds[i-1], bounds[i]].
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

long long MetricsSnapshot::counter_value(std::string_view name,
                                         long long missing) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return missing;
}

long long MetricsSnapshot::gauge_value(std::string_view name,
                                       long long missing) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return missing;
}

std::string MetricsSnapshot::to_json() const {
  const auto scalar_section =
      [](const std::vector<std::pair<std::string, long long>>& values) {
        std::string out = "{";
        bool first = true;
        for (const auto& [name, value] : values) {
          if (!first) out += ",";
          first = false;
          out += "\n    \"" + json_escape(name) +
                 "\": " + std::to_string(value);
        }
        out += first ? "}" : "\n  }";
        return out;
      };
  const auto int_array = [](const std::vector<long long>& values) {
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i != 0) out += ",";
      out += std::to_string(values[i]);
    }
    return out + "]";
  };

  std::string out = "{\n  \"counters\": " + scalar_section(counters) +
                    ",\n  \"gauges\": " + scalar_section(gauges) +
                    ",\n  \"histograms\": {";
  bool first = true;
  for (const HistogramValue& h : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + json_escape(h.name) + "\": {\"bounds\": " +
           int_array(h.bounds) + ", \"counts\": " + int_array(h.counts) +
           ", \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) + "}";
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

bool MetricsSnapshot::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

template <typename Entry>
typename decltype(Entry::instrument)::element_type* find_entry(
    std::vector<Entry>& entries, std::string_view name) {
  for (Entry& e : entries) {
    if (e.name == name) return e.instrument.get();
  }
  return nullptr;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (Counter* existing = find_entry(counters_, name)) return *existing;
  counters_.push_back({std::string(name), std::make_unique<Counter>()});
  return *counters_.back().instrument;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (Gauge* existing = find_entry(gauges_, name)) return *existing;
  gauges_.push_back({std::string(name), std::make_unique<Gauge>()});
  return *gauges_.back().instrument;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<long long> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (Histogram* existing = find_entry(histograms_, name)) return *existing;
  histograms_.push_back(
      {std::string(name), std::make_unique<Histogram>(std::move(bounds))});
  return *histograms_.back().instrument;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& e : counters_) {
    snap.counters.emplace_back(e.name, e.instrument->value());
  }
  for (const auto& e : gauges_) {
    snap.gauges.emplace_back(e.name, e.instrument->value());
  }
  for (const auto& e : histograms_) {
    MetricsSnapshot::HistogramValue h;
    h.name = e.name;
    h.bounds = e.instrument->bounds();
    for (std::size_t i = 0; i <= h.bounds.size(); ++i) {
      h.counts.push_back(e.instrument->bucket_count(i));
    }
    h.count = e.instrument->count();
    h.sum = e.instrument->sum();
    snap.histograms.push_back(std::move(h));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : counters_) e.instrument->reset();
  for (auto& e : gauges_) e.instrument->reset();
  for (auto& e : histograms_) e.instrument->reset();
}

}  // namespace ocr::util

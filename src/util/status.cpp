#include "util/status.hpp"

#include "util/str.hpp"

namespace ocr::util {

const char* status_kind_name(StatusKind kind) {
  switch (kind) {
    case StatusKind::kOk:
      return "ok";
    case StatusKind::kInvalidArgument:
      return "invalid-argument";
    case StatusKind::kParseError:
      return "parse";
    case StatusKind::kUnroutable:
      return "unroutable";
    case StatusKind::kCancelled:
      return "cancelled";
    case StatusKind::kDeadlineExceeded:
      return "deadline";
    case StatusKind::kBudgetExhausted:
      return "budget";
    case StatusKind::kFaultInjected:
      return "fault";
    case StatusKind::kTaskFailed:
      return "task";
    case StatusKind::kIoError:
      return "io";
    case StatusKind::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string out = util::format("[%s]", status_kind_name(kind_));
  if (!stage_.empty()) out += " " + stage_ + ":";
  if (line_ > 0) {
    out += util::format(" line %d", line_);
    if (column_ > 0) out += util::format(":%d", column_);
    out += ":";
  }
  if (net_id_ >= 0) out += util::format(" net %d:", net_id_);
  if (!message_.empty()) out += " " + message_;
  return out;
}

}  // namespace ocr::util

#pragma once
/// \file rng.hpp
/// \brief Deterministic, seedable pseudo-random number generation.
///
/// All synthetic-benchmark generation in this library flows through Rng so
/// that every experiment is reproducible from a single 64-bit seed. The
/// engine is xoshiro256++ (public domain, Blackman & Vigna), seeded via
/// SplitMix64 so that nearby seeds produce unrelated streams.

#include <array>
#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace ocr::util {

/// xoshiro256++ engine with convenience samplers.
///
/// Deliberately not `std::mt19937`: the standard distributions are not
/// portable across library implementations, and benchmark instances must be
/// byte-identical everywhere.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed (any value is valid).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from \p seed.
  void reseed(std::uint64_t seed);

  /// Raw 64-bit draw.
  std::uint64_t next_u64();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

  /// Uniform integer in the closed range [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in the half-open range [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform_real(double lo, double hi);

  /// Bernoulli draw with probability \p p of returning true.
  bool chance(double p);

  /// Picks a uniformly random index into a container of \p size elements.
  /// Requires size > 0.
  std::size_t index(std::size_t size);

  /// Fisher--Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      using std::swap;
      swap(c[i], c[index(i + 1)]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ocr::util

#include "util/cancel.hpp"

namespace ocr::util {

Status CancelToken::reason() const {
  if (state_ == nullptr ||
      !state_->cancelled.load(std::memory_order_acquire)) {
    return Status();
  }
  const std::lock_guard<std::mutex> lock(state_->mu);
  return state_->reason;
}

void CancelSource::cancel(Status reason) {
  {
    const std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->cancelled.load(std::memory_order_relaxed)) return;
    state_->reason = std::move(reason);
    // Release so reason() readers that observe cancelled == true see it.
    state_->cancelled.store(true, std::memory_order_release);
  }
}

}  // namespace ocr::util

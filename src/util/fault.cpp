#include "util/fault.hpp"

#include <cctype>
#include <cstdlib>

#include "util/str.hpp"

namespace ocr::util {
namespace {

/// SplitMix64 step — the per-hit probabilistic decision hash.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_string(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : s) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string trim(const std::string& s) {
  std::size_t lo = 0;
  std::size_t hi = s.size();
  while (lo < hi && std::isspace(static_cast<unsigned char>(s[lo]))) ++lo;
  while (hi > lo && std::isspace(static_cast<unsigned char>(s[hi - 1]))) {
    --hi;
  }
  return s.substr(lo, hi - lo);
}

bool parse_ll(const std::string& token, long long* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) return false;
  *out = v;
  return true;
}

}  // namespace

FaultRegistry& FaultRegistry::global() {
  static FaultRegistry registry;
  return registry;
}

FaultRegistry& FaultRegistry::service() {
  static FaultRegistry registry;
  return registry;
}

Status FaultRegistry::configure(const std::string& spec) {
  const std::lock_guard<std::mutex> lock(mu_);
  seed_ = 1;
  sites_.clear();
  fired_.clear();

  // A rejected spec leaves the registry fully disarmed, never half-armed.
  const auto reject = [this](std::string why) {
    sites_.clear();
    armed_.store(false, std::memory_order_relaxed);
    return Status::invalid_argument(std::move(why)).with_stage("fault-spec");
  };

  for (const std::string& raw : split(spec, ';')) {
    const std::string entry = trim(raw);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return reject("fault entry needs site=trigger: '" + entry + "'");
    }
    const std::string site = trim(entry.substr(0, eq));
    const std::string value = trim(entry.substr(eq + 1));

    if (site == "seed") {
      long long s = 0;
      if (!parse_ll(value, &s) || s < 0) {
        return reject("bad seed '" + value + "'");
      }
      seed_ = static_cast<std::uint64_t>(s);
      continue;
    }

    Trigger trigger;
    if (value == "*") {
      trigger.always = true;
    } else if (!value.empty() && value[0] == '~') {
      char* end = nullptr;
      const double p = std::strtod(value.c_str() + 1, &end);
      if (end != value.c_str() + value.size() || p < 0.0 || p > 1.0) {
        return reject("bad probability '" + value + "'");
      }
      trigger.probability = p;
    } else if (!value.empty() && value[0] == '@') {
      for (const std::string& k : split(value.substr(1), '|')) {
        long long key = 0;
        if (!parse_ll(trim(k), &key)) {
          return reject("bad key list '" + value + "'");
        }
        trigger.keys.push_back(key);
      }
    } else if (!value.empty() && value.back() == '+') {
      long long n = 0;
      if (!parse_ll(value.substr(0, value.size() - 1), &n) || n < 1) {
        return reject("bad trigger '" + value + "'");
      }
      trigger.nth = n;
      trigger.from_nth = true;
    } else {
      long long n = 0;
      if (!parse_ll(value, &n) || n < 1) {
        return reject("bad trigger '" + value + "'");
      }
      trigger.nth = n;
    }
    sites_[site].trigger = trigger;
  }

  armed_.store(!sites_.empty(), std::memory_order_relaxed);
  return Status();
}

Status FaultRegistry::configure_from_env() {
  const char* env = std::getenv("OCR_FAULTS");
  return configure(env == nullptr ? "" : env);
}

void FaultRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  fired_.clear();
  seed_ = 1;
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultRegistry::decide(const Site& site, long long hit_index,
                           long long key, const std::string& name) const {
  const Trigger& t = site.trigger;
  if (t.always) return true;
  if (!t.keys.empty()) {
    for (const long long k : t.keys) {
      if (k == key) return true;
    }
    return false;
  }
  if (t.probability >= 0.0) {
    const std::uint64_t h = splitmix64(
        seed_ ^ hash_string(name) ^
        splitmix64(static_cast<std::uint64_t>(hit_index)));
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    return u < t.probability;
  }
  if (t.nth > 0) {
    return t.from_nth ? hit_index >= t.nth : hit_index == t.nth;
  }
  return false;
}

bool FaultRegistry::hit(const char* site, long long key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  Site& s = it->second;
  ++s.hits;
  if (!decide(s, s.hits, key, it->first)) return false;
  ++s.fired;
  std::string note = util::format("%s (hit %lld", site, s.hits);
  if (key >= 0) note += util::format(", key %lld", key);
  note += ")";
  fired_.push_back(std::move(note));
  return true;
}

long long FaultRegistry::fired_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<long long>(fired_.size());
}

std::vector<std::string> FaultRegistry::fired_report() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

}  // namespace ocr::util

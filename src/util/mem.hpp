#pragma once
/// \file mem.hpp
/// \brief Process memory introspection for observability.

#include <cstdint>

namespace ocr::util {

/// Peak resident set size of the calling process in kilobytes, from
/// getrusage(RUSAGE_SELF). Returns 0 on platforms where the query fails.
/// Monotonic over a process lifetime — useful as a high-water gauge, not
/// as a live-usage signal.
std::int64_t peak_rss_kb();

}  // namespace ocr::util

#pragma once
/// \file multilayer.hpp
/// \brief Multi-layer channel routing by layer-pair partitioning.
///
/// The comparison target of the paper's Table 3. Two strategies are
/// provided:
///
/// 1. `route_multilayer` — a real router in the spirit of Chameleon
///    (Braun et al.) / MulCh (Greenberg & Sangiovanni-Vincentelli): the
///    channel's nets are partitioned across layer *pairs* (HV groups),
///    each group is solved as an independent two-layer channel problem,
///    and the groups share the same physical channel span. The channel
///    height is governed by the tallest group after applying each pair's
///    wire pitch — which is exactly where the paper's caveat bites: upper
///    layer pairs have coarser pitch, so halving the *tracks* does not
///    halve the *area*.
///
/// 2. `fifty_percent_track_model` — the paper's own Table-3 comparator:
///    "the optimistic assumption that a multi-layer channel routing
///    algorithm would reduce the channel area requirements by 50% over
///    ... a two-layer channel routing algorithm."

#include <vector>

#include "channel/greedy.hpp"
#include "channel/route.hpp"
#include "geom/layers.hpp"

namespace ocr::mlchannel {

struct MultiLayerOptions {
  /// Number of HV layer pairs (2 pairs = 4-layer channel).
  int layer_pairs = 2;
  channel::GreedyOptions greedy;
};

struct MultiLayerChannelResult {
  bool success = false;
  std::string failure_reason;
  /// Group g routes on layer pair g (pair 0 = metal1/2, pair 1 = metal3/4).
  std::vector<channel::ChannelRoute> group_routes;
  /// net_group[n] = group of net n (index 0 unused).
  std::vector<int> net_group;
  /// max over groups of that group's track count.
  int max_group_tracks = 0;

  /// Physical channel height in dbu under \p rules: the tallest group
  /// after applying its layer pair's pitch.
  geom::Coord channel_height(const geom::DesignRules& rules) const;

  long long wire_length() const;
  int via_count() const;
};

/// Routes \p problem with nets partitioned across layer pairs (density-
/// balancing greedy assignment), each group detail-routed by the greedy
/// two-layer router.
MultiLayerChannelResult route_multilayer(
    const channel::ChannelProblem& problem,
    const MultiLayerOptions& options = {});

/// The paper's optimistic model: a 4-layer channel router needs
/// ceil(tracks / 2) tracks at the *metal1/2* pitch (no pitch penalty —
/// that is what makes it optimistic).
int fifty_percent_track_model(int two_layer_tracks);

}  // namespace ocr::mlchannel

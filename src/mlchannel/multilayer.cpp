#include "mlchannel/multilayer.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace ocr::mlchannel {

using channel::ChannelProblem;
using channel::ChannelRoute;
using channel::NetSpan;

geom::Coord MultiLayerChannelResult::channel_height(
    const geom::DesignRules& rules) const {
  geom::Coord height = 0;
  for (std::size_t g = 0; g < group_routes.size(); ++g) {
    // Pair 0 -> metal1/metal2, pair 1 -> metal3/metal4; deeper pairs reuse
    // the coarsest pitch (no 5th/6th metal in the rule set).
    const geom::Coord pitch =
        g == 0 ? rules.channel_pitch(geom::Layer::kMetal1,
                                     geom::Layer::kMetal2)
               : rules.channel_pitch(geom::Layer::kMetal3,
                                     geom::Layer::kMetal4);
    height = std::max(
        height, static_cast<geom::Coord>(group_routes[g].num_tracks) *
                    pitch);
  }
  return height;
}

long long MultiLayerChannelResult::wire_length() const {
  long long total = 0;
  for (const ChannelRoute& route : group_routes) {
    total += route.wire_length();
  }
  return total;
}

int MultiLayerChannelResult::via_count() const {
  int total = 0;
  for (const ChannelRoute& route : group_routes) {
    total += route.via_count();
  }
  return total;
}

MultiLayerChannelResult route_multilayer(const ChannelProblem& problem,
                                         const MultiLayerOptions& options) {
  OCR_ASSERT(options.layer_pairs >= 1, "need at least one layer pair");
  MultiLayerChannelResult result;
  const int groups = options.layer_pairs;
  const int max_net = problem.max_net();
  result.net_group.assign(static_cast<std::size_t>(max_net) + 1, 0);

  // Density-balancing assignment: widest spans first, each net into the
  // group whose maximum local density it increases least.
  const auto spans = channel::net_spans(problem);
  std::vector<int> order;
  for (const NetSpan& s : spans) {
    if (s.present()) order.push_back(s.net);
  }
  std::sort(order.begin(), order.end(), [&spans](int a, int b) {
    const auto la = spans[static_cast<std::size_t>(a)].hi -
                    spans[static_cast<std::size_t>(a)].lo;
    const auto lb = spans[static_cast<std::size_t>(b)].hi -
                    spans[static_cast<std::size_t>(b)].lo;
    if (la != lb) return la > lb;
    return a < b;
  });

  const int columns = problem.num_columns();
  std::vector<std::vector<int>> density(
      static_cast<std::size_t>(groups),
      std::vector<int>(static_cast<std::size_t>(columns), 0));
  for (int net : order) {
    const NetSpan& s = spans[static_cast<std::size_t>(net)];
    int best_group = 0;
    int best_peak = std::numeric_limits<int>::max();
    for (int g = 0; g < groups; ++g) {
      int peak = 0;
      for (int c = s.lo; c <= s.hi; ++c) {
        peak = std::max(peak,
                        density[static_cast<std::size_t>(g)]
                               [static_cast<std::size_t>(c)] +
                            1);
      }
      if (peak < best_peak) {
        best_peak = peak;
        best_group = g;
      }
    }
    result.net_group[static_cast<std::size_t>(net)] = best_group;
    for (int c = s.lo; c <= s.hi; ++c) {
      ++density[static_cast<std::size_t>(best_group)]
               [static_cast<std::size_t>(c)];
    }
  }

  // Route each group as an independent two-layer channel.
  result.success = true;
  for (int g = 0; g < groups; ++g) {
    ChannelProblem sub;
    sub.top.assign(static_cast<std::size_t>(columns), 0);
    sub.bot.assign(static_cast<std::size_t>(columns), 0);
    for (int c = 0; c < columns; ++c) {
      const int t = problem.top[static_cast<std::size_t>(c)];
      const int b = problem.bot[static_cast<std::size_t>(c)];
      if (t != 0 && result.net_group[static_cast<std::size_t>(t)] == g) {
        sub.top[static_cast<std::size_t>(c)] = t;
      }
      if (b != 0 && result.net_group[static_cast<std::size_t>(b)] == g) {
        sub.bot[static_cast<std::size_t>(c)] = b;
      }
    }
    ChannelRoute route = channel::route_greedy(sub, options.greedy);
    if (!route.success) {
      result.success = false;
      result.failure_reason = route.failure_reason;
    }
    result.max_group_tracks =
        std::max(result.max_group_tracks, route.num_tracks);
    result.group_routes.push_back(std::move(route));
  }
  return result;
}

int fifty_percent_track_model(int two_layer_tracks) {
  return (two_layer_tracks + 1) / 2;
}

}  // namespace ocr::mlchannel

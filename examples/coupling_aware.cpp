/// \file coupling_aware.cpp
/// \brief Sensitive-net aware routing (§1/§3.2 extension).
///
/// The paper motivates over-cell routing care with capacitive coupling:
/// "wires running parallel, one on top of the other, over relatively long
/// distances, creating capacitive coupling that can cause severe
/// cross-talk". This example routes a sensitive analog net, then a bus of
/// aggressors, once without and once with the w24 parallel-run penalty,
/// and reports how much aggressor wiring hugs the victim. It finishes
/// with a congestion report of the routed fabric.

#include <cstdio>

#include "levelb/router.hpp"
#include "tig/congestion.hpp"
#include "tig/track_grid.hpp"

namespace {

using namespace ocr;
using geom::Point;

constexpr geom::Coord kVictimY = 405;

/// Aggressor wiring length within one pitch of the victim's row.
geom::Coord hugging_length(const levelb::LevelBResult& result) {
  geom::Coord total = 0;
  for (const auto& net : result.nets) {
    if (net.id == 0) continue;  // the victim itself
    for (const auto& path : net.paths) {
      for (std::size_t leg = 0; leg + 1 < path.points.size(); ++leg) {
        const Point& p = path.points[leg];
        const Point& q = path.points[leg + 1];
        if (p.y != q.y) continue;
        if (std::abs(p.y - kVictimY) <= 15) total += std::abs(q.x - p.x);
      }
    }
  }
  return total;
}

levelb::LevelBResult run(double w24, tig::TrackGrid* grid_out) {
  auto grid = tig::TrackGrid::uniform(geom::Rect(0, 0, 1200, 800), 9, 11);

  std::vector<levelb::BNet> nets;
  // The victim: a long horizontal analog net, flagged sensitive.
  nets.push_back(
      levelb::BNet{0, {Point{10, kVictimY}, Point{1190, kVictimY}}, true});
  // A bus of aggressors: one endpoint sits right next to the victim's
  // row, the other far away, so each L-shaped route either hugs the
  // victim for its whole horizontal run or leaves immediately.
  for (int k = 1; k <= 6; ++k) {
    const geom::Coord near_y = kVictimY + 9;  // adjacent metal3 track
    const geom::Coord far_y = 80 + 45 * k;
    nets.push_back(levelb::BNet{
        k, {Point{10 + 20 * k, near_y}, Point{1190 - 20 * k, far_y}},
        false});
  }

  levelb::LevelBOptions options;
  options.finder.weights.w21 = 0.0;  // isolate the coupling term
  options.finder.weights.w22 = 0.0;
  options.finder.weights.w23 = 0.0;
  options.finder.weights.w24 = w24;
  levelb::LevelBRouter router(grid, options);
  auto result = router.route(nets);
  if (grid_out != nullptr) *grid_out = grid;
  return result;
}

}  // namespace

int main() {
  const auto baseline = run(0.0, nullptr);
  tig::TrackGrid final_grid =
      tig::TrackGrid::uniform(geom::Rect(0, 0, 10, 10), 5, 5);
  const auto coupled = run(25.0, &final_grid);

  std::printf("aggressors hugging the victim (within 1 pitch):\n");
  std::printf("  w24 = 0:   %lld dbu\n",
              static_cast<long long>(hugging_length(baseline)));
  std::printf("  w24 = 25:  %lld dbu\n",
              static_cast<long long>(hugging_length(coupled)));
  std::printf("completion: %d/%d (baseline), %d/%d (coupling-aware)\n",
              baseline.routed_nets,
              baseline.routed_nets + baseline.failed_nets,
              coupled.routed_nets,
              coupled.routed_nets + coupled.failed_nets);

  std::puts("\nfabric utilization after the coupling-aware run:");
  std::fputs(tig::analyze_congestion(final_grid, 6).to_string().c_str(),
             stdout);
  return (coupled.failed_nets == 0 &&
          hugging_length(coupled) <= hugging_length(baseline))
             ? 0
             : 1;
}

/// \file channel_demo.cpp
/// \brief The level-A substrate by itself: classic channel routing.
///
/// Shows the analyses (density, VCG, zones) and both detailed routers
/// (constrained left-edge with doglegs, greedy) on a small channel,
/// including a cyclic instance only the greedy router completes.

#include <cstdio>

#include "channel/greedy.hpp"
#include "channel/left_edge.hpp"

namespace {

using namespace ocr::channel;

void describe(const char* name, const ChannelProblem& problem) {
  std::printf("\n%s  (density %d, VCG %s)\n", name,
              channel_density(problem),
              build_vcg(problem).has_cycle() ? "cyclic" : "acyclic");
  std::printf("  top:");
  for (int v : problem.top) std::printf(" %d", v);
  std::printf("\n  bot:");
  for (int v : problem.bot) std::printf(" %d", v);
  std::printf("\n");
}

void route_both(const ChannelProblem& problem) {
  const auto lea = route_left_edge(problem);
  if (lea.success) {
    std::printf("  left-edge (dogleg): %d tracks, WL %lld, %d vias\n",
                lea.num_tracks, lea.wire_length(), lea.via_count());
  } else {
    std::printf("  left-edge (dogleg): FAILED (%s)\n",
                lea.failure_reason.c_str());
  }
  const auto greedy = route_greedy(problem);
  if (greedy.success) {
    std::printf("  greedy:             %d tracks, WL %lld, %d vias\n",
                greedy.num_tracks, greedy.wire_length(),
                greedy.via_count());
    const auto problems = validate_route(problem, greedy);
    std::printf("  greedy validates:   %s\n",
                problems.empty() ? "yes" : problems[0].c_str());
  } else {
    std::printf("  greedy:             FAILED (%s)\n",
                greedy.failure_reason.c_str());
  }
}

}  // namespace

int main() {
  // A classic small channel.
  ChannelProblem a;
  a.top = {1, 2, 3, 0, 2, 0, 4, 0};
  a.bot = {0, 1, 1, 3, 0, 2, 0, 4};
  describe("Example A: textbook channel", a);
  route_both(a);

  // The irreducible swap cycle: dogleg left-edge cannot route it, the
  // greedy router can.
  ChannelProblem b;
  b.top = {1, 2};
  b.bot = {2, 1};
  describe("Example B: irreducible VCG cycle", b);
  route_both(b);

  // A dense channel to show track counts approaching density.
  ChannelProblem c;
  c.top = {1, 2, 3, 4, 5, 1, 2, 3, 4, 5};
  c.bot = {5, 4, 3, 2, 1, 5, 4, 3, 2, 1};
  describe("Example C: dense channel", c);
  route_both(c);
  return 0;
}

/// \file obstacle_routing.cpp
/// \brief Over-cell routing around arbitrary obstacles (§1/§3).
///
/// The paper's router "recognizes arbitrarily sized obstacles, for
/// example, due to power and ground routing or sensitive circuits in the
/// underlying cells." This example builds a grid with power straps
/// (metal3-only keep-outs) and an analog block (both layers blocked),
/// routes nets through the remaining fabric, and writes an SVG.

#include <cstdio>

#include "levelb/router.hpp"
#include "tig/track_grid.hpp"
#include "viz/svg.hpp"

int main() {
  using namespace ocr;
  using geom::Point;
  using geom::Rect;

  tig::TrackGrid grid =
      tig::TrackGrid::uniform(Rect(0, 0, 1200, 900), 9, 11);

  // Power straps: horizontal metal3 is unusable under them, but vertical
  // metal4 may still cross.
  const std::vector<Rect> straps = {
      Rect(0, 280, 1200, 320), Rect(0, 580, 1200, 620)};
  for (const Rect& strap : straps) grid.block_region_h(strap);

  // An analog block: nothing may route over it on either layer.
  const Rect analog(450, 350, 750, 550);
  grid.block_region_h(analog);
  grid.block_region_v(analog);

  std::vector<levelb::BNet> nets;
  // Nets that must thread between/around the keep-outs.
  nets.push_back({1, {Point{60, 100}, Point{1100, 800}}});
  nets.push_back({2, {Point{100, 450}, Point{1100, 450}}});  // around analog
  nets.push_back({3, {Point{600, 60}, Point{600, 840}}});    // across straps
  nets.push_back({4, {Point{60, 700}, Point{500, 100}, Point{1150, 700}}});

  levelb::LevelBRouter router(grid);
  const auto result = router.route(nets);
  std::printf("routed %d/%zu nets, wire %lld dbu, %d vias\n",
              result.routed_nets, nets.size(),
              static_cast<long long>(result.total_wire_length),
              result.total_corners);

  // Check the key property: no leg crosses the analog block's interior.
  bool clean = true;
  for (const auto& net : result.nets) {
    for (const auto& path : net.paths) {
      for (std::size_t leg = 0; leg + 1 < path.points.size(); ++leg) {
        const Rect box =
            Rect::from_corners(path.points[leg], path.points[leg + 1]);
        if (box.interior_overlaps(analog)) clean = false;
      }
    }
  }
  std::printf("analog keep-out respected: %s\n", clean ? "yes" : "NO");

  // Render: obstacles + wires.
  viz::SvgCanvas canvas(grid.extent(), 0.8);
  for (const Rect& strap : straps) {
    canvas.rect(strap, "#f6d9a0", "#b08030", 1.0, 0.8);
  }
  canvas.rect(analog, "#f2b0b0", "#a04040", 1.0, 0.8);
  const char* colors[] = {"#c03030", "#3060c0", "#2f8f4e", "#7040a0"};
  for (std::size_t n = 0; n < result.nets.size(); ++n) {
    for (const auto& path : result.nets[n].paths) {
      canvas.path(path, colors[n % 4], 2.5);
    }
  }
  if (viz::write_file("obstacle_routing.svg", canvas.finish())) {
    std::puts("wrote obstacle_routing.svg");
  }
  return (result.failed_nets == 0 && clean) ? 0 : 1;
}

/// \file macrocell_flow.cpp
/// \brief The paper's complete two-level methodology on a macro-cell
/// layout, compared against the two-layer channel baseline.
///
/// Reproduces in miniature what bench_table2 does for the paper's
/// examples: generate an instance, partition nets (critical -> level A,
/// rest -> level B), run both flows, print the comparison and write SVGs
/// of the routed layout.

#include <cstdio>

#include "bench_data/synthetic.hpp"
#include "flow/flow.hpp"
#include "partition/partition.hpp"
#include "util/str.hpp"
#include "util/table.hpp"
#include "viz/svg.hpp"

int main() {
  using namespace ocr;

  // A mid-size synthetic macro-cell design (~30 cells, ~120 nets).
  const auto spec = bench_data::random_spec(2026, 1.0);
  const auto ml = bench_data::generate_macro_layout(spec);
  std::printf("instance '%s': %zu cells in %d rows, %zu nets, %zu pins\n",
              ml.name().c_str(), ml.cells().size(), ml.num_rows(),
              ml.nets().size(), ml.pins().size());

  // Partition: critical/clock/power nets stay in channels (level A).
  const auto zero_assembled = ml.assemble(
      std::vector<geom::Coord>(static_cast<std::size_t>(ml.num_channels()),
                               0));
  const auto partition = partition::partition_by_class(zero_assembled);
  std::printf("partition: %zu nets -> level A (channels), %zu nets -> "
              "level B (over-cell)\n",
              partition.set_a.size(), partition.set_b.size());

  // Run both flows.
  flow::FlowArtifacts artifacts;
  const auto baseline = flow::run_two_layer_flow(ml);
  const auto proposed = flow::run_over_cell_flow(ml, partition,
                                                 flow::FlowOptions{},
                                                 &artifacts);

  util::TextTable table;
  table.set_header({"Metric", "2-layer channel", "4-layer over-cell",
                    "Reduction"});
  const auto add = [&table](const char* name, double base, double ours) {
    table.add_row({name, util::with_commas(static_cast<long long>(base)),
                   util::with_commas(static_cast<long long>(ours)),
                   util::format("%.1f%%",
                                flow::percent_reduction(base, ours))});
  };
  add("Layout area", static_cast<double>(baseline.layout_area),
      static_cast<double>(proposed.layout_area));
  add("Wire length", static_cast<double>(baseline.wire_length),
      static_cast<double>(proposed.wire_length));
  add("Vias", baseline.vias, proposed.vias);
  add("Channel tracks", baseline.total_channel_tracks,
      proposed.total_channel_tracks);
  std::fputs(table.render().c_str(), stdout);
  std::printf("level-B completion: %.1f%%\n",
              100.0 * proposed.levelb_completion);

  if (viz::write_file("macrocell_levelB.svg",
                      viz::render_levelb_routing(artifacts))) {
    std::puts("wrote macrocell_levelB.svg (over-cell wiring)");
  }
  if (viz::write_file("macrocell_layout.svg",
                      viz::render_layout(artifacts.layout))) {
    std::puts("wrote macrocell_layout.svg (cells and pins)");
  }
  return baseline.success && proposed.success ? 0 : 1;
}

/// \file steiner_demo.cpp
/// \brief The §3.3 multi-terminal machinery: rectilinear MST vs the
/// paper's modified-Prim Steiner heuristic vs the exact optimum.

#include <cstdio>

#include "steiner/exact.hpp"
#include "steiner/rmst.hpp"
#include "steiner/rst.hpp"

int main() {
  using namespace ocr;
  using geom::Point;

  // The classic cross: four terminals whose optimum needs a Steiner point.
  const std::vector<Point> cross = {
      {0, 50}, {100, 50}, {50, 0}, {50, 100}};

  const auto mst = steiner::rectilinear_mst(cross);
  const auto rst = steiner::modified_prim_rst(cross);
  const auto exact = steiner::exact_rsmt_length(cross);

  std::printf("cross net (4 terminals):\n");
  std::printf("  rectilinear MST length:      %lld\n",
              static_cast<long long>(mst.length));
  std::printf("  modified-Prim RST length:    %lld\n",
              static_cast<long long>(rst.length));
  std::printf("  exact RSMT length:           %lld\n",
              static_cast<long long>(exact));
  std::printf("  Steiner points introduced:   %zu\n",
              rst.nodes.size() - cross.size());

  std::printf("\nRST topology (terminals then Steiner points):\n");
  for (std::size_t i = 0; i < rst.nodes.size(); ++i) {
    std::printf("  node %zu at (%lld,%lld)%s\n", i,
                static_cast<long long>(rst.nodes[i].x),
                static_cast<long long>(rst.nodes[i].y),
                rst.is_steiner_node(static_cast<int>(i)) ? "  [Steiner]"
                                                         : "");
  }
  for (const auto& edge : rst.edges) {
    std::printf("  edge %d - %d\n", edge.a, edge.b);
  }

  std::printf("\ntwo-terminal connections handed to the level-B router:\n");
  for (const auto& [p, q] : steiner::two_terminal_connections(rst)) {
    std::printf("  (%lld,%lld) -> (%lld,%lld)\n",
                static_cast<long long>(p.x), static_cast<long long>(p.y),
                static_cast<long long>(q.x), static_cast<long long>(q.y));
  }
  return rst.length <= mst.length && rst.length >= exact ? 0 : 1;
}

/// \file quickstart.cpp
/// \brief Five-minute tour of the over-cell (level-B) router.
///
/// Builds a routing grid over a 1000x1000 die, drops three nets on it and
/// routes them with the paper's minimum-corner search. Everything runs on
/// the public API; see examples/macrocell_flow.cpp for the full two-level
/// methodology.

#include <cstdio>

#include "levelb/router.hpp"
#include "tig/track_grid.hpp"

int main() {
  using namespace ocr;
  using geom::Point;

  // 1. The routing surface: horizontal tracks carry metal3 (pitch 9),
  //    vertical tracks metal4 (pitch 11).
  tig::TrackGrid grid =
      tig::TrackGrid::uniform(geom::Rect(0, 0, 1000, 1000), 9, 11);

  // 2. A power-strap obstacle: no metal3 over this region.
  grid.block_region_h(geom::Rect(200, 450, 800, 500));

  // 3. Three nets: a two-terminal net, a crossing net and a 4-terminal
  //    net that needs Steiner points.
  const std::vector<levelb::BNet> nets = {
      {1, {Point{50, 50}, Point{900, 880}}},
      {2, {Point{60, 900}, Point{920, 80}}},
      {3, {Point{100, 400}, Point{500, 100}, Point{880, 420},
           Point{480, 820}}},
  };

  // 4. Route (longest net first, as the paper recommends).
  levelb::LevelBRouter router(grid);
  const levelb::LevelBResult result = router.route(nets);

  // 5. Inspect the result.
  std::printf("routed %d/%zu nets, %lld dbu of wire, %d vias\n",
              result.routed_nets, nets.size(),
              static_cast<long long>(result.total_wire_length),
              result.total_corners);
  for (const levelb::NetResult& net : result.nets) {
    std::printf("net %d: %s, %lld dbu, %d corners\n", net.id,
                net.complete ? "complete" : "INCOMPLETE",
                static_cast<long long>(net.wire_length), net.corners);
    for (const levelb::Path& path : net.paths) {
      std::printf("  %s\n", path.to_string().c_str());
    }
  }
  return result.failed_nets == 0 ? 0 : 1;
}

/// \file bench_fig1.cpp
/// \brief Reproduces the paper's Figure 1 (a level-B instance and its
/// Track Intersection Graph) and Figure 2 (the two Path Selection Trees
/// for net B), and writes `fig1_instance.svg`.

#include <cstdio>

#include "levelb/figure1.hpp"
#include "levelb/path_finder.hpp"
#include "tig/graph.hpp"
#include "viz/svg.hpp"

int main() {
  using namespace ocr;
  const levelb::Figure1Instance fig = levelb::make_figure1_instance();

  std::puts("Figure 1: level-B instance (4 horizontal x 6 vertical tracks)");
  std::puts("Committed wiring: net A on h4 in [12,18]; net C on v6 in");
  std::puts("[25,35]; obstacle O1 on v4 in [15,25].");
  std::puts("\nTrack Intersection Graph (usable crossings per track):");
  std::fputs(tig::build_tig(fig.grid).to_string().c_str(), stdout);

  levelb::PathFinder::Options options;
  options.keep_trees = true;
  const levelb::PathFinder finder(fig.grid, options);
  const auto ctx = levelb::make_cost_context(fig.grid, nullptr);
  const auto result = finder.connect(fig.b1, fig.b2, ctx);

  std::puts("\nFigure 2: Path Selection Trees for net B");
  std::puts("MBFS rooted at v2 (vertical track of terminal B1):");
  std::fputs(result.tree_v.to_string().c_str(), stdout);
  std::puts("MBFS rooted at h2 (horizontal track of terminal B1):");
  std::fputs(result.tree_h.to_string().c_str(), stdout);

  if (result.found) {
    std::printf("\nSelected path (%d corner%s): %s\n", result.corners,
                result.corners == 1 ? "" : "s",
                result.path.to_string().c_str());
    std::printf("Candidates with minimum corners: %d\n",
                result.stats.candidates);
    std::puts("Paper: three candidate paths; (v2,h4,v6) wins with one "
              "corner.");
  } else {
    std::puts("\nERROR: no path found — instance diverges from the paper");
    return 1;
  }

  // Render the instance.
  viz::SvgCanvas canvas(fig.grid.extent(), 10.0);
  for (int i = 0; i < fig.grid.num_h(); ++i) {
    canvas.line({fig.grid.extent().xlo, fig.grid.h_y(i)},
                {fig.grid.extent().xhi, fig.grid.h_y(i)}, "#cccccc", 1.0);
  }
  for (int j = 0; j < fig.grid.num_v(); ++j) {
    canvas.line({fig.grid.v_x(j), fig.grid.extent().ylo},
                {fig.grid.v_x(j), fig.grid.extent().yhi}, "#cccccc", 1.0);
  }
  canvas.line({12, 40}, {18, 40}, "#3060c0", 4.0);  // net A
  canvas.line({60, 25}, {60, 35}, "#2f8f4e", 4.0);  // net C
  canvas.rect(geom::Rect(37, 15, 43, 25), "#f2b0b0", "#a04040", 1.0, 0.8);
  canvas.path(result.path, "#c03030", 3.0);
  canvas.circle(fig.b1, 4.0, "#c03030");
  canvas.circle(fig.b2, 4.0, "#c03030");
  canvas.text({fig.b1.x + 2, fig.b1.y - 4}, "B1", 9.0);
  canvas.text({fig.b2.x + 2, fig.b2.y - 4}, "B2", 9.0);
  const std::string path = "fig1_instance.svg";
  if (viz::write_file(path, canvas.finish())) {
    std::printf("Wrote %s\n", path.c_str());
  }
  return 0;
}

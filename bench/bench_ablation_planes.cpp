/// \file bench_ablation_planes.cpp
/// \brief Ablation G (extension): one over-cell HV plane (the paper's
/// metal3/4) vs two planes (adding metal5/6), on instances scaled past a
/// single plane's capacity.

#include <cstdio>

#include "levelb/multi_plane.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace {

using namespace ocr;
using geom::Point;
using geom::Rect;

std::vector<levelb::BNet> random_nets(std::uint64_t seed, int count,
                                      geom::Coord size) {
  util::Rng rng(seed);
  std::vector<levelb::BNet> nets;
  for (int n = 0; n < count; ++n) {
    levelb::BNet net{n, {}};
    const int degree = static_cast<int>(rng.uniform_int(2, 4));
    for (int t = 0; t < degree; ++t) {
      net.terminals.push_back(
          Point{rng.uniform_int(0, size - 1), rng.uniform_int(0, size - 1)});
    }
    nets.push_back(std::move(net));
  }
  return nets;
}

}  // namespace

int main() {
  util::TextTable table;
  table.set_header({"Nets (600x600 die)", "Planes", "Completion",
                    "Wire length", "Vias", "Rescued"});
  for (const int count : {40, 80, 160, 240}) {
    const auto nets = random_nets(4242, count, 600);

    auto single = tig::TrackGrid::uniform(Rect(0, 0, 600, 600), 9, 11);
    levelb::LevelBRouter router(single);
    const auto one = router.route(nets);
    table.add_row({util::format("%d", count), "1",
                   util::format("%.3f", one.completion_rate()),
                   util::with_commas(one.total_wire_length),
                   util::format("%d", one.total_corners), "-"});

    auto p0 = tig::TrackGrid::uniform(Rect(0, 0, 600, 600), 9, 11);
    auto p1 = tig::TrackGrid::uniform(Rect(0, 0, 600, 600), 9, 11);
    const auto two = levelb::route_two_planes(p0, p1, nets);
    table.add_row({util::format("%d", count), "2",
                   util::format("%.3f", two.completion_rate()),
                   util::with_commas(two.combined.total_wire_length),
                   util::format("%d", two.combined.total_corners),
                   util::format("%d", two.rescued)});
    table.add_separator();
  }
  std::puts("Ablation G: one vs two over-cell HV planes (extension)");
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nThe paper's 4-layer assumption gives one over-cell plane; a "
            "6-layer\nprocess doubles over-cell capacity, which shows once "
            "a single plane\nsaturates.");
  return 0;
}

/// \file bench_ablation_maze.cpp
/// \brief Ablation: the paper's MBFS track-graph search vs a Lee maze
/// router on the same grid (§3: "faster completion of the interconnections
/// on the average when compared to maze type algorithms").
///
/// Reports wall-clock per connection (google-benchmark) and a quality
/// summary: vertices/cells examined, wire length and corners.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "levelb/path_finder.hpp"
#include "maze/hightower.hpp"
#include "maze/lee.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace {

using namespace ocr;
using geom::Point;
using geom::Rect;

/// Builds a grid with scattered obstacles, deterministic in `seed`.
tig::TrackGrid make_grid(geom::Coord size, int obstacles,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  auto grid = tig::TrackGrid::uniform(Rect(0, 0, size, size), 9, 11);
  for (int k = 0; k < obstacles; ++k) {
    const geom::Coord x = rng.uniform_int(0, size - 60);
    const geom::Coord y = rng.uniform_int(0, size - 60);
    const Rect r(x, y, x + rng.uniform_int(20, 50),
                 y + rng.uniform_int(20, 50));
    grid.block_region_h(r);
    grid.block_region_v(r);
  }
  return grid;
}

std::pair<Point, Point> far_pair(const tig::TrackGrid& grid,
                                 util::Rng& rng) {
  const Point a = grid.crossing(
      static_cast<int>(rng.uniform_int(0, grid.num_h() / 4)),
      static_cast<int>(rng.uniform_int(0, grid.num_v() / 4)));
  const Point b = grid.crossing(
      static_cast<int>(
          rng.uniform_int(3 * grid.num_h() / 4, grid.num_h() - 1)),
      static_cast<int>(
          rng.uniform_int(3 * grid.num_v() / 4, grid.num_v() - 1)));
  return {a, b};
}

void BM_Mbfs(benchmark::State& state) {
  const auto size = static_cast<geom::Coord>(state.range(0));
  const auto grid = make_grid(size, static_cast<int>(size) / 100, 7);
  const levelb::PathFinder finder(grid);
  const auto ctx = levelb::make_cost_context(grid, nullptr);
  util::Rng rng(99);
  for (auto _ : state) {
    auto [a, b] = far_pair(grid, rng);
    benchmark::DoNotOptimize(finder.connect(a, b, ctx));
  }
}
BENCHMARK(BM_Mbfs)->Arg(500)->Arg(1000)->Arg(2000);

void BM_Lee(benchmark::State& state) {
  const auto size = static_cast<geom::Coord>(state.range(0));
  const auto grid = make_grid(size, static_cast<int>(size) / 100, 7);
  util::Rng rng(99);
  for (auto _ : state) {
    auto [a, b] = far_pair(grid, rng);
    benchmark::DoNotOptimize(maze::lee_connect(grid, a, b));
  }
}
BENCHMARK(BM_Lee)->Arg(500)->Arg(1000)->Arg(2000);

void BM_Hightower(benchmark::State& state) {
  const auto size = static_cast<geom::Coord>(state.range(0));
  const auto grid = make_grid(size, static_cast<int>(size) / 100, 7);
  util::Rng rng(99);
  for (auto _ : state) {
    auto [a, b] = far_pair(grid, rng);
    benchmark::DoNotOptimize(maze::hightower_connect(grid, a, b));
  }
}
BENCHMARK(BM_Hightower)->Arg(500)->Arg(1000)->Arg(2000);

void print_quality_table() {
  util::TextTable table;
  table.set_header({"Grid", "Router", "Examined", "Wire length", "Corners",
                    "Found"});
  for (geom::Coord size : {500, 1000, 2000}) {
    const auto grid = make_grid(size, static_cast<int>(size) / 100, 7);
    const levelb::PathFinder finder(grid);
    const auto ctx = levelb::make_cost_context(grid, nullptr);
    util::Rng rng(99);
    long long mbfs_examined = 0;
    long long mbfs_wl = 0;
    int mbfs_corners = 0;
    int mbfs_found = 0;
    long long lee_examined = 0;
    long long lee_wl = 0;
    int lee_corners = 0;
    int lee_found = 0;
    long long ht_examined = 0;
    long long ht_wl = 0;
    int ht_corners = 0;
    int ht_found = 0;
    constexpr int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
      auto [a, b] = far_pair(grid, rng);
      const auto m = finder.connect(a, b, ctx);
      if (m.found) {
        ++mbfs_found;
        mbfs_examined += m.stats.vertices_examined;
        mbfs_wl += m.path.length();
        mbfs_corners += m.corners;
      }
      const auto l = maze::lee_connect(grid, a, b);
      if (l.found) {
        ++lee_found;
        lee_examined += l.cells_expanded;
        lee_wl += l.path.length();
        lee_corners += l.path.corners();
      }
      const auto h = maze::hightower_connect(grid, a, b);
      if (h.found) {
        ++ht_found;
        ht_examined += h.probes_expanded;
        ht_wl += h.path.length();
        ht_corners += h.path.corners();
      }
    }
    const auto label = util::format("%lldx%lld", static_cast<long long>(size),
                                    static_cast<long long>(size));
    table.add_row({label, "MBFS (paper)",
                   util::format("%lld", mbfs_examined / kTrials),
                   util::format("%lld", mbfs_wl / kTrials),
                   util::format("%.1f",
                                static_cast<double>(mbfs_corners) / kTrials),
                   util::format("%d/%d", mbfs_found, kTrials)});
    table.add_row({label, "Lee maze",
                   util::format("%lld", lee_examined / kTrials),
                   util::format("%lld", lee_wl / kTrials),
                   util::format("%.1f",
                                static_cast<double>(lee_corners) / kTrials),
                   util::format("%d/%d", lee_found, kTrials)});
    const int ht_n = std::max(ht_found, 1);
    table.add_row({label, "Hightower",
                   util::format("%lld", ht_examined / ht_n),
                   util::format("%lld", ht_wl / ht_n),
                   util::format("%.1f",
                                static_cast<double>(ht_corners) / ht_n),
                   util::format("%d/%d", ht_found, kTrials)});
    table.add_separator();
  }
  std::puts("\nAblation A: MBFS track search vs Lee maze router (quality)");
  std::fputs(table.render().c_str(), stdout);
  std::puts("MBFS examines track segments; Lee expands grid cells — the "
            "paper's efficiency argument.");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_quality_table();
  return 0;
}

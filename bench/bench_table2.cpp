/// \file bench_table2.cpp
/// \brief Regenerates the paper's Table 2: percent reductions of the
/// proposed 4-layer over-cell router over a two-layer channel router, in
/// layout area, total wire length and via count, for the three examples.

#include <cstdio>

#include "bench_data/synthetic.hpp"
#include "flow/flow.hpp"
#include "partition/partition.hpp"
#include "report/tables.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main() {
  using namespace ocr;
  std::vector<report::Table2Row> rows;
  util::TextTable detail;
  detail.set_header({"Example", "Flow", "Area", "Wire length", "Vias",
                     "Tracks", "B-completion"});
  for (const auto& spec : {bench_data::ami33_spec(), bench_data::xerox_spec(),
                           bench_data::ex3_spec()}) {
    const auto ml = bench_data::generate_macro_layout(spec);
    const auto layout = ml.assemble(
        std::vector<geom::Coord>(static_cast<std::size_t>(ml.num_channels()),
                                 0));
    const auto partition = partition::partition_by_class(layout);

    report::Table2Row row;
    row.baseline = flow::run_two_layer_flow(ml);
    row.proposed = flow::run_over_cell_flow(ml, partition);
    rows.push_back(row);

    for (const flow::FlowMetrics* m : {&row.baseline, &row.proposed}) {
      detail.add_row({m->example_name, m->flow_name,
                      util::with_commas(m->layout_area),
                      util::with_commas(m->wire_length),
                      util::format("%d", m->vias),
                      util::format("%d", m->total_channel_tracks),
                      util::format("%.3f", m->levelb_completion)});
    }
    detail.add_separator();
  }
  std::fputs(report::render_table2(rows).c_str(), stdout);
  std::puts("\nAbsolute metrics behind the reductions:");
  std::fputs(detail.render().c_str(), stdout);
  std::puts("\nThe paper reports significant reductions in all three "
            "metrics (Table 2); absolute values differ because the\n"
            "benchmarks are synthetic reconstructions (see DESIGN.md).");
  return 0;
}

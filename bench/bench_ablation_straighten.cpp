/// \file bench_ablation_straighten.cpp
/// \brief Ablation F: the corner-straightening post-pass (extension).
///
/// The paper's quality metrics are directional changes (vias) and wire
/// length (§3). This bench measures how much a post-route straightening
/// pass recovers on the three examples: detours forced by since-moved
/// congestion flatten back into minimum-corner form.

#include <cstdio>

#include "bench_data/synthetic.hpp"
#include "flow/flow.hpp"
#include "partition/partition.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main() {
  using namespace ocr;
  util::TextTable table;
  table.set_header({"Example", "Post-pass", "Wire length", "Vias",
                    "B-completion"});
  // The three examples route without congestion (their detour count is
  // already minimal); a dense instance shows the recovery.
  auto dense = bench_data::random_spec(404, 1.0);
  dense.name = "dense";
  dense.num_signal_nets = 260;
  dense.cell_w_min = 200;
  dense.cell_w_max = 520;
  dense.cell_h_min = 160;
  dense.cell_h_max = 320;
  for (const auto& spec : {bench_data::ami33_spec(), bench_data::xerox_spec(),
                           bench_data::ex3_spec(), dense}) {
    const auto ml = bench_data::generate_macro_layout(spec);
    const auto layout = ml.assemble(
        std::vector<geom::Coord>(static_cast<std::size_t>(ml.num_channels()),
                                 0));
    const auto partition = partition::partition_by_class(layout);
    for (const bool straighten : {false, true}) {
      flow::FlowOptions options;
      options.straighten_levelb = straighten;
      const auto m = flow::run_over_cell_flow(ml, partition, options);
      table.add_row({m.example_name, straighten ? "on" : "off",
                     util::with_commas(m.wire_length),
                     util::format("%d", m.vias),
                     util::format("%.3f", m.levelb_completion)});
    }
    table.add_separator();
  }
  std::puts("Ablation F: corner-straightening post-pass (extension)");
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nNegative result worth recording: the serial MBFS is already "
            "minimum-corner\nagainst the blockage present at route time, "
            "and blockage only accumulates,\nso there is nothing to recover "
            "on these instances — the paper's per-\nconnection optimality "
            "holds up. The pass earns its keep after rip-up\nchurn or "
            "manual edits (see levelb_optimize_test), and never regresses.");
  return 0;
}

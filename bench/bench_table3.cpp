/// \file bench_table3.cpp
/// \brief Regenerates the paper's Table 3: layout-area comparison of the
/// 4-layer over-cell router against 4-layer channel routing — both the
/// paper's optimistic 50%-track model and a real layer-pair channel
/// router.

#include <cstdio>

#include "bench_data/synthetic.hpp"
#include "flow/flow.hpp"
#include "partition/partition.hpp"
#include "report/tables.hpp"

int main() {
  using namespace ocr;
  std::vector<report::Table3Row> rows;
  for (const auto& spec : {bench_data::ami33_spec(), bench_data::xerox_spec(),
                           bench_data::ex3_spec()}) {
    const auto ml = bench_data::generate_macro_layout(spec);
    const auto layout = ml.assemble(
        std::vector<geom::Coord>(static_cast<std::size_t>(ml.num_channels()),
                                 0));
    const auto partition = partition::partition_by_class(layout);

    report::Table3Row row;
    row.fifty_percent_model = flow::run_fifty_percent_model_flow(ml);
    row.four_layer_channel = flow::run_four_layer_channel_flow(ml);
    row.over_cell = flow::run_over_cell_flow(ml, partition);
    rows.push_back(row);
  }
  std::fputs(report::render_table3(rows).c_str(), stdout);
  std::puts("\nPaper's Table 3 (their 50% model vs their over-cell areas):\n"
            "  ami33: 2,261,480 -> 1,874,880 (17.1% further reduction)\n"
            "  Xerox: ~22.2M   -> 21,101,200 (~5%)\n"
            "  ex3:   3,548,475 -> 3,061,635 (13.7%)\n"
            "Shape check: the over-cell router beats even the optimistic\n"
            "multi-layer channel model on every example, as the paper found.");
  return 0;
}

/// \file bench_ablation_weights.cpp
/// \brief Ablation B: sensitivity of the §3.2 cost weights.
///
/// The paper: "for routing problems with sparse net distributions it is
/// sufficient to balance the two terms by setting w1 = 1 and w21 = w22 =
/// w23 = 1/2. For dense distributions the second term should be weighted
/// more to reduce the possibility of blocking unrouted nets." This bench
/// sweeps the corner-term weight on a dense instance and reports
/// completion, wire length and corners.

#include <cstdio>

#include "bench_data/synthetic.hpp"
#include "flow/flow.hpp"
#include "partition/partition.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main() {
  using namespace ocr;
  // A dense instance: more nets than the default, smaller cells.
  auto spec = bench_data::random_spec(404, 1.0);
  spec.num_signal_nets = 260;
  spec.cell_w_min = 200;
  spec.cell_w_max = 520;
  spec.cell_h_min = 160;
  spec.cell_h_max = 320;
  const auto ml = bench_data::generate_macro_layout(spec);
  const auto layout = ml.assemble(
      std::vector<geom::Coord>(static_cast<std::size_t>(ml.num_channels()),
                               0));
  const auto partition = partition::partition_by_class(layout);

  util::TextTable table;
  table.set_header({"w2x (w1=1)", "B-completion", "Wire length", "Vias",
                    "Area"});
  for (const double w2 : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    flow::FlowOptions options;
    options.levelb.finder.weights.w21 = w2;
    options.levelb.finder.weights.w22 = w2;
    options.levelb.finder.weights.w23 = w2;
    const auto m = flow::run_over_cell_flow(ml, partition, options);
    table.add_row({util::format("%.2f", w2),
                   util::format("%.3f", m.levelb_completion),
                   util::with_commas(m.wire_length),
                   util::format("%d", m.vias),
                   util::with_commas(m.layout_area)});
  }
  std::puts("Ablation B: cost-weight sensitivity (dense instance, "
            "paper §3.2)");
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nExpected shape: w2x = 0 (pure wire length) risks blocking "
            "unrouted nets;\nmoderate corner weights trade a little wire "
            "length for completion.");
  return 0;
}

/// \file bench_mbfs.cpp
/// \brief MBFS hot-path microbenchmark harness: connect-level throughput
/// of the level-B path finder (paper §3.1/§3.2) on synthetic and
/// ami33-derived instances.
///
/// Two measurement families:
///
/// * **Connect sweep** — the grid is first routed to its final occupancy,
///   then every net's two-terminal connections are re-searched against
///   that congested state. Each PathFinder::connect call is timed
///   individually, giving connects/sec, MBFS vertices/sec and p50/p95
///   per-connect latency (nearest-rank percentiles). The sweep also runs
///   on 2/4/8 threads (one private grid copy per thread, as the parallel
///   engine's workers do) to expose allocator contention in the hot path;
///   the threaded percentiles pool every thread's samples.
/// * **Full route** — wall clock of the serial router and the parallel
///   engine at 1/2/4/8 workers, with a bit-identity check against the
///   serial result on every engine run.
///
/// `--repeat N` (default 3) runs each timed section N times after one
/// warm-up and reports the median. `--quick` shrinks the instance set and
/// repeats for CI smoke use. `--json` writes BENCH_mbfs.json. `--label S`
/// tags every JSON record (used to distinguish before/after captures).
/// `--gap-cache on|off` toggles the free-gap cache for A/B runs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_data/levelb_instance.hpp"
#include "bench_data/synthetic.hpp"
#include "engine/engine.hpp"
#include "floorplan/macro_layout.hpp"
#include "levelb/router.hpp"
#include "levelb/workspace.hpp"
#include "netlist/layout.hpp"
#include "tig/track_grid.hpp"
#include "util/manifest.hpp"
#include "util/mem.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

namespace {

using namespace ocr;
using geom::Point;
using geom::Rect;

double ms_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Lower median of a sample (deterministic for even sizes).
double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[(v.size() - 1) / 2];
}

/// Nearest-rank percentile of a sorted sample, q in [0, 1].
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

/// A pristine routing instance: grid + nets, never mutated in place.
struct Instance {
  std::string name;
  tig::TrackGrid grid;
  std::vector<levelb::BNet> nets;
  /// Skip the connect sweep (full-route rows only) — used for the large
  /// scaling instance, whose sweep would dominate quick-mode runtime
  /// without measuring anything the smaller instances don't.
  bool route_only = false;
};

std::vector<levelb::BNet> random_nets(util::Rng& rng, geom::Coord size,
                                      int count) {
  // Same generator as bench_scaling so the instances line up across the
  // two harnesses.
  std::vector<levelb::BNet> nets;
  for (int n = 0; n < count; ++n) {
    levelb::BNet net{n, {}, false};
    const int degree = static_cast<int>(rng.uniform_int(2, 4));
    for (int t = 0; t < degree; ++t) {
      net.terminals.push_back(
          Point{rng.uniform_int(0, size - 1), rng.uniform_int(0, size - 1)});
    }
    nets.push_back(std::move(net));
  }
  return nets;
}

Instance synthetic_instance(const char* name, geom::Coord size, int count,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  Instance inst{name, tig::TrackGrid::uniform(Rect(0, 0, size, size), 9, 11),
                {}};
  inst.nets = random_nets(rng, size, count);
  return inst;
}

/// The ami33-derived instance: the Table-1 synthetic ami33 floorplan
/// assembled with fixed channel heights, all signal nets routed over-cell.
Instance ami33_instance() {
  const floorplan::MacroLayout ml =
      bench_data::generate_macro_layout(bench_data::ami33_spec());
  const std::vector<geom::Coord> heights(
      static_cast<std::size_t>(ml.num_channels()), 60);
  const netlist::Layout layout = ml.assemble(heights);
  const geom::DesignRules& rules = layout.rules();
  tig::TrackGrid grid = tig::TrackGrid::uniform(
      layout.die(), rules.rule(geom::Layer::kMetal3).pitch(),
      rules.rule(geom::Layer::kMetal4).pitch());
  for (const netlist::Obstacle& ob : layout.obstacles()) {
    if (ob.blocks_metal3) grid.block_region_h(ob.region);
    if (ob.blocks_metal4) grid.block_region_v(ob.region);
  }
  Instance inst{"ami33", std::move(grid), {}};
  for (std::size_t n = 0; n < layout.nets().size(); ++n) {
    if (layout.nets()[n].net_class != netlist::NetClass::kSignal) continue;
    auto pins = layout.net_pin_positions(
        netlist::NetId(static_cast<std::uint32_t>(n)));
    if (pins.size() < 2) continue;
    inst.nets.push_back(
        levelb::BNet{static_cast<int>(n), std::move(pins), false});
  }
  return inst;
}

// ---- connect sweep ------------------------------------------------------

/// Final-occupancy grid plus the snapped terminals that produced it.
struct Prepared {
  tig::TrackGrid grid;
  std::vector<std::vector<Point>> snapped;  ///< by net index
};

/// Routes the instance serially (first pass only, no rip-up) so the sweep
/// queries run against realistic end-state congestion.
Prepared prepare_final_occupancy(const Instance& inst) {
  Prepared p{inst.grid, {}};
  const std::vector<std::size_t> order =
      levelb::order_nets(inst.nets, levelb::NetOrdering::kLongestFirst);
  p.snapped = levelb::snap_and_reserve_terminals(p.grid, inst.nets);
  const levelb::UnroutedSuffix unrouted(p.snapped, order);
  const levelb::LevelBOptions options;
  levelb::SearchStats stats;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const levelb::BNet& net = inst.nets[order[k]];
    for (const Point& pt : p.snapped[order[k]]) {
      levelb::unblock_terminal(p.grid, pt);
    }
    std::vector<levelb::Committed> committed;
    levelb::route_single_net(
        p.grid, options,
        levelb::NetRouteRequest{net.id, &p.snapped[order[k]],
                                unrouted.suffix(k), nullptr},
        committed, stats);
    for (const Point& pt : p.snapped[order[k]]) {
      levelb::block_terminal(p.grid, pt);
    }
    levelb::commit_extents(p.grid, committed);
  }
  return p;
}

/// One two-terminal search of the sweep.
struct Query {
  std::size_t net = 0;  ///< net index (its terminals are unblocked around
                        ///< the connect, like a real retry)
  Point a;
  Point b;
};

std::vector<Query> make_queries(const Prepared& p) {
  std::vector<Query> queries;
  for (std::size_t n = 0; n < p.snapped.size(); ++n) {
    // Consecutive distinct snapped terminal pairs.
    std::vector<Point> distinct;
    for (const Point& t : p.snapped[n]) {
      if (std::find(distinct.begin(), distinct.end(), t) == distinct.end()) {
        distinct.push_back(t);
      }
    }
    for (std::size_t t = 0; t + 1 < distinct.size(); ++t) {
      queries.push_back(Query{n, distinct[t], distinct[t + 1]});
    }
  }
  return queries;
}

struct SweepResult {
  double wall_ms = 0.0;
  long long vertices = 0;
  long long found = 0;  ///< determinism checksum (connects that succeeded)
  std::vector<double> latencies_us;  ///< per-connect, latency pass only
};

/// Runs every query once against \p grid (a private copy of the prepared
/// occupancy). \p record_latency additionally captures per-call times.
SweepResult run_sweep(const Prepared& p, const std::vector<Query>& queries,
                      tig::TrackGrid& grid, bool record_latency) {
  SweepResult out;
  if (record_latency) out.latencies_us.reserve(queries.size());
  const levelb::PathFinder finder(grid, levelb::PathFinderOptions{});
  const levelb::CostContext ctx = levelb::make_cost_context(grid, nullptr);
  // Caller-owned scratch, reused across the whole sweep — the same
  // lifecycle the serial router and engine workers use.
  levelb::SearchWorkspace ws;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Query& q : queries) {
    for (const Point& t : p.snapped[q.net]) {
      levelb::unblock_terminal(grid, t);
    }
    const auto s = std::chrono::steady_clock::now();
    const levelb::PathFinder::Result r = finder.connect(q.a, q.b, ctx, ws);
    if (record_latency) out.latencies_us.push_back(ms_since(s) * 1000.0);
    out.vertices += r.stats.vertices_examined;
    out.found += r.found ? 1 : 0;
    for (const Point& t : p.snapped[q.net]) {
      levelb::block_terminal(grid, t);
    }
  }
  out.wall_ms = ms_since(t0);
  return out;
}

struct ConnectRow {
  int threads = 1;
  long long connects = 0;
  double wall_ms = 0.0;          ///< median across repeats
  double connects_per_sec = 0.0;
  double vertices_per_sec = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
};

/// Single-thread sweep with repeats + latency percentiles.
ConnectRow connect_serial(const Prepared& p,
                          const std::vector<Query>& queries, int repeat) {
  ConnectRow row;
  row.connects = static_cast<long long>(queries.size());
  std::vector<double> walls;
  long long vertices = 0;
  std::vector<double> latencies;
  for (int r = 0; r <= repeat; ++r) {
    tig::TrackGrid grid = p.grid;
    SweepResult sweep = run_sweep(p, queries, grid, r == repeat);
    if (r == 0) continue;  // warm-up
    walls.push_back(sweep.wall_ms);
    vertices = sweep.vertices;
    if (!sweep.latencies_us.empty()) latencies = std::move(sweep.latencies_us);
  }
  row.wall_ms = median(walls);
  const double secs = row.wall_ms / 1000.0;
  row.connects_per_sec =
      secs > 0.0 ? static_cast<double>(row.connects) / secs : 0.0;
  row.vertices_per_sec =
      secs > 0.0 ? static_cast<double>(vertices) / secs : 0.0;
  std::sort(latencies.begin(), latencies.end());
  row.p50_us = percentile(latencies, 0.50);
  row.p95_us = percentile(latencies, 0.95);
  return row;
}

/// Multi-thread sweep: each thread runs the whole query list on its own
/// grid copy (the engine worker pattern); wall = slowest thread. The last
/// repeat records per-connect latencies on every thread; the percentiles
/// come from the pooled samples, so p50/p95 reflect what any one connect
/// experienced under contention rather than a single thread's view.
ConnectRow connect_parallel(const Prepared& p,
                            const std::vector<Query>& queries, int threads,
                            int repeat) {
  ConnectRow row;
  row.threads = threads;
  row.connects = static_cast<long long>(queries.size()) * threads;
  std::vector<double> walls;
  long long vertices = 0;
  std::vector<double> latencies;
  for (int r = 0; r <= repeat; ++r) {
    const bool record_latency = r == repeat;
    std::vector<tig::TrackGrid> grids(static_cast<std::size_t>(threads),
                                      p.grid);
    std::vector<SweepResult> results(static_cast<std::size_t>(threads));
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        results[static_cast<std::size_t>(t)] =
            run_sweep(p, queries, grids[static_cast<std::size_t>(t)],
                      record_latency);
      });
    }
    for (std::thread& t : pool) t.join();
    const double wall = ms_since(t0);
    if (r == 0) continue;
    walls.push_back(wall);
    vertices = 0;
    for (SweepResult& sr : results) {
      vertices += sr.vertices;
      latencies.insert(latencies.end(), sr.latencies_us.begin(),
                       sr.latencies_us.end());
    }
  }
  row.wall_ms = median(walls);
  const double secs = row.wall_ms / 1000.0;
  row.connects_per_sec =
      secs > 0.0 ? static_cast<double>(row.connects) / secs : 0.0;
  row.vertices_per_sec =
      secs > 0.0 ? static_cast<double>(vertices) / secs : 0.0;
  std::sort(latencies.begin(), latencies.end());
  row.p50_us = percentile(latencies, 0.50);
  row.p95_us = percentile(latencies, 0.95);
  return row;
}

// ---- full route ---------------------------------------------------------

struct RouteRow {
  std::string mode;  ///< "serial", "engine" (speculative) or "sharded"
  int threads = 1;
  double wall_ms = 0.0;  ///< median across repeats
  bool identical = true;
  int routed = 0;
  long long vertices = 0;
  // Engine work metrics (zero for the serial row). These are
  // hardware-independent: they gate scaling regressions even on hosts
  // where wall-clock speedup is noise (e.g. single-core CI runners).
  long long speculation_aborts = 0;
  long long wasted_vertices = 0;
  long long grid_copies = 0;
  long long batches = 0;        ///< sharded rows: batches dispatched
  long long boundary_nets = 0;  ///< sharded rows: escapes re-routed
  double speedup_vs_1t = 0.0;  ///< same-mode-1-thread wall / this wall
  // Memory datapoints (chunked-storage accounting; see DESIGN.md §11).
  long long grid_bytes = 0;    ///< routed grid's occupancy bytes
  long long peak_rss_kb = 0;   ///< process high-water RSS after the run
};

RouteRow route_serial(const Instance& inst, int repeat,
                      levelb::LevelBResult& expected) {
  RouteRow row{"serial", 1, 0.0, true, 0, 0};
  std::vector<double> walls;
  for (int r = 0; r <= repeat; ++r) {
    tig::TrackGrid grid = inst.grid;
    levelb::LevelBRouter router(grid);
    const auto t0 = std::chrono::steady_clock::now();
    levelb::LevelBResult result = router.route(inst.nets);
    const double wall = ms_since(t0);
    if (r > 0) walls.push_back(wall);
    row.routed = result.routed_nets;
    row.vertices = result.vertices_examined;
    row.grid_bytes = static_cast<long long>(grid.grid_bytes());
    expected = std::move(result);
  }
  row.wall_ms = median(walls);
  row.peak_rss_kb = util::peak_rss_kb();
  return row;
}

RouteRow route_engine(const Instance& inst, engine::EngineMode mode,
                      int threads, int repeat,
                      const levelb::LevelBResult& expected) {
  RouteRow row{mode == engine::EngineMode::kSharded ? "sharded" : "engine",
               threads};
  std::vector<double> walls;
  for (int r = 0; r <= repeat; ++r) {
    tig::TrackGrid grid = inst.grid;
    engine::EngineOptions options;
    options.threads = threads;
    options.mode = mode;
    engine::RoutingEngine router(grid, options);
    const auto t0 = std::chrono::steady_clock::now();
    const levelb::LevelBResult result = router.route(inst.nets);
    const double wall = ms_since(t0);
    if (r > 0) walls.push_back(wall);
    row.identical = result == expected;
    row.routed = result.routed_nets;
    row.vertices = result.vertices_examined;
    const engine::EngineStats& stats = router.stats();
    row.speculation_aborts = stats.speculation_aborts;
    row.wasted_vertices =
        stats.wasted_vertices + stats.sharded_wasted_vertices;
    row.grid_copies = stats.grid_copies;
    row.batches = stats.batches;
    row.boundary_nets = stats.boundary_nets;
    row.grid_bytes = static_cast<long long>(grid.grid_bytes());
  }
  row.wall_ms = median(walls);
  row.peak_rss_kb = util::peak_rss_kb();
  return row;
}

// ---- driver -------------------------------------------------------------

struct Config {
  bool quick = false;
  bool json = false;
  int repeat = 3;
  std::string label = "current";
  bool gap_cache = true;
  bool connect_only = false;  ///< skip full-route rows (profiling aid)
};

/// Full-route comparison: serial baseline, then the speculative and
/// sharded engine dispatches across the thread sweep. Every engine run is
/// identity-checked against the serial result; speedup_vs_1t is relative
/// to the same mode at 1 thread (= serial dispatch), which is what the CI
/// scaling gate reads.
void run_route_rows(const Instance& inst, const Config& cfg,
                    util::TraceSink* json) {
  util::TextTable route_table;
  route_table.set_header({"Mode", "Threads", "Wall ms", "Speedup",
                          "Identical", "Routed", "Batches", "Boundary"});
  levelb::LevelBResult expected;
  const RouteRow serial = route_serial(inst, cfg.repeat, expected);
  route_table.add_row({serial.mode, "1", util::format("%.1f", serial.wall_ms),
                       "1.00x", "-", util::format("%d", serial.routed), "-",
                       "-"});
  std::vector<RouteRow> rows{serial};
  // Quick mode keeps the 1-thread engine run so speedup_vs_1t is always
  // derivable from a single JSON capture (the CI smoke gate reads it).
  const std::vector<int> route_threads =
      cfg.quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  for (const engine::EngineMode mode :
       {engine::EngineMode::kSpeculative, engine::EngineMode::kSharded}) {
    double mode_1t_ms = 0.0;
    for (const int threads : route_threads) {
      RouteRow row = route_engine(inst, mode, threads, cfg.repeat, expected);
      if (threads == 1) mode_1t_ms = row.wall_ms;
      row.speedup_vs_1t =
          row.wall_ms > 0.0 && mode_1t_ms > 0.0 ? mode_1t_ms / row.wall_ms
                                                : 0.0;
      const bool sharded = mode == engine::EngineMode::kSharded;
      route_table.add_row(
          {row.mode, util::format("%d", threads),
           util::format("%.1f", row.wall_ms),
           util::format("%.2fx", serial.wall_ms / row.wall_ms),
           row.identical ? "yes" : "NO", util::format("%d", row.routed),
           sharded ? util::format("%lld", row.batches) : "-",
           sharded ? util::format("%lld", row.boundary_nets) : "-"});
      rows.push_back(row);
    }
  }
  std::printf("Full route (%d repeats, median)\n", cfg.repeat);
  std::fputs(route_table.render().c_str(), stdout);
  if (json != nullptr) {
    for (const RouteRow& row : rows) {
      util::TraceEvent ev("mbfs_route");
      ev.add("label", cfg.label)
          .add("instance", inst.name)
          .add("mode", row.mode)
          .add("threads", row.threads)
          .add("wall_ms", row.wall_ms)
          .add("identical", row.identical)
          .add("routed_nets", row.routed)
          .add("vertices", static_cast<long long>(row.vertices))
          .add("speedup_vs_1t", row.speedup_vs_1t)
          .add("speculation_aborts", row.speculation_aborts)
          .add("wasted_vertices", row.wasted_vertices)
          .add("batches", row.batches)
          .add("boundary_nets", row.boundary_nets)
          .add("grid_copies", row.grid_copies)
          .add("grid_bytes", row.grid_bytes)
          .add("peak_rss_kb", row.peak_rss_kb)
          .add("gap_cache", cfg.gap_cache);
      json->record(std::move(ev));
    }
  }
  std::printf("memory: %s grid bytes (serial), %s KB peak RSS\n",
              util::with_commas(serial.grid_bytes).c_str(),
              util::with_commas(rows.back().peak_rss_kb).c_str());
}

void bench_instance(const Instance& inst, const Config& cfg,
                    util::TraceSink* json) {
  std::printf("\n=== %s: %d nets, grid %d x %d ===\n", inst.name.c_str(),
              static_cast<int>(inst.nets.size()), inst.grid.num_h(),
              inst.grid.num_v());

  if (inst.route_only) {
    run_route_rows(inst, cfg, json);
    return;
  }

  // Connect sweep.
  const Prepared prepared = prepare_final_occupancy(inst);
  const std::vector<Query> queries = make_queries(prepared);
  const std::vector<int> sweep_threads =
      cfg.quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  util::TextTable sweep_table;
  sweep_table.set_header({"Threads", "Connects", "Wall ms", "Connects/s",
                          "MVertices/s", "p50 us", "p95 us"});
  double sweep_1t_rate = 0.0;
  for (const int threads : sweep_threads) {
    const ConnectRow row =
        threads == 1
            ? connect_serial(prepared, queries, cfg.repeat)
            : connect_parallel(prepared, queries, threads, cfg.repeat);
    if (threads == 1) sweep_1t_rate = row.connects_per_sec;
    // Aggregate throughput per connect: >1x means the threads route more
    // connects per second together than one thread does alone.
    const double speedup_vs_1t =
        sweep_1t_rate > 0.0 ? row.connects_per_sec / sweep_1t_rate : 0.0;
    sweep_table.add_row(
        {util::format("%d", threads), util::format("%lld", row.connects),
         util::format("%.2f", row.wall_ms),
         util::format("%.0f", row.connects_per_sec),
         util::format("%.2f", row.vertices_per_sec / 1e6),
         util::format("%.1f", row.p50_us),
         util::format("%.1f", row.p95_us)});
    if (json != nullptr) {
      util::TraceEvent ev("mbfs_connect");
      ev.add("label", cfg.label)
          .add("instance", inst.name)
          .add("threads", threads)
          .add("connects", row.connects)
          .add("wall_ms", row.wall_ms)
          .add("connects_per_sec", row.connects_per_sec)
          .add("vertices_per_sec", row.vertices_per_sec)
          .add("p50_us", row.p50_us)
          .add("p95_us", row.p95_us)
          .add("speedup_vs_1t", speedup_vs_1t)
          .add("gap_cache", cfg.gap_cache);
      json->record(std::move(ev));
    }
  }
  std::printf("Connect sweep (final-occupancy grid, %d repeats, median)\n",
              cfg.repeat);
  std::fputs(sweep_table.render().c_str(), stdout);
  if (cfg.connect_only) return;

  run_route_rows(inst, cfg, json);
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.quick = true;
      cfg.repeat = 1;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      cfg.json = true;
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      cfg.repeat = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      cfg.label = argv[++i];
    } else if (std::strcmp(argv[i], "--gap-cache") == 0 && i + 1 < argc) {
      cfg.gap_cache = std::strcmp(argv[++i], "off") != 0;
    } else if (std::strcmp(argv[i], "--connect-only") == 0) {
      cfg.connect_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_mbfs [--quick] [--json] [--repeat N] "
                   "[--label S] [--gap-cache on|off] [--connect-only]\n");
      return 2;
    }
  }

  tig::GapCache::set_enabled(cfg.gap_cache);

  util::TraceSink json;
  util::TraceSink* sink = cfg.json ? &json : nullptr;
  if (sink != nullptr) {
    util::TraceEvent meta("mbfs_meta");
    meta.add("label", cfg.label)
        .add("quick", cfg.quick)
        .add("repeat", cfg.repeat)
        .add("gap_cache", cfg.gap_cache);
    sink->record(std::move(meta));
  }

  std::vector<Instance> instances;
  instances.push_back(synthetic_instance("sparse-1000", 1000, 100, 5));
  if (!cfg.quick) {
    instances.push_back(synthetic_instance("dense-700", 700, 140, 7));
  }
  instances.push_back(ami33_instance());
  // The scaling headliner: ~1.2k local nets on a 5000-dbu die. Full-route
  // rows only (its connect sweep would dwarf the others without adding
  // signal), in quick mode too — the CI sharded-speedup gate reads it.
  {
    bench_data::LevelBInstance big =
        bench_data::generate_levelb_instance(bench_data::sparse5000_spec());
    instances.push_back(Instance{std::move(big.name), std::move(big.grid),
                                 std::move(big.nets), /*route_only=*/true});
  }
  // The large-*grid* datapoint: the 200k-dbu die (~40k tracks) with a
  // CI-affordable net count. Chunked storage is what makes this row
  // possible at all — a dense grid would carry every track's containers
  // through all the per-thread copies. bench-smoke reads its peak RSS.
  {
    bench_data::LevelBInstance large =
        bench_data::generate_levelb_instance(bench_data::sparse100k_ci_spec());
    instances.push_back(Instance{std::move(large.name),
                                 std::move(large.grid),
                                 std::move(large.nets),
                                 /*route_only=*/true});
  }
  // Undocumented profiling aid: run a single instance by name.
  const char* only = std::getenv("BENCH_MBFS_ONLY");
  for (const Instance& inst : instances) {
    if (only != nullptr && inst.name != only) continue;
    bench_instance(inst, cfg, sink);
  }

  if (cfg.json) {
    const std::string path = "BENCH_mbfs.json";
    if (!json.write_json_file(path)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu records)\n", path.c_str(), json.size());

    // Companion run manifest: configuration + provenance + the metrics
    // the routed instances accumulated, so a captured number can be
    // traced back to the exact build and settings that produced it.
    util::RunManifest manifest("bench_mbfs");
    manifest.add_config("quick", cfg.quick);
    manifest.add_config("repeat", cfg.repeat);
    manifest.add_config("label", cfg.label);
    manifest.add_config("gap_cache", cfg.gap_cache);
    manifest.add_config("connect_only", cfg.connect_only);
    manifest.add_outcome("records", static_cast<long long>(json.size()));
    manifest.capture_metrics(util::MetricsRegistry::global());
    const std::string mpath = "BENCH_mbfs.manifest.json";
    if (!manifest.write_json_file(mpath)) {
      std::fprintf(stderr, "error: cannot write %s\n", mpath.c_str());
      return 1;
    }
    std::printf("wrote %s (run manifest)\n", mpath.c_str());
  }
  return 0;
}

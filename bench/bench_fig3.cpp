/// \file bench_fig3.cpp
/// \brief Reproduces the paper's Figure 3: the level-B routing of layout
/// example ami33, written as `fig3_ami33_levelB.svg`.

#include <cstdio>

#include "bench_data/synthetic.hpp"
#include "flow/flow.hpp"
#include "partition/partition.hpp"
#include "viz/svg.hpp"

int main() {
  using namespace ocr;
  const auto ml = bench_data::generate_macro_layout(bench_data::ami33_spec());
  const auto zero = ml.assemble(
      std::vector<geom::Coord>(static_cast<std::size_t>(ml.num_channels()),
                               0));
  const auto partition = partition::partition_by_class(zero);

  flow::FlowArtifacts artifacts;
  const flow::FlowMetrics metrics =
      flow::run_over_cell_flow(ml, partition, flow::FlowOptions{},
                               &artifacts);
  std::printf("ami33 over-cell flow: %d level-A nets, %d level-B nets, "
              "completion %.1f%%\n",
              metrics.levela_nets, metrics.levelb_nets,
              100.0 * metrics.levelb_completion);
  std::printf("layout %lld x %lld, area %lld, wire length %lld, vias %d\n",
              static_cast<long long>(metrics.die_width),
              static_cast<long long>(metrics.die_height),
              static_cast<long long>(metrics.layout_area),
              metrics.wire_length, metrics.vias);

  long long levelb_wl = 0;
  int levelb_corners = 0;
  for (const auto& net : artifacts.levelb.nets) {
    levelb_wl += net.wire_length;
    levelb_corners += net.corners;
  }
  std::printf("level B: %lld dbu of metal3/metal4 wiring, %d corner vias\n",
              levelb_wl, levelb_corners);

  const std::string path = "fig3_ami33_levelB.svg";
  if (viz::write_file(path, viz::render_levelb_routing(artifacts))) {
    std::printf("Wrote %s (compare with the paper's Figure 3)\n",
                path.c_str());
  } else {
    std::puts("ERROR: could not write the SVG");
    return 1;
  }
  return metrics.success ? 0 : 1;
}

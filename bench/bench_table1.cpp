/// \file bench_table1.cpp
/// \brief Regenerates the paper's Table 1: information about the three
/// macro-cell layout examples and their level-A partitions.

#include <cstdio>

#include "bench_data/synthetic.hpp"
#include "netlist/stats.hpp"
#include "partition/partition.hpp"
#include "report/tables.hpp"

int main() {
  using namespace ocr;
  std::vector<report::Table1Row> rows;
  for (const auto& spec : {bench_data::ami33_spec(), bench_data::xerox_spec(),
                           bench_data::ex3_spec()}) {
    const auto ml = bench_data::generate_macro_layout(spec);
    const auto layout = ml.assemble(
        std::vector<geom::Coord>(static_cast<std::size_t>(ml.num_channels()),
                                 0));
    const auto partition = partition::partition_by_class(layout);
    report::Table1Row row;
    row.stats = netlist::compute_stats(layout);
    row.level_a = netlist::compute_subset_stats(layout, partition.set_a);
    rows.push_back(row);
  }
  std::fputs(report::render_table1(rows).c_str(), stdout);
  std::puts("\nPaper's level-A partitions: ami33 4 nets (44.25 pins/net), "
            "Xerox 21 (9.19), ex3 56 (3.23).");
  return 0;
}

/// \file bench_scaling.cpp
/// \brief Scaling studies: the paper's §3.4 complexity claims (storage
/// O(h*v), time O(n*h*v)) plus the engine's thread-scaling behaviour —
/// serial router vs the speculative parallel engine at 1/2/4/8 workers,
/// with a bit-identity check on every comparison.
///
/// `--json` additionally writes BENCH_scaling.json (scaling rows + the
/// engine comparison, including per-net effort aggregated from the
/// engine's trace events) for CI consumption. `--repeat N` times each
/// engine-comparison configuration N times (after one untimed warm-up)
/// and reports the median — the warm-up absorbs first-touch page faults
/// and allocator growth, the median rejects scheduler noise.
///
/// `--large` extends the memory study to the full 100k-net sparse-100k
/// instance (minutes of serial routing; default is the CI-bounded
/// sparse-100k-ci, same 200k-dbu die with 4000 nets).
///
/// `--service` switches to the job-service study instead: a batch of
/// materialized jobs through service::JobExecutor at 1/2/4 workers,
/// reporting jobs/sec and p50/p95 end-to-end latency (submit to
/// completion callback), with a determinism check across every result.
/// Combines with `--json`/`--repeat` the same way.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "bench_data/levelb_instance.hpp"
#include "engine/engine.hpp"
#include "levelb/router.hpp"
#include "service/executor.hpp"
#include "service/job.hpp"
#include "service/journal.hpp"
#include "util/fault.hpp"
#include "util/manifest.hpp"
#include "util/mem.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

namespace {

using namespace ocr;
using geom::Point;
using geom::Rect;

std::vector<levelb::BNet> random_nets(util::Rng& rng, geom::Coord size,
                                      int count) {
  std::vector<levelb::BNet> nets;
  for (int n = 0; n < count; ++n) {
    levelb::BNet net{n, {}};
    const int degree = static_cast<int>(rng.uniform_int(2, 4));
    for (int t = 0; t < degree; ++t) {
      net.terminals.push_back(
          Point{rng.uniform_int(0, size - 1), rng.uniform_int(0, size - 1)});
    }
    nets.push_back(std::move(net));
  }
  return nets;
}

/// Full level-B run: grid size and net count as benchmark args.
void BM_LevelBRoute(benchmark::State& state) {
  const auto size = static_cast<geom::Coord>(state.range(0));
  const int nets = static_cast<int>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    util::Rng rng(5);
    auto grid = tig::TrackGrid::uniform(Rect(0, 0, size, size), 9, 11);
    auto bnets = random_nets(rng, size, nets);
    levelb::LevelBRouter router(grid);
    state.ResumeTiming();
    benchmark::DoNotOptimize(router.route(bnets));
  }
}
BENCHMARK(BM_LevelBRoute)
    ->Args({500, 25})
    ->Args({1000, 25})
    ->Args({2000, 25})
    ->Args({1000, 50})
    ->Args({1000, 100})
    ->Unit(benchmark::kMillisecond);

/// Same instance through the parallel engine; third arg = worker threads.
void BM_EngineRoute(benchmark::State& state) {
  const auto size = static_cast<geom::Coord>(state.range(0));
  const int nets = static_cast<int>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  for (auto _ : state) {
    state.PauseTiming();
    util::Rng rng(5);
    auto grid = tig::TrackGrid::uniform(Rect(0, 0, size, size), 9, 11);
    auto bnets = random_nets(rng, size, nets);
    engine::EngineOptions options;
    options.threads = threads;
    engine::RoutingEngine router(grid, options);
    state.ResumeTiming();
    benchmark::DoNotOptimize(router.route(bnets));
  }
}
BENCHMARK(BM_EngineRoute)
    ->Args({1000, 100, 1})
    ->Args({1000, 100, 2})
    ->Args({1000, 100, 4})
    ->Args({1000, 100, 8})
    ->Unit(benchmark::kMillisecond);

std::vector<std::pair<geom::Coord, int>> scaling_instances() {
  return {{500, 25}, {1000, 25}, {2000, 25}, {1000, 50}, {1000, 100}};
}

void print_scaling_table(util::TraceSink* json) {
  util::TextTable table;
  table.set_header({"Grid (h x v)", "Nets", "Vertices examined",
                    "examined / (n*sqrt(hv))", "Completion"});
  for (const auto& [size, nets] : scaling_instances()) {
    util::Rng rng(5);
    auto grid = tig::TrackGrid::uniform(Rect(0, 0, size, size), 9, 11);
    auto bnets = random_nets(rng, size, nets);
    levelb::LevelBRouter router(grid);
    const auto result = router.route(bnets);
    const double hv = static_cast<double>(grid.num_h()) * grid.num_v();
    // The windowed MBFS touches ~O(h + v) track segments per connection in
    // practice — far below the worst-case O(h*v) bound.
    const double norm = static_cast<double>(result.vertices_examined) /
                        (nets * std::sqrt(hv));
    table.add_row({util::format("%d x %d", grid.num_h(), grid.num_v()),
                   util::format("%d", nets),
                   util::format("%lld", result.vertices_examined),
                   util::format("%.2f", norm),
                   util::format("%.3f", result.completion_rate())});
    if (json != nullptr) {
      util::TraceEvent ev("scaling");
      ev.add("grid_h", grid.num_h())
          .add("grid_v", grid.num_v())
          .add("nets", nets)
          .add("vertices_examined",
               static_cast<long long>(result.vertices_examined))
          .add("normalized", norm)
          .add("completion", result.completion_rate());
      json->record(std::move(ev));
    }
  }
  std::puts("\nScaling study (paper §3.4: time O(n*h*v) worst case)");
  std::fputs(table.render().c_str(), stdout);
  std::puts("A flat normalized column means the windowed search behaves "
            "like O(n*sqrt(h*v))\non sparse instances — comfortably inside "
            "the paper's O(n*h*v) bound.");
}

/// Reads an integer field back out of a recorded trace event (the sink
/// stores JSON-ready values; integers round-trip exactly).
long long trace_field(const util::TraceEvent& ev, const char* key) {
  for (const auto& [k, v] : ev.fields) {
    if (k == key) return std::strtoll(v.to_json().c_str(), nullptr, 10);
  }
  return 0;
}

/// Runs \p body `repeat` times after one untimed warm-up (skipped when
/// repeat == 1, preserving the single-shot behaviour) and returns the
/// median of the wall times \p body reports. \p body does its own setup
/// and timing so only the intended region is measured. The warm-up
/// absorbs first-touch page faults and allocator growth; the median
/// rejects scheduler noise. Every iteration computes identical results,
/// so the last iteration's side effects are as good as any.
template <typename Body>
double median_wall_ms(int repeat, Body&& body) {
  if (repeat > 1) body();  // warm-up
  std::vector<double> ms;
  ms.reserve(static_cast<std::size_t>(repeat));
  for (int r = 0; r < repeat; ++r) ms.push_back(body());
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

/// Serial vs engine on the largest scaling instance: wall clock, identity
/// of the results, speculation counters, and per-net effort aggregated
/// from the engine's trace stream.
void print_engine_comparison(util::TraceSink* json, int repeat) {
  const geom::Coord size = 1000;
  const int nets = 100;
  const auto make_instance = [&] {
    util::Rng rng(5);
    auto grid = tig::TrackGrid::uniform(Rect(0, 0, size, size), 9, 11);
    return std::make_pair(std::move(grid), random_nets(rng, size, nets));
  };

  levelb::LevelBResult expected;
  const double serial_ms = median_wall_ms(repeat, [&] {
    auto [grid, nets_copy] = make_instance();
    levelb::LevelBRouter serial(grid);
    const auto t0 = std::chrono::steady_clock::now();
    expected = serial.route(nets_copy);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  });

  util::TextTable table;
  table.set_header({"Mode", "Threads", "Wall ms", "Speedup", "Identical",
                    "Committed", "Re-routed", "Max net us",
                    "Queue wait ms"});
  table.add_row({"serial", "1", util::format("%.1f", serial_ms), "1.00x",
                 "-", "-", "-", "-", "-"});

  // Both parallel dispatches over the same instance. The nets here are
  // uniformly random (no locality), so the shard planner mostly degrades
  // to singleton batches — the interesting contrast with bench_mbfs's
  // sparse-5000, where locality gives sharding wide batches.
  for (const engine::EngineMode mode :
       {engine::EngineMode::kSpeculative, engine::EngineMode::kSharded}) {
    const char* mode_name = engine::engine_mode_name(mode);
    double mode_1t_ms = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
      levelb::LevelBResult result;
      engine::EngineStats stats;
      long long max_net_us = 0;
      long long queue_wait_us = 0;
      const double ms = median_wall_ms(repeat, [&] {
        auto [grid, nets_copy] = make_instance();
        util::TraceSink trace;
        engine::EngineOptions options;
        options.threads = threads;
        options.mode = mode;
        options.levelb.trace = &trace;
        engine::RoutingEngine router(grid, options);
        const auto start = std::chrono::steady_clock::now();
        result = router.route(nets_copy);
        const double wall = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
        stats = router.stats();
        // Trace consumption: fold the per-net events into run aggregates.
        max_net_us = 0;
        queue_wait_us = 0;
        for (const util::TraceEvent& ev : trace.events()) {
          max_net_us = std::max(max_net_us, trace_field(ev, "search_us"));
          queue_wait_us += trace_field(ev, "queue_wait_us");
        }
        return wall;
      });
      if (threads == 1) mode_1t_ms = ms;
      const bool identical = result == expected;
      const bool sharded = stats.mode == "sharded";
      const long long committed =
          sharded ? stats.sharded_commits : stats.speculative_commits;
      const long long rerouted =
          sharded ? stats.boundary_nets : stats.speculation_aborts;
      table.add_row(
          {mode_name, util::format("%d", threads),
           util::format("%.1f", ms), util::format("%.2fx", serial_ms / ms),
           identical ? "yes" : "NO",
           threads > 1 ? util::format("%lld", committed) : "-",
           threads > 1 ? util::format("%lld", rerouted) : "-",
           util::format("%lld", max_net_us),
           util::format("%.1f", queue_wait_us / 1000.0)});
      if (json != nullptr) {
        util::TraceEvent ev("engine_compare");
        ev.add("mode", mode_name)
            .add("engine_mode", stats.mode)
            .add("threads", threads)
            .add("wall_ms", ms)
            .add("serial_ms", serial_ms)
            .add("speedup_vs_1t",
                 ms > 0.0 && mode_1t_ms > 0.0 ? mode_1t_ms / ms : 0.0)
            .add("identical", identical)
            .add("speculative_commits", stats.speculative_commits)
            .add("speculation_aborts", stats.speculation_aborts)
            .add("batches", stats.batches)
            .add("sharded_commits", stats.sharded_commits)
            .add("boundary_nets", stats.boundary_nets)
            .add("wasted_vertices", stats.wasted_vertices)
            .add("wasted_search_us", stats.wasted_search_us)
            .add("sharded_wasted_vertices", stats.sharded_wasted_vertices)
            .add("sharded_wasted_search_us", stats.sharded_wasted_search_us)
            .add("grid_copies", stats.grid_copies)
            .add("max_net_search_us", max_net_us)
            .add("queue_wait_us", queue_wait_us)
            .add("worker_failures", stats.worker_failures)
            .add("fault_reroutes", stats.fault_reroutes)
            .add("fault_drops", stats.fault_drops)
            .add("pool_task_failures", stats.pool_task_failures)
            .add("failed_nets", result.failed_nets);
        json->record(std::move(ev));
      }
    }
  }
  std::printf("\nEngine comparison (grid %lld, %d nets, %d repeat%s, "
              "median; identity checked against the serial router)\n",
              static_cast<long long>(size), nets, repeat,
              repeat == 1 ? "" : "s");
  std::fputs(table.render().c_str(), stdout);
}

/// Fault-tolerance study: the same instance with injected faults and an
/// effort budget, measuring how much the degradation ladder recovers.
/// Counters land in BENCH_scaling.json so CI can track regressions in
/// the recovery behaviour, not just the happy path.
void print_resilience_table(util::TraceSink* json) {
  const geom::Coord size = 1000;
  const int nets = 100;

  util::TextTable table;
  table.set_header({"Scenario", "Threads", "Complete", "Reroutes",
                    "Recovered", "Drops", "Budget", "Faults"});
  struct Scenario {
    const char* name;
    const char* faults;
    long long budget;
    int threads;
  };
  const Scenario scenarios[] = {
      {"clean", "", 0, 4},
      {"commit faults 10%", "engine.committer.commit=~0.1;seed=1", 0, 4},
      {"worker faults 10%", "engine.worker.route=~0.1;seed=1", 0, 4},
      {"apply faults 5%", "engine.committer.apply=~0.05;seed=1", 0, 4},
      {"tight budget", "", 400, 4},
      {"connect faults 5%", "levelb.connect=~0.05;seed=1", 0, 1},
  };
  for (const Scenario& s : scenarios) {
    util::FaultRegistry& registry = util::FaultRegistry::global();
    if (registry.configure(s.faults).ok() == false) continue;
    util::Rng rng(5);
    auto grid = tig::TrackGrid::uniform(Rect(0, 0, size, size), 9, 11);
    auto bnets = random_nets(rng, size, nets);
    engine::EngineOptions options;
    options.threads = s.threads;
    options.levelb.net_vertex_budget = s.budget;
    engine::RoutingEngine router(grid, options);
    const levelb::LevelBResult result = router.route(bnets);
    const engine::EngineStats& stats = router.stats();
    const long long fired = registry.fired_count();
    registry.clear();

    table.add_row({s.name, util::format("%d", s.threads),
                   util::format("%d/%d", result.routed_nets, nets),
                   util::format("%lld",
                                stats.fault_reroutes + stats.worker_failures),
                   util::format("%d", result.ripup_recovered),
                   util::format("%lld", stats.fault_drops),
                   util::format("%d", result.budget_nets),
                   util::format("%lld", fired)});
    if (json != nullptr) {
      util::TraceEvent ev("resilience");
      ev.add("scenario", s.name)
          .add("threads", s.threads)
          .add("routed_nets", result.routed_nets)
          .add("failed_nets", result.failed_nets)
          .add("fault_reroutes", stats.fault_reroutes)
          .add("worker_failures", stats.worker_failures)
          .add("ripup_recovered", result.ripup_recovered)
          .add("fault_drops", stats.fault_drops)
          .add("budget_nets", result.budget_nets)
          .add("cancelled_nets", result.cancelled_nets)
          .add("pool_task_failures", stats.pool_task_failures)
          .add("faults_injected", fired);
      json->record(std::move(ev));
    }
  }
  std::puts("\nResilience study (injected faults vs the degradation "
            "ladder; same instance as above)");
  std::fputs(table.render().c_str(), stdout);
}

/// Large-instance memory study: routes a 200k-dbu-die instance
/// (sparse-100k-ci by default; `--large` swaps in the full 100k-net
/// sparse-100k) serially and through the 4-thread sharded engine, recording
/// wall clock, routed nets, the grid's occupancy bytes, the search
/// arenas' high-water marks and the process peak RSS. These are the
/// chunked-storage before/after datapoints: the die carries ~40k tracks,
/// and the numbers here are what a dense per-track representation pays
/// for all of them.
void print_memory_table(util::TraceSink* json, int repeat, bool large) {
  util::TextTable table;
  table.set_header({"Instance", "Nets", "Mode", "Wall ms", "Routed",
                    "Identical", "Grid MB", "Arena KB", "Peak RSS MB"});

  // One spec per invocation: `--large` swaps the CI-bounded instance for
  // the full 100k-net one instead of adding it, so a `--memory-only
  // --large` capture measures the big instance in a fresh process.
  std::vector<bench_data::LevelBSpec> specs;
  specs.push_back(large ? bench_data::sparse100k_spec()
                        : bench_data::sparse100k_ci_spec());

  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  for (const bench_data::LevelBSpec& spec : specs) {
    const bench_data::LevelBInstance inst =
        bench_data::generate_levelb_instance(spec);

    levelb::LevelBResult expected;
    long long serial_grid_bytes = 0;
    long long serial_blocked_chunks = 0;
    long long serial_rss_kb = 0;
    const double serial_ms = median_wall_ms(repeat, [&] {
      tig::TrackGrid grid = inst.grid;
      levelb::LevelBRouter router(grid);
      const auto t0 = std::chrono::steady_clock::now();
      expected = router.route(inst.nets);
      const double wall = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      serial_grid_bytes = static_cast<long long>(grid.grid_bytes());
      serial_blocked_chunks = static_cast<long long>(grid.blocked_chunks());
      // Peak RSS of the *first* (cold) route: later iterations only
      // measure allocator reuse/fragmentation, not the router.
      if (serial_rss_kb == 0) serial_rss_kb = util::peak_rss_kb();
      return wall;
    });

    levelb::LevelBResult sharded;
    long long sharded_grid_bytes = 0;
    long long sharded_blocked_chunks = 0;
    long long sharded_rss_kb = 0;
    engine::EngineStats stats;
    const double sharded_ms = median_wall_ms(repeat, [&] {
      tig::TrackGrid grid = inst.grid;
      engine::EngineOptions options;
      options.threads = 4;
      options.mode = engine::EngineMode::kSharded;
      engine::RoutingEngine router(grid, options);
      const auto t0 = std::chrono::steady_clock::now();
      sharded = router.route(inst.nets);
      const double wall = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      sharded_grid_bytes = static_cast<long long>(grid.grid_bytes());
      sharded_blocked_chunks = static_cast<long long>(grid.blocked_chunks());
      stats = router.stats();
      if (sharded_rss_kb == 0) sharded_rss_kb = util::peak_rss_kb();
      return wall;
    });
    const bool identical = sharded == expected;

    const long long arena_hw =
        metrics.gauge("levelb.arena_high_water_bytes").value();
    struct Row {
      const char* mode;
      double wall_ms;
      int routed;
      const char* identical;
      long long grid_bytes;
      long long blocked_chunks;
      long long batches;
      long long boundary_nets;
      long long rss_kb;  ///< process peak after this mode's first (cold)
                         ///< route (monotonic: includes what ran before)
    };
    const Row rows[] = {
        {"serial", serial_ms, expected.routed_nets, "-", serial_grid_bytes,
         serial_blocked_chunks, 0, 0, serial_rss_kb},
        {"sharded-4t", sharded_ms, sharded.routed_nets,
         identical ? "yes" : "NO", sharded_grid_bytes, sharded_blocked_chunks,
         stats.batches, stats.boundary_nets, sharded_rss_kb},
    };
    for (const Row& row : rows) {
      table.add_row({spec.name, util::format("%d", spec.num_nets), row.mode,
                     util::format("%.1f", row.wall_ms),
                     util::format("%d", row.routed), row.identical,
                     util::format("%.2f", row.grid_bytes / 1e6),
                     util::format("%lld", arena_hw / 1024),
                     util::format("%.1f", row.rss_kb / 1024.0)});
      if (json != nullptr) {
        util::TraceEvent ev("memory");
        ev.add("instance", spec.name)
            .add("storage", "chunked")
            .add("nets", spec.num_nets)
            .add("grid_h", inst.grid.num_h())
            .add("grid_v", inst.grid.num_v())
            .add("mode", row.mode)
            .add("wall_ms", row.wall_ms)
            .add("routed_nets", row.routed)
            .add("identical", std::strcmp(row.identical, "NO") != 0)
            .add("grid_bytes", row.grid_bytes)
            .add("blocked_chunks", row.blocked_chunks)
            .add("batches", row.batches)
            .add("boundary_nets", row.boundary_nets)
            .add("arena_high_water_bytes", arena_hw)
            .add("arena_reserved_bytes",
                 metrics.gauge("levelb.arena_reserved_bytes").value())
            .add("peak_rss_kb", row.rss_kb);
        json->record(std::move(ev));
      }
    }
  }
  std::printf("\nLarge-instance memory study (200k-dbu die, ~40k tracks; "
              "%s)\n",
              large ? "full 100k-net instance (--large)"
                    : "CI-bounded net count; --large swaps in the 100k-net "
                      "instance");
  std::fputs(table.render().c_str(), stdout);
}

/// Service throughput study (`--service`): a fixed batch of ami33 jobs
/// through the JobExecutor at 1/2/4 workers. Latency is end-to-end per
/// job — submit() to the completion callback, so queue wait counts —
/// and the determinism column checks that every job of every repeat at
/// every worker count produced the same clean wire length.
void print_service_table(util::TraceSink* json, int repeat) {
  constexpr int kJobs = 24;

  util::TextTable table;
  table.set_header({"Workers", "Journal", "Jobs", "Wall ms", "Jobs/sec",
                    "p50 ms", "p95 ms", "Identical"});

  long long wire = -1;  // first clean result; shared across all rows
  for (const int workers : {1, 2, 4}) {
  for (const bool journaled : {false, true}) {
    // The recovery datapoint: the same batch with the write-ahead job
    // journal on, measuring what fsync-batched durability costs.
    const std::string journal_path =
        util::format("bench_scaling_journal_w%d.jsonl", workers);
    std::vector<double> latencies;  // pooled over the timed repeats
    std::vector<double> walls;
    bool identical = true;
    const int runs = repeat > 1 ? repeat + 1 : repeat;  // +1 warm-up
    for (int r = 0; r < runs; ++r) {
      const bool warmup = repeat > 1 && r == 0;

      service::JobSpec spec;
      spec.example = "ami33";
      std::vector<service::RoutingJob> jobs;
      jobs.reserve(kJobs);
      for (int i = 0; i < kJobs; ++i) {
        auto job = service::materialize(spec);
        if (!job.ok()) {
          std::fprintf(stderr, "error: materialize: %s\n",
                       job.status().to_string().c_str());
          std::exit(1);
        }
        jobs.push_back(std::move(job).value());
      }

      std::remove(journal_path.c_str());
      service::Journal journal;
      if (journaled) {
        const util::Status opened = journal.open(journal_path);
        if (!opened.ok()) {
          std::fprintf(stderr, "error: %s\n", opened.to_string().c_str());
          std::exit(1);
        }
      }
      service::JobExecutor::Options options;
      options.workers = workers;
      options.admission.queue_limit = kJobs;  // the study never rejects
      options.journal = journaled ? &journal : nullptr;
      service::JobExecutor executor(options);

      std::mutex mu;
      std::vector<double> batch;
      batch.reserve(kJobs);
      const auto t0 = std::chrono::steady_clock::now();
      for (auto& job : jobs) {
        const auto submitted = std::chrono::steady_clock::now();
        executor.submit(
            std::move(job), [&, submitted](service::JobResult result) {
              const double ms =
                  std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - submitted)
                      .count();
              const long long w = result.report.metrics.wire_length;
              std::lock_guard<std::mutex> lock(mu);
              batch.push_back(ms);
              if (result.exit_class() != 0) identical = false;
              if (wire < 0) wire = w;
              if (w != wire) identical = false;
            });
      }
      executor.drain();
      const double wall = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      journal.close();
      std::remove(journal_path.c_str());
      if (warmup) continue;
      walls.push_back(wall);
      latencies.insert(latencies.end(), batch.begin(), batch.end());
    }

    std::sort(walls.begin(), walls.end());
    std::sort(latencies.begin(), latencies.end());
    const double wall_ms = walls[walls.size() / 2];
    const double jobs_per_sec = wall_ms > 0.0 ? kJobs * 1000.0 / wall_ms : 0.0;
    const double p50 = latencies[latencies.size() / 2];
    const double p95 = latencies[latencies.size() * 95 / 100];
    table.add_row({util::format("%d", workers), journaled ? "on" : "off",
                   util::format("%d", kJobs), util::format("%.1f", wall_ms),
                   util::format("%.2f", jobs_per_sec),
                   util::format("%.1f", p50), util::format("%.1f", p95),
                   identical ? "yes" : "NO"});
    if (json != nullptr) {
      util::TraceEvent ev("service");
      ev.add("workers", workers)
          .add("journal", journaled)
          .add("jobs", kJobs)
          .add("repeat", repeat)
          .add("wall_ms", wall_ms)
          .add("jobs_per_sec", jobs_per_sec)
          .add("p50_ms", p50)
          .add("p95_ms", p95)
          .add("identical", identical)
          .add("wire_length", wire);
      json->record(std::move(ev));
    }
  }
  }
  std::puts("\nService study (ami33 jobs through the executor; latency "
            "is submit -> completion,\nso queue wait counts; journal rows "
            "pay the write-ahead log's fsync batching;\nidentity checked "
            "across every result)");
  std::fputs(table.render().c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bool write_json = false;
  bool service_mode = false;
  bool large = false;
  bool memory_only = false;
  int repeat = 1;
  // Strip our flags before google-benchmark parses the rest.
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--json") == 0) {
      write_json = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else if (std::strcmp(argv[i], "--service") == 0) {
      service_mode = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else if (std::strcmp(argv[i], "--large") == 0) {
      large = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else if (std::strcmp(argv[i], "--memory-only") == 0) {
      // Run just the memory study in a fresh process, so its peak-RSS
      // rows are not inflated by the preceding studies' footprints —
      // this is how comparable before/after capture runs are made.
      memory_only = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::max(1, std::atoi(argv[i + 1]));
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
    } else {
      ++i;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (!service_mode) benchmark::RunSpecifiedBenchmarks();

  util::TraceSink json;
  util::TraceSink* sink = write_json ? &json : nullptr;
  if (service_mode) {
    print_service_table(sink, repeat);
  } else if (memory_only) {
    print_memory_table(sink, repeat, large);
  } else {
    print_scaling_table(sink);
    print_engine_comparison(sink, repeat);
    print_resilience_table(sink);
    print_memory_table(sink, repeat, large);
  }
  if (write_json) {
    const std::string path = "BENCH_scaling.json";
    if (!json.write_json_file(path)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu records)\n", path.c_str(), json.size());

    // Companion run manifest (see docs/OBSERVABILITY.md): config,
    // provenance and the metrics accumulated across every table run.
    util::RunManifest manifest("bench_scaling");
    manifest.add_config("repeat", repeat);
    manifest.add_config("service", service_mode);
    manifest.add_config("large", large);
    manifest.add_config("memory_only", memory_only);
    manifest.add_outcome("records", static_cast<long long>(json.size()));
    manifest.capture_metrics(util::MetricsRegistry::global());
    const std::string mpath = "BENCH_scaling.manifest.json";
    if (!manifest.write_json_file(mpath)) {
      std::fprintf(stderr, "error: cannot write %s\n", mpath.c_str());
      return 1;
    }
    std::printf("wrote %s (run manifest)\n", mpath.c_str());
  }
  return 0;
}

/// \file bench_scaling.cpp
/// \brief Verifies the paper's §3.4 complexity claims: storage O(h*v) and
/// time O(n*h*v) for n two-terminal connections on an h x v track grid.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "levelb/router.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace {

using namespace ocr;
using geom::Point;
using geom::Rect;

std::vector<levelb::BNet> random_nets(util::Rng& rng, geom::Coord size,
                                      int count) {
  std::vector<levelb::BNet> nets;
  for (int n = 0; n < count; ++n) {
    levelb::BNet net{n, {}};
    const int degree = static_cast<int>(rng.uniform_int(2, 4));
    for (int t = 0; t < degree; ++t) {
      net.terminals.push_back(
          Point{rng.uniform_int(0, size - 1), rng.uniform_int(0, size - 1)});
    }
    nets.push_back(std::move(net));
  }
  return nets;
}

/// Full level-B run: grid size and net count as benchmark args.
void BM_LevelBRoute(benchmark::State& state) {
  const auto size = static_cast<geom::Coord>(state.range(0));
  const int nets = static_cast<int>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    util::Rng rng(5);
    auto grid = tig::TrackGrid::uniform(Rect(0, 0, size, size), 9, 11);
    auto bnets = random_nets(rng, size, nets);
    levelb::LevelBRouter router(grid);
    state.ResumeTiming();
    benchmark::DoNotOptimize(router.route(bnets));
  }
}
BENCHMARK(BM_LevelBRoute)
    ->Args({500, 25})
    ->Args({1000, 25})
    ->Args({2000, 25})
    ->Args({1000, 50})
    ->Args({1000, 100})
    ->Unit(benchmark::kMillisecond);

void print_scaling_table() {
  util::TextTable table;
  table.set_header({"Grid (h x v)", "Nets", "Vertices examined",
                    "examined / (n*sqrt(hv))", "Completion"});
  for (const auto& [size, nets] :
       std::vector<std::pair<geom::Coord, int>>{
           {500, 25}, {1000, 25}, {2000, 25}, {1000, 50}, {1000, 100}}) {
    util::Rng rng(5);
    auto grid = tig::TrackGrid::uniform(Rect(0, 0, size, size), 9, 11);
    auto bnets = random_nets(rng, size, nets);
    levelb::LevelBRouter router(grid);
    const auto result = router.route(bnets);
    const double hv = static_cast<double>(grid.num_h()) * grid.num_v();
    // The windowed MBFS touches ~O(h + v) track segments per connection in
    // practice — far below the worst-case O(h*v) bound.
    const double norm = static_cast<double>(result.vertices_examined) /
                        (nets * std::sqrt(hv));
    table.add_row({util::format("%d x %d", grid.num_h(), grid.num_v()),
                   util::format("%d", nets),
                   util::format("%lld", result.vertices_examined),
                   util::format("%.2f", norm),
                   util::format("%.3f", result.completion_rate())});
  }
  std::puts("\nScaling study (paper §3.4: time O(n*h*v) worst case)");
  std::fputs(table.render().c_str(), stdout);
  std::puts("A flat normalized column means the windowed search behaves "
            "like O(n*sqrt(h*v))\non sparse instances — comfortably inside "
            "the paper's O(n*h*v) bound.");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_scaling_table();
  return 0;
}

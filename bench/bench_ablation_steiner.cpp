/// \file bench_ablation_steiner.cpp
/// \brief Ablation C: the paper's modified-Prim rectilinear Steiner
/// heuristic (§3.3) vs the plain rectilinear MST and, for tiny nets, the
/// exact RSMT.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "steiner/exact.hpp"
#include "steiner/rmst.hpp"
#include "steiner/rst.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace {

using namespace ocr;
using geom::Point;

std::vector<Point> random_terminals(util::Rng& rng, int n) {
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back(Point{rng.uniform_int(0, 1000), rng.uniform_int(0, 1000)});
  }
  return pts;
}

void BM_Rmst(benchmark::State& state) {
  util::Rng rng(1);
  const auto pts = random_terminals(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(steiner::rectilinear_mst(pts));
  }
}
BENCHMARK(BM_Rmst)->Arg(8)->Arg(32)->Arg(128);

void BM_ModifiedPrimRst(benchmark::State& state) {
  util::Rng rng(1);
  const auto pts = random_terminals(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(steiner::modified_prim_rst(pts));
  }
}
BENCHMARK(BM_ModifiedPrimRst)->Arg(8)->Arg(32)->Arg(128);

void print_quality_table() {
  util::TextTable table;
  table.set_header({"Terminals", "RST/MST length", "RST/exact length",
                    "Steiner pts/net"});
  util::Rng rng(2024);
  for (int n : {3, 4, 5, 8, 16, 40}) {
    double ratio_sum = 0.0;
    double exact_ratio_sum = 0.0;
    int exact_count = 0;
    double steiner_points = 0.0;
    constexpr int kTrials = 50;
    for (int t = 0; t < kTrials; ++t) {
      const auto pts = random_terminals(rng, n);
      const auto mst = steiner::rectilinear_mst(pts);
      const auto rst = steiner::modified_prim_rst(pts);
      if (mst.length > 0) {
        ratio_sum += static_cast<double>(rst.length) /
                     static_cast<double>(mst.length);
      } else {
        ratio_sum += 1.0;
      }
      steiner_points +=
          static_cast<double>(rst.nodes.size()) - rst.num_terminals;
      if (n <= steiner::kMaxExactTerminals - 1) {
        const auto exact = steiner::exact_rsmt_length(pts);
        if (exact > 0) {
          exact_ratio_sum += static_cast<double>(rst.length) /
                             static_cast<double>(exact);
          ++exact_count;
        }
      }
    }
    table.add_row(
        {util::format("%d", n), util::format("%.4f", ratio_sum / kTrials),
         exact_count > 0
             ? util::format("%.4f", exact_ratio_sum / exact_count)
             : std::string("-"),
         util::format("%.1f", steiner_points / kTrials)});
  }
  std::puts("\nAblation C: modified-Prim RST quality (paper §3.3)");
  std::fputs(table.render().c_str(), stdout);
  std::puts("RST/MST < 1: the heuristic always improves on the spanning "
            "tree;\nRST/exact >= 1: distance from the (NP-complete) "
            "optimum on tiny nets.");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_quality_table();
  return 0;
}

/// \file bench_partition_sweep.cpp
/// \brief The §2/§5 lever: "the user has control of the overall layout
/// area through the partitioning of the interconnections into sets A and
/// B." Sweeps the fraction of nets assigned to level A (by net length:
/// shortest nets stay in channels) and reports the area / wirelength /
/// via trade-off, from all-over-cell to the two-layer baseline.

#include <algorithm>
#include <cstdio>

#include "bench_data/synthetic.hpp"
#include "flow/flow.hpp"
#include "partition/partition.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main() {
  using namespace ocr;
  const auto ml = bench_data::generate_macro_layout(bench_data::ami33_spec());
  const auto layout = ml.assemble(
      std::vector<geom::Coord>(static_cast<std::size_t>(ml.num_channels()),
                               0));

  // Sort nets by half-perimeter; a sweep point sends the shortest f% of
  // the nets to level A.
  std::vector<netlist::NetId> by_length;
  for (const auto& net : layout.nets()) by_length.push_back(net.id);
  std::stable_sort(by_length.begin(), by_length.end(),
                   [&layout](netlist::NetId a, netlist::NetId b) {
                     return layout.net_hpwl(a) < layout.net_hpwl(b);
                   });

  util::TextTable table;
  table.set_header({"Level-A fraction", "A nets", "Area", "Wire length",
                    "Vias", "B-completion"});
  flow::FlowOptions options;
  options.min_channel_height = 27;  // breathing room for the all-B end
  for (const double fraction : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    partition::NetPartition partition;
    const auto cut = static_cast<std::size_t>(
        fraction * static_cast<double>(by_length.size()) + 0.5);
    for (std::size_t i = 0; i < by_length.size(); ++i) {
      (i < cut ? partition.set_a : partition.set_b).push_back(by_length[i]);
    }
    const auto m = flow::run_over_cell_flow(ml, partition, options);
    table.add_row({util::format("%.0f%%", 100.0 * fraction),
                   util::format("%zu", partition.set_a.size()),
                   util::with_commas(m.layout_area),
                   util::with_commas(m.wire_length),
                   util::format("%d", m.vias),
                   util::format("%.3f", m.levelb_completion)});
  }
  std::puts("Partition sweep on ami33 (paper §2/§5: channel area is a "
            "user lever)");
  std::fputs(table.render().c_str(), stdout);
  std::puts("\n0% = everything over-cell (channels nearly vanish, paper "
            "§5); 100% = the\ntwo-layer baseline with empty level B. Area "
            "grows monotonically with the\nlevel-A fraction; completion is "
            "the price of the extreme all-B point.");
  return 0;
}

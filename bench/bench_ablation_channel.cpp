/// \file bench_ablation_channel.cpp
/// \brief Ablation E: the three level-A channel routers — constrained
/// left-edge with doglegs, Yoshimura–Kuh net merging, and the greedy
/// router — compared on track count, wire length, vias and completion.

#include <cstdio>

#include "channel/greedy.hpp"
#include "channel/left_edge.hpp"
#include "channel/yoshimura_kuh.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace {

using namespace ocr;
using namespace ocr::channel;

ChannelProblem random_problem(util::Rng& rng, int columns, int nets) {
  ChannelProblem p;
  p.top.assign(static_cast<std::size_t>(columns), 0);
  p.bot.assign(static_cast<std::size_t>(columns), 0);
  for (int net = 1; net <= nets; ++net) {
    const int pins = static_cast<int>(rng.uniform_int(2, 4));
    int placed = 0;
    int guard = 0;
    while (placed < pins && guard++ < 200) {
      const int c = static_cast<int>(rng.uniform_int(0, columns - 1));
      auto& side = rng.chance(0.5) ? p.top : p.bot;
      if (side[static_cast<std::size_t>(c)] == 0) {
        side[static_cast<std::size_t>(c)] = net;
        ++placed;
      }
    }
    if (placed < 2) {
      for (auto& v : p.top) {
        if (v == net) v = 0;
      }
      for (auto& v : p.bot) {
        if (v == net) v = 0;
      }
    }
  }
  return p;
}

struct Tally {
  int completed = 0;
  long long tracks = 0;
  long long wire = 0;
  long long vias = 0;

  void add(const ChannelRoute& route) {
    if (!route.success) return;
    ++completed;
    tracks += route.num_tracks;
    wire += route.wire_length();
    vias += route.via_count();
  }
};

}  // namespace

int main() {
  util::TextTable table;
  table.set_header({"Density class", "Router", "Completed", "Avg tracks",
                    "Avg wire", "Avg vias"});
  util::Rng rng(314159);
  struct Scenario {
    const char* label;
    int columns;
    int nets;
  };
  const Scenario scenarios[] = {{"sparse (40 col, 8 nets)", 40, 8},
                                {"medium (60 col, 18 nets)", 60, 18},
                                {"dense (80 col, 32 nets)", 80, 32}};
  for (const auto& [label, columns, nets] : scenarios) {
    constexpr int kTrials = 40;
    Tally lea;
    Tally yk;
    Tally greedy;
    long long density_sum = 0;
    for (int t = 0; t < kTrials; ++t) {
      const auto p = random_problem(rng, columns, nets);
      density_sum += channel_density(p);
      lea.add(route_left_edge(p));
      yk.add(route_yoshimura_kuh(p));
      greedy.add(route_greedy(p));
    }
    const auto row = [&](const char* name, const Tally& tally) {
      const int n = std::max(tally.completed, 1);
      table.add_row({label, name,
                     util::format("%d/%d", tally.completed, kTrials),
                     util::format("%.1f",
                                  static_cast<double>(tally.tracks) / n),
                     util::format("%.0f",
                                  static_cast<double>(tally.wire) / n),
                     util::format("%.0f",
                                  static_cast<double>(tally.vias) / n)});
    };
    row("left-edge+dogleg", lea);
    row("Yoshimura-Kuh", yk);
    row("greedy", greedy);
    table.add_separator();
    std::printf("%s: mean density %.1f\n", label,
                static_cast<double>(density_sum) / kTrials);
  }
  std::puts("\nAblation E: level-A channel router comparison");
  std::fputs(table.render().c_str(), stdout);
  std::puts("The greedy router always completes (tolerates cyclic vertical\n"
            "constraints) at the cost of extra tracks; the dogleg-free\n"
            "mergers are tighter when the VCG is acyclic.");
  return 0;
}

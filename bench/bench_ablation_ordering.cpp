/// \file bench_ablation_ordering.cpp
/// \brief Ablation D: net-ordering criteria for the serial level-B router.
///
/// The paper uses a "longest distance criterion" with a user-override
/// option (§3). This bench compares longest-first, shortest-first and
/// as-given orderings on the three examples.

#include <cstdio>

#include "bench_data/synthetic.hpp"
#include "flow/flow.hpp"
#include "partition/partition.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main() {
  using namespace ocr;
  util::TextTable table;
  table.set_header({"Example", "Ordering", "B-completion", "Wire length",
                    "Vias"});
  const struct {
    levelb::NetOrdering ordering;
    const char* name;
  } kOrderings[] = {
      {levelb::NetOrdering::kLongestFirst, "longest-first (paper)"},
      {levelb::NetOrdering::kShortestFirst, "shortest-first"},
      {levelb::NetOrdering::kAsGiven, "as given"},
  };
  for (const auto& spec : {bench_data::ami33_spec(), bench_data::xerox_spec(),
                           bench_data::ex3_spec()}) {
    const auto ml = bench_data::generate_macro_layout(spec);
    const auto layout = ml.assemble(
        std::vector<geom::Coord>(static_cast<std::size_t>(ml.num_channels()),
                                 0));
    const auto partition = partition::partition_by_class(layout);
    for (const auto& entry : kOrderings) {
      flow::FlowOptions options;
      options.levelb.ordering = entry.ordering;
      const auto m = flow::run_over_cell_flow(ml, partition, options);
      table.add_row({m.example_name, entry.name,
                     util::format("%.3f", m.levelb_completion),
                     util::with_commas(m.wire_length),
                     util::format("%d", m.vias)});
    }
    table.add_separator();
  }
  std::puts("Ablation D: level-B net-ordering criteria (paper §3)");
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

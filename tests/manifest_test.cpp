#include "util/manifest.hpp"

#include <gtest/gtest.h>

#include <string>

#include "json_test_util.hpp"
#include "util/metrics.hpp"
#include "util/profile.hpp"

namespace ocr::util {
namespace {

TEST(RunManifest, EmptyManifestIsValidJson) {
  RunManifest m("unit_test");
  const std::string json = m.to_json();
  std::string error;
  ASSERT_TRUE(test::JsonValidator::valid(json, &error)) << error;
  EXPECT_NE(json.find("\"tool\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"created\""), std::string::npos);
  EXPECT_NE(json.find("\"version\""), std::string::npos);
  EXPECT_NE(json.find("\"git_revision\""), std::string::npos);
  // No metrics captured: the section is absent, not empty.
  EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
}

TEST(RunManifest, SectionsPreserveInsertionOrderAndTypes) {
  RunManifest m("t");
  m.add_config("threads", 4);
  m.add_config("label", "a \"quoted\" one");
  m.add_config("quick", true);
  m.add_provenance("seed", 12345LL);
  m.add_outcome("status", "clean");
  m.add_outcome("exit_code", 0);
  m.add_stage_us("parse", 120);
  m.add_stage_us("route", 4500);

  const std::string json = m.to_json();
  std::string error;
  ASSERT_TRUE(test::JsonValidator::valid(json, &error)) << error;
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"a \\\"quoted\\\" one\""),
            std::string::npos);
  EXPECT_NE(json.find("\"quick\": true"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 12345"), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"clean\""), std::string::npos);
  EXPECT_NE(json.find("\"parse\": 120"), std::string::npos);
  EXPECT_LT(json.find("\"threads\""), json.find("\"label\""));
  EXPECT_LT(json.find("\"parse\""), json.find("\"route\""));
}

TEST(RunManifest, CapturesStagesFromProfiler) {
  Profiler p;
  p.enable();
  {
    Span a("stage.a", p);
    Span nested("stage.nested", p);  // depth 1: excluded from stage totals
  }
  { Span b("stage.b", p); }

  RunManifest m("t");
  m.capture_stages(p);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"stage.a\""), std::string::npos);
  EXPECT_NE(json.find("\"stage.b\""), std::string::npos);
  EXPECT_EQ(json.find("\"stage.nested\""), std::string::npos);
}

TEST(RunManifest, EmbedsMetricsSnapshot) {
  MetricsRegistry reg;
  reg.counter("m.count").add(3);
  reg.gauge("m.width").set(99);
  reg.histogram("m.lat", {10}).observe(5);

  RunManifest m("t");
  m.capture_metrics(reg);
  const std::string json = m.to_json();
  std::string error;
  ASSERT_TRUE(test::JsonValidator::valid(json, &error)) << error;
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"m.count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"m.width\": 99"), std::string::npos);
  EXPECT_NE(json.find("\"m.lat\""), std::string::npos);
}

TEST(RunManifest, BuildProvenanceIsNonEmpty) {
  // Baked in at configure time; "unknown" is the explicit fallback, so
  // the strings are never empty either way.
  EXPECT_NE(std::string(build_version()), "");
  EXPECT_NE(std::string(build_git_revision()), "");
}

}  // namespace
}  // namespace ocr::util

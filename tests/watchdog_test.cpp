/// \file watchdog_test.cpp
/// \brief Deadline/stall watchdog and effort-budget behaviour: a run with
/// a deadline below its natural completion time must terminate well
/// within 2x the deadline at any thread count and report the cancelled
/// nets; budgets must act deterministically across thread counts.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "engine/engine.hpp"
#include "engine/watchdog.hpp"
#include "levelb/router.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace ocr::engine {
namespace {

using geom::Point;
using geom::Rect;

std::vector<levelb::BNet> random_nets(util::Rng& rng, geom::Coord size,
                                      int count) {
  std::vector<levelb::BNet> nets;
  for (int n = 0; n < count; ++n) {
    levelb::BNet net{n, {}};
    const int degree = static_cast<int>(rng.uniform_int(2, 4));
    for (int t = 0; t < degree; ++t) {
      net.terminals.push_back(
          Point{rng.uniform_int(0, size - 1), rng.uniform_int(0, size - 1)});
    }
    nets.push_back(std::move(net));
  }
  return nets;
}

TEST(Watchdog, NoLimitsNeverFires) {
  util::CancelSource source;
  {
    Watchdog watchdog(source, Watchdog::Options{});
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(watchdog.fired());
  }
  EXPECT_FALSE(source.cancelled());
}

TEST(Watchdog, DeadlineFiresWithDeadlineStatus) {
  util::CancelSource source;
  Watchdog::Options options;
  options.deadline = std::chrono::milliseconds(10);
  options.poll = std::chrono::milliseconds(2);
  Watchdog watchdog(source, options);
  const auto start = std::chrono::steady_clock::now();
  while (!source.cancelled() &&
         std::chrono::steady_clock::now() - start <
             std::chrono::seconds(5)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(source.cancelled());
  EXPECT_TRUE(watchdog.fired());
  EXPECT_EQ(source.reason().kind(), util::StatusKind::kDeadlineExceeded);
}

TEST(Watchdog, StallFiresOnlyWhenProgressFreezes) {
  util::CancelSource source;
  Watchdog::Options options;
  options.stall = std::chrono::milliseconds(40);
  options.poll = std::chrono::milliseconds(5);
  Watchdog watchdog(source, options);
  const util::CancelToken token = source.token();
  // Keep the heartbeat alive: no stall.
  for (int i = 0; i < 10; ++i) {
    token.note_progress();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(source.cancelled());
  // Freeze: the stall detector must fire.
  const auto start = std::chrono::steady_clock::now();
  while (!source.cancelled() &&
         std::chrono::steady_clock::now() - start <
             std::chrono::seconds(5)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(source.cancelled());
  EXPECT_EQ(source.reason().kind(), util::StatusKind::kCancelled);
}

/// Acceptance criterion: a deadline below the natural completion time
/// terminates the run within 2x the deadline (plus scheduling slack) at
/// any thread count, and the cancelled nets are reported.
TEST(Watchdog, DeadlinedRouteTerminatesPromptlyAtAnyThreadCount) {
  for (const int threads : {1, 4}) {
    util::Rng rng(11);
    auto grid = tig::TrackGrid::uniform(Rect(0, 0, 4000, 4000), 9, 11);
    auto nets = random_nets(rng, 4000, 400);

    util::CancelSource source;
    EngineOptions options;
    options.threads = threads;
    options.levelb.finder.cancel = source.token();

    Watchdog::Options wopt;
    wopt.deadline = std::chrono::milliseconds(20);
    wopt.poll = std::chrono::milliseconds(2);

    const auto start = std::chrono::steady_clock::now();
    levelb::LevelBResult result;
    {
      Watchdog watchdog(source, wopt);
      RoutingEngine router(grid, options);
      result = router.route(nets);
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);

    // The full instance takes far longer than 20 ms; the deadline must
    // have fired and stopped the run. Cooperative cancellation + thread
    // teardown gets generous slack on loaded CI machines, but an
    // un-cancelled run (several seconds) still fails the bound.
    ASSERT_TRUE(source.cancelled()) << "threads=" << threads;
    EXPECT_LT(elapsed.count(), 2 * 20 + 500) << "threads=" << threads;
    EXPECT_GT(result.cancelled_nets, 0) << "threads=" << threads;
    EXPECT_EQ(result.failed_nets + result.routed_nets,
              static_cast<int>(nets.size()));
    for (const levelb::NetResult& net : result.nets) {
      if (net.outcome == util::StatusKind::kCancelled) {
        EXPECT_FALSE(net.complete);
      }
    }
  }
}

/// Budgets are deterministic: the same per-net vertex budget produces the
/// same result (same nets stopped, bit-identical wiring) at any thread
/// count, because budget accounting is per net and ignores wall clock.
TEST(Watchdog, EffortBudgetIsThreadCountInvariant) {
  const auto route_with_budget = [](int threads) {
    util::Rng rng(5);
    auto grid = tig::TrackGrid::uniform(Rect(0, 0, 1000, 1000), 9, 11);
    auto nets = random_nets(rng, 1000, 100);
    EngineOptions options;
    options.threads = threads;
    options.levelb.net_vertex_budget = 400;
    RoutingEngine router(grid, options);
    return router.route(nets);
  };
  const levelb::LevelBResult serial = route_with_budget(1);
  EXPECT_GT(serial.budget_nets, 0) << "budget chosen too high to bite";
  for (const int threads : {2, 4}) {
    const levelb::LevelBResult parallel = route_with_budget(threads);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

/// A budget-stopped net is marked with kBudgetExhausted and never carries
/// partial wiring (whole-connect abort).
TEST(Watchdog, BudgetStoppedNetsAreCleanlyAbandoned) {
  util::Rng rng(5);
  auto grid = tig::TrackGrid::uniform(Rect(0, 0, 1000, 1000), 9, 11);
  auto nets = random_nets(rng, 1000, 100);
  levelb::LevelBOptions options;
  options.net_vertex_budget = 400;
  options.ripup_rounds = 0;
  levelb::LevelBRouter router(grid, options);
  const levelb::LevelBResult result = router.route(nets);
  ASSERT_GT(result.budget_nets, 0);
  for (const levelb::NetResult& net : result.nets) {
    if (net.outcome == util::StatusKind::kBudgetExhausted) {
      EXPECT_FALSE(net.complete);
      EXPECT_GT(net.failed_connections, 0);
    }
  }
}

}  // namespace
}  // namespace ocr::engine

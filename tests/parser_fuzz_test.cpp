/// \file parser_fuzz_test.cpp
/// \brief Robustness: the text parsers must reject arbitrary garbage with
/// an error message — never crash, never accept an invalid layout.

#include <gtest/gtest.h>

#include "bench_data/synthetic.hpp"
#include "io/layout_io.hpp"
#include "io/route_io.hpp"
#include "util/rng.hpp"

namespace ocr::io {
namespace {

/// Random byte soup.
std::string random_garbage(util::Rng& rng, int length) {
  std::string s;
  for (int i = 0; i < length; ++i) {
    s.push_back(static_cast<char>(rng.uniform_int(1, 255)));
  }
  return s;
}

/// A valid file with one random single-character mutation.
std::string mutate(util::Rng& rng, std::string text) {
  if (text.empty()) return text;
  const auto pos = rng.index(text.size());
  switch (rng.uniform_int(0, 2)) {
    case 0:  // flip
      text[pos] = static_cast<char>(rng.uniform_int(32, 126));
      break;
    case 1:  // delete
      text.erase(pos, 1);
      break;
    default:  // duplicate
      text.insert(pos, 1, text[pos]);
      break;
  }
  return text;
}

class LayoutFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LayoutFuzz, GarbageNeverCrashes) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const auto result = read_layout_text(
        random_garbage(rng, static_cast<int>(rng.uniform_int(0, 400))));
    if (!result.ok()) {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST_P(LayoutFuzz, MutationsParseOrRejectCleanly) {
  util::Rng rng(GetParam() ^ 0xF00D);
  const auto ml = bench_data::generate_macro_layout(
      bench_data::random_spec(3, 0.3));
  const std::string valid = write_layout_text(ml);
  for (int trial = 0; trial < 25; ++trial) {
    const auto result = read_layout_text(mutate(rng, valid));
    // Either a clean parse (mutation hit a comment/name) or a located
    // error; any accepted layout must itself be valid.
    if (result.ok()) {
      EXPECT_TRUE(result.layout->validate().empty());
    } else {
      EXPECT_NE(result.error.find("line"), std::string::npos);
    }
  }
}

class WiringFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WiringFuzz, GarbageNeverCrashes) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const auto result = read_wiring_text(
        random_garbage(rng, static_cast<int>(rng.uniform_int(0, 400))));
    if (!result.ok()) {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST_P(WiringFuzz, MutatedWiringParsesOrRejects) {
  util::Rng rng(GetParam() ^ 0xBEEF);
  const std::string valid =
      "# overcell-router wiring v1\n"
      "wiring 2\n"
      "net 1 1\n"
      "leg metal3 0 10 200 10\n"
      "leg metal4 200 10 200 90\n"
      "via 200 10\n"
      "net 2 0\n"
      "leg metal4 50 0 50 80\n";
  for (int trial = 0; trial < 40; ++trial) {
    const auto result = read_wiring_text(mutate(rng, valid));
    if (!result.ok()) {
      EXPECT_NE(result.error.find("line"), std::string::npos);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayoutFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));
INSTANTIATE_TEST_SUITE_P(Seeds, WiringFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace ocr::io

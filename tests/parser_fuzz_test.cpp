/// \file parser_fuzz_test.cpp
/// \brief Robustness: the text parsers must reject arbitrary garbage with
/// an error message — never crash, never accept an invalid layout.

#include <gtest/gtest.h>

#include "bench_data/synthetic.hpp"
#include "io/layout_io.hpp"
#include "io/route_io.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace ocr::io {
namespace {

/// Random byte soup.
std::string random_garbage(util::Rng& rng, int length) {
  std::string s;
  for (int i = 0; i < length; ++i) {
    s.push_back(static_cast<char>(rng.uniform_int(1, 255)));
  }
  return s;
}

/// A valid file with one random single-character mutation.
std::string mutate(util::Rng& rng, std::string text) {
  if (text.empty()) return text;
  const auto pos = rng.index(text.size());
  switch (rng.uniform_int(0, 2)) {
    case 0:  // flip
      text[pos] = static_cast<char>(rng.uniform_int(32, 126));
      break;
    case 1:  // delete
      text.erase(pos, 1);
      break;
    default:  // duplicate
      text.insert(pos, 1, text[pos]);
      break;
  }
  return text;
}

class LayoutFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LayoutFuzz, GarbageNeverCrashes) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const auto result = read_layout_text(
        random_garbage(rng, static_cast<int>(rng.uniform_int(0, 400))));
    if (!result.ok()) {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST_P(LayoutFuzz, MutationsParseOrRejectCleanly) {
  util::Rng rng(GetParam() ^ 0xF00D);
  const auto ml = bench_data::generate_macro_layout(
      bench_data::random_spec(3, 0.3));
  const std::string valid = write_layout_text(ml);
  // 8 seeds x 125 trials = 1000 mutated inputs across the suite.
  for (int trial = 0; trial < 125; ++trial) {
    const auto result = read_layout_text(mutate(rng, valid));
    // Either a clean parse (mutation hit a comment/name) or a located,
    // actionable error; any accepted layout must itself be valid.
    if (result.ok()) {
      EXPECT_TRUE(result.layout->validate().empty());
      EXPECT_TRUE(result.status.ok());
    } else {
      EXPECT_FALSE(result.status.ok());
      EXPECT_FALSE(result.status.message().empty());
      EXPECT_GT(result.status.line(), 0) << result.error;
      EXPECT_NE(result.error.find("line"), std::string::npos);
    }
  }
}

TEST(LayoutParse, ErrorsCarryLineAndColumn) {
  const std::string text =
      "layout demo 100\n"
      "row 20\n"
      "net n1 plasma\n";
  const auto result = read_layout_text(text);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status.kind(), util::StatusKind::kParseError);
  EXPECT_EQ(result.status.line(), 3);
  // Column points at the offending token ("plasma" starts at col 8).
  EXPECT_EQ(result.status.column(), 8);
  EXPECT_EQ(result.status.stage(), "layout-parse");
}

TEST(LayoutParse, LenientModeSkipsMalformedLinesWithWarnings) {
  const auto ml = bench_data::generate_macro_layout(
      bench_data::random_spec(3, 0.3));
  std::string text = write_layout_text(ml);
  text += "gibberish directive here\n";
  const auto strict = read_layout_text(text);
  EXPECT_FALSE(strict.ok());

  ParseOptions options;
  options.lenient = true;
  const auto lenient = read_layout_text(text, options);
  ASSERT_TRUE(lenient.ok());
  ASSERT_EQ(lenient.warnings.size(), 1u);
  EXPECT_NE(lenient.warnings[0].find("gibberish"), std::string::npos);
  EXPECT_TRUE(lenient.layout->validate().empty());
}

TEST(LayoutParse, LenientModeStillFailsStructurally) {
  // No 'layout' header: not a recoverable line-level problem.
  ParseOptions options;
  options.lenient = true;
  const auto result = read_layout_text("row 20\n", options);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.status.ok());
}

TEST(LayoutParse, InjectedLineFaultSurfacesAsFaultStatus) {
  util::FaultRegistry::global().clear();
  ASSERT_TRUE(
      util::FaultRegistry::global().configure("io.layout.line=@2").ok());
  const auto ml = bench_data::generate_macro_layout(
      bench_data::random_spec(3, 0.3));
  const auto result = read_layout_text(write_layout_text(ml));
  util::FaultRegistry::global().clear();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status.kind(), util::StatusKind::kFaultInjected);
  EXPECT_EQ(result.status.line(), 2);
}

class WiringFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WiringFuzz, GarbageNeverCrashes) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const auto result = read_wiring_text(
        random_garbage(rng, static_cast<int>(rng.uniform_int(0, 400))));
    if (!result.ok()) {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST_P(WiringFuzz, MutatedWiringParsesOrRejects) {
  util::Rng rng(GetParam() ^ 0xBEEF);
  const std::string valid =
      "# overcell-router wiring v1\n"
      "wiring 2\n"
      "net 1 1\n"
      "leg metal3 0 10 200 10\n"
      "leg metal4 200 10 200 90\n"
      "via 200 10\n"
      "net 2 0\n"
      "leg metal4 50 0 50 80\n";
  for (int trial = 0; trial < 125; ++trial) {
    const auto result = read_wiring_text(mutate(rng, valid));
    if (!result.ok()) {
      EXPECT_FALSE(result.status.ok());
      EXPECT_FALSE(result.status.message().empty());
      EXPECT_GT(result.status.line(), 0) << result.error;
      EXPECT_NE(result.error.find("line"), std::string::npos);
    }
  }
}

TEST(WiringParse, ErrorsCarryLineAndColumn) {
  const std::string text =
      "wiring 1\n"
      "net 1 1\n"
      "leg copper 0 10 200 10\n";
  const auto result = read_wiring_text(text);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status.kind(), util::StatusKind::kParseError);
  EXPECT_EQ(result.status.line(), 3);
  EXPECT_EQ(result.status.column(), 5);  // "copper"
  EXPECT_EQ(result.status.stage(), "wiring-parse");
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayoutFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));
INSTANTIATE_TEST_SUITE_P(Seeds, WiringFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace ocr::io

#include <gtest/gtest.h>

#include "netlist/layout.hpp"
#include "netlist/stats.hpp"

namespace ocr::netlist {
namespace {

Layout make_simple_layout() {
  Layout layout("simple");
  layout.set_die(geom::Rect(0, 0, 1000, 1000));
  const CellId a = layout.add_cell("A", geom::Rect(100, 100, 300, 300));
  const CellId b = layout.add_cell("B", geom::Rect(500, 500, 800, 900));
  const NetId n1 = layout.add_net("n1");
  layout.add_pin(n1, a, geom::Point{300, 200}, PinSide::kEast);
  layout.add_pin(n1, b, geom::Point{500, 600}, PinSide::kWest);
  const NetId n2 = layout.add_net("n2", NetClass::kCritical);
  layout.add_pin(n2, a, geom::Point{200, 300}, PinSide::kNorth);
  layout.add_pin(n2, b, geom::Point{600, 500}, PinSide::kSouth);
  layout.add_pin(n2, CellId{}, geom::Point{0, 1000}, PinSide::kNorth);
  return layout;
}

TEST(Layout, ConstructionAndAccess) {
  const Layout layout = make_simple_layout();
  EXPECT_EQ(layout.cells().size(), 2u);
  EXPECT_EQ(layout.nets().size(), 2u);
  EXPECT_EQ(layout.pins().size(), 5u);
  EXPECT_EQ(layout.net(NetId{0}).degree(), 2);
  EXPECT_EQ(layout.net(NetId{1}).degree(), 3);
  EXPECT_EQ(layout.net(NetId{1}).net_class, NetClass::kCritical);
}

TEST(Layout, ValidPassesValidation) {
  const Layout layout = make_simple_layout();
  EXPECT_TRUE(layout.validate().empty());
}

TEST(Layout, NetHpwl) {
  const Layout layout = make_simple_layout();
  // n1 pins: (300,200) and (500,600) -> 200 + 400
  EXPECT_EQ(layout.net_hpwl(NetId{0}), 600);
  // n2 pins: (200,300), (600,500), (0,1000) -> 600 + 700
  EXPECT_EQ(layout.net_hpwl(NetId{1}), 1300);
}

TEST(Layout, TotalCellArea) {
  const Layout layout = make_simple_layout();
  EXPECT_EQ(layout.total_cell_area(), 200 * 200 + 300 * 400);
}

TEST(Layout, DetectsOverlappingCells) {
  Layout layout("bad");
  layout.set_die(geom::Rect(0, 0, 100, 100));
  layout.add_cell("A", geom::Rect(0, 0, 50, 50));
  layout.add_cell("B", geom::Rect(40, 40, 90, 90));
  const auto problems = layout.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("overlap"), std::string::npos);
}

TEST(Layout, AbuttingCellsAreLegal) {
  Layout layout("abut");
  layout.set_die(geom::Rect(0, 0, 100, 100));
  layout.add_cell("A", geom::Rect(0, 0, 50, 50));
  layout.add_cell("B", geom::Rect(50, 0, 100, 50));
  EXPECT_TRUE(layout.validate().empty());
}

TEST(Layout, DetectsCellOutsideDie) {
  Layout layout("bad");
  layout.set_die(geom::Rect(0, 0, 100, 100));
  layout.add_cell("A", geom::Rect(50, 50, 150, 90));
  const auto problems = layout.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("outside the die"), std::string::npos);
}

TEST(Layout, DetectsUnderdegreeNet) {
  Layout layout("bad");
  layout.set_die(geom::Rect(0, 0, 100, 100));
  const CellId a = layout.add_cell("A", geom::Rect(10, 10, 40, 40));
  const NetId n = layout.add_net("lonely");
  layout.add_pin(n, a, geom::Point{10, 20}, PinSide::kWest);
  const auto problems = layout.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("fewer than 2 pins"), std::string::npos);
}

TEST(Layout, DetectsPinOffOwnerBoundary) {
  Layout layout("bad");
  layout.set_die(geom::Rect(0, 0, 100, 100));
  const CellId a = layout.add_cell("A", geom::Rect(10, 10, 40, 40));
  const NetId n = layout.add_net("n");
  layout.add_pin(n, a, geom::Point{20, 20}, PinSide::kWest);  // interior
  layout.add_pin(n, a, geom::Point{40, 30}, PinSide::kEast);
  const auto problems = layout.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("boundary"), std::string::npos);
}

TEST(Layout, DetectsObstacleOutsideDie) {
  Layout layout = make_simple_layout();
  layout.add_obstacle(
      Obstacle{geom::Rect(900, 900, 1200, 1200), true, true, "keepout"});
  const auto problems = layout.validate();
  ASSERT_FALSE(problems.empty());
}

TEST(Stats, ComputesAggregates) {
  const Layout layout = make_simple_layout();
  const LayoutStats s = compute_stats(layout);
  EXPECT_EQ(s.num_cells, 2);
  EXPECT_EQ(s.num_nets, 2);
  EXPECT_EQ(s.num_pins, 5);
  EXPECT_DOUBLE_EQ(s.avg_pins_per_net, 2.5);
  EXPECT_EQ(s.max_net_degree, 3);
  EXPECT_EQ(s.die_area, 1000 * 1000);
  EXPECT_GT(s.cell_utilization, 0.0);
  EXPECT_LT(s.cell_utilization, 1.0);
}

TEST(Stats, SubsetStats) {
  const Layout layout = make_simple_layout();
  const SubsetStats s =
      compute_subset_stats(layout, std::vector<NetId>{NetId{1}});
  EXPECT_EQ(s.num_nets, 1);
  EXPECT_EQ(s.num_pins, 3);
  EXPECT_DOUBLE_EQ(s.avg_pins_per_net, 3.0);
}

TEST(Ids, ValidityAndComparison) {
  NetId invalid;
  EXPECT_FALSE(invalid.valid());
  NetId three{3};
  EXPECT_TRUE(three.valid());
  EXPECT_LT(NetId{1}, NetId{2});
  EXPECT_EQ(NetId{5}, NetId{5});
}

}  // namespace
}  // namespace ocr::netlist

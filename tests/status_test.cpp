/// \file status_test.cpp
/// \brief Units for the robustness primitives: util::Status/StatusOr,
/// cooperative cancellation, and the fault-injection registry.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/cancel.hpp"
#include "util/fault.hpp"
#include "util/status.hpp"

namespace ocr::util {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.kind(), StatusKind::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.net(), -1);
  EXPECT_EQ(s.line(), 0);
}

TEST(Status, FactoriesSetTheKind) {
  EXPECT_EQ(Status::parse_error("x").kind(), StatusKind::kParseError);
  EXPECT_EQ(Status::unroutable("x").kind(), StatusKind::kUnroutable);
  EXPECT_EQ(Status::cancelled("x").kind(), StatusKind::kCancelled);
  EXPECT_EQ(Status::deadline_exceeded("x").kind(),
            StatusKind::kDeadlineExceeded);
  EXPECT_EQ(Status::budget_exhausted("x").kind(),
            StatusKind::kBudgetExhausted);
  EXPECT_EQ(Status::fault_injected("x").kind(), StatusKind::kFaultInjected);
  EXPECT_EQ(Status::task_failed("x").kind(), StatusKind::kTaskFailed);
  EXPECT_EQ(Status::io_error("x").kind(), StatusKind::kIoError);
  EXPECT_EQ(Status::internal("x").kind(), StatusKind::kInternal);
  EXPECT_FALSE(Status::internal("x").ok());
}

TEST(Status, FluentContextChains) {
  Status s = Status::parse_error("bad token");
  s.with_stage("layout-parse").with_net(7).at(12, 5);
  EXPECT_EQ(s.stage(), "layout-parse");
  EXPECT_EQ(s.net(), 7);
  EXPECT_EQ(s.line(), 12);
  EXPECT_EQ(s.column(), 5);
}

TEST(Status, ToStringNamesEveryPresentPart) {
  Status s = Status::parse_error("bad token");
  s.with_stage("layout-parse").with_net(7).at(12, 5);
  const std::string text = s.to_string();
  EXPECT_NE(text.find("parse"), std::string::npos) << text;
  EXPECT_NE(text.find("layout-parse"), std::string::npos) << text;
  EXPECT_NE(text.find("12"), std::string::npos) << text;
  EXPECT_NE(text.find("bad token"), std::string::npos) << text;
  // Absent parts are elided.
  const std::string bare = Status::io_error("no such file").to_string();
  EXPECT_EQ(bare.find("line"), std::string::npos) << bare;
  EXPECT_EQ(bare.find("net"), std::string::npos) << bare;
}

TEST(Status, EqualityComparesAllContext) {
  Status a = Status::unroutable("net blocked");
  Status b = Status::unroutable("net blocked");
  EXPECT_EQ(a, b);
  b.with_net(3);
  EXPECT_NE(a, b);
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  StatusOr<int> bad(Status::invalid_argument("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().kind(), StatusKind::kInvalidArgument);
}

TEST(StatusOr, MovesTheValueOut) {
  StatusOr<std::vector<int>> v(std::vector<int>{1, 2, 3});
  const std::vector<int> out = std::move(v).value();
  EXPECT_EQ(out.size(), 3u);
}

TEST(Cancel, DefaultTokenNeverFires) {
  const CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.reason().ok());
  token.note_progress(5);  // no-op, must not crash
  EXPECT_EQ(token.progress(), 0);
}

TEST(Cancel, FirstCancelWins) {
  CancelSource source;
  const CancelToken token = source.token();
  EXPECT_TRUE(token.valid());
  EXPECT_FALSE(token.cancelled());

  source.cancel(Status::deadline_exceeded("first"));
  source.cancel(Status::cancelled("second"));
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason().kind(), StatusKind::kDeadlineExceeded);
  EXPECT_EQ(token.reason().message(), "first");
}

TEST(Cancel, ProgressIsSharedAcrossTokens) {
  CancelSource source;
  const CancelToken a = source.token();
  const CancelToken b = source.token();
  a.note_progress(10);
  b.note_progress(4);
  EXPECT_EQ(source.progress(), 14);
}

/// The registry is process-global; every test leaves it disarmed.
class FaultRegistryTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::global().clear(); }
};

TEST_F(FaultRegistryTest, DisarmedByDefault) {
  FaultRegistry& r = FaultRegistry::global();
  r.clear();
  EXPECT_FALSE(r.armed());
  EXPECT_FALSE(r.should_fail("some.site"));
  EXPECT_EQ(r.fired_count(), 0);
}

TEST_F(FaultRegistryTest, AlwaysTriggerFiresEveryHit) {
  FaultRegistry& r = FaultRegistry::global();
  ASSERT_TRUE(r.configure("a.site=*").ok());
  EXPECT_TRUE(r.armed());
  EXPECT_TRUE(r.should_fail("a.site"));
  EXPECT_TRUE(r.should_fail("a.site"));
  EXPECT_FALSE(r.should_fail("other.site"));
  EXPECT_EQ(r.fired_count(), 2);
}

TEST_F(FaultRegistryTest, NthTriggerFiresExactlyOnce) {
  FaultRegistry& r = FaultRegistry::global();
  ASSERT_TRUE(r.configure("a.site=3").ok());
  EXPECT_FALSE(r.should_fail("a.site"));  // hit 1
  EXPECT_FALSE(r.should_fail("a.site"));  // hit 2
  EXPECT_TRUE(r.should_fail("a.site"));   // hit 3
  EXPECT_FALSE(r.should_fail("a.site"));  // hit 4
  EXPECT_EQ(r.fired_count(), 1);
}

TEST_F(FaultRegistryTest, FromNthTriggerFiresOnward) {
  FaultRegistry& r = FaultRegistry::global();
  ASSERT_TRUE(r.configure("a.site=2+").ok());
  EXPECT_FALSE(r.should_fail("a.site"));
  EXPECT_TRUE(r.should_fail("a.site"));
  EXPECT_TRUE(r.should_fail("a.site"));
  EXPECT_EQ(r.fired_count(), 2);
}

TEST_F(FaultRegistryTest, KeyedTriggerMatchesOnlyItsKeys) {
  FaultRegistry& r = FaultRegistry::global();
  ASSERT_TRUE(r.configure("a.site=@5|9").ok());
  EXPECT_FALSE(r.should_fail("a.site", 4));
  EXPECT_TRUE(r.should_fail("a.site", 5));
  EXPECT_TRUE(r.should_fail("a.site", 9));
  // Counter (un-keyed) hits never match a '@' trigger.
  EXPECT_FALSE(r.should_fail("a.site"));
  EXPECT_EQ(r.fired_count(), 2);
}

TEST_F(FaultRegistryTest, ProbabilisticTriggerIsSeedDeterministic) {
  FaultRegistry& r = FaultRegistry::global();
  const auto pattern = [&](const std::string& spec) {
    EXPECT_TRUE(r.configure(spec).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(r.should_fail("p.site"));
    return fired;
  };
  const auto a = pattern("p.site=~0.3;seed=7");
  const auto b = pattern("p.site=~0.3;seed=7");
  const auto c = pattern("p.site=~0.3;seed=8");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // overwhelmingly likely for 64 draws
  int count = 0;
  for (const bool f : a) count += f ? 1 : 0;
  EXPECT_GT(count, 0);
  EXPECT_LT(count, 64);
}

TEST_F(FaultRegistryTest, MultipleEntriesAndReport) {
  FaultRegistry& r = FaultRegistry::global();
  ASSERT_TRUE(r.configure("a.site=1;b.site=*").ok());
  EXPECT_TRUE(r.should_fail("a.site"));
  EXPECT_TRUE(r.should_fail("b.site"));
  const auto report = r.fired_report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_NE(report[0].find("a.site"), std::string::npos);
  EXPECT_NE(report[1].find("b.site"), std::string::npos);
}

TEST_F(FaultRegistryTest, BadSpecsReturnErrors) {
  FaultRegistry& r = FaultRegistry::global();
  EXPECT_FALSE(r.configure("no-equals-sign").ok());
  EXPECT_FALSE(r.configure("a.site=~notanumber").ok());
  EXPECT_FALSE(r.configure("a.site=").ok());
  // A bad spec must leave the registry disarmed.
  EXPECT_FALSE(r.armed());
}

TEST_F(FaultRegistryTest, EmptySpecDisarms) {
  FaultRegistry& r = FaultRegistry::global();
  ASSERT_TRUE(r.configure("a.site=*").ok());
  EXPECT_TRUE(r.armed());
  ASSERT_TRUE(r.configure("").ok());
  EXPECT_FALSE(r.armed());
  EXPECT_FALSE(r.should_fail("a.site"));
}

TEST_F(FaultRegistryTest, ConfigureResetsCounters) {
  FaultRegistry& r = FaultRegistry::global();
  ASSERT_TRUE(r.configure("a.site=*").ok());
  EXPECT_TRUE(r.should_fail("a.site"));
  ASSERT_TRUE(r.configure("a.site=2").ok());
  EXPECT_EQ(r.fired_count(), 0);
  EXPECT_FALSE(r.should_fail("a.site"));  // hit counter restarted at 1
  EXPECT_TRUE(r.should_fail("a.site"));
}

}  // namespace
}  // namespace ocr::util

/// \file tig_snapshot_test.cpp
/// \brief VersionedGrid / CommitLog unit tests: epoch advancement,
/// snapshot caching and isolation, commit-log bookkeeping.

#include <gtest/gtest.h>

#include "tig/snapshot.hpp"

namespace ocr::tig {
namespace {

using geom::Interval;
using geom::Orientation;
using geom::Rect;

TrackGrid make_grid() {
  return TrackGrid::uniform(Rect(0, 0, 100, 100), 11, 11);
}

TEST(VersionedGrid, ApplyAdvancesEpochAndLogs) {
  TrackGrid grid = make_grid();
  VersionedGrid versioned(grid);
  EXPECT_EQ(versioned.epoch(), 0u);
  EXPECT_EQ(versioned.log().size(), 0u);

  versioned.apply({CommitOp{TrackRef{Orientation::kHorizontal, 3},
                            Interval(10, 40)}});
  EXPECT_EQ(versioned.epoch(), 1u);
  ASSERT_EQ(versioned.log().size(), 1u);
  const CommitRecord* record = versioned.log().record_at(0);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->epoch, 0u);
  EXPECT_FALSE(record->sensitive);
  ASSERT_EQ(record->ops.size(), 1u);
  EXPECT_EQ(record->ops[0].track.index, 3);
  EXPECT_EQ(versioned.log().record_at(1), nullptr);

  versioned.apply({}, /*sensitive=*/true);
  EXPECT_EQ(versioned.epoch(), 2u);
  EXPECT_TRUE(versioned.log().record_at(1)->sensitive);
}

TEST(VersionedGrid, ApplyMutatesTheLiveGrid) {
  TrackGrid grid = make_grid();
  VersionedGrid versioned(grid);
  const Interval span(10, 40);
  ASSERT_TRUE(grid.h_is_free(3, span));
  versioned.apply(
      {CommitOp{TrackRef{Orientation::kHorizontal, 3}, span}});
  EXPECT_FALSE(grid.h_is_free(3, span));
  // Unblock op (rip-up direction) frees it again.
  versioned.apply({CommitOp{TrackRef{Orientation::kHorizontal, 3}, span,
                            /*block=*/false}});
  EXPECT_TRUE(grid.h_is_free(3, span));
}

TEST(VersionedGrid, SnapshotIsCachedPerEpochAndImmutable) {
  TrackGrid grid = make_grid();
  VersionedGrid versioned(grid);
  const auto s0 = versioned.snapshot();
  EXPECT_EQ(s0->epoch, 0u);
  EXPECT_EQ(versioned.snapshot().get(), s0.get());  // cached

  const Interval span(20, 60);
  versioned.apply(
      {CommitOp{TrackRef{Orientation::kVertical, 5}, span}});
  const auto s1 = versioned.snapshot();
  EXPECT_EQ(s1->epoch, 1u);
  EXPECT_NE(s1.get(), s0.get());
  // The old snapshot still shows the pre-commit world.
  EXPECT_TRUE(s0->grid.v_is_free(5, span));
  EXPECT_FALSE(s1->grid.v_is_free(5, span));
}

TEST(VersionedGrid, ExclusiveGridInvalidatesCacheWithoutEpochBump) {
  TrackGrid grid = make_grid();
  VersionedGrid versioned(grid);
  const auto s0 = versioned.snapshot();
  const Interval span(0, 30);
  versioned.exclusive_grid().block_h(7, span);
  EXPECT_EQ(versioned.epoch(), 0u);
  EXPECT_EQ(versioned.log().size(), 0u);
  const auto s1 = versioned.snapshot();
  EXPECT_NE(s1.get(), s0.get());  // cache was dropped
  EXPECT_FALSE(s1->grid.h_is_free(7, span));
}

}  // namespace
}  // namespace ocr::tig

#include <gtest/gtest.h>

#include <set>

#include "levelb/multi_plane.hpp"
#include "util/rng.hpp"

namespace ocr::levelb {
namespace {

using geom::Point;
using geom::Rect;

std::vector<BNet> dense_bus(int count, geom::Coord size) {
  // `count` parallel full-width nets: more than one plane's tracks in the
  // corridor they all want.
  std::vector<BNet> nets;
  for (int n = 0; n < count; ++n) {
    const geom::Coord y = 100 + 2 * n;  // all snap into a few tracks
    nets.push_back(BNet{n, {Point{5, y}, Point{size - 5, y}}});
  }
  return nets;
}

TEST(MultiPlane, SinglePlaneInstanceUnchanged) {
  auto p0 = tig::TrackGrid::uniform(Rect(0, 0, 400, 400), 10, 10);
  auto p1 = tig::TrackGrid::uniform(Rect(0, 0, 400, 400), 10, 10);
  const std::vector<BNet> nets = {
      BNet{1, {Point{5, 5}, Point{395, 395}}},
      BNet{2, {Point{5, 395}, Point{395, 5}}},
  };
  const auto result = route_two_planes(p0, p1, nets);
  EXPECT_EQ(result.combined.failed_nets, 0);
  EXPECT_EQ(result.combined.nets.size(), 2u);
  // Load balancing puts one net per plane.
  EXPECT_NE(result.plane_of_net[0], result.plane_of_net[1]);
}

TEST(MultiPlane, DoublesEffectiveCapacity) {
  // A bus too fat for one plane's corridor completes with two planes.
  const int kNets = 12;
  auto one_plane = tig::TrackGrid::uniform(Rect(0, 0, 400, 140), 10, 10);
  LevelBRouter single(one_plane);
  const auto single_result = single.route(dense_bus(kNets, 400));
  ASSERT_GT(single_result.failed_nets, 0)
      << "instance too easy to demonstrate capacity";

  auto p0 = tig::TrackGrid::uniform(Rect(0, 0, 400, 140), 10, 10);
  auto p1 = tig::TrackGrid::uniform(Rect(0, 0, 400, 140), 10, 10);
  const auto dual = route_two_planes(p0, p1, dense_bus(kNets, 400));
  EXPECT_LT(dual.combined.failed_nets, single_result.failed_nets);
}

TEST(MultiPlane, RescueCountsReported) {
  // Unbalanced demand: clog plane 0's corridor with obstacles so nets
  // assigned there must be rescued by plane 1.
  auto p0 = tig::TrackGrid::uniform(Rect(0, 0, 400, 140), 10, 10);
  auto p1 = tig::TrackGrid::uniform(Rect(0, 0, 400, 140), 10, 10);
  p0.block_region_h(Rect(0, 0, 400, 140));  // plane 0 unusable for H runs
  p0.block_region_v(Rect(0, 0, 400, 140));
  const auto result = route_two_planes(p0, p1, dense_bus(4, 400));
  EXPECT_EQ(result.combined.failed_nets, 0);
  EXPECT_GT(result.rescued, 0);
  for (int plane : result.plane_of_net) EXPECT_EQ(plane, 1);
}

TEST(MultiPlane, PlanesStayIsolated) {
  // Wiring committed on plane 0 never blocks plane 1 and vice versa.
  auto p0 = tig::TrackGrid::uniform(Rect(0, 0, 400, 400), 10, 10);
  auto p1 = tig::TrackGrid::uniform(Rect(0, 0, 400, 400), 10, 10);
  const std::vector<BNet> nets = {
      BNet{1, {Point{5, 205}, Point{395, 205}}},
      BNet{2, {Point{5, 205}, Point{395, 215}}},  // same corridor
  };
  const auto result = route_two_planes(p0, p1, nets);
  EXPECT_EQ(result.combined.failed_nets, 0);
  // Both straight runs exist because they live on different planes.
  EXPECT_NE(result.plane_of_net[0], result.plane_of_net[1]);
}

TEST(MultiPlane, EveryNetAccountedExactlyOnce) {
  util::Rng rng(777);
  auto p0 = tig::TrackGrid::uniform(Rect(0, 0, 600, 600), 10, 12);
  auto p1 = tig::TrackGrid::uniform(Rect(0, 0, 600, 600), 10, 12);
  std::vector<BNet> nets;
  for (int n = 0; n < 40; ++n) {
    nets.push_back(BNet{
        n, {Point{rng.uniform_int(0, 599), rng.uniform_int(0, 599)},
            Point{rng.uniform_int(0, 599), rng.uniform_int(0, 599)}}});
  }
  const auto result = route_two_planes(p0, p1, nets);
  EXPECT_EQ(result.combined.nets.size(), nets.size());
  std::set<int> ids;
  for (const auto& net : result.combined.nets) {
    EXPECT_TRUE(ids.insert(net.id).second) << "net reported twice";
  }
  EXPECT_EQ(result.combined.routed_nets + result.combined.failed_nets,
            static_cast<int>(nets.size()));
}

}  // namespace
}  // namespace ocr::levelb

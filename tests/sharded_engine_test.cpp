/// \file sharded_engine_test.cpp
/// \brief The sharded engine mode's contract: bit-identical to the serial
/// router at any thread count, with ZERO speculation — no aborts, no
/// rebase, no wasted work for intra-batch nets. Region escapes surface as
/// boundary_nets and are recovered serially, never as wrong wiring.

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/engine.hpp"
#include "levelb/router.hpp"
#include "util/rng.hpp"

namespace ocr::engine {
namespace {

using geom::Point;
using geom::Rect;
using levelb::BNet;
using levelb::LevelBResult;

tig::TrackGrid make_grid(geom::Coord size) {
  return tig::TrackGrid::uniform(Rect(0, 0, size, size), 9, 11);
}

/// Local nets scattered over a large die — the workload sharding targets.
/// Every seventh net is sensitive when requested (exercising the
/// batch-closing rule and the w24 registry handoff).
std::vector<BNet> clustered_nets(std::uint64_t seed, geom::Coord size,
                                 int count, geom::Coord locality,
                                 bool with_sensitive) {
  util::Rng rng(seed);
  std::vector<BNet> nets;
  for (int n = 0; n < count; ++n) {
    BNet net{n, {}};
    const Point center{rng.uniform_int(0, size - 1),
                       rng.uniform_int(0, size - 1)};
    const int degree = static_cast<int>(rng.uniform_int(2, 4));
    for (int t = 0; t < degree; ++t) {
      const geom::Coord x = std::clamp<geom::Coord>(
          center.x + rng.uniform_int(0, 2 * locality) - locality, 0,
          size - 1);
      const geom::Coord y = std::clamp<geom::Coord>(
          center.y + rng.uniform_int(0, 2 * locality) - locality, 0,
          size - 1);
      net.terminals.push_back(Point{x, y});
    }
    net.sensitive = with_sensitive && n % 7 == 3;
    nets.push_back(std::move(net));
  }
  return nets;
}

LevelBResult serial_route(tig::TrackGrid grid,
                          const std::vector<BNet>& nets) {
  levelb::LevelBRouter router(grid);
  return router.route(nets);
}

LevelBResult sharded_route(tig::TrackGrid grid,
                           const std::vector<BNet>& nets, int threads,
                           EngineStats* stats = nullptr,
                           EngineOptions options = {}) {
  options.threads = threads;
  options.mode = EngineMode::kSharded;
  RoutingEngine engine(grid, options);
  LevelBResult result = engine.route(nets);
  if (stats != nullptr) *stats = engine.stats();
  return result;
}

/// The zero-speculation claim plus the per-position accounting: every
/// position lands in exactly one of {batch commit, boundary re-route} on
/// a fault-free run, and the speculative machinery never engages.
void expect_sharded_accounting(const EngineStats& stats, std::size_t n) {
  EXPECT_STREQ(stats.mode, "sharded");
  EXPECT_EQ(stats.speculation_aborts, 0);
  EXPECT_EQ(stats.speculative_commits, 0);
  EXPECT_EQ(stats.wasted_vertices, 0);
  EXPECT_EQ(stats.wasted_search_us, 0);
  EXPECT_EQ(stats.queue_wait_us, 0);
  EXPECT_EQ(stats.worker_failures, 0);
  EXPECT_EQ(stats.sharded_commits + stats.boundary_nets,
            static_cast<long long>(n));
  EXPECT_GE(stats.batches, 1);
  EXPECT_GE(stats.max_batch_size, 1);
}

TEST(ShardedEngine, ClusteredMatchesSerialAtEveryThreadCount) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const std::vector<BNet> nets = clustered_nets(seed, 2000, 60, 50, false);
    const LevelBResult serial = serial_route(make_grid(2000), nets);
    for (int threads : {2, 4, 8}) {
      EngineStats stats;
      EXPECT_EQ(sharded_route(make_grid(2000), nets, threads, &stats),
                serial)
          << "seed=" << seed << " threads=" << threads;
      expect_sharded_accounting(stats, nets.size());
    }
  }
}

TEST(ShardedEngine, ClusteredPlanExposesParallelism) {
  const std::vector<BNet> nets = clustered_nets(4, 3000, 80, 40, false);
  EngineStats stats;
  const LevelBResult serial = serial_route(make_grid(3000), nets);
  EXPECT_EQ(sharded_route(make_grid(3000), nets, 4, &stats), serial);
  expect_sharded_accounting(stats, nets.size());
  EXPECT_LT(stats.batches, static_cast<long long>(nets.size()));
  EXPECT_GT(stats.max_batch_size, 1);
  // The zero-copy contract: workers share the live grid between commit
  // phases, so the sharded path never copies the grid at all.
  EXPECT_EQ(stats.grid_copies, 0);
}

TEST(ShardedEngine, SensitiveNetsMatchSerial) {
  // Sensitive nets close their batches; the copy-on-write registry
  // handoff must reproduce the serial w24 penalties exactly.
  const std::vector<BNet> nets = clustered_nets(7, 1500, 50, 60, true);
  const LevelBResult serial = serial_route(make_grid(1500), nets);
  for (int threads : {2, 4}) {
    EngineStats stats;
    EXPECT_EQ(sharded_route(make_grid(1500), nets, threads, &stats),
              serial)
        << "threads=" << threads;
    expect_sharded_accounting(stats, nets.size());
  }
}

TEST(ShardedEngine, TinyHaloStillMatchesSerial) {
  // A 1-pitch halo under-declares regions aggressively: escapes become
  // likely, and every one must be caught by the footprint check and
  // recovered to the exact serial result.
  const std::vector<BNet> nets = clustered_nets(9, 900, 60, 80, true);
  const LevelBResult serial = serial_route(make_grid(900), nets);
  EngineOptions options;
  options.shard_halo_pitches = 1;
  EngineStats stats;
  EXPECT_EQ(sharded_route(make_grid(900), nets, 4, &stats, options),
            serial);
  expect_sharded_accounting(stats, nets.size());
}

TEST(ShardedEngine, DenseOverlapDegradesGracefully) {
  // Nets spanning most of the die: batches collapse toward singletons,
  // and the result must still be the serial one (the dispatch overhead is
  // the only cost).
  const std::vector<BNet> nets = clustered_nets(11, 400, 25, 400, true);
  const LevelBResult serial = serial_route(make_grid(400), nets);
  EngineStats stats;
  EXPECT_EQ(sharded_route(make_grid(400), nets, 4, &stats), serial);
  expect_sharded_accounting(stats, nets.size());
}

TEST(ShardedEngine, AutoPicksShardedOnLocalWorkload) {
  const std::vector<BNet> nets = clustered_nets(13, 3000, 80, 40, false);
  EngineOptions options;
  options.threads = 4;
  options.mode = EngineMode::kAuto;
  tig::TrackGrid grid = make_grid(3000);
  RoutingEngine engine(grid, options);
  const LevelBResult result = engine.route(nets);
  EXPECT_STREQ(engine.stats().mode, "sharded");
  EXPECT_EQ(result, serial_route(make_grid(3000), nets));
}

TEST(ShardedEngine, AutoFallsBackToSpeculativeOnOverlap) {
  // Die-spanning nets give a degenerate plan (mean batch ~1); auto must
  // keep the speculative engine, and the answer is still serial-exact.
  std::vector<BNet> nets = clustered_nets(15, 400, 20, 400, false);
  for (BNet& net : nets) {
    net.terminals.front() = Point{0, 0};
    net.terminals.back() = Point{399, 399};
  }
  EngineOptions options;
  options.threads = 4;
  options.mode = EngineMode::kAuto;
  tig::TrackGrid grid = make_grid(400);
  RoutingEngine engine(grid, options);
  const LevelBResult result = engine.route(nets);
  EXPECT_STREQ(engine.stats().mode, "speculative");
  EXPECT_EQ(result, serial_route(make_grid(400), nets));
}

TEST(ShardedEngine, SingleThreadIsTheSerialRouter) {
  // threads == 1 bypasses dispatch modes entirely.
  const std::vector<BNet> nets = clustered_nets(17, 600, 20, 60, true);
  EngineStats stats;
  EXPECT_EQ(sharded_route(make_grid(600), nets, 1, &stats),
            serial_route(make_grid(600), nets));
  EXPECT_STREQ(stats.mode, "serial");
  EXPECT_EQ(stats.batches, 0);
}

TEST(ShardedEngine, GridCarriesIdenticalWiring) {
  const std::vector<BNet> nets = clustered_nets(19, 800, 30, 70, false);
  tig::TrackGrid serial_grid = make_grid(800);
  tig::TrackGrid sharded_grid = make_grid(800);
  levelb::LevelBRouter router(serial_grid);
  router.route(nets);
  EngineOptions options;
  options.threads = 4;
  options.mode = EngineMode::kSharded;
  RoutingEngine engine(sharded_grid, options);
  engine.route(nets);
  for (int i = 0; i < serial_grid.num_h(); ++i) {
    for (geom::Coord x = 0; x < 800; x += 7) {
      EXPECT_EQ(serial_grid.h_is_free(i, geom::Interval(x, x + 6)),
                sharded_grid.h_is_free(i, geom::Interval(x, x + 6)))
          << "h track " << i << " at x=" << x;
    }
  }
  for (int j = 0; j < serial_grid.num_v(); ++j) {
    for (geom::Coord y = 0; y < 800; y += 7) {
      EXPECT_EQ(serial_grid.v_is_free(j, geom::Interval(y, y + 6)),
                sharded_grid.v_is_free(j, geom::Interval(y, y + 6)))
          << "v track " << j << " at y=" << y;
    }
  }
}

TEST(ShardedEngine, TraceRecordsEveryNetWithBatchFields) {
  const std::vector<BNet> nets = clustered_nets(21, 1200, 25, 50, false);
  util::TraceSink trace;
  EngineOptions options;
  options.levelb.trace = &trace;
  EXPECT_EQ(sharded_route(make_grid(1200), nets, 4, nullptr, options),
            serial_route(make_grid(1200), nets));
  EXPECT_EQ(trace.size(), nets.size() + 1);
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"mode\":\"sharded\""), std::string::npos);
  EXPECT_NE(json.find("\"engine_mode\":\"sharded\""), std::string::npos);
  EXPECT_NE(json.find("\"batch\""), std::string::npos);
  EXPECT_NE(json.find("\"escaped\""), std::string::npos);
  EXPECT_NE(json.find("\"boundary_nets\""), std::string::npos);
  EXPECT_NE(json.find("\"sharded_commits\""), std::string::npos);
}

TEST(ShardedEngine, ModeNamesRoundTrip) {
  EngineMode mode = EngineMode::kSpeculative;
  for (EngineMode m : {EngineMode::kSpeculative, EngineMode::kSharded,
                       EngineMode::kAuto}) {
    ASSERT_TRUE(parse_engine_mode(engine_mode_name(m), &mode));
    EXPECT_EQ(mode, m);
  }
  mode = EngineMode::kAuto;
  EXPECT_FALSE(parse_engine_mode("bogus", &mode));
  EXPECT_EQ(mode, EngineMode::kAuto);  // untouched on failure
}

}  // namespace
}  // namespace ocr::engine

/// \file engine_determinism_test.cpp
/// \brief The engine's core contract: for a fixed net ordering, the
/// parallel engine's LevelBResult is bit-identical to the serial
/// LevelBRouter's, for any thread count and lookahead.

#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "levelb/figure1.hpp"
#include "levelb/router.hpp"
#include "util/rng.hpp"

namespace ocr::engine {
namespace {

using geom::Point;
using geom::Rect;
using levelb::BNet;
using levelb::LevelBResult;

tig::TrackGrid make_grid(geom::Coord size) {
  return tig::TrackGrid::uniform(Rect(0, 0, size, size), 9, 11);
}

/// Same generator shape as bench_scaling: degree-2..4 nets with uniform
/// random terminals; every fifth net is sensitive so speculation also
/// crosses sensitive commits.
std::vector<BNet> random_nets(std::uint64_t seed, geom::Coord size,
                              int count, bool with_sensitive) {
  util::Rng rng(seed);
  std::vector<BNet> nets;
  for (int n = 0; n < count; ++n) {
    BNet net{n, {}};
    const int degree = static_cast<int>(rng.uniform_int(2, 4));
    for (int t = 0; t < degree; ++t) {
      net.terminals.push_back(
          Point{rng.uniform_int(0, size - 1), rng.uniform_int(0, size - 1)});
    }
    net.sensitive = with_sensitive && n % 5 == 2;
    nets.push_back(std::move(net));
  }
  return nets;
}

LevelBResult serial_route(tig::TrackGrid grid, const std::vector<BNet>& nets,
                          const levelb::LevelBOptions& options = {}) {
  levelb::LevelBRouter router(grid, options);
  return router.route(nets);
}

LevelBResult engine_route(tig::TrackGrid grid, const std::vector<BNet>& nets,
                          int threads, EngineStats* stats = nullptr,
                          EngineOptions options = {}) {
  options.threads = threads;
  RoutingEngine engine(grid, options);
  LevelBResult result = engine.route(nets);
  if (stats != nullptr) *stats = engine.stats();
  return result;
}

TEST(EngineDeterminism, Figure1MatchesSerial) {
  const auto instance = levelb::make_figure1_instance();
  const std::vector<BNet> nets = {BNet{1, {instance.b1, instance.b2}}};
  const LevelBResult serial = serial_route(instance.grid, nets);
  ASSERT_TRUE(serial.nets[0].complete);
  for (int threads : {2, 4, 8, 16}) {
    EXPECT_EQ(engine_route(instance.grid, nets, threads), serial)
        << "threads=" << threads;
  }
}

TEST(EngineDeterminism, RandomSweepMatchesSerial) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const std::vector<BNet> nets = random_nets(seed, 600, 30, false);
    const LevelBResult serial = serial_route(make_grid(600), nets);
    for (int threads : {2, 4, 8, 16}) {
      EXPECT_EQ(engine_route(make_grid(600), nets, threads), serial)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(EngineDeterminism, SensitiveNetsMatchSerial) {
  // Sensitive commits blanket-invalidate in-flight speculation; the
  // recomputed results must still land exactly on the serial answer.
  const std::vector<BNet> nets = random_nets(7, 500, 25, true);
  const LevelBResult serial = serial_route(make_grid(500), nets);
  for (int threads : {2, 4}) {
    EngineStats stats;
    EXPECT_EQ(engine_route(make_grid(500), nets, threads, &stats), serial)
        << "threads=" << threads;
    EXPECT_EQ(stats.speculative_commits + stats.speculation_aborts,
              static_cast<long long>(nets.size()));
  }
}

TEST(EngineDeterminism, TightLookaheadMatchesSerial) {
  // lookahead 1 forces fully serial claims; lookahead 2 maximizes
  // commit/speculation interleaving.
  const std::vector<BNet> nets = random_nets(11, 400, 20, true);
  const LevelBResult serial = serial_route(make_grid(400), nets);
  for (int lookahead : {1, 2}) {
    EngineOptions options;
    options.lookahead = lookahead;
    EXPECT_EQ(engine_route(make_grid(400), nets, 4, nullptr, options),
              serial)
        << "lookahead=" << lookahead;
  }
}

TEST(EngineDeterminism, SingleThreadIsTheSerialRouter) {
  const std::vector<BNet> nets = random_nets(4, 300, 10, true);
  EngineStats stats;
  EXPECT_EQ(engine_route(make_grid(300), nets, 1, &stats),
            serial_route(make_grid(300), nets));
  EXPECT_EQ(stats.threads, 1);
  EXPECT_EQ(stats.speculative_commits, 0);
  EXPECT_EQ(stats.speculation_aborts, 0);
}

TEST(EngineDeterminism, GridCarriesIdenticalWiring) {
  // The caller's grid must hold the same committed occupancy afterwards:
  // probe every track's blocked spans via is-free queries on a lattice.
  const std::vector<BNet> nets = random_nets(9, 300, 15, false);
  tig::TrackGrid serial_grid = make_grid(300);
  tig::TrackGrid engine_grid = make_grid(300);
  levelb::LevelBRouter router(serial_grid);
  router.route(nets);
  RoutingEngine engine(engine_grid, EngineOptions{.threads = 4});
  engine.route(nets);
  for (int i = 0; i < serial_grid.num_h(); ++i) {
    for (geom::Coord x = 0; x < 300; x += 7) {
      EXPECT_EQ(serial_grid.h_is_free(i, geom::Interval(x, x + 6)),
                engine_grid.h_is_free(i, geom::Interval(x, x + 6)))
          << "h track " << i << " at x=" << x;
    }
  }
  for (int j = 0; j < serial_grid.num_v(); ++j) {
    for (geom::Coord y = 0; y < 300; y += 7) {
      EXPECT_EQ(serial_grid.v_is_free(j, geom::Interval(y, y + 6)),
                engine_grid.v_is_free(j, geom::Interval(y, y + 6)))
          << "v track " << j << " at y=" << y;
    }
  }
}

TEST(EngineDeterminism, TraceRecordsEveryNet) {
  const std::vector<BNet> nets = random_nets(13, 300, 12, false);
  util::TraceSink trace;
  EngineOptions options;
  options.levelb.trace = &trace;
  tig::TrackGrid grid = make_grid(300);

  EXPECT_EQ(engine_route(grid, nets, 4, nullptr, options),
            serial_route(make_grid(300), nets));
  // One "net" event per net plus the run-level "engine" totals event.
  EXPECT_EQ(trace.size(), nets.size() + 1);
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"mode\":\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"speculative\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait_us\""), std::string::npos);
  EXPECT_NE(json.find("\"wasted_vertices\""), std::string::npos);
  EXPECT_NE(json.find("\"wasted_search_us\""), std::string::npos);
  EXPECT_NE(json.find("\"grid_copies\""), std::string::npos);
  EXPECT_NE(json.find("\"lookahead_peak\""), std::string::npos);
}

}  // namespace
}  // namespace ocr::engine
